"""E8 — Reconfiguration-cost ablation (design-choice study from DESIGN.md §5).

Re-runs E2's 50% malleable mix while sweeping ``data_per_node`` — the
application state redistributed at every reconfiguration — from free to
very expensive.  Expected shape: malleability's makespan advantage over
the rigid baseline shrinks as the cost rises, with a crossover where
reconfiguring stops paying off.
"""

import pytest

from benchmarks.common import (
    evaluation_workload,
    print_table,
    reference_platform,
    run_sim,
)

NUM_JOBS = 40
SEED = 21
#: Bytes of state per node moved at each reconfiguration.
COSTS = [0.0, 1e9, 10e9, 100e9, 1000e9]

_cache = {}


def _rigid_baseline():
    if "rigid" not in _cache:
        platform = reference_platform()
        jobs = evaluation_workload(num_jobs=NUM_JOBS, seed=SEED)
        _cache["rigid"] = run_sim(platform, jobs, "easy").summary()
    return _cache["rigid"]


def _run(cost: float):
    if cost not in _cache:
        platform = reference_platform()
        jobs = evaluation_workload(
            num_jobs=NUM_JOBS,
            seed=SEED,
            malleable_fraction=0.5,
            data_per_node=cost,
        )
        _cache[cost] = run_sim(platform, jobs, "malleable").summary()
    return _cache[cost]


@pytest.mark.benchmark(group="e8-reconfig-cost")
@pytest.mark.parametrize("cost", COSTS, ids=[f"{c:g}B" for c in COSTS])
def test_e8_cost_point(benchmark, cost):
    summary = benchmark.pedantic(_run, args=(cost,), rounds=1, iterations=1)
    assert summary.completed_jobs + summary.killed_jobs == NUM_JOBS


@pytest.mark.benchmark(group="e8-reconfig-cost")
def test_e8_shape_gains_shrink_with_cost(benchmark):
    def sweep():
        return _rigid_baseline(), {c: _run(c) for c in COSTS}

    rigid, results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E8: malleability vs reconfiguration cost (50% malleable mix)",
        ["data_per_node_B", "makespan_s", "vs_rigid", "mean_wait_s", "reconfigs"],
        [
            [
                f"{cost:g}",
                s.makespan,
                s.makespan / rigid.makespan,
                s.mean_wait,
                s.total_reconfigurations,
            ]
            for cost, s in results.items()
        ],
        note=f"rigid/EASY baseline: makespan {rigid.makespan:.0f} s, "
        f"mean wait {rigid.mean_wait:.1f} s",
    )
    # Free reconfiguration beats the rigid baseline on wait time (the
    # makespan is dominated by the long tail job on this seed and can tie).
    assert results[0.0].mean_wait < rigid.mean_wait
    assert results[0.0].makespan <= rigid.makespan * 1.001
    # Gains shrink with cost: waits rise monotonically across the sweep and
    # the most expensive point is clearly worse than the free point.
    waits = [results[c].mean_wait for c in COSTS]
    assert all(b >= a * 0.99 for a, b in zip(waits, waits[1:]))
    assert results[COSTS[-1]].makespan > results[0.0].makespan
    # Crossover: at some cost, malleability stops beating rigid outright.
    assert results[COSTS[-1]].makespan >= rigid.makespan
    assert results[COSTS[-1]].mean_wait >= rigid.mean_wait
