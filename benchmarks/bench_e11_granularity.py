"""E11 — Scheduling-point granularity ablation.

Malleable jobs can only be reconfigured at application scheduling points
(iteration boundaries).  This experiment fixes each job's total work and
sweeps how many iterations it is divided into — i.e. how often the job
offers the scheduler a chance to reshape it.  A stream of rigid jobs needs
nodes back from a machine-filling malleable job; the faster the malleable
job reaches a scheduling point, the shorter the rigid jobs wait.

Expected shape: rigid mean wait falls as granularity rises (more frequent
scheduling points → lower reconfiguration latency), with diminishing
returns once the point interval drops below the rigid jobs' service time.
"""

import pytest

from repro import Simulation
from repro.application import ApplicationModel, CpuTask, Phase
from repro.job import Job, JobType

from benchmarks.common import print_table, reference_platform

TOTAL_FLOPS = 128e12 * 60  # ~60 s on the full 128-node machine
ITERATION_COUNTS = [1, 2, 4, 16, 64]
NUM_RIGID = 6

_cache = {}


def _malleable_job(iterations: int) -> Job:
    app = ApplicationModel(
        [Phase([CpuTask(TOTAL_FLOPS / iterations)], iterations=iterations)],
        name=f"granularity-{iterations}",
    )
    return Job(
        1,
        app,
        job_type=JobType.MALLEABLE,
        num_nodes=128,
        min_nodes=16,
        max_nodes=128,
    )


def _rigid_stream():
    app = ApplicationModel([Phase([CpuTask(32e12)])], name="rigid-32")
    return [
        Job(10 + i, app, num_nodes=32, submit_time=5.0 + 2.0 * i)
        for i in range(NUM_RIGID)
    ]


def _run(iterations: int):
    if iterations not in _cache:
        platform = reference_platform()
        jobs = [_malleable_job(iterations)] + _rigid_stream()
        Simulation(platform, jobs, algorithm="malleable").run()
        rigid = [j for j in jobs if j.is_rigid]
        _cache[iterations] = {
            "rigid_mean_wait": sum(j.wait_time for j in rigid) / len(rigid),
            "malleable_end": jobs[0].end_time,
            "reconfigs": jobs[0].reconfigurations_applied,
        }
    return _cache[iterations]


@pytest.mark.benchmark(group="e11-granularity")
@pytest.mark.parametrize("iterations", ITERATION_COUNTS)
def test_e11_point(benchmark, iterations):
    result = benchmark.pedantic(_run, args=(iterations,), rounds=1, iterations=1)
    assert result["malleable_end"] is not None


@pytest.mark.benchmark(group="e11-granularity")
def test_e11_shape_finer_granularity_cuts_waits(benchmark):
    def sweep():
        return {k: _run(k) for k in ITERATION_COUNTS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E11: rigid-job waits vs malleable scheduling-point granularity",
        ["iterations", "point_interval_s", "rigid_mean_wait_s",
         "malleable_end_s", "reconfigs"],
        [
            [
                k,
                60.0 / k,
                r["rigid_mean_wait"],
                r["malleable_end"],
                r["reconfigs"],
            ]
            for k, r in results.items()
        ],
        note="one machine-filling malleable job + stream of rigid 32-node jobs",
    )
    waits = [results[k]["rigid_mean_wait"] for k in ITERATION_COUNTS]
    # A single scheduling point (at the very end) means the rigid stream
    # waits for the whole job; fine granularity nearly eliminates waits.
    assert waits[-1] < waits[0] * 0.25
    # Monotone non-increasing within 10% noise.
    for a, b in zip(waits, waits[1:]):
        assert b <= a * 1.10
