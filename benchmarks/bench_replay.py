"""Replay benchmark: snapshot overhead and warm-resume speedup (E5-class run).

Times the full snapshot/restore loop on the paper's E5 performance
scenario (1000 jobs / 128 nodes, ~320k events): a cold run, the same run
with periodic checkpoints (capture overhead), and warm resumes from the
snapshots nearest 50% and 90% of the event stream.  Every resumed run
must reproduce the cold ``run_record`` byte-for-byte — speed means
nothing if the replayed timeline drifts.

Emits ``BENCH_replay.json`` (see ``common.write_bench_json``) with the
per-row walls/speedups plus capture overhead and snapshot size, gated in
CI against ``benchmarks/baselines/BENCH_replay.json``.  Two thresholds
are hard-asserted here (not just tolerance-gated): resume-at-90% must be
at least 5x faster than cold, and checkpointing every
``_SNAPSHOT_EVERY`` events must cost under 10% wall-clock.
"""

import json
import time

import pytest

from repro import Simulation

from benchmarks.common import (
    evaluation_generate_spec,
    print_table,
    reference_platform_dict,
    write_bench_json,
)

#: Checkpoint cadence in processed events.  ~320k events -> ~10 quiet
#: boundaries: fine enough to land near any resume fraction, coarse
#: enough that capture stays well under the 10% overhead budget.
_SNAPSHOT_EVERY = 32_000

_MIN_SPEEDUP_90 = 5.0
_MAX_OVERHEAD_PCT = 10.0

#: Wall-clock repeats per mode (best-of).  Single-shot walls on shared CI
#: runners jitter by ~10% — the same scale as the overhead budget — so
#: every timed mode takes the min over this many runs.
_REPEATS = 3


def _e5_spec():
    """The E5 1000-job scenario as a spec (snapshots need from_spec)."""
    return {
        "name": "replay-e5",
        "platform": reference_platform_dict(128),
        "workload": {
            "generate": {
                **evaluation_generate_spec(
                    num_jobs=1000,
                    num_nodes=128,
                    max_request=64,
                    comm_bytes=0.0,  # keep event counts dominated by scheduling
                    mean_interarrival=10.0,
                ),
                "seed": 3,
            }
        },
        "algorithm": "easy",
    }


_rows = []
_state = {}


def _fingerprint(sim):
    return json.dumps(sim.monitor.run_record(), sort_keys=True)


def _timed_run(**run_kwargs):
    """One from_spec run; returns (sim, wall_s)."""
    sim = Simulation.from_spec(_e5_spec())
    start = time.perf_counter()
    sim.run(**run_kwargs)
    return sim, time.perf_counter() - start


@pytest.mark.benchmark(group="replay")
def test_replay_cold(benchmark):
    def run():
        best = None
        for _ in range(_REPEATS):
            sim, wall = _timed_run()
            if best is None or wall < best[1]:
                best = (sim, wall)
        return best

    sim, wall = benchmark.pedantic(run, rounds=1, iterations=1)
    _state["cold_wall"] = wall
    _state["cold_events"] = sim.env.processed_events
    _state["cold_record"] = _fingerprint(sim)
    _rows.append(["cold", sim.env.processed_events, wall, 1.0, 1])
    assert sim.env.processed_events > 0


@pytest.mark.benchmark(group="replay")
def test_replay_capture_overhead(benchmark):
    """The checkpointed run: same record, bounded extra wall-clock."""

    def run():
        best = None
        for _ in range(_REPEATS):
            snaps = []
            sim, wall = _timed_run(
                snapshot_every=_SNAPSHOT_EVERY,
                snapshot_callback=snaps.append,
            )
            if best is None or wall < best[2]:
                best = (sim, snaps, wall)
        return best

    sim, snapshots, wall = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead_pct = 100.0 * (wall - _state["cold_wall"]) / _state["cold_wall"]
    _state["snapshots"] = snapshots
    _state["overhead_pct"] = overhead_pct
    # Size of the latest checkpoint as it would live on disk.
    _state["snapshot_size_mb"] = len(
        json.dumps(snapshots[-1].to_dict()).encode()
    ) / 1e6
    _rows.append(
        [
            f"cold+snapshots (every {_SNAPSHOT_EVERY})",
            sim.env.processed_events,
            wall,
            _state["cold_wall"] / wall,
            int(_fingerprint(sim) == _state["cold_record"]),
        ]
    )
    # Checkpointing must not perturb the simulation in any way.
    assert _fingerprint(sim) == _state["cold_record"]
    assert sim.env.processed_events == _state["cold_events"]
    assert len(snapshots) >= 8, "cadence too coarse to bisect resume points"
    assert overhead_pct < _MAX_OVERHEAD_PCT, (
        f"capture overhead {overhead_pct:.1f}% exceeds "
        f"{_MAX_OVERHEAD_PCT:.0f}% budget"
    )


def _resume_at(fraction):
    target = fraction * _state["cold_events"]
    snap = min(
        _state["snapshots"], key=lambda s: abs(s.processed_events - target)
    )
    wall = None
    for _ in range(_REPEATS):
        start = time.perf_counter()
        sim = Simulation.resume(snap)
        sim.run()
        elapsed = time.perf_counter() - start
        wall = elapsed if wall is None else min(wall, elapsed)
    identical = (
        _fingerprint(sim) == _state["cold_record"]
        and sim.env.processed_events == _state["cold_events"]
    )
    replayed = _state["cold_events"] - snap.processed_events
    speedup = _state["cold_wall"] / wall
    _rows.append(
        [f"resume at {fraction:.0%}", replayed, wall, speedup, int(identical)]
    )
    return speedup, identical


@pytest.mark.benchmark(group="replay")
def test_replay_resume_50(benchmark):
    speedup, identical = benchmark.pedantic(
        lambda: _resume_at(0.5), rounds=1, iterations=1
    )
    _state["speedup_50"] = speedup
    assert identical, "resume at 50% diverged from the cold run"
    assert speedup > 1.0


@pytest.mark.benchmark(group="replay")
def test_replay_resume_90(benchmark):
    speedup, identical = benchmark.pedantic(
        lambda: _resume_at(0.9), rounds=1, iterations=1
    )
    _state["speedup_90"] = speedup
    assert identical, "resume at 90% diverged from the cold run"
    assert speedup >= _MIN_SPEEDUP_90, (
        f"resume-at-90% speedup {speedup:.1f}x below the "
        f"{_MIN_SPEEDUP_90:.0f}x floor"
    )


_HEADER = ["mode", "events_replayed", "wall_s", "speedup", "identical"]


@pytest.mark.benchmark(group="replay")
def test_replay_report(benchmark):
    benchmark.pedantic(lambda: True, rounds=1, iterations=1)
    print_table(
        "Replay: snapshot overhead and warm-resume speedup",
        _HEADER,
        _rows,
        note=(
            "identical=1 means run_record and processed_events match the "
            "cold run byte-for-byte"
        ),
    )
    write_bench_json(
        "replay",
        title="Replay: snapshot overhead and warm-resume speedup",
        header=_HEADER,
        rows=_rows,
        extra={
            "snapshot_every": _SNAPSHOT_EVERY,
            "snapshot_count": len(_state["snapshots"]),
            "snapshot_size_mb": _state["snapshot_size_mb"],
            "capture_overhead_pct": _state["overhead_pct"],
            "cold_wall_s": _state["cold_wall"],
            "cold_events": _state["cold_events"],
            "speedup_50": _state["speedup_50"],
            "speedup_90": _state["speedup_90"],
        },
    )
    assert len(_rows) == 4, "cold/capture/resume tests must run first"
    assert all(row[4] == 1 for row in _rows)
