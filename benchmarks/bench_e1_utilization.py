"""E1 — Utilization timeline: rigid vs malleable (paper's headline figure).

Runs the identical job mix twice — all-rigid under EASY, all-malleable
under the malleable scheduler — and prints the utilization step series
plus aggregate utilization.  Expected shape: the malleable run fills
scheduling holes, yielding higher instantaneous utilization and an earlier
finish of the same work.
"""

import pytest

from benchmarks.common import (
    evaluation_workload,
    print_table,
    reference_platform,
    run_sim,
)

NUM_JOBS = 60
SEED = 42

_cache = {}


def _run(malleable: bool):
    key = "malleable" if malleable else "rigid"
    if key not in _cache:
        platform = reference_platform()
        jobs = evaluation_workload(
            num_jobs=NUM_JOBS,
            seed=SEED,
            malleable_fraction=1.0 if malleable else 0.0,
        )
        algorithm = "malleable" if malleable else "easy"
        _cache[key] = run_sim(platform, jobs, algorithm)
    return _cache[key]


def _downsample(timeline, points=20):
    if len(timeline) <= points:
        return timeline
    step = len(timeline) / points
    return [timeline[int(i * step)] for i in range(points)] + [timeline[-1]]


@pytest.mark.benchmark(group="e1-utilization")
def test_e1_rigid_baseline(benchmark):
    monitor = benchmark.pedantic(_run, args=(False,), rounds=1, iterations=1)
    summary = monitor.summary()
    print_table(
        "E1a rigid/EASY utilization timeline (downsampled)",
        ["time_s", "utilization"],
        _downsample(monitor.utilization_timeline()),
        note=f"mean utilization {summary.mean_utilization:.3f}, "
        f"makespan {summary.makespan:.0f} s",
    )
    assert summary.completed_jobs == NUM_JOBS


@pytest.mark.benchmark(group="e1-utilization")
def test_e1_malleable(benchmark):
    monitor = benchmark.pedantic(_run, args=(True,), rounds=1, iterations=1)
    summary = monitor.summary()
    print_table(
        "E1b malleable utilization timeline (downsampled)",
        ["time_s", "utilization"],
        _downsample(monitor.utilization_timeline()),
        note=f"mean utilization {summary.mean_utilization:.3f}, "
        f"makespan {summary.makespan:.0f} s",
    )
    assert summary.completed_jobs == NUM_JOBS


@pytest.mark.benchmark(group="e1-utilization")
def test_e1_shape_malleable_beats_rigid(benchmark):
    """The qualitative claim: malleability raises utilization, cuts makespan."""

    def compare():
        return _run(False).summary(), _run(True).summary()

    rigid, malleable = benchmark.pedantic(compare, rounds=1, iterations=1)
    print_table(
        "E1 summary: rigid vs malleable",
        ["variant", "mean_util", "makespan_s", "mean_wait_s"],
        [
            ["rigid/easy", rigid.mean_utilization, rigid.makespan, rigid.mean_wait],
            [
                "malleable",
                malleable.mean_utilization,
                malleable.makespan,
                malleable.mean_wait,
            ],
        ],
    )
    assert malleable.mean_utilization > rigid.mean_utilization
    assert malleable.makespan < rigid.makespan
