"""Campaign harness benchmark: parallel fan-out + content-addressed cache.

Runs a 32-scenario evaluation sweep (algorithm x load x malleable-share x
seed) three ways and writes ``BENCH_campaign.json``:

* ``serial-loop``   — the plain one-`Simulation`-at-a-time loop the
  campaign runner replaces (the pre-campaign baseline);
* ``parallel-cold`` — :class:`CampaignRunner` over all cores, empty cache;
* ``cache-warm``    — the same campaign again, answered from the cache.

Asserted floors (the PR's acceptance criteria): with >= 8 cores the
parallel campaign must beat the serial loop >= 3x, and the warm re-run
must finish in under 10% of the cold time on any machine.  The parallel
records must also be *fingerprint-identical* to serial execution — speed
never buys a different answer.

The deterministic aggregate report lands in
``<results>/campaign_bench/campaign.json``; CI diffs it against
``benchmarks/baselines/campaign_bench.json``.
"""

import os
import time

import pytest

from benchmarks.common import (
    evaluation_scenario,
    print_table,
    reference_platform,
    run_sim,
    bench_results_dir,
    write_bench_json,
)
from repro.campaign import CampaignRunner, ResultCache, result_fingerprint
from repro.workload import WorkloadSpec, generate_workload

ALGORITHMS = ["easy", "malleable"]
LOADS = [0.7, 1.1]
SHARES = [0.0, 0.5]
SEEDS = [11, 12, 13, 14]
NUM_JOBS = 25
NUM_NODES = 32
MAX_REQUEST = 16

#: The acceptance floor only binds where the hardware can deliver it.
PARALLEL_FLOOR = 3.0
PARALLEL_FLOOR_MIN_CORES = 8
WARM_FRACTION_CEILING = 0.10


def _grid():
    return [
        evaluation_scenario(
            algorithm=algorithm,
            seed=seed,
            num_jobs=NUM_JOBS,
            num_nodes=NUM_NODES,
            max_request=MAX_REQUEST,
            load=load,
            malleable_fraction=share,
            params={"load": load, "share": share},
        )
        for algorithm in ALGORITHMS
        for load in LOADS
        for share in SHARES
        for seed in SEEDS
    ]


def _serial_loop(scenarios):
    """The pre-campaign workflow: generate, build, run — one at a time."""
    summaries = []
    for scenario in scenarios:
        generate = dict(scenario.workload["generate"])
        jobs = generate_workload(WorkloadSpec(**generate), seed=scenario.seed)
        platform = reference_platform(NUM_NODES)
        summaries.append(run_sim(platform, jobs, scenario.algorithm).summary())
    return summaries


@pytest.fixture(scope="module")
def campaign_timings(tmp_path_factory):
    scenarios = _grid()
    assert len(scenarios) == 32

    t0 = time.perf_counter()
    serial_summaries = _serial_loop(scenarios)
    serial_s = time.perf_counter() - t0

    cache = ResultCache(tmp_path_factory.mktemp("campaign-cache"))
    workers = min(PARALLEL_FLOOR_MIN_CORES, os.cpu_count() or 1)
    runner = CampaignRunner(scenarios, name="bench", workers=workers, cache=cache)
    t0 = time.perf_counter()
    cold = runner.run()
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = CampaignRunner(
        scenarios, name="bench", workers=workers, cache=cache
    ).run()
    warm_s = time.perf_counter() - t0

    return {
        "scenarios": scenarios,
        "serial_summaries": serial_summaries,
        "serial_s": serial_s,
        "cold": cold,
        "cold_s": cold_s,
        "warm": warm,
        "warm_s": warm_s,
        "workers": workers,
    }


def test_parallel_matches_serial_loop(campaign_timings):
    """The campaign runner must reproduce the serial loop exactly."""
    cold = campaign_timings["cold"]
    assert len(cold.failed) == 0
    for record, summary in zip(cold.records, campaign_timings["serial_summaries"]):
        got = record["result"]["summary"]
        assert got["makespan"] == summary.makespan
        assert got["completed_jobs"] == summary.completed_jobs
        assert got["total_reconfigurations"] == summary.total_reconfigurations


def test_warm_rerun_is_fingerprint_identical(campaign_timings):
    cold, warm = campaign_timings["cold"], campaign_timings["warm"]
    assert warm.cache_hits == len(warm.records)
    for a, b in zip(cold.records, warm.records):
        assert result_fingerprint(a) == result_fingerprint(b)


def test_campaign_speedups_and_report(campaign_timings):
    serial_s = campaign_timings["serial_s"]
    cold_s = campaign_timings["cold_s"]
    warm_s = campaign_timings["warm_s"]
    workers = campaign_timings["workers"]
    cores = os.cpu_count() or 1

    speedup = serial_s / cold_s if cold_s > 0 else float("inf")
    warm_fraction = warm_s / cold_s if cold_s > 0 else 0.0
    rows = [
        ["serial-loop", 32, serial_s, 1.0],
        ["parallel-cold", 32, cold_s, speedup],
        ["cache-warm", 32, warm_s, serial_s / warm_s if warm_s > 0 else float("inf")],
    ]
    print_table(
        "campaign: 32-scenario sweep, serial loop vs campaign runner",
        ["mode", "scenarios", "wall_s", "speedup_vs_serial"],
        rows,
        note=f"{cores} cores, {workers} workers; warm fraction "
        f"{warm_fraction:.3f} (ceiling {WARM_FRACTION_CEILING})",
    )
    out = campaign_timings["cold"].write(bench_results_dir() / "campaign_bench")
    write_bench_json(
        "campaign",
        title="campaign harness: parallel fan-out + result cache",
        header=["mode", "scenarios", "wall_s", "speedup_vs_serial"],
        rows=rows,
        extra={
            "cpu_count": cores,
            "workers": workers,
            "warm_fraction": warm_fraction,
            "warm_cache_hits": campaign_timings["warm"].cache_hits,
            "parallel_floor_asserted": cores >= PARALLEL_FLOOR_MIN_CORES,
            "aggregate_report": str(out["aggregate"]),
        },
    )

    # An immediate re-run must be answered from the cache, near-free.
    assert warm_fraction < WARM_FRACTION_CEILING
    # The parallel floor binds only where the cores exist to deliver it.
    if cores >= PARALLEL_FLOOR_MIN_CORES:
        assert speedup >= PARALLEL_FLOOR, (
            f"campaign speedup {speedup:.2f}x below the {PARALLEL_FLOOR}x floor "
            f"on {cores} cores"
        )
