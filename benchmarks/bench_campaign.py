"""Campaign harness benchmark: parallel fan-out + content-addressed cache.

Runs a 32-scenario evaluation sweep (algorithm x load x malleable-share x
seed) three ways and writes ``BENCH_campaign.json``:

* ``serial-loop``   — the plain one-`Simulation`-at-a-time loop the
  campaign runner replaces (the pre-campaign baseline);
* ``parallel-cold`` — :class:`CampaignRunner` over all cores, empty cache
  (the default ``process-pool`` executor);
* ``cache-warm``    — the same campaign again, answered from the cache;
* ``executor-*``    — the same sweep, cold, through every other executor
  backend: ``in-process``, ``asyncio``, and a ``queue-worker`` fleet of
  :data:`QUEUE_WORKERS` spawned worker processes.

Asserted floors (acceptance criteria): with >= 8 cores the parallel
campaign must beat the serial loop >= 3x; with >= 4 cores the 3-worker
queue fleet must beat it >= 2x; and the warm re-run must finish in under
10% of the cold time on any machine.  Every executor's records must also
be *fingerprint-identical* to serial execution — speed never buys a
different answer.

The deterministic aggregate report lands in
``<results>/campaign_bench/campaign.json``; CI diffs it against
``benchmarks/baselines/campaign_bench.json``.
"""

import os
import time

import pytest

from benchmarks.common import (
    evaluation_scenario,
    print_table,
    reference_platform,
    run_sim,
    bench_results_dir,
    write_bench_json,
)
from repro.campaign import CampaignRunner, ResultCache, result_fingerprint
from repro.workload import WorkloadSpec, generate_workload

ALGORITHMS = ["easy", "malleable"]
LOADS = [0.7, 1.1]
SHARES = [0.0, 0.5]
SEEDS = [11, 12, 13, 14]
NUM_JOBS = 25
NUM_NODES = 32
MAX_REQUEST = 16

#: The acceptance floor only binds where the hardware can deliver it.
PARALLEL_FLOOR = 3.0
PARALLEL_FLOOR_MIN_CORES = 8
WARM_FRACTION_CEILING = 0.10

#: Distributed floor: a 3-worker queue fleet must beat the serial loop
#: >= 2x — but only where the cores exist to run the fleet at all.
QUEUE_WORKERS = 3
QUEUE_FLOOR = 2.0
QUEUE_FLOOR_MIN_CORES = 4


def _grid():
    return [
        evaluation_scenario(
            algorithm=algorithm,
            seed=seed,
            num_jobs=NUM_JOBS,
            num_nodes=NUM_NODES,
            max_request=MAX_REQUEST,
            load=load,
            malleable_fraction=share,
            params={"load": load, "share": share},
        )
        for algorithm in ALGORITHMS
        for load in LOADS
        for share in SHARES
        for seed in SEEDS
    ]


def _serial_loop(scenarios):
    """The pre-campaign workflow: generate, build, run — one at a time."""
    summaries = []
    for scenario in scenarios:
        generate = dict(scenario.workload["generate"])
        jobs = generate_workload(WorkloadSpec(**generate), seed=scenario.seed)
        platform = reference_platform(NUM_NODES)
        summaries.append(run_sim(platform, jobs, scenario.algorithm).summary())
    return summaries


@pytest.fixture(scope="module")
def campaign_timings(tmp_path_factory):
    scenarios = _grid()
    assert len(scenarios) == 32

    t0 = time.perf_counter()
    serial_summaries = _serial_loop(scenarios)
    serial_s = time.perf_counter() - t0

    cache = ResultCache(tmp_path_factory.mktemp("campaign-cache"))
    workers = min(PARALLEL_FLOOR_MIN_CORES, os.cpu_count() or 1)
    runner = CampaignRunner(scenarios, name="bench", workers=workers, cache=cache)
    t0 = time.perf_counter()
    cold = runner.run()
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = CampaignRunner(
        scenarios, name="bench", workers=workers, cache=cache
    ).run()
    warm_s = time.perf_counter() - t0

    # Executor matrix: the same sweep, cold and cacheless, through every
    # other backend.  (parallel-cold above already measures process-pool,
    # the default executor.)
    executor_runs = {}
    matrix = [
        ("in-process", {}),
        ("asyncio", {}),
        (
            "queue-worker",
            {
                "queue_dir": tmp_path_factory.mktemp("bench-queue") / "q",
                "workers": QUEUE_WORKERS,
            },
        ),
    ]
    for name, options in matrix:
        runner = CampaignRunner(
            scenarios,
            name="bench",
            workers=workers,
            cache=None,
            executor=name,
            executor_options=options,
        )
        t0 = time.perf_counter()
        report = runner.run()
        executor_runs[name] = {
            "report": report,
            "wall_s": time.perf_counter() - t0,
        }

    return {
        "scenarios": scenarios,
        "serial_summaries": serial_summaries,
        "serial_s": serial_s,
        "cold": cold,
        "cold_s": cold_s,
        "warm": warm,
        "warm_s": warm_s,
        "workers": workers,
        "executor_runs": executor_runs,
    }


def test_parallel_matches_serial_loop(campaign_timings):
    """The campaign runner must reproduce the serial loop exactly."""
    cold = campaign_timings["cold"]
    assert len(cold.failed) == 0
    for record, summary in zip(cold.records, campaign_timings["serial_summaries"]):
        got = record["result"]["summary"]
        assert got["makespan"] == summary.makespan
        assert got["completed_jobs"] == summary.completed_jobs
        assert got["total_reconfigurations"] == summary.total_reconfigurations


def test_warm_rerun_is_fingerprint_identical(campaign_timings):
    cold, warm = campaign_timings["cold"], campaign_timings["warm"]
    assert warm.cache_hits == len(warm.records)
    for a, b in zip(cold.records, warm.records):
        assert result_fingerprint(a) == result_fingerprint(b)


def test_executor_matrix_is_fingerprint_identical(campaign_timings):
    """Every executor backend must produce byte-identical results."""
    reference = [
        result_fingerprint(r) for r in campaign_timings["cold"].records
    ]
    for name, run in campaign_timings["executor_runs"].items():
        report = run["report"]
        assert len(report.failed) == 0, f"{name} executor had failures"
        assert report.executor == name
        assert [
            result_fingerprint(r) for r in report.records
        ] == reference, f"{name} executor diverged from process-pool results"


def test_campaign_speedups_and_report(campaign_timings):
    serial_s = campaign_timings["serial_s"]
    cold_s = campaign_timings["cold_s"]
    warm_s = campaign_timings["warm_s"]
    workers = campaign_timings["workers"]
    cores = os.cpu_count() or 1

    speedup = serial_s / cold_s if cold_s > 0 else float("inf")
    warm_fraction = warm_s / cold_s if cold_s > 0 else 0.0
    rows = [
        ["serial-loop", 32, serial_s, 1.0],
        ["parallel-cold", 32, cold_s, speedup],
        ["cache-warm", 32, warm_s, serial_s / warm_s if warm_s > 0 else float("inf")],
    ]
    executor_speedups = {}
    for name, run in campaign_timings["executor_runs"].items():
        wall = run["wall_s"]
        executor_speedups[name] = serial_s / wall if wall > 0 else float("inf")
        rows.append([f"executor-{name}", 32, wall, executor_speedups[name]])
    print_table(
        "campaign: 32-scenario sweep, serial loop vs campaign runner",
        ["mode", "scenarios", "wall_s", "speedup_vs_serial"],
        rows,
        note=f"{cores} cores, {workers} workers; warm fraction "
        f"{warm_fraction:.3f} (ceiling {WARM_FRACTION_CEILING}); "
        f"queue fleet {QUEUE_WORKERS} workers",
    )
    out = campaign_timings["cold"].write(bench_results_dir() / "campaign_bench")
    write_bench_json(
        "campaign",
        title="campaign harness: parallel fan-out + result cache",
        header=["mode", "scenarios", "wall_s", "speedup_vs_serial"],
        rows=rows,
        extra={
            "cpu_count": cores,
            "workers": workers,
            "warm_fraction": warm_fraction,
            "warm_cache_hits": campaign_timings["warm"].cache_hits,
            "parallel_floor_asserted": cores >= PARALLEL_FLOOR_MIN_CORES,
            "queue_floor_asserted": cores >= QUEUE_FLOOR_MIN_CORES,
            "queue_workers": QUEUE_WORKERS,
            "executor_speedups": executor_speedups,
            "aggregate_report": str(out["aggregate"]),
        },
    )

    # An immediate re-run must be answered from the cache, near-free.
    assert warm_fraction < WARM_FRACTION_CEILING
    # The parallel floor binds only where the cores exist to deliver it.
    if cores >= PARALLEL_FLOOR_MIN_CORES:
        assert speedup >= PARALLEL_FLOOR, (
            f"campaign speedup {speedup:.2f}x below the {PARALLEL_FLOOR}x floor "
            f"on {cores} cores"
        )
    # So does the distributed floor: a 3-worker fleet pays process spawn
    # and filesystem-queue overhead, but must still halve the wall time.
    if cores >= QUEUE_FLOOR_MIN_CORES:
        queue_speedup = executor_speedups["queue-worker"]
        assert queue_speedup >= QUEUE_FLOOR, (
            f"queue-worker speedup {queue_speedup:.2f}x below the "
            f"{QUEUE_FLOOR}x floor on {cores} cores"
        )
