"""E4 — I/O contention at the parallel file system.

N identical checkpoint-heavy jobs run concurrently (one per node group);
each periodically writes to the shared PFS.  We sweep N and measure the
per-job runtime stretch relative to a solo run, with and without burst
buffers.  Expected shape: runtimes are flat while aggregate demand fits
the PFS write bandwidth, then grow ~linearly with N beyond saturation;
burst buffers absorb the checkpoints and flatten the curve.
"""

import pytest

from repro import Simulation
from repro.application import (
    ApplicationModel,
    BbWriteTask,
    CpuTask,
    Distribution,
    Phase,
    PfsWriteTask,
)
from repro.job import Job

from benchmarks.common import print_table, reference_platform

#: Each job: 10 iterations of [1 s compute on 4 nodes, 10 GB checkpoint].
NODES_PER_JOB = 4
ITERATIONS = 10
CHECKPOINT_BYTES = 10e9
JOB_COUNTS = [1, 2, 4, 8, 16]

_cache = {}


def _app(burst_buffer: bool):
    write_cls = BbWriteTask if burst_buffer else PfsWriteTask
    kwargs = {"charge": False} if burst_buffer else {}
    return ApplicationModel(
        [
            Phase(
                [
                    CpuTask(4e12, name="compute"),  # 1 s on 4 x 1e12 nodes
                    write_cls(
                        CHECKPOINT_BYTES,
                        distribution=Distribution.EVEN,
                        name="checkpoint",
                        **kwargs,
                    ),
                ],
                iterations=ITERATIONS,
            )
        ],
        name="checkpointer",
    )


def _run(num_jobs: int, burst_buffer: bool) -> float:
    """Mean job runtime with `num_jobs` concurrent checkpointing jobs."""
    key = (num_jobs, burst_buffer)
    if key not in _cache:
        platform = reference_platform(
            num_nodes=64,
            # Each job can push at most 4 links x 10 GB/s = 40 GB/s, so an
            # 80 GB/s PFS is saturated from 2 jobs up and over-subscribed
            # beyond that — giving the flat-then-linear paper shape.
            pfs_write=80e9,
            burst_buffers=burst_buffer,
        )
        jobs = [
            Job(i + 1, _app(burst_buffer), num_nodes=NODES_PER_JOB)
            for i in range(num_jobs)
        ]
        Simulation(platform, jobs, algorithm="fcfs").run()
        _cache[key] = sum(j.runtime for j in jobs) / num_jobs
    return _cache[key]


@pytest.mark.benchmark(group="e4-io")
@pytest.mark.parametrize("num_jobs", JOB_COUNTS)
def test_e4_pfs_contention_point(benchmark, num_jobs):
    runtime = benchmark.pedantic(
        _run, args=(num_jobs, False), rounds=1, iterations=1
    )
    assert runtime > 0


@pytest.mark.benchmark(group="e4-io")
def test_e4_shape_contention_and_burst_buffers(benchmark):
    def sweep():
        return {
            n: (_run(n, False), _run(n, True)) for n in JOB_COUNTS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    solo_pfs = results[1][0]
    print_table(
        "E4: mean job runtime vs concurrent checkpointing jobs",
        ["jobs", "pfs_runtime_s", "pfs_stretch", "bb_runtime_s", "bb_stretch"],
        [
            [n, pfs, pfs / solo_pfs, bb, bb / results[1][1]]
            for n, (pfs, bb) in results.items()
        ],
        note="PFS write bw 80 GB/s; each job checkpoints 10 GB per iteration",
    )
    # At 2 jobs the 80 GB/s PFS exactly fits both jobs' 40 GB/s link
    # ceilings: no stretch yet.
    assert results[2][0] == pytest.approx(solo_pfs, rel=0.05)
    # Beyond saturation the checkpoint phase scales with the job count.
    assert results[8][0] > solo_pfs * 1.5
    assert results[16][0] > results[8][0] * 1.4
    # Burst buffers are node-local: no cross-job contention at all.
    bb_solo = results[1][1]
    for n in JOB_COUNTS:
        assert results[n][1] == pytest.approx(bb_solo, rel=0.01)
