"""Shared experiment infrastructure for the benchmark harness.

Every experiment (see DESIGN.md §4) uses the same reference platform — a
flat 128-node cluster in the size class the paper's evaluation targets —
and prints paper-style rows via :func:`print_table` so running::

    pytest benchmarks/ --benchmark-only -s

regenerates the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Sequence, Union

from repro import Simulation, platform_from_dict
from repro.campaign import CampaignReport, CampaignRunner, ResultCache, ScenarioSpec
from repro.monitoring import Monitor
from repro.workload import WorkloadSpec, generate_workload


def reference_platform_dict(
    num_nodes: int = 128,
    *,
    node_flops: float = 1e12,
    link_bw: float = 10e9,
    pfs_read: float = 100e9,
    pfs_write: float = 80e9,
    burst_buffers: bool = False,
) -> Dict[str, Any]:
    """The evaluation platform as a plain spec dict (campaign-friendly)."""
    spec: Dict[str, Any] = {
        "name": f"eval-{num_nodes}",
        "nodes": {"count": num_nodes, "flops": node_flops},
        "network": {
            "topology": "star",
            "bandwidth": link_bw,
            "latency": 1e-6,
            "pfs_bandwidth": max(pfs_read, pfs_write) * 2,
        },
        "pfs": {"read_bw": pfs_read, "write_bw": pfs_write},
    }
    if burst_buffers:
        spec["burst_buffer"] = {
            "read_bw": 10e9,
            "write_bw": 5e9,
            "capacity": 1e13,
        }
    return spec


def reference_platform(num_nodes: int = 128, **kwargs):
    """The evaluation platform: flat cluster, shared PFS, optional BBs."""
    return platform_from_dict(reference_platform_dict(num_nodes, **kwargs))


def evaluation_generate_spec(
    *,
    num_jobs: int = 100,
    malleable_fraction: float = 0.0,
    evolving_fraction: float = 0.0,
    data_per_node: float = 0.0,
    mean_interarrival: float = 20.0,
    max_request: int = 64,
    comm_bytes: float = 1e7,
    io: bool = False,
    serial_fraction: float = 0.0,
    load: float = 0.9,
    num_nodes: int = 128,
    node_flops: float = 1e12,
    work_sigma: float = 0.8,
) -> Dict[str, Any]:
    """The evaluation job mix as :class:`WorkloadSpec` kwargs.

    Job work is sized so the *offered load* — mean arriving flops per
    second over machine capacity — equals ``load``; this is what makes the
    scheduling comparisons meaningful (an empty machine hides all policy
    differences).  Returned as a plain dict so the same mix can feed
    either :func:`evaluation_workload` or a campaign's ``generate`` block.
    """
    # Offered load = (mean_runtime x mean_request) / (interarrival x N);
    # solve for mean_runtime given the power-of-two request distribution.
    import numpy as np

    exps = np.arange(0, int(np.log2(max_request)) + 1)
    mean_request = float(np.mean(2.0**exps))
    mean_runtime = load * mean_interarrival * num_nodes / mean_request
    return {
        "num_jobs": num_jobs,
        "mean_interarrival": mean_interarrival,
        "min_request": 1,
        "max_request": max_request,
        "mean_runtime": mean_runtime,
        "runtime_sigma": work_sigma,
        "malleable_fraction": malleable_fraction,
        "evolving_fraction": evolving_fraction,
        "data_per_node": data_per_node,
        "comm_bytes": comm_bytes,
        "serial_fraction": serial_fraction,
        "input_bytes_per_flop": 1e-4 if io else 0.0,
        "output_bytes_per_flop": 2e-4 if io else 0.0,
        "walltime_slack": 10.0,
        "node_flops": node_flops,
    }


def evaluation_workload(*, seed: int = 42, **kwargs):
    """The iterative-application job mix used across experiments."""
    return generate_workload(WorkloadSpec(**evaluation_generate_spec(**kwargs)), seed=seed)


def evaluation_scenario(
    *,
    algorithm: str = "easy",
    seed: int = 42,
    num_nodes: int = 128,
    platform_kwargs: Optional[Dict[str, Any]] = None,
    sim: Optional[Dict[str, Any]] = None,
    params: Optional[Dict[str, Any]] = None,
    **workload_kwargs,
) -> ScenarioSpec:
    """One evaluation-grid point as a campaign scenario.

    Runs the exact same physics as ``run_sim(reference_platform(...),
    evaluation_workload(...), algorithm)`` — the workload kwargs land in
    the scenario's ``generate`` block and are re-generated (same seed,
    same spec, same jobs) inside the campaign worker.
    """
    return ScenarioSpec(
        platform=reference_platform_dict(num_nodes, **(platform_kwargs or {})),
        workload={
            "generate": evaluation_generate_spec(num_nodes=num_nodes, **workload_kwargs)
        },
        algorithm=algorithm,
        seed=seed,
        sim=dict(sim or {}),
        params=dict(params or {}),
    )


def run_campaign(
    scenarios: Sequence[ScenarioSpec],
    *,
    name: str = "bench",
    workers: Optional[int] = None,
    cache_dir: Union[str, Path, None] = None,
    force: bool = False,
) -> CampaignReport:
    """Run a scenario sweep through the campaign runner.

    The benchmark-side twin of ``elastisim campaign run``: parallel across
    cores by default, cached under ``cache_dir`` when given (pass ``None``
    to disable caching — benchmark timing runs must not be memoised away).
    """
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return CampaignRunner(
        scenarios, name=name, workers=workers, cache=cache, force=force
    ).run()


def run_sim(platform, jobs, algorithm, **kwargs) -> Monitor:
    """One simulation run returning its monitor."""
    return Simulation(platform, jobs, algorithm=algorithm, **kwargs).run()


def print_table(
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    note: Optional[str] = None,
) -> None:
    """Print a paper-style results table to stdout."""
    rows = [list(map(_fmt, row)) for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print()
    print(f"=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if note:
        print(f"note: {note}")


def bench_results_dir() -> Path:
    """Directory benchmark JSON artefacts land in.

    Defaults to ``benchmarks/results/`` next to this file; override with the
    ``BENCH_RESULTS_DIR`` environment variable (CI points it at a scratch
    directory).  Created on demand.
    """
    root = Path(os.environ.get("BENCH_RESULTS_DIR", Path(__file__).parent / "results"))
    root.mkdir(parents=True, exist_ok=True)
    return root


def write_bench_json(
    bench_id: str,
    *,
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence[Any]],
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Emit ``BENCH_<id>.json`` alongside the printed table.

    The machine-readable twin of :func:`print_table`: the same rows, keyed
    by the header, plus any ``extra`` run-level metrics (wall-clock,
    ``env.processed_events``, ``model.resolves``, solver counters, …).
    Written every run so the perf trajectory is diffable across PRs.
    """
    header = [str(h) for h in header]
    payload: Dict[str, Any] = {
        "bench": bench_id,
        "title": title,
        "header": header,
        "rows": [dict(zip(header, row)) for row in rows],
    }
    if extra:
        payload.update(extra)
    path = bench_results_dir() / f"BENCH_{bench_id}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=False, default=str))
    return path


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.2f}"
    return str(value)
