"""E7 — Evolving jobs: granting application-initiated growth.

A mix of rigid jobs and evolving jobs whose applications request extra
nodes for a middle "burst" phase and release them afterwards.  We compare
a scheduler that grants evolving requests (malleable policy) with one that
ignores them (EASY).  Expected shape: granting requests shortens the
evolving jobs' turnaround without starving the rigid jobs.
"""

import pytest

from repro import Simulation
from repro.application import (
    ApplicationModel,
    CpuTask,
    EvolvingRequest,
    Phase,
)
from repro.job import Job, JobType

from benchmarks.common import print_table, reference_platform

NUM_EVOLVING = 8
NUM_RIGID = 8

_cache = {}


def _evolving_app():
    """Steady on 4 nodes, burst wants 16, then back to 4."""
    return ApplicationModel(
        [
            Phase([CpuTask(8e12, name="ramp")], name="steady1",
                  scheduling_point=False),
            Phase(
                [
                    EvolvingRequest("16", name="grow"),
                    CpuTask(64e12, name="burst"),
                    EvolvingRequest("4", name="release"),
                ],
                name="burst",
                scheduling_point=False,
            ),
            Phase([CpuTask(8e12, name="cooldown")], name="steady2",
                  scheduling_point=False),
        ],
        name="evolving-burst",
    )


def _rigid_app():
    return ApplicationModel([Phase([CpuTask(16e12)])], name="rigid-filler")


def _build_jobs():
    jobs = []
    jid = 1
    for i in range(NUM_EVOLVING):
        jobs.append(
            Job(
                jid,
                _evolving_app(),
                job_type=JobType.EVOLVING,
                num_nodes=4,
                min_nodes=4,
                max_nodes=16,
                submit_time=5.0 * i,
                name=f"evolving{i}",
            )
        )
        jid += 1
    for i in range(NUM_RIGID):
        jobs.append(
            Job(
                jid,
                _rigid_app(),
                num_nodes=4,
                submit_time=2.5 + 5.0 * i,
                name=f"rigid{i}",
            )
        )
        jid += 1
    return jobs


def _run(grant: bool):
    key = grant
    if key not in _cache:
        platform = reference_platform(num_nodes=64)
        jobs = _build_jobs()
        algorithm = "malleable" if grant else "easy"
        Simulation(platform, jobs, algorithm=algorithm).run()
        evolving = [j for j in jobs if j.type is JobType.EVOLVING]
        rigid = [j for j in jobs if j.type is JobType.RIGID]
        _cache[key] = {
            "evolving_turnaround": sum(j.turnaround for j in evolving) / len(evolving),
            "rigid_turnaround": sum(j.turnaround for j in rigid) / len(rigid),
            "grants": sum(j.reconfigurations_applied for j in evolving),
        }
    return _cache[key]


@pytest.mark.benchmark(group="e7-evolving")
@pytest.mark.parametrize("grant", [False, True], ids=["ignore", "grant"])
def test_e7_variant(benchmark, grant):
    result = benchmark.pedantic(_run, args=(grant,), rounds=1, iterations=1)
    assert result["evolving_turnaround"] > 0


@pytest.mark.benchmark(group="e7-evolving")
def test_e7_shape_grants_help_evolving_jobs(benchmark):
    def compare():
        return _run(False), _run(True)

    ignored, granted = benchmark.pedantic(compare, rounds=1, iterations=1)
    print_table(
        "E7: evolving-request handling",
        ["policy", "evolving_turnaround_s", "rigid_turnaround_s", "grants"],
        [
            ["ignore (easy)", ignored["evolving_turnaround"],
             ignored["rigid_turnaround"], ignored["grants"]],
            ["grant (malleable)", granted["evolving_turnaround"],
             granted["rigid_turnaround"], granted["grants"]],
        ],
    )
    assert granted["grants"] > 0
    assert ignored["grants"] == 0
    # Granting the burst makes evolving jobs substantially faster...
    assert granted["evolving_turnaround"] < ignored["evolving_turnaround"] * 0.8
    # ...without pathologically starving the rigid jobs (allow 25% slack:
    # the extra nodes granted to bursts do delay some rigid starts).
    assert granted["rigid_turnaround"] <= ignored["rigid_turnaround"] * 1.25
