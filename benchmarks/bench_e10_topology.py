"""E10 — Topology sensitivity of communication-heavy workloads.

The platform model supports star, fat-tree (full and tapered), torus, and
dragonfly networks.  This experiment runs an all-to-all-heavy job on each
topology and reports the communication slowdown relative to the
non-blocking star — demonstrating that the routing/fair-sharing substrate
actually differentiates networks.  Expected shape: star (non-blocking) is
fastest; tapering the fat tree's spine slows it sharply; interestingly the
1D torus ring beats the tapered tree here because its bisection links are
distributed over 16 ring links instead of funneling through 4 thin spine
uplinks.
"""

import pytest

from repro import Simulation, platform_from_dict
from repro.application import ApplicationModel, CommPattern, CommTask, CpuTask, Phase
from repro.job import Job
from repro.platform import Platform, Node, build_fat_tree, build_torus

from benchmarks.common import print_table

NUM_NODES = 16
MSG_BYTES = 1e9  # per all-to-all pair

_cache = {}


def _comm_app():
    return ApplicationModel(
        [
            Phase(
                [
                    CpuTask(NUM_NODES * 1e9, name="compute"),  # 1 s baseline
                    CommTask(MSG_BYTES, pattern=CommPattern.ALL_TO_ALL),
                ]
            )
        ]
    )


def _platform(kind: str) -> Platform:
    nodes = [Node(i, 1e9) for i in range(NUM_NODES)]
    if kind == "star":
        spec = {
            "nodes": {"count": NUM_NODES, "flops": 1e9},
            "network": {"topology": "star", "bandwidth": 1e9},
        }
        return platform_from_dict(spec)
    if kind == "fat-tree-full":
        topo = build_fat_tree(NUM_NODES, arity=4, leaf_bandwidth=1e9)
    elif kind == "fat-tree-tapered":
        # Spine links carry only 1x leaf bandwidth instead of 4x.
        topo = build_fat_tree(
            NUM_NODES, arity=4, leaf_bandwidth=1e9, spine_bandwidth=1e9
        )
    elif kind == "torus-ring":
        topo = build_torus((NUM_NODES,), bandwidth=1e9)
    else:
        raise ValueError(kind)
    return Platform(nodes, topo, name=kind)


def _run(kind: str) -> float:
    if kind not in _cache:
        platform = _platform(kind)
        job = Job(1, _comm_app(), num_nodes=NUM_NODES)
        Simulation(platform, [job], algorithm="fcfs").run()
        _cache[kind] = job.runtime
    return _cache[kind]


TOPOLOGIES = ["star", "fat-tree-full", "fat-tree-tapered", "torus-ring"]


@pytest.mark.benchmark(group="e10-topology")
@pytest.mark.parametrize("kind", TOPOLOGIES)
def test_e10_point(benchmark, kind):
    runtime = benchmark.pedantic(_run, args=(kind,), rounds=1, iterations=1)
    assert runtime > 0


@pytest.mark.benchmark(group="e10-topology")
def test_e10_shape_topology_ordering(benchmark):
    def sweep():
        return {kind: _run(kind) for kind in TOPOLOGIES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    star = results["star"]
    print_table(
        "E10: all-to-all job runtime by topology",
        ["topology", "runtime_s", "vs_star"],
        [[kind, rt, rt / star] for kind, rt in results.items()],
        note=f"{NUM_NODES} nodes, {MSG_BYTES:g} B per ordered pair",
    )
    # Non-blocking star is the floor.
    assert all(results[k] >= star * 0.999 for k in TOPOLOGIES)
    # Tapering the fat tree hurts badly (4 thin spine uplinks).
    assert results["fat-tree-tapered"] > results["fat-tree-full"] * 1.5
    # Both blocking fabrics are clearly worse than the full tree...
    assert results["torus-ring"] > results["fat-tree-full"] * 1.5
    # ...and the tapered tree is the worst: its bisection funnels through
    # fewer links than the ring's distributed wrap-around capacity.
    assert results["fat-tree-tapered"] >= results["torus-ring"]
