"""Hot-path profile companion to benchmark E5.

Runs :func:`repro.profiling.profile_run` on the E5 reference scenario and
writes ``PROFILE_hotpaths.json`` next to ``BENCH_E5.json`` (see
``common.bench_results_dir``), so every benchmark run records *where* the
wall-clock time went — solver, scheduler, expressions, kernel — not just
how much there was.  CI's profile-smoke job runs this on a small scenario
and archives the JSON.

Usage::

    PYTHONPATH=src python benchmarks/profile_hotpaths.py [--jobs N]
        [--nodes N] [--algorithm easy] [--seed 3] [--cprofile] [--top 25]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.profiling import format_profile_report, profile_run

from benchmarks.common import bench_results_dir


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=200)
    parser.add_argument("--nodes", type=int, default=128)
    parser.add_argument("--algorithm", default="easy")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--cprofile", action="store_true")
    parser.add_argument("--top", type=int, default=25)
    parser.add_argument("--tracemalloc", action="store_true")
    args = parser.parse_args(argv)

    payload = profile_run(
        num_jobs=args.jobs,
        num_nodes=args.nodes,
        algorithm=args.algorithm,
        seed=args.seed,
        cprofile=args.cprofile,
        top=args.top,
        trace_malloc=args.tracemalloc,
    )
    print(format_profile_report(payload))
    path = bench_results_dir() / "PROFILE_hotpaths.json"
    path.write_text(json.dumps(payload, indent=2))
    print(f"profile written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
