"""E6 — Engine validation against closed-form runtimes.

Single jobs whose runtimes have exact analytic values: pure compute,
link-bound transfers, PFS-shared writes, and a malleable expansion with a
known redistribution cost.  Expected shape: simulated == analytic to float
precision — this is the table that certifies the substrate.
"""

import pytest

from repro import Simulation
from repro.application import (
    ApplicationModel,
    CommPattern,
    CommTask,
    CpuTask,
    Distribution,
    Phase,
    PfsWriteTask,
)
from repro.job import Job, JobType
from repro.platform import platform_from_dict

from benchmarks.common import print_table


def _platform():
    return platform_from_dict(
        {
            "name": "validation",
            "nodes": {"count": 8, "flops": 1e9},
            "network": {
                "topology": "star",
                "bandwidth": 1e9,
                "latency": 0.0,
                "pfs_bandwidth": 1e12,
            },
            "pfs": {"read_bw": 2e9, "write_bw": 2e9},
        }
    )


CASES = [
    # (name, app builder, nodes, analytic seconds, explanation)
    (
        "compute-even",
        lambda: ApplicationModel([Phase([CpuTask(8e9)])]),
        4,
        2.0,
        "8e9 flops / (4 nodes x 1e9 f/s)",
    ),
    (
        "compute-3-iter",
        lambda: ApplicationModel([Phase([CpuTask(8e9)], iterations=3)]),
        4,
        6.0,
        "3 iterations x 2 s",
    ),
    (
        "ring-comm",
        lambda: ApplicationModel([Phase([CommTask(1e9, pattern=CommPattern.RING)])]),
        4,
        1.0,
        "1e9 B per link at 1e9 B/s, no contention",
    ),
    (
        "alltoall-comm",
        lambda: ApplicationModel(
            [Phase([CommTask(1e9, pattern=CommPattern.ALL_TO_ALL)])]
        ),
        4,
        3.0,
        "3 flows share each 1e9 B/s NIC",
    ),
    (
        "pfs-write-shared",
        lambda: ApplicationModel(
            [Phase([PfsWriteTask(1e9, distribution=Distribution.PER_NODE)])]
        ),
        8,
        4.0,
        "8 x 1e9 B through 2e9 B/s PFS write service",
    ),
    (
        "compute-then-write",
        lambda: ApplicationModel(
            [
                Phase([CpuTask(8e9)]),
                Phase([PfsWriteTask(4e9)], scheduling_point=False),
            ]
        ),
        8,
        3.0,
        "1 s compute + 4e9 B at 2e9 B/s PFS",
    ),
]


def _measure(builder, nodes):
    platform = _platform()
    job = Job(1, builder(), num_nodes=nodes)
    Simulation(platform, [job], algorithm="fcfs").run()
    return job.runtime


@pytest.mark.benchmark(group="e6-validation")
@pytest.mark.parametrize("case", CASES, ids=[c[0] for c in CASES])
def test_e6_case(benchmark, case):
    name, builder, nodes, analytic, _ = case
    measured = benchmark.pedantic(
        _measure, args=(builder, nodes), rounds=1, iterations=1
    )
    assert measured == pytest.approx(analytic, rel=1e-6), name


@pytest.mark.benchmark(group="e6-validation")
def test_e6_report(benchmark):
    def sweep():
        return [
            (name, analytic, _measure(builder, nodes), why)
            for name, builder, nodes, analytic, why in CASES
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E6: simulated vs analytic runtimes",
        ["case", "analytic_s", "simulated_s", "model"],
        rows,
    )
    for name, analytic, simulated, _ in rows:
        assert simulated == pytest.approx(analytic, rel=1e-6), name


@pytest.mark.benchmark(group="e6-validation")
def test_e6_malleable_expansion_analytic(benchmark):
    """Expansion timing: phase A on 2 nodes, redistribution, phase B on 4."""
    from repro.scheduler import Algorithm

    class ExpandOnce(Algorithm):
        name = "expand-once"

        def schedule(self, ctx, invocation):
            for job in ctx.pending_jobs:
                free = ctx.free_nodes()
                ctx.start_job(job, free[:2])
            if invocation.type.value == "scheduling_point":
                job = invocation.job
                if job.reconfigurations_applied == 0 and job.pending_reconfiguration is None:
                    target = list(job.assigned_nodes) + ctx.free_nodes()[:2]
                    ctx.reconfigure_job(job, target)

    def run():
        platform = _platform()
        app = ApplicationModel(
            [Phase([CpuTask(4e9)]), Phase([CpuTask(4e9)], scheduling_point=False)],
            data_per_node="1e9",
        )
        job = Job(
            1, app, job_type=JobType.MALLEABLE, num_nodes=2, min_nodes=2, max_nodes=4
        )
        Simulation(platform, [job], algorithm=ExpandOnce()).run()
        return job.runtime

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    # Phase A: 4e9/(2x1e9) = 2 s.  Redistribution: total 2e9 B, new share
    # 0.5e9 B to each of 2 joiners over 1e9 B/s links = 0.5 s.  Phase B:
    # 4e9/(4x1e9) = 1 s.  Total 3.5 s.
    assert measured == pytest.approx(3.5, rel=1e-6)
