"""E9 — Amdahl ablation: where malleability's benefit actually comes from.

Sweeps the jobs' serial fraction (Amdahl's *s*) on a fully malleable mix
and compares each point against a rigid/EASY baseline with the *same* s.

The naive expectation — "malleability helps less as jobs scale worse,
because expansions buy less" — turns out to be only half the story.  The
measured shape shows the opposite trend, and the mechanism is instructive:

* at **s = 0** the machine is work-limited either way; expansion shortens
  individual jobs but the makespan is already near the work/capacity bound,
  so rigid and malleable tie on makespan (malleable still wins waits);
* as **s grows**, *rigid* jobs waste their allocations (extra nodes buy
  almost nothing) while the queue explodes; the malleable policy's
  **shrink-to-admit** pass reclaims those wasted nodes for waiting jobs,
  so the relative gain *increases* with the serial fraction.

This is the kind of design insight the ablation exists to surface: the
dominant malleability mechanism under poor scalability is shrinking, not
expansion.
"""

import pytest

from benchmarks.common import (
    evaluation_workload,
    print_table,
    reference_platform,
    run_sim,
)

NUM_JOBS = 40
SEED = 31
FRACTIONS = [0.0, 0.05, 0.1, 0.2, 0.4]

_cache = {}


def _run(serial: float, malleable: bool):
    key = (serial, malleable)
    if key not in _cache:
        platform = reference_platform()
        jobs = evaluation_workload(
            num_jobs=NUM_JOBS,
            seed=SEED,
            malleable_fraction=1.0 if malleable else 0.0,
            serial_fraction=serial,
        )
        algorithm = "malleable" if malleable else "easy"
        _cache[key] = run_sim(platform, jobs, algorithm).summary()
    return _cache[key]


@pytest.mark.benchmark(group="e9-amdahl")
@pytest.mark.parametrize("serial", FRACTIONS, ids=[f"s={s}" for s in FRACTIONS])
def test_e9_point(benchmark, serial):
    summary = benchmark.pedantic(_run, args=(serial, True), rounds=1, iterations=1)
    assert summary.completed_jobs + summary.killed_jobs == NUM_JOBS


@pytest.mark.benchmark(group="e9-amdahl")
def test_e9_shape_shrink_dominates_under_poor_scaling(benchmark):
    def sweep():
        return {s: (_run(s, False), _run(s, True)) for s in FRACTIONS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E9: malleability gain vs Amdahl serial fraction",
        ["serial_s", "rigid_makespan", "malleable_makespan", "gain",
         "rigid_wait", "malleable_wait"],
        [
            [
                s,
                rigid.makespan,
                flex.makespan,
                rigid.makespan / flex.makespan,
                rigid.mean_wait,
                flex.mean_wait,
            ]
            for s, (rigid, flex) in results.items()
        ],
        note="gain = rigid makespan / malleable makespan, same seed & s",
    )
    gains = [results[s][0].makespan / results[s][1].makespan for s in FRACTIONS]
    # At s=0 the makespan is work-bound: rigid and malleable tie (±5%),
    # but malleability still slashes waits.
    assert gains[0] > 0.95
    assert results[0.0][1].mean_wait < results[0.0][0].mean_wait
    # Under poor scaling the shrink-to-admit mechanism dominates: the
    # relative gain grows with the serial fraction.
    assert gains[-1] > gains[0] * 1.2
    assert gains[-1] > 1.3
    # Waits: rigid explodes with s, malleable stays an order cheaper.
    for s in FRACTIONS[1:]:
        rigid, flex = results[s]
        assert flex.mean_wait < rigid.mean_wait * 0.5
