"""E5 — Simulator performance and scalability (paper's performance section).

Measures wall-clock simulation time and event throughput as the workload
and machine grow.  Expected shape: wall-clock time grows near-linearly
with the number of processed events; clusters in the thousands of nodes
with hundreds of jobs simulate in seconds on a laptop.

Besides the printed table, the run emits ``BENCH_E5.json`` (see
``common.write_bench_json``) with per-configuration event counts, solver
re-solve counts, and the incremental solver's scope counters, so the perf
trajectory is tracked across PRs.
"""

import time

import pytest

from repro import Simulation
from repro.profiling import peak_rss_mb

from benchmarks.common import evaluation_workload, print_table, reference_platform, write_bench_json

_rows = []


def _simulate(num_jobs: int, num_nodes: int):
    platform = reference_platform(num_nodes=num_nodes)
    jobs = evaluation_workload(
        num_jobs=num_jobs,
        seed=3,
        num_nodes=num_nodes,
        max_request=min(64, num_nodes),
        comm_bytes=0.0,  # keep event counts dominated by scheduling
        mean_interarrival=10.0,
    )
    sim = Simulation(platform, jobs, algorithm="easy")
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    model = sim.batch.model
    return (
        wall,
        sim.env.processed_events,
        sim.batch.invocations,
        model.resolves,
        model.solved_activities,
        model.peak_components,
        model.solver_time,
    )


def _record(label, wall, events, invocations, resolves, scope, peak, solver_time):
    _rows.append(
        [
            label,
            events,
            invocations,
            wall,
            events / wall,
            resolves,
            scope / resolves if resolves else 0.0,
            peak,
            solver_time,
            # Process high-water mark at the time this row finished; rows
            # run smallest-first, so the last row's value bounds the run.
            peak_rss_mb(),
        ]
    )


@pytest.mark.benchmark(group="e5-performance")
@pytest.mark.parametrize("num_jobs", [100, 300, 1000])
def test_e5_scaling_jobs(benchmark, num_jobs):
    def run():
        return _simulate(num_jobs, 128)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _record(f"{num_jobs} jobs / 128 nodes", *result)
    assert result[1] > 0


@pytest.mark.benchmark(group="e5-performance")
@pytest.mark.parametrize("num_nodes", [128, 512, 2048])
def test_e5_scaling_nodes(benchmark, num_nodes):
    def run():
        return _simulate(200, num_nodes)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _record(f"200 jobs / {num_nodes} nodes", *result)
    assert result[1] > 0


@pytest.mark.benchmark(group="e5-performance")
@pytest.mark.parametrize("num_jobs,num_nodes", [(100, 10_000), (20, 100_000)])
def test_e5_scaling_extreme(benchmark, num_jobs, num_nodes):
    """10k/100k-node machines (fewer jobs at the top end).

    Exercises the struct-of-arrays node state and the incremental
    free-node index at machine sizes where any O(num_nodes) per-event
    scan would dominate; the CI ``scale-smoke`` job runs the 10k-node
    row under a hard timeout against the committed baseline.
    """

    def run():
        return _simulate(num_jobs, num_nodes)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _record(f"{num_jobs} jobs / {num_nodes} nodes", *result)
    assert result[1] > 0


_HEADER = [
    "configuration",
    "events",
    "invocations",
    "wall_s",
    "events_per_s",
    "resolves",
    "mean_solve_scope",
    "peak_components",
    "solver_time_s",
    "peak_rss_mb",
]


@pytest.mark.benchmark(group="e5-performance")
def test_e5_report_and_shape(benchmark):
    def noop():
        return True

    benchmark.pedantic(noop, rounds=1, iterations=1)
    print_table(
        "E5: simulator performance",
        _HEADER,
        _rows,
        note="pure-Python DES; events/s is the throughput figure of merit",
    )
    write_bench_json(
        "E5",
        title="E5: simulator performance",
        header=_HEADER,
        rows=_rows,
        extra={
            "total_wall_s": sum(row[3] for row in _rows),
            "total_events": sum(row[1] for row in _rows),
        },
    )
    # Shape: every configuration completes in reasonable wall time and the
    # event throughput stays within one order of magnitude across scales
    # (near-linear scaling in events).
    assert _rows, "scaling tests must run first"
    rates = [row[4] for row in _rows]
    assert min(rates) > 0
    assert max(rates) / min(rates) < 20
