"""E2 — Makespan / wait time vs malleable job share (paper's sweep figure).

Sweeps the fraction of malleable jobs over {0, 25, 50, 75, 100}% on the
same seed set and reports makespan, mean wait, mean bounded slowdown, and
utilization.  Expected shape: metrics improve monotonically (modulo noise)
with the malleable share, with diminishing returns at the top end.
"""

import pytest

from benchmarks.common import (
    evaluation_workload,
    print_table,
    reference_platform,
    run_sim,
)

NUM_JOBS = 50
SEED = 7
SHARES = [0.0, 0.25, 0.5, 0.75, 1.0]

_cache = {}


def _run(share: float):
    if share not in _cache:
        platform = reference_platform()
        jobs = evaluation_workload(
            num_jobs=NUM_JOBS, seed=SEED, malleable_fraction=share
        )
        _cache[share] = run_sim(platform, jobs, "malleable").summary()
    return _cache[share]


@pytest.mark.benchmark(group="e2-malleable-share")
@pytest.mark.parametrize("share", SHARES)
def test_e2_share_point(benchmark, share):
    summary = benchmark.pedantic(_run, args=(share,), rounds=1, iterations=1)
    assert summary.completed_jobs == NUM_JOBS


@pytest.mark.benchmark(group="e2-malleable-share")
def test_e2_shape_monotone_improvement(benchmark):
    def sweep():
        return {share: _run(share) for share in SHARES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E2: metrics vs malleable share",
        ["share_%", "makespan_s", "mean_wait_s", "mean_bsld", "mean_util"],
        [
            [
                int(share * 100),
                s.makespan,
                s.mean_wait,
                s.mean_bounded_slowdown,
                s.mean_utilization,
            ]
            for share, s in results.items()
        ],
    )
    # Shape: the fully malleable mix clearly beats the all-rigid mix...
    assert results[1.0].makespan < results[0.0].makespan
    assert results[1.0].mean_wait < results[0.0].mean_wait
    # ...and the trend is broadly monotone: each step either improves
    # makespan or stays within 10% noise of the previous point.
    spans = [results[s].makespan for s in SHARES]
    for previous, current in zip(spans, spans[1:]):
        assert current <= previous * 1.10
