"""E12 — Resilience: node failures x {no requeue, requeue, checkpointed requeue}.

Sweeps per-node MTBF on a fixed workload and reports goodput (jobs
finished) and cost (makespan) under three recovery policies: give up,
resubmit from scratch, and resubmit resuming from the last scheduling
point (checkpoint/restart).  Expected shape: without requeue completions
fall with the fault rate; scratch requeue recovers completions at the
price of redone work; checkpointed requeue recovers them cheaper.
"""

import pytest

from repro import Simulation
from repro.failures import generate_failures
from repro.job import JobState

from benchmarks.common import evaluation_workload, print_table, reference_platform

NUM_JOBS = 30
SEED = 9
#: Per-node mean time between failures (seconds); None = reliable machine.
MTBFS = [None, 50_000.0, 10_000.0, 2_000.0]

_cache = {}


def _run(mtbf, requeue: bool, checkpoint: bool = False):
    key = (mtbf, requeue, checkpoint)
    if key not in _cache:
        platform = reference_platform()
        jobs = evaluation_workload(num_jobs=NUM_JOBS, seed=SEED, load=0.7)
        failures = (
            generate_failures(
                num_nodes=128,
                horizon=5_000.0,
                mtbf=mtbf,
                mean_repair=120.0,
                seed=5,
            )
            if mtbf is not None
            else []
        )
        sim = Simulation(
            platform,
            jobs,
            algorithm="easy",
            failures=failures,
            requeue_on_failure=requeue,
            checkpoint_restart=checkpoint,
        )
        monitor = sim.run()
        all_jobs = sim.batch.jobs
        originals_ok = sum(
            1
            for j in all_jobs
            if j.state is JobState.COMPLETED and j.origin_jid is None
        )
        retries_ok = sum(
            1
            for j in all_jobs
            if j.state is JobState.COMPLETED and j.origin_jid is not None
        )
        _cache[key] = {
            "faults": len(failures),
            "completed": originals_ok + retries_ok,
            "retries_ok": retries_ok,
            "killed_by_failure": sum(
                1 for j in all_jobs if j.kill_reason == "node_failure"
            ),
            "makespan": monitor.makespan(),
        }
    return _cache[key]


@pytest.mark.benchmark(group="e12-failures")
@pytest.mark.parametrize(
    "mtbf", MTBFS, ids=["reliable", "mtbf=50k", "mtbf=10k", "mtbf=2k"]
)
def test_e12_point(benchmark, mtbf):
    result = benchmark.pedantic(_run, args=(mtbf, True), rounds=1, iterations=1)
    assert result["completed"] >= 0


@pytest.mark.benchmark(group="e12-failures")
def test_e12_shape_requeue_recovers_goodput(benchmark):
    def sweep():
        return {
            m: (_run(m, False), _run(m, True), _run(m, True, checkpoint=True))
            for m in MTBFS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E12: completions under node failures by recovery policy",
        ["mtbf_s", "faults", "done_noreq", "done_scratch", "done_ckpt",
         "makespan_scratch_s", "makespan_ckpt_s"],
        [
            [
                "inf" if m is None else f"{m:g}",
                off["faults"],
                off["completed"],
                scratch["completed"],
                ckpt["completed"],
                scratch["makespan"],
                ckpt["makespan"],
            ]
            for m, (off, scratch, ckpt) in results.items()
        ],
        note=f"{NUM_JOBS} jobs, 128 nodes, repair 120 s, EASY scheduling; "
        "ckpt = resume from last scheduling point",
    )
    reliable = results[None]
    assert all(r["completed"] == NUM_JOBS for r in reliable)
    # Without requeue, faults cost completions at the harshest setting.
    assert results[MTBFS[-1]][0]["completed"] < NUM_JOBS
    for m in MTBFS[1:]:
        off, scratch, ckpt = results[m]
        # Any requeue flavor recovers at least as many completions...
        assert scratch["completed"] >= off["completed"]
        assert ckpt["completed"] >= off["completed"]
        # ...and checkpointing never loses to scratch on completions or
        # campaign length (it strictly reduces redone work).
        assert ckpt["completed"] >= scratch["completed"]
        assert ckpt["makespan"] <= scratch["makespan"] * 1.001
    harshest = results[MTBFS[-1]]
    assert harshest[1]["completed"] > harshest[0]["completed"]
