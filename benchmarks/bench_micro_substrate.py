"""Microbenchmarks of the simulation substrate (supporting data for E5).

Measures the DES kernel's raw event throughput and the fair-share solver's
cost at various activity counts — the two components E5's end-to-end
numbers decompose into.  Run with real repetition (these are fast), so the
pytest-benchmark statistics are meaningful here.
"""

import pytest

from repro.des import Environment
from repro.sharing import Activity, FairShareModel, SharedResource, solve_max_min


@pytest.mark.benchmark(group="micro-des")
def test_micro_event_throughput(benchmark):
    """Schedule-and-process cost of 10k timeout events."""

    def run():
        env = Environment()

        def proc(env):
            for _ in range(100):
                yield env.timeout(1.0)

        for _ in range(100):
            env.process(proc(env))
        env.run()
        return env.processed_events

    events = benchmark(run)
    assert events >= 10_000


@pytest.mark.benchmark(group="micro-des")
def test_micro_process_spawn_cost(benchmark):
    """Creating and completing 5k trivial processes."""

    def run():
        env = Environment()

        def proc(env):
            yield env.timeout(0)

        for _ in range(5000):
            env.process(proc(env))
        env.run()
        return env.processed_events

    benchmark(run)


@pytest.mark.benchmark(group="micro-solver")
@pytest.mark.parametrize("n_activities", [10, 100, 1000])
def test_micro_solver_single_resource(benchmark, n_activities):
    """Progressive filling with n activities on one shared resource."""
    resource = SharedResource("r", 1e9)
    activities = [Activity(1.0, {resource: 1.0}) for _ in range(n_activities)]

    def run():
        solve_max_min(activities)
        return activities[0].rate

    rate = benchmark(run)
    assert rate == pytest.approx(1e9 / n_activities)


@pytest.mark.benchmark(group="micro-solver")
def test_micro_solver_sparse_mesh(benchmark):
    """200 flows over 100 links, 2 links per flow (network-like shape)."""
    links = [SharedResource(f"l{i}", 1e9) for i in range(100)]
    activities = [
        Activity(1.0, {links[i % 100]: 1.0, links[(i * 7 + 3) % 100]: 1.0})
        for i in range(200)
    ]

    def run():
        solve_max_min(activities)

    benchmark(run)


@pytest.mark.benchmark(group="micro-model")
def test_micro_model_churn(benchmark):
    """End-to-end model churn: 500 staggered activities on 32 resources."""

    def run():
        env = Environment()
        model = FairShareModel(env)
        resources = [SharedResource(f"r{i}", 1e9) for i in range(32)]

        def submit(env, i):
            yield env.timeout(i * 0.01)
            act = Activity(1e7, {resources[i % 32]: 1.0})
            model.execute(act)
            yield act.done

        for i in range(500):
            env.process(submit(env, i))
        env.run()
        return model.resolves

    resolves = benchmark(run)
    assert resolves > 0
