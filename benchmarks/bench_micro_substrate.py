"""Microbenchmarks of the simulation substrate (supporting data for E5).

Measures the DES kernel's raw event throughput and the fair-share solver's
cost at various activity counts — the two components E5's end-to-end
numbers decompose into.  Run with real repetition (these are fast), so the
pytest-benchmark statistics are meaningful here.
"""

import time

import pytest

from repro.des import Environment
from repro.sharing import Activity, FairShareModel, SharedResource, solve_max_min

from benchmarks.common import print_table, write_bench_json


@pytest.mark.benchmark(group="micro-des")
def test_micro_event_throughput(benchmark):
    """Schedule-and-process cost of 10k timeout events."""

    def run():
        env = Environment()

        def proc(env):
            for _ in range(100):
                yield env.timeout(1.0)

        for _ in range(100):
            env.process(proc(env))
        env.run()
        return env.processed_events

    events = benchmark(run)
    assert events >= 10_000


@pytest.mark.benchmark(group="micro-des")
def test_micro_process_spawn_cost(benchmark):
    """Creating and completing 5k trivial processes."""

    def run():
        env = Environment()

        def proc(env):
            yield env.timeout(0)

        for _ in range(5000):
            env.process(proc(env))
        env.run()
        return env.processed_events

    benchmark(run)


@pytest.mark.benchmark(group="micro-solver")
@pytest.mark.parametrize("n_activities", [10, 100, 1000])
def test_micro_solver_single_resource(benchmark, n_activities):
    """Progressive filling with n activities on one shared resource."""
    resource = SharedResource("r", 1e9)
    activities = [Activity(1.0, {resource: 1.0}) for _ in range(n_activities)]

    def run():
        solve_max_min(activities)
        return activities[0].rate

    rate = benchmark(run)
    assert rate == pytest.approx(1e9 / n_activities)


@pytest.mark.benchmark(group="micro-solver")
def test_micro_solver_sparse_mesh(benchmark):
    """200 flows over 100 links, 2 links per flow (network-like shape)."""
    links = [SharedResource(f"l{i}", 1e9) for i in range(100)]
    activities = [
        Activity(1.0, {links[i % 100]: 1.0, links[(i * 7 + 3) % 100]: 1.0})
        for i in range(200)
    ]

    def run():
        solve_max_min(activities)

    benchmark(run)


@pytest.mark.benchmark(group="micro-model")
def test_micro_model_churn(benchmark):
    """End-to-end model churn: 500 staggered activities on 32 resources."""

    def run():
        env = Environment()
        model = FairShareModel(env)
        resources = [SharedResource(f"r{i}", 1e9) for i in range(32)]

        def submit(env, i):
            yield env.timeout(i * 0.01)
            act = Activity(1e7, {resources[i % 32]: 1.0})
            model.execute(act)
            yield act.done

        for i in range(500):
            env.process(submit(env, i))
        env.run()
        return model.resolves

    resolves = benchmark(run)
    assert resolves > 0


def _component_churn(partition: bool, num_nodes: int = 512):
    """K disjoint per-node jobs churning while one shared-PFS component
    stays hot — the scenario the component partition exists for.

    Returns (wall seconds, model) so callers can compare the incremental
    solver (``partition=True``) against the global reference
    (``partition=False``, the pre-incremental behaviour).
    """
    env = Environment()
    model = FairShareModel(env, partition=partition)
    nodes = [SharedResource(f"n{i}", 1e9) for i in range(num_nodes)]
    pfs = SharedResource("pfs", 1e10)

    def job(env, i):
        # Work sized so hundreds of jobs overlap: each start/finish event
        # perturbs exactly one single-activity component.
        yield env.timeout(i * 0.01)
        for _ in range(4):
            act = Activity(1e9 * (1 + (i % 7) * 0.13), {nodes[i]: 1.0})
            model.execute(act)
            yield act.done

    def stream(env, i):
        yield env.timeout(i * 0.05)
        for _ in range(8):
            act = Activity(2e9, {pfs: 1.0})
            model.execute(act)
            yield act.done

    for i in range(num_nodes):
        env.process(job(env, i))
    for i in range(16):
        env.process(stream(env, i))
    start = time.perf_counter()
    env.run()
    return time.perf_counter() - start, model


@pytest.mark.benchmark(group="micro-model")
def test_micro_component_churn_speedup(benchmark):
    """Old-vs-new asymptotics: component-scoped solves on disjoint churn.

    The global solver pays O(total activities) per event; the partitioned
    solver pays O(touched component).  With 512 disjoint jobs the wall-clock
    gap is the paper's E5 scalability claim in microcosm.
    """

    def run_partitioned():
        return _component_churn(partition=True)

    wall_new, model_new = benchmark.pedantic(run_partitioned, rounds=1, iterations=1)
    wall_old, model_old = _component_churn(partition=False)

    header = [
        "solver",
        "wall_s",
        "events",
        "resolves",
        "solved_activities",
        "mean_solve_scope",
        "peak_components",
        "solver_time_s",
    ]
    rows = [
        [
            "incremental (component-partitioned)",
            wall_new,
            model_new.env.processed_events,
            model_new.resolves,
            model_new.solved_activities,
            model_new.solved_activities / model_new.resolves,
            model_new.peak_components,
            model_new.solver_time,
        ],
        [
            "global reference (partition=False)",
            wall_old,
            model_old.env.processed_events,
            model_old.resolves,
            model_old.solved_activities,
            model_old.solved_activities / model_old.resolves,
            model_old.peak_components,
            model_old.solver_time,
        ],
    ]
    speedup = wall_old / wall_new
    print_table(
        "micro: component churn (512 disjoint jobs + hot PFS component)",
        header,
        rows,
        note=f"speedup {speedup:.1f}x; scope ratio "
        f"{model_old.solved_activities / model_new.solved_activities:.1f}x",
    )
    write_bench_json(
        "MICRO_CHURN",
        title="component churn, 512 disjoint jobs + hot PFS component",
        header=header,
        rows=rows,
        extra={"speedup": speedup},
    )

    # The partition must actually scope the work: hundreds of concurrent
    # single-activity components, and a far smaller cumulative solve scope.
    assert model_new.peak_components > 256
    assert model_old.solved_activities > 10 * model_new.solved_activities
    # Acceptance: >= 3x end-to-end on the 512-node disjoint-jobs scenario
    # (typically ~30-40x; 3x leaves headroom for noisy CI machines).
    assert speedup >= 3.0
