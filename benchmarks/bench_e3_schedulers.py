"""E3 — Scheduler comparison table (paper's algorithm-comparison table).

Runs the same mixed workload (50% malleable) under every built-in
algorithm.  Expected shape: EASY and conservative beat plain FCFS on
makespan/wait; the malleable-aware policy wins on the malleable mix,
because only it can exploit the flexible jobs.
"""

import pytest

from benchmarks.common import (
    evaluation_workload,
    print_table,
    reference_platform,
    run_sim,
)

NUM_JOBS = 50
SEED = 13
ALGORITHMS = [
    "fcfs",
    "easy",
    "sjf",
    "fairshare",
    "conservative",
    "moldable",
    "adaptive-moldable",
    "malleable",
]

_cache = {}


def _run(algorithm: str):
    if algorithm not in _cache:
        platform = reference_platform()
        jobs = evaluation_workload(
            num_jobs=NUM_JOBS, seed=SEED, malleable_fraction=0.5
        )
        _cache[algorithm] = run_sim(platform, jobs, algorithm).summary()
    return _cache[algorithm]


@pytest.mark.benchmark(group="e3-schedulers")
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_e3_algorithm(benchmark, algorithm):
    summary = benchmark.pedantic(_run, args=(algorithm,), rounds=1, iterations=1)
    assert summary.completed_jobs + summary.killed_jobs == NUM_JOBS


@pytest.mark.benchmark(group="e3-schedulers")
def test_e3_shape_table(benchmark):
    def sweep():
        return {alg: _run(alg) for alg in ALGORITHMS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "E3: scheduling algorithms on a 50% malleable mix",
        ["algorithm", "makespan_s", "mean_wait_s", "mean_bsld", "mean_util", "reconfigs"],
        [
            [
                alg,
                s.makespan,
                s.mean_wait,
                s.mean_bounded_slowdown,
                s.mean_utilization,
                s.total_reconfigurations,
            ]
            for alg, s in results.items()
        ],
    )
    # Backfilling should not lose to strict FCFS.
    assert results["easy"].makespan <= results["fcfs"].makespan * 1.01
    assert results["conservative"].makespan <= results["fcfs"].makespan * 1.01
    # Only the malleable policy reconfigures jobs...
    assert results["malleable"].total_reconfigurations > 0
    static = (
        "fcfs", "easy", "sjf", "fairshare", "conservative", "moldable",
        "adaptive-moldable",
    )
    for alg in static:
        assert results[alg].total_reconfigurations == 0
    # ...and it wins the mixed workload: best mean wait outright, makespan
    # at least matching the best static policy (the makespan itself is
    # dominated by whichever long job finishes last, so allow 2% noise).
    best_static_makespan = min(results[alg].makespan for alg in static)
    assert results["malleable"].makespan <= best_static_makespan * 1.02
    best_static_wait = min(results[alg].mean_wait for alg in static)
    assert results["malleable"].mean_wait <= best_static_wait
    best_static_util = max(results[alg].mean_utilization for alg in static)
    assert results["malleable"].mean_utilization >= best_static_util * 0.98
