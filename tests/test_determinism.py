"""End-to-end determinism: identical inputs must give identical results.

Reproducibility is a core requirement for a simulator used in scheduling
research — the event queue breaks ties by insertion order and the fair-share
solver processes activities in creation order, so two runs of the same
(platform, workload, algorithm, seed) must agree bit-for-bit.
"""

import pytest

from repro import Simulation, platform_from_dict
from repro.workload import WorkloadSpec, generate_workload


PLATFORM_SPEC = {
    "nodes": {"count": 32, "flops": 1e12},
    "network": {"topology": "star", "bandwidth": 10e9, "pfs_bandwidth": 1e11},
    "pfs": {"read_bw": 1e11, "write_bw": 8e10},
}


def run_once(algorithm, seed=5, malleable=0.5):
    platform = platform_from_dict(PLATFORM_SPEC)
    jobs = generate_workload(
        WorkloadSpec(
            num_jobs=25,
            mean_interarrival=10.0,
            max_request=32,
            mean_runtime=60.0,
            malleable_fraction=malleable,
            comm_bytes=1e6,
            input_bytes_per_flop=1e-5,
            output_bytes_per_flop=1e-5,
            data_per_node=1e8,
        ),
        seed=seed,
    )
    monitor = Simulation(platform, jobs, algorithm=algorithm).run()
    return monitor


def fingerprint(monitor):
    return (
        tuple(
            (r["jid"], r["start_time"], r["end_time"], r["nodes"], r["state"])
            for r in monitor.job_records()
        ),
        tuple(monitor.allocation_series),
        tuple((t, k, j, d) for t, k, j, d in monitor.events),
    )


@pytest.mark.parametrize("algorithm", ["fcfs", "easy", "conservative", "malleable"])
def test_identical_runs_bitwise_equal(algorithm):
    a = fingerprint(run_once(algorithm))
    b = fingerprint(run_once(algorithm))
    assert a == b


def test_different_seeds_differ():
    a = fingerprint(run_once("easy", seed=1))
    b = fingerprint(run_once("easy", seed=2))
    assert a != b


def test_malleable_runs_reproducible_with_reconfigurations():
    """Reconfiguration paths (orders, redistribution) are deterministic too."""
    a = run_once("malleable")
    b = run_once("malleable")
    ra = {r["jid"]: r["reconfigurations"] for r in a.job_records()}
    rb = {r["jid"]: r["reconfigurations"] for r in b.job_records()}
    assert ra == rb
    assert sum(ra.values()) > 0  # the scenario actually exercises reconfigs
