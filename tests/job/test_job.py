"""Tests for the Job lifecycle, validation, and metrics."""

import pytest

from repro.application import ApplicationModel, CpuTask, Phase
from repro.job import Job, JobError, JobState, JobType, ReconfigurationOrder


@pytest.fixture()
def app():
    return ApplicationModel([Phase([CpuTask("1e10")])], name="tiny")


def make_job(app, **kwargs):
    defaults = dict(job_type=JobType.RIGID, num_nodes=4)
    defaults.update(kwargs)
    return Job(1, app, **defaults)


class TestValidation:
    def test_defaults(self, app):
        job = make_job(app)
        assert job.name == "job1"
        assert job.state is JobState.PENDING
        assert job.min_nodes == job.max_nodes == 4

    def test_rigid_cannot_set_bounds(self, app):
        with pytest.raises(JobError, match="Rigid"):
            make_job(app, min_nodes=2)

    def test_malleable_bounds_default(self, app):
        job = make_job(app, job_type=JobType.MALLEABLE, num_nodes=8)
        assert job.min_nodes == 1
        assert job.max_nodes == 8

    def test_malleable_explicit_bounds(self, app):
        job = make_job(
            app, job_type=JobType.MALLEABLE, num_nodes=8, min_nodes=2, max_nodes=16
        )
        assert (job.min_nodes, job.max_nodes) == (2, 16)

    def test_invalid_bounds(self, app):
        with pytest.raises(JobError):
            make_job(app, job_type=JobType.MALLEABLE, num_nodes=4, min_nodes=8, max_nodes=2)

    def test_num_nodes_outside_bounds(self, app):
        with pytest.raises(JobError, match="outside bounds"):
            make_job(app, job_type=JobType.MOLDABLE, num_nodes=20, min_nodes=1, max_nodes=10)

    def test_negative_submit_time(self, app):
        with pytest.raises(JobError):
            make_job(app, submit_time=-1)

    def test_bad_walltime(self, app):
        with pytest.raises(JobError):
            make_job(app, walltime=0)

    def test_type_predicates(self, app):
        assert make_job(app).is_rigid
        assert not make_job(app).is_adaptive
        malleable = make_job(app, job_type=JobType.MALLEABLE)
        assert malleable.is_adaptive
        evolving = make_job(app, job_type=JobType.EVOLVING)
        assert evolving.is_adaptive
        moldable = make_job(app, job_type=JobType.MOLDABLE)
        assert not moldable.is_adaptive


class TestLifecycle:
    def test_start_complete(self, app):
        job = make_job(app)
        job.mark_started(["n0", "n1", "n2", "n3"], now=10.0)
        assert job.state is JobState.RUNNING
        assert job.start_time == 10.0
        job.mark_completed(now=25.0)
        assert job.state is JobState.COMPLETED
        assert job.end_time == 25.0

    def test_start_twice_rejected(self, app):
        job = make_job(app)
        job.mark_started(["a"] * 4, now=0)
        with pytest.raises(JobError):
            job.mark_started(["a"] * 4, now=1)

    def test_rigid_needs_exact_nodes(self, app):
        job = make_job(app)
        with pytest.raises(JobError, match="4"):
            job.mark_started(["a", "b"], now=0)

    def test_moldable_any_size_in_bounds(self, app):
        job = make_job(app, job_type=JobType.MOLDABLE, num_nodes=8, min_nodes=2, max_nodes=8)
        job.mark_started(["a"] * 5, now=0)
        assert len(job.assigned_nodes) == 5

    def test_allocation_outside_bounds_rejected(self, app):
        job = make_job(app, job_type=JobType.MOLDABLE, num_nodes=8, min_nodes=4, max_nodes=8)
        with pytest.raises(JobError, match="outside"):
            job.mark_started(["a"] * 2, now=0)

    def test_empty_allocation_rejected(self, app):
        job = make_job(app)
        with pytest.raises(JobError, match="empty"):
            job.mark_started([], now=0)

    def test_kill_records_reason(self, app):
        job = make_job(app)
        job.mark_started(["a"] * 4, now=0)
        job.mark_killed(now=100.0, reason="walltime")
        assert job.state is JobState.KILLED
        assert job.kill_reason == "walltime"
        assert job.finished

    def test_complete_from_pending_rejected(self, app):
        with pytest.raises(JobError):
            make_job(app).mark_completed(now=1)

    def test_kill_completed_rejected(self, app):
        job = make_job(app)
        job.mark_started(["a"] * 4, now=0)
        job.mark_completed(now=1)
        with pytest.raises(JobError):
            job.mark_killed(now=2, reason="late")


class TestMetrics:
    def test_wait_runtime_turnaround(self, app):
        job = make_job(app, submit_time=5.0)
        assert job.wait_time is None
        job.mark_started(["a"] * 4, now=15.0)
        assert job.wait_time == 10.0
        job.mark_completed(now=45.0)
        assert job.runtime == 30.0
        assert job.turnaround == 40.0

    def test_bounded_slowdown(self, app):
        job = make_job(app, submit_time=0.0)
        job.mark_started(["a"] * 4, now=100.0)
        job.mark_completed(now=200.0)
        # (100 wait + 100 run) / max(100, 10) = 2.0
        assert job.bounded_slowdown() == pytest.approx(2.0)

    def test_bounded_slowdown_short_job_clamped(self, app):
        job = make_job(app, submit_time=0.0)
        job.mark_started(["a"] * 4, now=0.0)
        job.mark_completed(now=1.0)
        # (0 + 1) / max(1, 10) = 0.1 → clamped to 1.
        assert job.bounded_slowdown() == 1.0

    def test_pending_job_metrics_none(self, app):
        job = make_job(app)
        assert job.runtime is None
        assert job.turnaround is None
        assert job.bounded_slowdown() is None


class TestExpressionVariables:
    def test_includes_arguments_and_allocation(self, app):
        job = make_job(
            app,
            job_type=JobType.MALLEABLE,
            num_nodes=8,
            arguments={"num_steps": 50},
        )
        variables = job.expression_variables()
        assert variables["num_steps"] == 50
        assert variables["num_nodes"] == 8  # pending: falls back to request
        job.mark_started(["a"] * 6, now=0)
        assert job.expression_variables()["num_nodes"] == 6

    def test_extra_overrides(self, app):
        job = make_job(app)
        assert job.expression_variables(iteration=3)["iteration"] == 3


class TestReconfigurationOrder:
    def test_empty_target_rejected(self):
        with pytest.raises(JobError):
            ReconfigurationOrder([], issued_at=0.0)

    def test_holds_target(self):
        order = ReconfigurationOrder(["n1", "n2"], issued_at=7.0)
        assert order.target == ["n1", "n2"]
        assert order.issued_at == 7.0
