"""Property and unit tests for the component-partitioned incremental solver.

Pins the tentpole contract of the incremental fair-share model:

* component-wise solving is *rate-identical* to the reference global
  ``solve_max_min`` — bitwise against a per-component reference (same code
  path, same float ops), within tight tolerance against the whole-graph
  solve (whose progressive filling interleaves components' theta rounds and
  therefore rounds differently in the last bits);
* the partition itself is maintained correctly under merge/split churn;
* the model-level invariants (no resource oversubscription, max-min work
  conservation) hold under random start/cancel/finish schedules.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.des import Environment
from repro.sharing import Activity, FairShareModel, SharedResource, solve_max_min


def _scratch_components(activities):
    """Reference partition: connected components by shared-resource BFS."""
    users = {}
    for act in activities:
        for res in act.usages:
            users.setdefault(res, []).append(act)
    unvisited = dict.fromkeys(activities)
    groups = []
    for seed in activities:
        if seed not in unvisited:
            continue
        del unvisited[seed]
        group, stack = [seed], [seed]
        while stack:
            act = stack.pop()
            for res in act.usages:
                for other in users[res]:
                    if other in unvisited:
                        del unvisited[other]
                        group.append(other)
                        stack.append(other)
        groups.append(group)
    return groups


@st.composite
def _systems(draw):
    """Random graphs incl. bound-limited, zero-usage, and giant components."""
    n_res = draw(st.integers(min_value=1, max_value=8))
    resources = [
        SharedResource(f"r{i}", draw(st.floats(min_value=0.1, max_value=1000.0)))
        for i in range(n_res)
    ]
    n_act = draw(st.integers(min_value=1, max_value=12))
    activities = []
    for _ in range(n_act):
        zero_usage = draw(st.booleans()) and draw(st.booleans())  # ~25%
        if zero_usage:
            usages = {}
        else:
            indices = draw(
                st.lists(
                    st.integers(min_value=0, max_value=n_res - 1),
                    min_size=1,
                    max_size=n_res,
                    unique=True,
                )
            )
            usages = {
                resources[j]: draw(st.floats(min_value=0.1, max_value=3.0))
                for j in indices
            }
        weight = draw(st.floats(min_value=0.1, max_value=5.0))
        bounded = draw(st.booleans())
        bound = draw(st.floats(min_value=0.5, max_value=100.0)) if bounded else math.inf
        activities.append(Activity(1.0, usages, weight=weight, bound=bound))
    return resources, activities


@given(_systems())
@settings(max_examples=200, deadline=None)
def test_property_component_solve_bitwise_matches_reference(system):
    """The model's rates are bit-identical to solve_max_min per component."""
    _, activities = system
    env = Environment()
    model = FairShareModel(env)
    for act in activities:
        model.execute(act)
    env.run(until=0.0)  # processes the coalesced resolve, no completions yet

    model_rates = [act.rate for act in activities]
    for group in _scratch_components(activities):
        solve_max_min(group)  # overwrites rates with the reference solution
    reference_rates = [act.rate for act in activities]
    assert model_rates == reference_rates


@given(_systems())
@settings(max_examples=200, deadline=None)
def test_property_component_solve_matches_global_solve(system):
    """Per-component solving equals the whole-graph solve (tight tolerance).

    Exact equality cannot hold bitwise: global progressive filling
    interleaves the components' theta rounds, so rate accumulation rounds
    differently in the last bits.  The solutions are the same real numbers.
    """
    _, activities = system
    for group in _scratch_components(activities):
        solve_max_min(group)
    component_rates = [act.rate for act in activities]
    solve_max_min(activities)
    global_rates = [act.rate for act in activities]
    for by_component, by_global in zip(component_rates, global_rates):
        assert by_component == pytest.approx(by_global, rel=1e-9, abs=1e-12)


@given(_systems())
@settings(max_examples=100, deadline=None)
def test_property_partition_matches_scratch_components(system):
    """The incrementally maintained partition equals a from-scratch BFS."""
    _, activities = system
    env = Environment()
    model = FairShareModel(env)
    for act in activities:
        model.execute(act)
    env.run(until=0.0)

    still_running = [act for act in activities if act.running]
    expected = {
        frozenset(group)
        for group in _scratch_components(still_running)
    }
    # The array engine keeps simple (single-resource, sole-user) activities
    # in slot rows rather than Component objects; both are components.
    actual = {frozenset(comp.acts) for comp in model._components}
    actual.update(frozenset([act]) for act in model._slot_of)
    assert actual == expected
    assert model.component_count == len(expected)


@st.composite
def _churn_schedules(draw):
    """Random scripts of starts (+ optional cancels) on random topologies."""
    n_res = draw(st.integers(min_value=1, max_value=6))
    capacities = [
        draw(st.floats(min_value=1.0, max_value=100.0)) for _ in range(n_res)
    ]
    n_act = draw(st.integers(min_value=1, max_value=14))
    script = []
    for _ in range(n_act):
        delay = draw(st.floats(min_value=0.0, max_value=40.0))
        work = draw(st.floats(min_value=0.1, max_value=400.0))
        indices = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_res - 1),
                min_size=1,
                max_size=n_res,
                unique=True,
            )
        )
        cancel_after = (
            draw(st.floats(min_value=0.05, max_value=20.0))
            if draw(st.booleans()) and draw(st.booleans())
            else None
        )
        script.append((delay, work, tuple(indices), cancel_after))
    return capacities, script


@given(_churn_schedules())
@settings(max_examples=100, deadline=None)
def test_property_invariants_under_churn(schedule):
    """No oversubscription + work conservation at sampled instants under
    random start/cancel/finish churn, with lazily-integrated components."""
    capacities, script = schedule
    env = Environment()
    model = FairShareModel(env)
    resources = [SharedResource(f"r{i}", c) for i, c in enumerate(capacities)]
    violations = []

    def submit(env, delay, work, indices, cancel_after):
        if delay > 0:
            yield env.timeout(delay)
        act = Activity(work, {resources[i]: 1.0 for i in indices})
        model.execute(act)
        if cancel_after is None:
            yield act.done
        else:
            yield env.timeout(cancel_after)
            model.cancel(act)  # no-op if it finished already

    def sampler(env):
        # Offsets chosen to dodge the (rational) completion instants; the
        # URGENT re-solve of any same-instant mutation runs before this
        # NORMAL event anyway.
        for k in range(1, 40):
            yield env.timeout(1.37 + 0.0003 * k)
            running = sorted(model.activities, key=lambda a: a._seq)
            for res in resources:
                used = sum(a.usages.get(res, 0.0) * a.rate for a in running)
                if used > res.capacity * (1 + 1e-6):
                    violations.append((env.now, "oversubscribed", res.name))
            for act in running:
                if act.rate == math.inf or act.rate >= act.bound * (1 - 1e-6):
                    continue
                blocked = any(
                    sum(b.usages.get(res, 0.0) * b.rate for b in running)
                    >= res.capacity * (1 - 1e-6)
                    for res in act.usages
                )
                if not blocked:
                    violations.append((env.now, "not-work-conserving", act._seq))

    for delay, work, indices, cancel_after in script:
        env.process(submit(env, delay, work, indices, cancel_after))
    env.process(sampler(env))
    env.run()

    assert violations == []
    # Every non-cancelled activity completed with its work fully accounted.
    assert len(model.activities) == 0
    assert model.component_count == 0


@given(_churn_schedules())
@settings(max_examples=60, deadline=None)
def test_property_partitioned_matches_global_model(schedule):
    """Completion times agree with the global reference model under churn."""
    capacities, script = schedule

    def run(partition):
        env = Environment()
        model = FairShareModel(env, partition=partition)
        resources = [SharedResource(f"r{i}", c) for i, c in enumerate(capacities)]
        finishes = {}

        def submit(env, seq, delay, work, indices, cancel_after):
            if delay > 0:
                yield env.timeout(delay)
            act = Activity(work, {resources[i]: 1.0 for i in indices})
            model.execute(act)
            if cancel_after is None:
                yield act.done
                finishes[seq] = env.now
            else:
                yield env.timeout(cancel_after)
                model.cancel(act)

        for seq, (delay, work, indices, cancel_after) in enumerate(script):
            env.process(submit(env, seq, delay, work, indices, cancel_after))
        env.run()
        return finishes

    partitioned = run(True)
    reference = run(False)
    assert partitioned.keys() == reference.keys()
    for seq in partitioned:
        assert partitioned[seq] == pytest.approx(
            reference[seq], rel=1e-9, abs=1e-9
        )


class TestComponentMaintenance:
    """Direct unit tests of merge/split/dirty mechanics."""

    def test_disjoint_activities_form_disjoint_components(self):
        env = Environment()
        model = FairShareModel(env)
        resources = [SharedResource(f"r{i}", 10.0) for i in range(4)]
        for res in resources:
            model.execute(Activity(100.0, {res: 1.0}))
        env.run(until=0.0)
        assert model.component_count == 4
        assert model.component_sizes() == [1, 1, 1, 1]
        assert model.component_size_histogram() == {1: 4}

    def test_shared_resource_merges_components(self):
        env = Environment()
        model = FairShareModel(env)
        r1, r2 = SharedResource("r1", 10.0), SharedResource("r2", 10.0)
        model.execute(Activity(100.0, {r1: 1.0}))
        model.execute(Activity(100.0, {r2: 1.0}))
        env.run(until=0.0)
        assert model.component_count == 2
        # A bridging flow over both resources merges the two components.
        model.execute(Activity(100.0, {r1: 1.0, r2: 1.0}))
        env.run(until=1.0)
        assert model.component_count == 1
        assert model.merges >= 1

    def test_bridge_removal_splits_component(self):
        env = Environment()
        model = FairShareModel(env)
        r1, r2 = SharedResource("r1", 10.0), SharedResource("r2", 10.0)
        a = Activity(1000.0, {r1: 1.0})
        b = Activity(1000.0, {r2: 1.0})
        bridge = Activity(1000.0, {r1: 1.0, r2: 1.0})
        for act in (a, b, bridge):
            model.execute(act)
        env.run(until=0.0)
        assert model.component_count == 1
        model.cancel(bridge)
        env.run(until=1.0)
        assert model.component_count == 2
        assert model.splits >= 1

    def test_leaf_removal_does_not_split(self):
        env = Environment()
        model = FairShareModel(env)
        r = SharedResource("r", 10.0)
        a = Activity(1000.0, {r: 1.0})
        b = Activity(1000.0, {r: 1.0})
        model.execute(a)
        model.execute(b)
        env.run(until=0.0)
        model.cancel(a)
        env.run(until=1.0)
        assert model.component_count == 1
        assert model.splits == 0

    def test_partition_false_keeps_single_component(self):
        env = Environment()
        model = FairShareModel(env, partition=False)
        resources = [SharedResource(f"r{i}", 10.0) for i in range(4)]
        for res in resources:
            model.execute(Activity(100.0, {res: 1.0}))
        env.run(until=0.0)
        assert model.component_count == 1
        assert model.component_sizes() == [4]

    def test_untouched_component_is_not_resolved(self):
        env = Environment()
        model = FairShareModel(env)
        r1, r2 = SharedResource("r1", 10.0), SharedResource("r2", 10.0)
        long_lived = Activity(1e6, {r1: 1.0})
        model.execute(long_lived)
        env.run(until=0.0)
        resolves_before = model.resolves

        # Churn on a disjoint resource must never re-solve r1's component.
        def churn(env):
            for _ in range(10):
                act = Activity(10.0, {r2: 1.0})
                model.execute(act)
                yield act.done

        env.process(churn(env))
        env.run(until=50.0)
        assert model.resolves >= resolves_before + 10
        assert model.solved_activities < model.resolves + 2  # all scope-1 solves
        assert long_lived.rate == pytest.approx(10.0)

    def test_lazy_remaining_and_sync_progress(self):
        env = Environment()
        model = FairShareModel(env)
        r1, r2 = SharedResource("r1", 10.0), SharedResource("r2", 10.0)
        lazy = Activity(1000.0, {r1: 1.0})
        other = Activity(50.0, {r2: 1.0})
        model.execute(lazy)
        model.execute(other)
        env.run(until=other.done)  # t=5; lazy's component untouched since t=0
        assert env.now == pytest.approx(5.0)
        assert lazy.remaining == pytest.approx(1000.0)  # stale by design
        model.sync_progress()
        assert lazy.remaining == pytest.approx(950.0)

    def test_solver_counters_populate(self):
        env = Environment()
        model = FairShareModel(env)
        r = SharedResource("r", 10.0)
        act = Activity(100.0, {r: 1.0})
        model.execute(act)
        env.run()
        assert model.resolves >= 1
        assert model.solve_events >= 1
        assert model.solved_activities >= 1
        assert model.max_solve_scope >= 1
        assert model.solver_time >= 0.0
        assert model.peak_components == 1
        assert model.component_count == 0
