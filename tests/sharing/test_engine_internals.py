"""White-box tests: horizon-heap compaction and stale-wake version races.

The completion machinery is lazily invalidated on two levels:

* every re-solve of a component/slot pushes a *new* horizon-heap entry
  and bumps the owner's version, leaving the old entry stale in place;
  ``_compact_heap`` sweeps those once they dominate the heap, and
  ``_arm_wake``/``_on_wake`` pop them when they surface at the top;
* every set change bumps the model-wide ``_wake_version``, so an armed
  wake-up event that was outrun by a perturbation must detect the
  mismatch and do nothing.

Both engine backends (object components and struct-of-arrays slots)
implement the same contract and are exercised here side by side.
"""

import pytest

from repro.des import Environment
from repro.sharing import Activity, ActivityCancelled, FairShareModel, SharedResource


@pytest.fixture(params=[True, False], ids=["array", "object"])
def engine(request):
    return request.param


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def model(env, engine):
    return FairShareModel(env, array_engine=engine)


def _stale_singletons(env, model, count, work=1e6):
    """Start ``count`` far-horizon singletons and cancel them at t=1.

    Each execution pushes one horizon entry; each cancel bumps the
    owner's version without popping it — leaving ``count`` stale entries
    buried in the heap (never at the top, so lazy popping can't reach
    them).
    """
    resources = [SharedResource(f"stale{i}", 100.0) for i in range(count)]
    acts = [Activity(work, {r: 1.0}) for r in resources]
    for act in acts:
        model.execute(act)
    env.run(until=1.0)
    for act in acts:
        model.cancel(act)
    env.run(until=2.0)
    return acts


class TestCompactHeap:
    def test_below_threshold_stale_entries_are_tolerated(self, env, model):
        # Compaction is an amortisation tool, not an invariant: small
        # heaps keep their stale entries (the wake loops pop them lazily).
        keeper = Activity(1000.0, {SharedResource("keep", 100.0): 1.0})
        model.execute(keeper)
        _stale_singletons(env, model, 10)
        before = list(model._horizon_heap)
        assert len(before) == 11
        model._compact_heap()
        assert model._horizon_heap == before

    def test_dominant_stale_entries_are_swept(self, env, model):
        # 70 buried stale entries + 2 live owners: over both thresholds
        # (>64 entries, >4x live), so compaction must drop exactly the
        # stale ones — and the survivors must still complete on schedule.
        keeper = Activity(1000.0, {SharedResource("keep", 100.0): 1.0})
        model.execute(keeper)
        shared = SharedResource("shared", 100.0)
        pair = [Activity(1000.0, {shared: 1.0}) for _ in range(2)]
        for act in pair:
            model.execute(act)  # true 2-activity component in both engines
        _stale_singletons(env, model, 70)
        assert len(model._horizon_heap) == 72
        model._compact_heap()
        # One entry per live owner: the keeper and the shared component.
        assert len(model._horizon_heap) == 2
        env.run()
        assert keeper.finished_at == pytest.approx(10.0)
        for act in pair:
            assert act.finished_at == pytest.approx(20.0)

    def test_flush_compacts_as_a_side_effect(self, env, model):
        # The sweep is wired into _flush: the next resolve after the heap
        # degenerates (here: one more activity start) compacts in passing.
        keeper = Activity(1000.0, {SharedResource("keep", 100.0): 1.0})
        model.execute(keeper)
        _stale_singletons(env, model, 70)
        late = Activity(100.0, {SharedResource("late", 100.0): 1.0})
        model.execute(late)
        env.run(until=3.0)
        assert len(model._horizon_heap) == 2
        env.run()
        assert late.finished_at == pytest.approx(3.0)
        assert keeper.finished_at == pytest.approx(10.0)


class TestStaleWakeRaces:
    def test_cancel_before_horizon_invalidates_armed_wake(self, env, model):
        # a's completion wake is armed for t=10; cancelling a at t=5 bumps
        # _wake_version, so the delivery at t=10 must be a no-op and b
        # (untouched, on its own resource) completes on schedule.
        a = Activity(1000.0, {SharedResource("a", 100.0): 1.0})
        b = Activity(2000.0, {SharedResource("b", 100.0): 1.0})
        model.execute(a)
        model.execute(b)

        def canceller(env, model, act):
            yield env.timeout(5.0)
            model.cancel(act)

        env.process(canceller(env, model, a))
        env.run()
        assert isinstance(a.done.value, ActivityCancelled)
        assert b.finished_at == pytest.approx(20.0)
        assert env.now == pytest.approx(20.0)

    def test_stale_on_wake_delivery_is_a_noop(self, env, model):
        # Direct version-race probe: delivering a wake carrying an outrun
        # _wake_version must not touch the heap or complete anything.
        r = SharedResource("cpu", 100.0)
        a = Activity(1000.0, {r: 1.0})
        model.execute(a)
        env.run(until=1.0)
        heap_before = list(model._horizon_heap)
        model._on_wake(model._wake_version - 1)
        assert model._horizon_heap == heap_before
        assert not a.done.triggered
        env.run()
        assert a.finished_at == pytest.approx(10.0)

    def test_entry_version_race_pops_stale_heap_top(self, env, model):
        # b joining a's resource at t=5 re-solves a: the old t=10 horizon
        # entry (and, in the array engine, the promoted slot itself) goes
        # stale at the heap top and must be popped, not treated as a
        # completion.  From t=5 both run at rate 50 and finish at t=15.
        r = SharedResource("cpu", 100.0)
        a = Activity(1000.0, {r: 1.0})
        model.execute(a)

        def joiner(env, model):
            yield env.timeout(5.0)
            b = Activity(500.0, {r: 1.0})
            model.execute(b)
            return b

        proc = env.process(joiner(env, model))
        env.run()
        assert a.finished_at == pytest.approx(15.0)
        assert proc.value.finished_at == pytest.approx(15.0)
        assert env.now == pytest.approx(15.0)

    def test_wake_after_cancel_of_sole_due_owner(self, env, model):
        # The armed wake and the heap top reference the same cancelled
        # owner: _arm_wake must pop it and re-arm on the survivor.
        a = Activity(500.0, {SharedResource("a", 100.0): 1.0})  # horizon t=5
        b = Activity(3000.0, {SharedResource("b", 100.0): 1.0})  # horizon t=30
        model.execute(a)
        model.execute(b)

        def canceller(env, model, act):
            yield env.timeout(2.0)
            model.cancel(act)

        env.process(canceller(env, model, a))
        env.run()
        assert isinstance(a.done.value, ActivityCancelled)
        assert b.finished_at == pytest.approx(30.0)
        assert env.now == pytest.approx(30.0)
