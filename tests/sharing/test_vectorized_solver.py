"""Bit-exactness of the vectorized max-min kernel vs the scalar reference.

PR 2's campaign result cache keys on byte-identical run records, so the
numpy kernel may not merely be *close* to the scalar progressive-filling
loop — every rate must be the same float, produced by the same freeze
order and tie-breaking.  The property test below generates adversarial
component graphs (shared resources, zero-weight-like tiny weights,
unbounded activities, infinite capacities) and compares all three kernels
(`_solve_scalar`, `_solve_vector`, `_solve_single`) for exact equality.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sharing import Activity, SharedResource, solve_max_min
from repro.sharing.model import (
    DEFAULT_VECTORIZE,
    VECTOR_CROSSOVER,
    _np,
    _solve_scalar,
    _solve_single,
    _solve_vector,
)

needs_numpy = pytest.mark.skipif(_np is None, reason="numpy not installed")

_capacities = st.one_of(
    st.floats(min_value=1e-3, max_value=1e9, allow_nan=False, allow_infinity=False),
    st.just(math.inf),
)
_factors = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)
_weights = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)
_bounds = st.one_of(
    st.floats(min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False),
    st.just(math.inf),
)


@st.composite
def _components(draw, min_acts=2, max_acts=40):
    """A random activity/resource component, adversarially shaped."""
    num_resources = draw(st.integers(min_value=1, max_value=6))
    resources = [
        SharedResource(f"r{i}", draw(_capacities)) for i in range(num_resources)
    ]
    num_acts = draw(st.integers(min_value=min_acts, max_value=max_acts))
    acts = []
    for _ in range(num_acts):
        # Possibly no usages at all: rate is then bound-only (or infinite).
        indices = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_resources - 1),
                max_size=3,
                unique=True,
            )
        )
        usages = {resources[i]: draw(_factors) for i in indices}
        acts.append(
            Activity(1.0, usages, weight=draw(_weights), bound=draw(_bounds))
        )
    return acts


def _rates(solver, acts):
    for act in acts:
        act.rate = 0.0
    solver(acts)
    return [act.rate for act in acts]


def _assert_identical(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        # Exact float identity — not approx — including inf; repr also
        # catches a -0.0 vs 0.0 divergence.
        assert repr(x) == repr(y)


@needs_numpy
@settings(max_examples=200, deadline=None)
@given(acts=_components())
def test_vector_kernel_bit_identical_to_scalar(acts):
    scalar = _rates(_solve_scalar, acts)
    vector = _rates(_solve_vector, acts)
    _assert_identical(scalar, vector)


@settings(max_examples=100, deadline=None)
@given(acts=_components(min_acts=1, max_acts=1))
def test_single_fast_path_bit_identical_to_scalar(acts):
    scalar = _rates(_solve_scalar, acts)
    fast = _rates(lambda a: _solve_single(a[0]), acts)
    _assert_identical(scalar, fast)


@needs_numpy
@settings(max_examples=100, deadline=None)
@given(acts=_components())
def test_public_api_dispatch_is_equivalent(acts):
    scalar = _rates(lambda a: solve_max_min(a, vectorize=False), acts)
    vector = _rates(lambda a: solve_max_min(a, vectorize=True), acts)
    _assert_identical(scalar, vector)


def test_dispatch_paths_and_default():
    assert DEFAULT_VECTORIZE is None  # auto mode is the shipped default
    r = SharedResource("r", 100.0)

    assert solve_max_min([]) == "scalar"
    assert solve_max_min([Activity(1.0, {r: 1.0})]) == "fast"

    few = [Activity(1.0, {r: 1.0}) for _ in range(2)]
    assert solve_max_min(few) == "scalar"  # below the crossover

    many = [Activity(1.0, {r: 1.0}) for _ in range(VECTOR_CROSSOVER)]
    expected = "vector" if _np is not None else "scalar"
    assert solve_max_min(many) == expected
    # All activities identical: everyone gets capacity / n either way.
    for act in many:
        assert act.rate == pytest.approx(100.0 / VECTOR_CROSSOVER)


@needs_numpy
def test_explicit_vectorize_overrides_crossover():
    r = SharedResource("r", 10.0)
    pair = [Activity(1.0, {r: 1.0}) for _ in range(2)]
    assert solve_max_min(pair, vectorize=True) == "vector"
    rates = [act.rate for act in pair]
    assert solve_max_min(pair, vectorize=False) == "scalar"
    _assert_identical(rates, [act.rate for act in pair])


@needs_numpy
def test_infinite_capacity_and_unbounded_rates_agree():
    # capacity=inf makes the saturation tolerance infinite — a historical
    # scalar-loop quirk the vector kernel must replicate, not fix.
    free = SharedResource("free", math.inf)
    tight = SharedResource("tight", 10.0)
    acts = [
        Activity(1.0, {free: 1.0}),
        Activity(1.0, {free: 2.0, tight: 1.0}),
        Activity(1.0, {}, bound=5.0),
        Activity(1.0, {}),  # no usages, no bound: rate must become inf
    ]
    scalar = _rates(_solve_scalar, acts)
    vector = _rates(_solve_vector, acts)
    _assert_identical(scalar, vector)
    assert scalar[3] == math.inf
    assert scalar[2] == 5.0
