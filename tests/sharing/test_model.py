"""Tests for the FairShareModel event-driven activity engine."""

import pytest

from repro.des import Environment
from repro.sharing import Activity, ActivityCancelled, FairShareModel, SharedResource


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def model(env):
    return FairShareModel(env)


def run_activity(env, model, activity, until=None):
    model.execute(activity)
    env.run(until=until if until is not None else activity.done)
    return activity


class TestBasics:
    def test_single_activity_completion_time(self, env, model):
        r = SharedResource("cpu", 100.0)
        a = Activity(1000.0, {r: 1.0})
        run_activity(env, model, a)
        assert env.now == pytest.approx(10.0)
        assert a.finished_at == pytest.approx(10.0)
        assert a.remaining == 0.0

    def test_zero_work_completes_immediately(self, env, model):
        r = SharedResource("cpu", 100.0)
        a = Activity(0.0, {r: 1.0})
        model.execute(a)
        assert a.done.triggered
        env.run()
        assert env.now == 0.0

    def test_bounded_activity_respects_bound(self, env, model):
        r = SharedResource("cpu", 100.0)
        a = Activity(100.0, {r: 1.0}, bound=10.0)
        run_activity(env, model, a)
        assert env.now == pytest.approx(10.0)

    def test_double_execute_rejected(self, env, model):
        r = SharedResource("cpu", 100.0)
        a = Activity(10.0, {r: 1.0})
        model.execute(a)
        with pytest.raises(ValueError):
            model.execute(a)

    def test_payload_carried(self, env, model):
        r = SharedResource("cpu", 100.0)
        a = Activity(10.0, {r: 1.0}, payload={"task": 7})
        run_activity(env, model, a)
        assert a.done.value is a
        assert a.payload == {"task": 7}


class TestSharing:
    def test_two_activities_share_then_speed_up(self, env, model):
        # Both start together on a 100-unit/s resource with 1000 work each:
        # they share (rate 50) until t=20 when both finish simultaneously.
        r = SharedResource("cpu", 100.0)
        a = Activity(1000.0, {r: 1.0})
        b = Activity(1000.0, {r: 1.0})
        model.execute(a)
        model.execute(b)
        env.run()
        assert a.finished_at == pytest.approx(20.0)
        assert b.finished_at == pytest.approx(20.0)

    def test_short_activity_finishes_then_long_accelerates(self, env, model):
        # a: 500 work, b: 1500 work on cap 100.  Shared rate 50 until a done
        # at t=10; b then runs at 100: remaining 1000 work → +10 s → t=20.
        r = SharedResource("cpu", 100.0)
        a = Activity(500.0, {r: 1.0})
        b = Activity(1500.0, {r: 1.0})
        model.execute(a)
        model.execute(b)
        env.run()
        assert a.finished_at == pytest.approx(10.0)
        assert b.finished_at == pytest.approx(20.0)

    def test_late_arrival_slows_down_running_activity(self, env, model):
        # a starts alone at t=0 (rate 100); b arrives at t=5.  a has 500 work
        # left → shared rate 50 → a finishes at t=15.
        r = SharedResource("cpu", 100.0)
        a = Activity(1000.0, {r: 1.0})
        model.execute(a)

        def late(env, model):
            yield env.timeout(5.0)
            b = Activity(10000.0, {r: 1.0})
            model.execute(b)
            yield b.done

        env.process(late(env, model))
        env.run(until=a.done)
        assert env.now == pytest.approx(15.0)

    def test_weighted_sharing_affects_finish_order(self, env, model):
        r = SharedResource("cpu", 90.0)
        light = Activity(300.0, {r: 1.0}, weight=1.0)  # rate 30 → t=10
        heavy = Activity(600.0, {r: 1.0}, weight=2.0)  # rate 60 → t=10
        model.execute(light)
        model.execute(heavy)
        env.run()
        assert light.finished_at == pytest.approx(10.0)
        assert heavy.finished_at == pytest.approx(10.0)

    def test_multi_resource_flow(self, env, model):
        l1 = SharedResource("l1", 50.0)
        l2 = SharedResource("l2", 100.0)
        flow = Activity(500.0, {l1: 1.0, l2: 1.0})
        run_activity(env, model, flow)
        assert env.now == pytest.approx(10.0)  # bottleneck l1


class TestCancellation:
    def test_cancel_fails_done_event_defused(self, env, model):
        r = SharedResource("cpu", 100.0)
        a = Activity(1000.0, {r: 1.0})
        model.execute(a)

        def canceller(env, model, a):
            yield env.timeout(2.0)
            model.cancel(a)

        env.process(canceller(env, model, a))
        env.run()
        assert a.done.triggered
        assert not a.done.ok
        assert isinstance(a.done.value, ActivityCancelled)
        assert not a.running

    def test_cancel_frees_capacity_for_others(self, env, model):
        r = SharedResource("cpu", 100.0)
        a = Activity(10000.0, {r: 1.0})
        b = Activity(1000.0, {r: 1.0})
        model.execute(a)
        model.execute(b)

        def canceller(env, model, a):
            yield env.timeout(2.0)
            model.cancel(a)

        env.process(canceller(env, model, a))
        env.run(until=b.done)
        # b: 2 s at rate 50 (100 work done) then rate 100 → 9 more seconds.
        assert env.now == pytest.approx(11.0)

    def test_cancel_finished_activity_is_noop(self, env, model):
        r = SharedResource("cpu", 100.0)
        a = Activity(100.0, {r: 1.0})
        run_activity(env, model, a)
        model.cancel(a)  # no raise

    def test_cancel_preserves_partial_progress_accounting(self, env, model):
        r = SharedResource("cpu", 100.0)
        a = Activity(1000.0, {r: 1.0})
        model.execute(a)

        def canceller(env, model, a):
            yield env.timeout(3.0)
            model.cancel(a)

        env.process(canceller(env, model, a))
        env.run()
        assert a.remaining == pytest.approx(700.0)


class TestProcessIntegration:
    def test_process_waits_on_activity(self, env, model):
        r = SharedResource("cpu", 10.0)

        def proc(env, model):
            a = Activity(100.0, {r: 1.0})
            model.execute(a)
            yield a.done
            return env.now

        p = env.process(proc(env, model))
        env.run()
        assert p.value == pytest.approx(10.0)

    def test_sequential_activities(self, env, model):
        r = SharedResource("cpu", 10.0)

        def proc(env, model):
            for _ in range(3):
                a = Activity(50.0, {r: 1.0})
                model.execute(a)
                yield a.done
            return env.now

        p = env.process(proc(env, model))
        env.run()
        assert p.value == pytest.approx(15.0)

    def test_parallel_activities_via_all_of(self, env, model):
        r1 = SharedResource("a", 10.0)
        r2 = SharedResource("b", 10.0)

        def proc(env, model):
            acts = [Activity(100.0, {r1: 1.0}), Activity(50.0, {r2: 1.0})]
            events = [model.execute(a).done for a in acts]
            yield env.all_of(events)
            return env.now

        p = env.process(proc(env, model))
        env.run()
        assert p.value == pytest.approx(10.0)

    def test_resolves_counter_increments(self, env, model):
        r = SharedResource("cpu", 10.0)
        a = Activity(10.0, {r: 1.0})
        run_activity(env, model, a)
        assert model.resolves >= 1


class TestNumericalRobustness:
    def test_many_equal_activities_finish_together(self, env, model):
        r = SharedResource("cpu", 100.0)
        acts = [Activity(100.0, {r: 1.0}) for _ in range(20)]
        for a in acts:
            model.execute(a)
        env.run()
        for a in acts:
            assert a.finished_at == pytest.approx(20.0)

    def test_tiny_work_amounts(self, env, model):
        r = SharedResource("cpu", 1.0)
        a = Activity(1e-12, {r: 1.0})
        run_activity(env, model, a)
        assert env.now <= 1e-10

    def test_huge_work_amounts(self, env, model):
        r = SharedResource("cpu", 1e12)
        a = Activity(1e18, {r: 1.0})
        run_activity(env, model, a)
        assert env.now == pytest.approx(1e6)

    def test_staggered_arrivals_monotone_finishes(self, env, model):
        r = SharedResource("cpu", 100.0)
        finishes = []

        def submit(env, model, delay, work):
            yield env.timeout(delay)
            a = Activity(work, {r: 1.0})
            model.execute(a)
            yield a.done
            finishes.append(env.now)

        for i in range(5):
            env.process(submit(env, model, i * 1.0, 100.0 + 10 * i))
        env.run()
        assert len(finishes) == 5
        assert finishes == sorted(finishes)
