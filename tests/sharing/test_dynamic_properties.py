"""Property tests for the dynamic FairShareModel under random schedules."""

from hypothesis import given, settings, strategies as st

from repro.des import Environment
from repro.sharing import Activity, FairShareModel, SharedResource


@st.composite
def _schedules(draw):
    """Random (resources, [(start_delay, work, resource indices)]) scripts."""
    n_res = draw(st.integers(min_value=1, max_value=4))
    capacities = [
        draw(st.floats(min_value=1.0, max_value=100.0)) for _ in range(n_res)
    ]
    n_act = draw(st.integers(min_value=1, max_value=12))
    script = []
    for _ in range(n_act):
        delay = draw(st.floats(min_value=0.0, max_value=50.0))
        work = draw(st.floats(min_value=0.1, max_value=500.0))
        indices = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_res - 1),
                min_size=1,
                max_size=n_res,
                unique=True,
            )
        )
        script.append((delay, work, tuple(indices)))
    return capacities, script


@given(_schedules())
@settings(max_examples=100, deadline=None)
def test_property_all_activities_complete(schedule):
    capacities, script = schedule
    env = Environment()
    model = FairShareModel(env)
    resources = [SharedResource(f"r{i}", c) for i, c in enumerate(capacities)]
    activities = []

    def submit(env, delay, work, indices):
        if delay > 0:
            yield env.timeout(delay)
        act = Activity(work, {resources[i]: 1.0 for i in indices})
        activities.append(act)
        model.execute(act)
        yield act.done

    for delay, work, indices in script:
        env.process(submit(env, delay, work, indices))
    env.run()

    assert len(activities) == len(script)
    for act in activities:
        assert act.done.triggered and act.done.ok
        assert act.remaining == 0.0
        assert act.finished_at is not None
    assert len(model.activities) == 0


@given(_schedules())
@settings(max_examples=60, deadline=None)
def test_property_completion_time_lower_bound(schedule):
    """No activity finishes faster than running alone at full capacity."""
    capacities, script = schedule
    env = Environment()
    model = FairShareModel(env)
    resources = [SharedResource(f"r{i}", c) for i, c in enumerate(capacities)]
    records = []

    def submit(env, delay, work, indices):
        if delay > 0:
            yield env.timeout(delay)
        act = Activity(work, {resources[i]: 1.0 for i in indices})
        best_rate = min(resources[i].capacity for i in indices)
        model.execute(act)
        yield act.done
        records.append((act, best_rate))

    for delay, work, indices in script:
        env.process(submit(env, delay, work, indices))
    env.run()

    for act, best_rate in records:
        duration = act.finished_at - act.started_at
        assert duration >= act.work / best_rate - 1e-6 * (1 + act.work / best_rate)


@given(_schedules())
@settings(max_examples=60, deadline=None)
def test_property_dynamic_runs_deterministic(schedule):
    capacities, script = schedule

    def run():
        env = Environment()
        model = FairShareModel(env)
        resources = [SharedResource(f"r{i}", c) for i, c in enumerate(capacities)]
        finishes = []

        def submit(env, delay, work, indices):
            if delay > 0:
                yield env.timeout(delay)
            act = Activity(work, {resources[i]: 1.0 for i in indices})
            model.execute(act)
            yield act.done
            finishes.append(env.now)

        for delay, work, indices in script:
            env.process(submit(env, delay, work, indices))
        env.run()
        return finishes

    assert run() == run()
