"""Unit and property tests for the max-min fair-share solver."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sharing import Activity, SharedResource, solve_max_min


def test_resource_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        SharedResource("r", 0)
    with pytest.raises(ValueError):
        SharedResource("r", -5)


def test_activity_validation():
    r = SharedResource("r", 10)
    with pytest.raises(ValueError):
        Activity(-1, {r: 1.0})
    with pytest.raises(ValueError):
        Activity(1, {r: 1.0}, weight=0)
    with pytest.raises(ValueError):
        Activity(1, {r: 1.0}, bound=0)
    with pytest.raises(ValueError):
        Activity(1, {r: 0.0})


def test_single_activity_gets_full_capacity():
    r = SharedResource("r", 100.0)
    a = Activity(1000, {r: 1.0})
    solve_max_min([a])
    assert a.rate == pytest.approx(100.0)


def test_equal_split_between_two_activities():
    r = SharedResource("r", 100.0)
    a, b = Activity(1, {r: 1.0}), Activity(1, {r: 1.0})
    solve_max_min([a, b])
    assert a.rate == pytest.approx(50.0)
    assert b.rate == pytest.approx(50.0)


def test_weighted_split():
    r = SharedResource("r", 90.0)
    a = Activity(1, {r: 1.0}, weight=1.0)
    b = Activity(1, {r: 1.0}, weight=2.0)
    solve_max_min([a, b])
    assert a.rate == pytest.approx(30.0)
    assert b.rate == pytest.approx(60.0)


def test_bound_caps_rate_and_releases_capacity():
    r = SharedResource("r", 100.0)
    a = Activity(1, {r: 1.0}, bound=10.0)
    b = Activity(1, {r: 1.0})
    solve_max_min([a, b])
    assert a.rate == pytest.approx(10.0)
    assert b.rate == pytest.approx(90.0)


def test_usage_factor_scales_consumption():
    # An activity with usage factor 2 consumes twice its rate.
    r = SharedResource("r", 100.0)
    a = Activity(1, {r: 2.0})
    solve_max_min([a])
    assert a.rate == pytest.approx(50.0)


def test_multi_resource_activity_limited_by_bottleneck():
    fast = SharedResource("fast", 100.0)
    slow = SharedResource("slow", 10.0)
    a = Activity(1, {fast: 1.0, slow: 1.0})
    solve_max_min([a])
    assert a.rate == pytest.approx(10.0)


def test_three_flows_two_links_classic_maxmin():
    # Classic example: link1 cap 10 shared by f1,f2; link2 cap 100 by f2,f3.
    # Max-min: f1=f2=5, f3=95.
    l1 = SharedResource("l1", 10.0)
    l2 = SharedResource("l2", 100.0)
    f1 = Activity(1, {l1: 1.0})
    f2 = Activity(1, {l1: 1.0, l2: 1.0})
    f3 = Activity(1, {l2: 1.0})
    solve_max_min([f1, f2, f3])
    assert f2.rate == pytest.approx(5.0)
    assert f1.rate == pytest.approx(5.0)
    assert f3.rate == pytest.approx(95.0)


def test_no_usages_unbounded_gets_infinite_rate():
    a = Activity(1, {})
    solve_max_min([a])
    assert a.rate == math.inf


def test_no_usages_bounded_gets_bound():
    a = Activity(1, {}, bound=7.0)
    solve_max_min([a])
    assert a.rate == pytest.approx(7.0)


def test_empty_activity_list_is_noop():
    solve_max_min([])  # must not raise


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

@st.composite
def _systems(draw):
    """Random resources + activities with random sparse usage patterns."""
    n_res = draw(st.integers(min_value=1, max_value=5))
    resources = [
        SharedResource(f"r{i}", draw(st.floats(min_value=0.1, max_value=1000.0)))
        for i in range(n_res)
    ]
    n_act = draw(st.integers(min_value=1, max_value=8))
    activities = []
    for i in range(n_act):
        indices = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_res - 1),
                min_size=1,
                max_size=n_res,
                unique=True,
            )
        )
        usages = {
            resources[j]: draw(st.floats(min_value=0.1, max_value=3.0))
            for j in indices
        }
        weight = draw(st.floats(min_value=0.1, max_value=5.0))
        bounded = draw(st.booleans())
        bound = draw(st.floats(min_value=0.5, max_value=100.0)) if bounded else math.inf
        activities.append(Activity(1.0, usages, weight=weight, bound=bound))
    return resources, activities


@given(_systems())
@settings(max_examples=200, deadline=None)
def test_property_no_resource_oversubscription(system):
    resources, activities = system
    solve_max_min(activities)
    for res in resources:
        used = sum(a.usages.get(res, 0.0) * a.rate for a in activities)
        assert used <= res.capacity * (1 + 1e-6)


@given(_systems())
@settings(max_examples=200, deadline=None)
def test_property_all_rates_positive_and_bounded(system):
    _, activities = system
    solve_max_min(activities)
    for a in activities:
        assert a.rate > 0
        assert a.rate <= a.bound * (1 + 1e-9)


@given(_systems())
@settings(max_examples=200, deadline=None)
def test_property_work_conserving(system):
    """Every activity is blocked by a saturated resource or its bound."""
    resources, activities = system
    solve_max_min(activities)
    for a in activities:
        if a.rate >= a.bound * (1 - 1e-6):
            continue  # blocked by its own bound
        blocked = False
        for res in a.usages:
            used = sum(b.usages.get(res, 0.0) * b.rate for b in activities)
            if used >= res.capacity * (1 - 1e-6):
                blocked = True
                break
        assert blocked, f"{a!r} could progress faster: not at bound, no saturated resource"


@given(_systems())
@settings(max_examples=100, deadline=None)
def test_property_solver_deterministic(system):
    _, activities = system
    solve_max_min(activities)
    first = [a.rate for a in activities]
    solve_max_min(activities)
    second = [a.rate for a in activities]
    assert first == second
