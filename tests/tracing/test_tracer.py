"""Tests for the flight-recorder core: records, exports, round trips."""

import json

import pytest

from repro.tracing import (
    SCHEMA_VERSION,
    TraceError,
    TraceRecord,
    Tracer,
    convert_jsonl_to_chrome,
    read_jsonl,
    validate_chrome_trace,
)


class TestRecords:
    def test_instant_record(self):
        tracer = Tracer()
        tracer.instant("job.submit", "batch", "job1", 1.5, jid=1)
        (record,) = tracer.records
        assert record.phase == "I"
        assert record.end == 1.5
        assert record.args == {"jid": 1}

    def test_span_record(self):
        tracer = Tracer()
        tracer.span("task.run", "node:0", "job1", 1.0, 3.0, jid=1)
        (record,) = tracer.records
        assert record.phase == "X"
        assert record.dur == 2.0
        assert record.end == 3.0

    def test_span_rejects_negative_duration(self):
        with pytest.raises(TraceError, match="before start"):
            Tracer().span("task.run", "node:0", "x", 2.0, 1.0)

    def test_subscribers_see_records_live(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        tracer.instant("a", "batch", "x", 0.0)
        tracer.instant("b", "batch", "y", 1.0)
        assert [r.kind for r in seen] == ["a", "b"]

    def test_begin_end_pairs(self):
        tracer = Tracer()
        tracer.begin("k", "node.hold", "node:3", "job1", 1.0, node=3)
        tracer.end("k", 4.0, extra=True)
        (record,) = tracer.records
        assert record.time == 1.0 and record.dur == 3.0
        assert record.args == {"node": 3, "extra": True}

    def test_end_unknown_key_ignored(self):
        tracer = Tracer()
        tracer.end("ghost", 1.0)
        assert tracer.records == []

    def test_reopen_discards_stale(self):
        tracer = Tracer()
        tracer.begin("k", "node.hold", "node:0", "a", 0.0)
        tracer.begin("k", "node.hold", "node:0", "b", 2.0)
        tracer.end("k", 5.0)
        (record,) = tracer.records
        assert record.name == "b" and record.time == 2.0

    def test_close_open_marks_truncated_spans(self):
        tracer = Tracer()
        tracer.begin("k1", "node.hold", "node:0", "a", 0.0)
        tracer.begin("k2", "node.hold", "node:1", "b", 1.0)
        assert tracer.close_open(9.0) == 2
        assert all(r.args.get("open") is True for r in tracer.records)
        assert tracer.close_open(9.0) == 0


class TestJsonlRoundTrip:
    def _sample(self):
        tracer = Tracer()
        tracer.instant("sim.start", "batch", "machine", 0.0, nodes=4)
        tracer.instant("job.submit", "batch", "job1", 0.0, jid=1, queued=1)
        tracer.span("task.run", "node:2", "job1", 1.0, 2.5, jid=1)
        tracer.instant(
            "job.start", "batch", "job1", 1.0, jid=1, walltime=float("inf")
        )
        return tracer

    def test_round_trip_preserves_records(self, tmp_path):
        tracer = self._sample()
        path = tracer.to_jsonl(tmp_path / "t.jsonl")
        back = read_jsonl(path)
        assert back == tracer.records

    def test_header_carries_schema_version(self, tmp_path):
        path = self._sample().to_jsonl(tmp_path / "t.jsonl")
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"schema": "elastisim-trace", "version": SCHEMA_VERSION}

    def test_version_mismatch_rejected(self):
        lines = [json.dumps({"schema": "elastisim-trace", "version": 999})]
        with pytest.raises(TraceError, match="version"):
            read_jsonl(lines)

    def test_headerless_fixture_accepted(self):
        lines = [
            json.dumps(
                {"time": 0.0, "kind": "job.submit", "ph": "I", "track": "batch", "name": "j"}
            )
        ]
        records = read_jsonl(lines)
        assert records[0].kind == "job.submit"

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            read_jsonl(tmp_path / "ghost.jsonl")

    def test_malformed_line_reports_lineno(self):
        with pytest.raises(TraceError, match="line 2"):
            read_jsonl(['{"schema": "elastisim-trace", "version": 1}', "{nope"])


class TestChromeExport:
    def _sample(self):
        tracer = Tracer()
        tracer.instant("sched.invoke", "scheduler", "submit", 0.0)
        tracer.instant("solver.resolve", "solver", "resolve", 0.5, components=1)
        tracer.span("task.run", "node:3", "job1", 0.0, 2.0, jid=1)
        tracer.instant("job.start", "batch", "job1", 0.0, walltime=float("inf"))
        return tracer

    def test_chrome_trace_validates_and_is_strict_json(self):
        trace = self._sample().chrome_trace()
        validate_chrome_trace(trace)
        # inf walltime must have been collapsed for strict JSON.
        json.loads(json.dumps(trace, allow_nan=False))

    def test_track_to_pid_tid_mapping(self):
        trace = self._sample().chrome_trace()
        by_cat = {e.get("cat"): e for e in trace["traceEvents"] if "cat" in e}
        assert by_cat["sched.invoke"]["pid"] == 1
        assert by_cat["task.run"] == {**by_cat["task.run"], "pid": 2, "tid": 3}

    def test_metadata_names_tracks(self):
        trace = self._sample().chrome_trace()
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"simulator", "nodes", "scheduler", "node:3"} <= names

    def test_seconds_become_microseconds(self):
        trace = self._sample().chrome_trace()
        span = next(e for e in trace["traceEvents"] if e["ph"] == "X")
        assert span["ts"] == 0.0 and span["dur"] == 2e6

    def test_to_chrome_writes_validated_file(self, tmp_path):
        path = self._sample().to_chrome(tmp_path / "t.json")
        validate_chrome_trace(json.loads(path.read_text()))

    def test_unknown_track_rejected(self):
        tracer = Tracer()
        tracer.instant("x", "mystery", "x", 0.0)
        with pytest.raises(TraceError, match="unknown track"):
            tracer.chrome_trace()

    def test_convert_jsonl_to_chrome(self, tmp_path):
        jsonl = self._sample().to_jsonl(tmp_path / "t.jsonl")
        out = convert_jsonl_to_chrome(jsonl, tmp_path / "t.json")
        trace = json.loads(out.read_text())
        validate_chrome_trace(trace)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1


class TestChromeValidator:
    def test_rejects_non_object(self):
        with pytest.raises(TraceError, match="object"):
            validate_chrome_trace([])

    def test_rejects_missing_events(self):
        with pytest.raises(TraceError, match="traceEvents"):
            validate_chrome_trace({})

    def test_rejects_bad_phase(self):
        with pytest.raises(TraceError, match="phase"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "B", "name": "x", "pid": 1, "tid": 0}]}
            )

    def test_rejects_span_without_duration(self):
        with pytest.raises(TraceError, match="dur"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"ph": "X", "name": "x", "pid": 1, "tid": 0, "ts": 0.0}
                    ]
                }
            )

    def test_rejects_nan_timestamp(self):
        with pytest.raises(TraceError, match="ts"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {
                            "ph": "i",
                            "name": "x",
                            "pid": 1,
                            "tid": 0,
                            "ts": float("nan"),
                        }
                    ]
                }
            )


class TestRecordSerialisation:
    def test_instants_omit_duration(self):
        payload = TraceRecord(1.0, "a", "I", "batch", "x").as_dict()
        assert "dur" not in payload and "args" not in payload

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(TraceError, match="malformed"):
            TraceRecord.from_dict({"time": "soon"})
