"""Tests for the invariant checker: synthetic violations + clean real runs."""

import pytest

from repro import Simulation, platform_from_dict
from repro.tracing import (
    InvariantChecker,
    InvariantViolation,
    Tracer,
    check_monitor,
    check_trace,
)
from repro.workload import WorkloadSpec, generate_workload


def feed(tracer_ops, num_nodes=None):
    """Build a tracer, apply (method, args, kwargs) ops, check the stream."""
    tracer = Tracer()
    for method, args, kwargs in tracer_ops:
        getattr(tracer, method)(*args, **kwargs)
    return InvariantChecker(num_nodes=num_nodes).check(tracer.records)


def names(violations):
    return [v.invariant for v in violations]


class TestSyntheticViolations:
    def test_clean_lifecycle_passes(self):
        violations = feed(
            [
                ("instant", ("job.submit", "batch", "j1", 0.0), {"jid": 1, "queued": 1}),
                ("instant", ("node.alloc", "node:0", "j1", 1.0), {"node": 0, "jid": 1}),
                (
                    "instant",
                    ("job.start", "batch", "j1", 1.0),
                    {"jid": 1, "queued": 0, "walltime": 10.0},
                ),
                ("instant", ("node.release", "node:0", "j1", 5.0), {"node": 0, "jid": 1}),
                ("instant", ("job.complete", "batch", "j1", 5.0), {"jid": 1}),
                ("instant", ("sim.end", "batch", "m", 5.0), {}),
            ],
            num_nodes=2,
        )
        assert violations == []

    def test_monotonic_time(self):
        violations = feed(
            [
                ("instant", ("a", "batch", "x", 5.0), {}),
                ("instant", ("b", "batch", "x", 2.0), {}),
            ]
        )
        assert names(violations) == ["monotonic-time"]

    def test_span_emission_instant_is_its_end(self):
        # A span starting before the previous instant is fine as long as
        # it *ends* at or after it — spans are emitted at their end.
        violations = feed(
            [
                ("instant", ("a", "batch", "x", 5.0), {}),
                ("span", ("task.run", "node:0", "x", 1.0, 5.0), {}),
            ]
        )
        assert violations == []

    def test_node_double_alloc(self):
        violations = feed(
            [
                ("instant", ("node.alloc", "node:0", "a", 0.0), {"node": 0, "jid": 1}),
                ("instant", ("node.alloc", "node:0", "b", 1.0), {"node": 0, "jid": 2}),
            ]
        )
        assert "node-double-alloc" in names(violations)

    def test_release_of_free_node(self):
        violations = feed(
            [("instant", ("node.release", "node:0", "a", 0.0), {"node": 0, "jid": 1})]
        )
        assert names(violations) == ["node-double-alloc"]

    def test_release_by_wrong_job(self):
        violations = feed(
            [
                ("instant", ("node.alloc", "node:0", "a", 0.0), {"node": 0, "jid": 1}),
                ("instant", ("node.release", "node:0", "b", 1.0), {"node": 0, "jid": 2}),
            ]
        )
        assert names(violations) == ["node-double-alloc"]

    def test_machine_overflow(self):
        ops = [
            ("instant", ("node.alloc", f"node:{i}", "a", 0.0), {"node": i, "jid": 1})
            for i in range(3)
        ]
        violations = feed(ops, num_nodes=2)
        assert "alloc-count" in names(violations)

    def test_alloc_count_mismatch(self):
        violations = feed(
            [
                ("instant", ("node.alloc", "node:0", "a", 0.0), {"node": 0, "jid": 1}),
                ("instant", ("alloc.count", "batch", "m", 0.0), {"n": 2}),
            ]
        )
        assert names(violations) == ["alloc-count"]

    def test_queue_accounting_mismatch(self):
        violations = feed(
            [
                ("instant", ("job.submit", "batch", "j1", 0.0), {"jid": 1, "queued": 5}),
            ]
        )
        assert names(violations) == ["queue-accounting"]

    def test_queue_drop_counts(self):
        violations = feed(
            [
                ("instant", ("job.submit", "batch", "j1", 0.0), {"jid": 1, "queued": 1}),
                ("instant", ("job.queue_drop", "batch", "j1", 1.0), {"jid": 1, "queued": 0}),
            ]
        )
        assert violations == []

    def test_walltime_exceeded(self):
        violations = feed(
            [
                ("instant", ("job.start", "batch", "j1", 0.0), {"jid": 1, "walltime": 5.0}),
                ("instant", ("job.complete", "batch", "j1", 9.0), {"jid": 1}),
            ]
        )
        assert "walltime" in names(violations)

    def test_kill_at_exact_walltime_ok(self):
        violations = feed(
            [
                ("instant", ("job.start", "batch", "j1", 0.0), {"jid": 1, "walltime": 5.0}),
                ("instant", ("job.kill", "batch", "j1", 5.0), {"jid": 1}),
            ]
        )
        assert violations == []

    def test_order_never_committed(self):
        violations = feed(
            [
                ("instant", ("reconf.order", "scheduler", "j1", 0.0), {"jid": 1, "added": [3]}),
            ]
        )
        assert "reserved-committed" in names(violations)

    def test_order_then_commit_ok(self):
        violations = feed(
            [
                ("instant", ("reconf.order", "scheduler", "j1", 0.0), {"jid": 1, "added": [3]}),
                ("instant", ("reconf.commit", "batch", "j1", 1.0), {"jid": 1}),
            ]
        )
        assert violations == []

    def test_job_ends_holding_uncommitted_reservation(self):
        violations = feed(
            [
                (
                    "instant",
                    ("node.alloc", "node:3", "j1", 0.0),
                    {"node": 3, "jid": 1, "reserved": True},
                ),
                ("instant", ("reconf.order", "scheduler", "j1", 0.0), {"jid": 1, "added": [3]}),
                ("instant", ("job.kill", "batch", "j1", 2.0), {"jid": 1}),
            ]
        )
        assert "reserved-committed" in names(violations)

    def test_terminal_release(self):
        violations = feed(
            [
                ("instant", ("node.alloc", "node:0", "j1", 0.0), {"node": 0, "jid": 1}),
                ("instant", ("sim.end", "batch", "m", 5.0), {}),
            ]
        )
        assert "terminal-release" in names(violations)

    def test_finish_idempotent(self):
        checker = InvariantChecker()
        tracer = Tracer()
        tracer.instant("reconf.order", "scheduler", "j", 0.0, jid=1, added=[0])
        checker.check(tracer.records)
        before = len(checker.violations)
        checker.finish()
        assert len(checker.violations) == before


def feed_power(tracer_ops, *, num_nodes=None, power=None):
    """Like :func:`feed`, but with a power profile armed at construction."""
    tracer = Tracer()
    for method, args, kwargs in tracer_ops:
        getattr(tracer, method)(*args, **kwargs)
    return InvariantChecker(num_nodes=num_nodes, power=power).check(tracer.records)


#: Uniform 4-node machine: 100 W idle, 300 W busy, corridor sized for
#: exactly one busy node (4*100 + 200 = 600 W).
ONE_BUSY_CORRIDOR = {
    "idle": 100.0,
    "peak": 300.0,
    "corridor": 600.0,
    "enforced": True,
}


class TestPowerCorridor:
    def test_overdraw_violates(self):
        violations = feed_power(
            [
                ("instant", ("node.alloc", "node:0", "a", 1.0), {"node": 0, "jid": 1}),
                ("instant", ("node.alloc", "node:1", "a", 1.0), {"node": 1, "jid": 1}),
            ],
            num_nodes=4,
            power=ONE_BUSY_CORRIDOR,
        )
        assert names(violations) == ["power-corridor"]
        assert "800" in violations[0].message and "600" in violations[0].message

    def test_draw_at_the_corridor_is_clean(self):
        violations = feed_power(
            [
                ("instant", ("node.alloc", "node:0", "a", 1.0), {"node": 0, "jid": 1}),
                ("instant", ("node.release", "node:0", "a", 5.0), {"node": 0, "jid": 1}),
            ],
            num_nodes=4,
            power=ONE_BUSY_CORRIDOR,
        )
        assert violations == []

    def test_same_instant_transient_not_flagged(self):
        # Release-then-realloc at one instant briefly shows two owners;
        # only the settled state (one busy node) is audited.
        violations = feed_power(
            [
                ("instant", ("node.alloc", "node:0", "a", 1.0), {"node": 0, "jid": 1}),
                ("instant", ("node.alloc", "node:1", "a", 2.0), {"node": 1, "jid": 2}),
                ("instant", ("node.release", "node:0", "a", 2.0), {"node": 0, "jid": 1}),
                ("instant", ("node.release", "node:1", "a", 3.0), {"node": 1, "jid": 2}),
            ],
            num_nodes=4,
            power=ONE_BUSY_CORRIDOR,
        )
        assert violations == []

    def test_unenforced_corridor_is_not_audited(self):
        # Corridor-oblivious schedulers may exceed a declared corridor.
        profile = dict(ONE_BUSY_CORRIDOR, enforced=False)
        violations = feed_power(
            [
                ("instant", ("node.alloc", "node:0", "a", 1.0), {"node": 0, "jid": 1}),
                ("instant", ("node.alloc", "node:1", "a", 1.0), {"node": 1, "jid": 1}),
            ],
            num_nodes=4,
            power=profile,
        )
        assert violations == []

    def test_failed_node_draws_zero(self):
        # Corridor 550 < the healthy one-busy draw of 600; with node 1
        # down (0 W) the same allocation reads 300 + 2*100 = 500, clean.
        tight = dict(ONE_BUSY_CORRIDOR, corridor=550.0)
        ops = [
            ("instant", ("node.fail", "platform", "node:1", 0.0), {"node": 1}),
            ("instant", ("node.alloc", "node:0", "a", 1.0), {"node": 0, "jid": 1}),
            ("instant", ("node.release", "node:0", "a", 2.0), {"node": 0, "jid": 1}),
        ]
        assert feed_power(ops, num_nodes=4, power=tight) == []
        # The repair restores the node's idle draw and the audit sees it.
        repaired = ops[:2] + [
            ("instant", ("node.repair", "platform", "node:1", 1.5), {"node": 1}),
        ]
        violations = feed_power(repaired, num_nodes=4, power=tight)
        assert "power-corridor" in names(violations)

    def test_arming_via_sim_start_record(self):
        violations = feed(
            [
                (
                    "instant",
                    ("sim.start", "batch", "m", 0.0),
                    {"nodes": 4, "power": dict(ONE_BUSY_CORRIDOR)},
                ),
                ("instant", ("node.alloc", "node:0", "a", 1.0), {"node": 0, "jid": 1}),
                ("instant", ("node.alloc", "node:1", "a", 1.0), {"node": 1, "jid": 1}),
            ]
        )
        assert "power-corridor" in names(violations)

    def test_scalar_profile_without_node_count_stays_unarmed(self):
        violations = feed_power(
            [
                ("instant", ("node.alloc", "node:0", "a", 1.0), {"node": 0, "jid": 1}),
                ("instant", ("node.alloc", "node:1", "a", 1.0), {"node": 1, "jid": 1}),
            ],
            num_nodes=None,
            power=ONE_BUSY_CORRIDOR,
        )
        assert violations == []

    def test_per_node_wattage_lists(self):
        profile = {
            "idle": [100.0, 50.0, 100.0],
            "peak": [300.0, 400.0, 300.0],
            "corridor": 500.0,
            "enforced": True,
        }
        violations = feed_power(
            [
                ("instant", ("node.alloc", "node:1", "a", 1.0), {"node": 1, "jid": 1}),
            ],
            power=profile,  # count inferred from the lists
        )
        assert names(violations) == ["power-corridor"]


class TestInvariantViolationError:
    def test_message_previews_and_counts(self):
        from repro.tracing import Violation

        violations = [Violation(float(i), "walltime", f"v{i}") for i in range(5)]
        exc = InvariantViolation(violations)
        assert "5 invariant violation(s)" in str(exc)
        assert "+2 more" in str(exc)
        assert len(exc.violations) == 5


def _platform(count=16):
    return platform_from_dict(
        {
            "nodes": {"count": count, "flops": 1e12},
            "network": {"topology": "star", "bandwidth": 1e10},
        }
    )


def _workload(seed, **overrides):
    spec = dict(
        num_jobs=15,
        mean_interarrival=10.0,
        max_request=12,
        mean_runtime=40.0,
        runtime_sigma=0.7,
        malleable_fraction=0.4,
        evolving_fraction=0.2,
        walltime_slack=2.0,
    )
    spec.update(overrides)
    return generate_workload(WorkloadSpec(**spec), seed=seed)


class TestRealRuns:
    @pytest.mark.parametrize("algorithm", ["fcfs", "easy", "malleable", "moldable"])
    def test_checked_run_is_clean(self, algorithm):
        sim = Simulation(_platform(), _workload(seed=11), algorithm=algorithm)
        sim.run(check_invariants=True)
        assert sim.violations == []

    def test_saved_trace_checks_clean_post_hoc(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        sim = Simulation(_platform(), _workload(seed=5), algorithm="malleable")
        sim.run(trace=path)
        assert check_trace(path, num_nodes=16) == []

    def test_check_monitor_on_clean_run(self):
        monitor = Simulation(
            _platform(), _workload(seed=9), algorithm="malleable"
        ).run()
        assert check_monitor(monitor) == []

    def test_violation_raises_and_is_recorded(self, monkeypatch):
        # Checked runs must raise and keep the violations on the
        # simulation; inject one through the monitor audit (run() looks
        # it up on the module at call time).
        import repro.tracing as tracing

        injected = tracing.Violation(0.0, "series-segment", "injected for test")
        monkeypatch.setattr(tracing, "check_monitor", lambda monitor: [injected])
        sim = Simulation(_platform(), _workload(seed=5), algorithm="fcfs")
        with pytest.raises(InvariantViolation) as excinfo:
            sim.run(check_invariants=True)
        assert sim.violations == [injected]
        assert excinfo.value.violations == [injected]

    def test_trace_exported_even_when_run_fails(self, tmp_path):
        # A stalled simulation raises BatchError, but the finally block
        # must still flush the trace to disk — that is the whole point of
        # a flight recorder.
        from repro.batch import BatchError
        from repro.scheduler import Algorithm
        from repro.tracing import read_jsonl

        class DoNothing(Algorithm):
            name = "noop"

        path = tmp_path / "crash.trace.jsonl"
        sim = Simulation(_platform(), _workload(seed=5), algorithm=DoNothing())
        with pytest.raises(BatchError, match="stalled"):
            sim.run(trace=path)
        records = read_jsonl(path)
        assert any(r.kind == "sim.end" for r in records)
