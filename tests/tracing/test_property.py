"""Property-based test: every random workload produces a clean trace.

Hypothesis generates mixed rigid/malleable/evolving workloads over small
machines and pushes each through a fully checked simulation — the
invariant checker and the monitor audit must stay silent for *any*
policy/workload combination, and the exported Chrome trace must always
validate against the exporter's own schema.
"""

from hypothesis import given, settings, strategies as st

from repro import Simulation, platform_from_dict
from repro.tracing import check_trace, validate_chrome_trace
from repro.workload import WorkloadSpec, generate_workload


workload_specs = st.fixed_dictionaries(
    {
        "num_jobs": st.integers(min_value=1, max_value=12),
        "mean_interarrival": st.floats(min_value=0.0, max_value=60.0),
        "max_request": st.integers(min_value=1, max_value=8),
        "mean_runtime": st.floats(min_value=1.0, max_value=120.0),
        "runtime_sigma": st.floats(min_value=0.0, max_value=1.0),
        "malleable_fraction": st.floats(min_value=0.0, max_value=1.0),
        "evolving_fraction": st.floats(min_value=0.0, max_value=0.5),
        "walltime_slack": st.floats(min_value=1.2, max_value=5.0),
    }
)


@given(
    spec=workload_specs,
    seed=st.integers(min_value=0, max_value=2**16),
    algorithm=st.sampled_from(["fcfs", "easy", "malleable"]),
)
@settings(max_examples=25, deadline=None)
def test_property_random_workloads_hold_all_invariants(spec, seed, algorithm):
    # Fractions must sum to <= 1.
    total = spec["malleable_fraction"] + spec["evolving_fraction"]
    if total > 1.0:
        spec["malleable_fraction"] /= total
        spec["evolving_fraction"] /= total
    platform = platform_from_dict(
        {
            "nodes": {"count": 8, "flops": 1e11},
            "network": {"topology": "star", "bandwidth": 1e10},
        }
    )
    jobs = generate_workload(WorkloadSpec(**spec), seed=seed)
    sim = Simulation(platform, jobs, algorithm=algorithm)
    sim.run(check_invariants=True)  # raises InvariantViolation on failure
    assert sim.violations == []

    # The recorded stream must also check clean post hoc (pure records,
    # no simulator state) and export a schema-valid Chrome trace.
    assert check_trace(sim.tracer.records, num_nodes=8) == []
    validate_chrome_trace(sim.tracer.chrome_trace())
