"""Tests for node-failure injection."""

import pytest

from repro import Simulation
from repro.failures import Failure, FailureError, generate_failures
from repro.job import JobState

from tests.batch.conftest import make_job


class TestFailureModel:
    def test_validation(self):
        with pytest.raises(FailureError):
            Failure(time=-1, node_index=0, downtime=1)
        with pytest.raises(FailureError):
            Failure(time=0, node_index=-1, downtime=1)
        with pytest.raises(FailureError):
            Failure(time=0, node_index=0, downtime=0)

    def test_generator_reproducible(self):
        a = generate_failures(num_nodes=16, horizon=1e5, mtbf=1e4, mean_repair=100, seed=3)
        b = generate_failures(num_nodes=16, horizon=1e5, mtbf=1e4, mean_repair=100, seed=3)
        assert a == b

    def test_generator_sorted_and_within_horizon(self):
        failures = generate_failures(
            num_nodes=8, horizon=1e4, mtbf=2e3, mean_repair=50, seed=1
        )
        times = [f.time for f in failures]
        assert times == sorted(times)
        assert all(0 <= f.time < 1e4 for f in failures)
        assert all(0 <= f.node_index < 8 for f in failures)

    def test_generator_validation(self):
        with pytest.raises(FailureError):
            generate_failures(num_nodes=0, horizon=1, mtbf=1, mean_repair=1)
        with pytest.raises(FailureError):
            generate_failures(num_nodes=1, horizon=0, mtbf=1, mean_repair=1)
        with pytest.raises(FailureError):
            generate_failures(num_nodes=1, horizon=1, mtbf=0, mean_repair=1)
        with pytest.raises(FailureError):
            generate_failures(num_nodes=1, horizon=1, mtbf=1, mean_repair=0)

    def test_per_node_failures_never_overlap(self):
        # A node that is down cannot fail again: consecutive faults on one
        # node must be separated by at least the repair time.
        failures = generate_failures(
            num_nodes=4, horizon=1e5, mtbf=500, mean_repair=200, seed=7
        )
        by_node = {}
        for f in failures:
            by_node.setdefault(f.node_index, []).append(f)
        assert len(failures) > 20  # dense enough to be a real check
        for node_failures in by_node.values():
            for prev, nxt in zip(node_failures, node_failures[1:]):
                assert nxt.time >= prev.time + prev.downtime

    def test_downtime_has_a_positive_floor(self):
        # Exponential draws can be arbitrarily close to 0; the Failure
        # validator rejects non-positive downtimes, so the generator must
        # clamp.  mean_repair=1e-12 makes every raw draw effectively 0.
        failures = generate_failures(
            num_nodes=2, horizon=1e4, mtbf=100, mean_repair=1e-12, seed=0
        )
        assert failures
        assert all(f.downtime >= 1e-6 for f in failures)


class TestFailureInjection:
    def test_failure_kills_running_job(self, platform):
        job = make_job(1, total_flops=80e9, num_nodes=8)  # 10 s
        monitor = Simulation(
            platform,
            [job],
            algorithm="fcfs",
            failures=[Failure(time=3.0, node_index=2, downtime=100.0)],
        ).run()
        assert job.state is JobState.KILLED
        assert job.kill_reason == "node_failure"
        assert job.end_time == pytest.approx(3.0)
        assert (3.0, "fail", 2) in monitor.node_events

    def test_failed_node_not_rescheduled_until_repair(self, platform):
        # Job 1 dies at t=1 on the failed node; job 2 (8 nodes) cannot start
        # until the node repairs at t=5.
        jobs = [
            make_job(1, total_flops=80e9, num_nodes=8),
            make_job(2, total_flops=8e9, num_nodes=8, submit_time=0.5),
        ]
        Simulation(
            platform,
            jobs,
            algorithm="fcfs",
            failures=[Failure(time=1.0, node_index=0, downtime=4.0)],
        ).run()
        assert jobs[0].state is JobState.KILLED
        assert jobs[1].start_time == pytest.approx(5.0)  # at repair
        assert jobs[1].state is JobState.COMPLETED

    def test_failure_on_free_node_kills_nothing(self, platform):
        job = make_job(1, total_flops=8e9, num_nodes=4)  # uses nodes 0-3
        monitor = Simulation(
            platform,
            [job],
            algorithm="fcfs",
            failures=[Failure(time=0.5, node_index=7, downtime=10.0)],
        ).run()
        assert job.state is JobState.COMPLETED
        assert (0.5, "fail", 7) in monitor.node_events

    def test_smaller_jobs_route_around_failed_node(self, platform):
        # Node 0 goes down before the job submits; the 7-node job starts on
        # nodes 1..7 instead.
        job = make_job(1, total_flops=7e9, num_nodes=7, submit_time=0.5)
        Simulation(
            platform,
            [job],
            algorithm="fcfs",
            failures=[Failure(time=0.1, node_index=0, downtime=100.0)],
        ).run(until=5.0)
        assert job.state is JobState.COMPLETED
        assert 0 not in {n.index for n in job.assigned_nodes}

    def test_repair_event_recorded(self, platform):
        job = make_job(1, total_flops=8e9, num_nodes=4)
        monitor = Simulation(
            platform,
            [job],
            algorithm="fcfs",
            failures=[Failure(time=0.1, node_index=7, downtime=0.5)],
        ).run()
        assert (pytest.approx(0.6), "repair", 7) in [
            (t, k, n) for t, k, n in monitor.node_events
        ]

    def test_out_of_range_failure_rejected(self, platform):
        from repro.batch import BatchError

        with pytest.raises(BatchError, match="targets node"):
            Simulation(
                platform,
                [make_job(1)],
                algorithm="fcfs",
                failures=[Failure(time=0.0, node_index=99, downtime=1.0)],
            )

    def test_heavy_failure_trace_keeps_invariants(self, platform):
        failures = generate_failures(
            num_nodes=8, horizon=100.0, mtbf=30.0, mean_repair=5.0, seed=7
        )
        jobs = [
            make_job(i, total_flops=4e9, num_nodes=2, submit_time=2.0 * i)
            for i in range(1, 16)
        ]
        monitor = Simulation(
            platform, jobs, algorithm="easy", failures=failures
        ).run()
        for job in jobs:
            assert job.finished
        # No phantom allocations beyond machine size.
        for _, count in monitor.allocation_series:
            assert 0 <= count <= 8
