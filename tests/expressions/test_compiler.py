"""Compiled-expression pipeline vs the tree-walking interpreter.

The compiled path (``repro.expressions.compiler``) must be observationally
identical to ``Expression.evaluate``: same values bit-for-bit, same
``ExpressionError`` messages, for every AST the parser can produce.  The
property test below generates random ASTs (including division by zero,
overflowing powers, and unknown variables) and asserts exactly that.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.expressions import (
    CompiledExpression,
    ExpressionError,
    STATS,
    compile_expression,
    compiled_enabled,
    compiled_expression,
    set_compiled_enabled,
)
from repro.expressions.ast import (
    _BINARY_OPS,
    BinaryOp,
    Call,
    Number,
    UnaryOp,
    Variable,
)

VAR_NAMES = ("num_nodes", "iteration", "x")

_numbers = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.floats(
        min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
    ),
)

_leaves = st.one_of(
    st.builds(Number, _numbers),
    st.builds(Variable, st.sampled_from(VAR_NAMES)),
)


def _composites(children):
    binary = st.builds(
        BinaryOp, st.sampled_from(sorted(_BINARY_OPS)), children, children
    )
    unary = st.builds(UnaryOp, st.sampled_from(["-", "+"]), children)
    fixed_call = st.one_of(
        st.builds(lambda a: Call("abs", [a]), children),
        st.builds(lambda a: Call("sqrt", [a]), children),
        st.builds(lambda a: Call("ceil", [a]), children),
        st.builds(lambda a: Call("log", [a]), children),
        st.builds(lambda a, b: Call("pow", [a, b]), children, children),
        st.builds(lambda a, b, c: Call("if", [a, b, c]), children, children, children),
        # min/max with a single argument raise a bare TypeError (Python's
        # min(5)) in both paths; keep >= 2 args so outcomes stay within the
        # ExpressionError contract this test asserts on.
        st.builds(
            lambda args: Call("min", args), st.lists(children, min_size=2, max_size=3)
        ),
        st.builds(
            lambda args: Call("max", args), st.lists(children, min_size=2, max_size=3)
        ),
    )
    return st.one_of(binary, unary, fixed_call)


_asts = st.recursive(_leaves, _composites, max_leaves=12)

_bindings = st.fixed_dictionaries(
    {},
    optional={
        name: st.one_of(
            st.integers(min_value=-20, max_value=20),
            st.floats(
                min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
            ),
        )
        for name in VAR_NAMES
    },
)


def _outcome(fn, variables):
    """(value, error-args) of evaluating; exactly one side is non-None."""
    try:
        return fn(variables), None
    except ExpressionError as exc:
        return None, exc.args


@settings(max_examples=300, deadline=None)
@given(ast=_asts, variables=_bindings)
def test_compiled_matches_interpreter(ast, variables):
    compiled = CompiledExpression(ast)
    interp_value, interp_err = _outcome(ast.evaluate, variables)
    for _ in range(2):  # second pass exercises the memo / cached error
        value, err = _outcome(compiled.evaluate, variables)
        assert err == interp_err
        if interp_err is None:
            # Bit-identical, including type (int stays int) and signed zero.
            assert type(value) is type(interp_value)
            assert repr(value) == repr(interp_value)


@settings(max_examples=150, deadline=None)
@given(ast=_asts, variables=_bindings)
def test_disabled_mode_matches_compiled(ast, variables):
    compiled = CompiledExpression(ast)
    enabled = _outcome(compiled.evaluate, variables)
    set_compiled_enabled(False)
    try:
        assert not compiled_enabled()
        assert _outcome(compiled.evaluate, variables) == enabled
    finally:
        set_compiled_enabled(True)


def test_memo_hit_counted_and_value_stable():
    expr = compiled_expression(compile_expression("num_nodes * 2 + 1"))
    first = expr.evaluate({"num_nodes": 21})
    before = STATS.snapshot()
    again = expr.evaluate({"num_nodes": 21})
    delta = STATS.since(before)
    assert again == first == 43
    assert delta.memo_hits == 1 and delta.evaluations == 1


def test_memo_ignores_irrelevant_bindings():
    # `iteration` is not free in the expression, so changing it must not
    # miss the memo — this is what makes per-iteration evaluation cheap.
    expr = compiled_expression(compile_expression("num_nodes * 3"))
    expr.evaluate({"num_nodes": 4, "iteration": 0})
    before = STATS.snapshot()
    assert expr.evaluate({"num_nodes": 4, "iteration": 17}) == 12
    assert STATS.since(before).memo_hits == 1


def test_constant_folding_counts_and_defers_errors():
    const = compiled_expression("2 ^ 10")
    before = STATS.snapshot()
    assert const.evaluate({}) == 1024
    assert STATS.since(before).constant_hits == 1

    # A failing literal expression must fail at evaluate(), not at load.
    failing = CompiledExpression(compile_expression("1 / 0"))
    with pytest.raises(ExpressionError, match="Division by zero"):
        failing.evaluate({})
    # ... and keep failing identically on the second call.
    with pytest.raises(ExpressionError, match="Division by zero"):
        failing.evaluate({})


def test_unknown_variable_message_matches_interpreter():
    ast = compile_expression("num_nodes + missing_var")
    compiled = CompiledExpression(ast)
    bindings = {"num_nodes": 2, "other": 7}
    with pytest.raises(ExpressionError) as interp:
        ast.evaluate(bindings)
    with pytest.raises(ExpressionError) as comp:
        compiled.evaluate(bindings)
    assert comp.value.args == interp.value.args
    assert "missing_var" in str(comp.value)


def test_error_messages_not_cached_across_binding_sets():
    # The unknown-variable message embeds the *full* binding set, which can
    # differ between calls sharing a memo key — errors must never be memoised.
    compiled = CompiledExpression(compile_expression("a + b"))
    with pytest.raises(ExpressionError) as first:
        compiled.evaluate({"a": 1})
    with pytest.raises(ExpressionError) as second:
        compiled.evaluate({"a": 1, "extra": 9})
    assert "extra" in str(second.value)
    assert "extra" not in str(first.value)


def test_source_interning_shares_compiled_object():
    assert compiled_expression("num_nodes + 40") is compiled_expression(
        "num_nodes + 40"
    )


def test_compiled_expression_is_an_expression():
    expr = compiled_expression("sqrt(num_nodes)")
    assert expr.variables() == {"num_nodes"}
    assert expr.evaluate({"num_nodes": 9}) == math.sqrt(9)
