"""Property tests: expression serialization round-trips exactly."""

from hypothesis import given, settings, strategies as st

from repro.application import expression_to_source
from repro.expressions import (
    BinaryOp,
    Call,
    Expression,
    Number,
    UnaryOp,
    Variable,
    compile_expression,
)


@st.composite
def _random_asts(draw, depth=4) -> Expression:
    if depth == 0 or draw(st.integers(0, 3)) == 0:
        kind = draw(st.integers(0, 1))
        if kind == 0:
            return Number(
                draw(
                    st.one_of(
                        st.integers(min_value=0, max_value=10**9),
                        st.floats(
                            min_value=0.0,
                            max_value=1e15,
                            allow_nan=False,
                            allow_infinity=False,
                        ),
                    )
                )
            )
        return Variable(draw(st.sampled_from(["num_nodes", "x", "steps", "a_b"])))
    kind = draw(st.integers(0, 2))
    if kind == 0:
        op = draw(st.sampled_from(["+", "-", "*", "/", "%", "^", "//"]))
        return BinaryOp(
            op, draw(_random_asts(depth=depth - 1)), draw(_random_asts(depth=depth - 1))
        )
    if kind == 1:
        return UnaryOp("-", draw(_random_asts(depth=depth - 1)))
    name = draw(st.sampled_from(["min", "max", "pow"]))
    arity = 2
    return Call(name, [draw(_random_asts(depth=depth - 1)) for _ in range(arity)])


def _eval_or_error(expr: Expression, variables):
    from repro.expressions import ExpressionError

    try:
        return ("ok", expr.evaluate(variables))
    except ExpressionError as exc:
        return ("err", type(exc).__name__)


@given(_random_asts())
@settings(max_examples=300, deadline=None)
def test_property_serialize_parse_roundtrip_preserves_semantics(ast):
    source = expression_to_source(ast)
    clone = compile_expression(source)
    variables = {"num_nodes": 7, "x": 3.5, "steps": 12, "a_b": 2}
    original = _eval_or_error(ast, variables)
    roundtripped = _eval_or_error(clone, variables)
    if original[0] == "ok" and isinstance(original[1], float):
        assert roundtripped[0] == "ok"
        import math

        if math.isfinite(original[1]):
            assert roundtripped[1] == original[1] or abs(
                roundtripped[1] - original[1]
            ) <= 1e-9 * abs(original[1])
    else:
        assert roundtripped == original


@given(_random_asts())
@settings(max_examples=300, deadline=None)
def test_property_roundtrip_variables_preserved(ast):
    source = expression_to_source(ast)
    clone = compile_expression(source)
    assert clone.variables() == ast.variables()
