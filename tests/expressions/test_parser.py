"""Tests for the expression tokenizer, parser, and evaluator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.expressions import ExpressionError, compile_expression, parse


def ev(source, **variables):
    return parse(source).evaluate(variables)


class TestLiterals:
    def test_integer(self):
        assert ev("42") == 42

    def test_float(self):
        assert ev("3.25") == 3.25

    def test_leading_dot(self):
        assert ev(".5") == 0.5

    def test_scientific(self):
        assert ev("1e12") == 1e12
        assert ev("2.5E-3") == 2.5e-3

    def test_int_stays_int(self):
        assert isinstance(ev("7"), int)


class TestArithmetic:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("1 + 2", 3),
            ("10 - 4", 6),
            ("6 * 7", 42),
            ("10 / 4", 2.5),
            ("10 // 4", 2),
            ("10 % 3", 1),
            ("2 ^ 10", 1024),
        ],
    )
    def test_binary_ops(self, source, expected):
        assert ev(source) == expected

    def test_precedence_mul_over_add(self):
        assert ev("2 + 3 * 4") == 14

    def test_precedence_pow_over_mul(self):
        assert ev("2 * 3 ^ 2") == 18

    def test_pow_right_associative(self):
        assert ev("2 ^ 3 ^ 2") == 512

    def test_parentheses_override(self):
        assert ev("(2 + 3) * 4") == 20

    def test_unary_minus(self):
        assert ev("-5 + 3") == -2

    def test_unary_minus_binds_tighter_than_mul(self):
        assert ev("-2 * 3") == -6

    def test_double_unary(self):
        assert ev("--5") == 5

    def test_unary_on_parenthesized(self):
        assert ev("-(2 + 3)") == -5

    def test_division_by_zero_raises(self):
        with pytest.raises(ExpressionError, match="zero"):
            ev("1 / 0")
        with pytest.raises(ExpressionError, match="zero"):
            ev("1 // 0")
        with pytest.raises(ExpressionError, match="zero"):
            ev("1 % 0")


class TestVariables:
    def test_simple_variable(self):
        assert ev("num_nodes", num_nodes=16) == 16

    def test_weak_scaling_expression(self):
        assert ev("1e12 / num_nodes", num_nodes=8) == 1.25e11

    def test_unknown_variable_raises_with_available(self):
        with pytest.raises(ExpressionError, match="num_nodes"):
            ev("missing_name", num_nodes=4)

    def test_variables_reported(self):
        expr = parse("a * b + min(c, 2)")
        assert expr.variables() == {"a", "b", "c"}


class TestFunctions:
    def test_min_max_variadic(self):
        assert ev("min(3, 1, 2)") == 1
        assert ev("max(3, 1, 2)") == 3

    def test_ceil_floor_round_abs(self):
        assert ev("ceil(1.2)") == 2
        assert ev("floor(1.8)") == 1
        assert ev("round(2.5)") == 2  # banker's rounding
        assert ev("abs(-4)") == 4

    def test_sqrt_log_exp(self):
        assert ev("sqrt(16)") == 4
        assert ev("log2(8)") == 3
        assert ev("log(exp(1))") == pytest.approx(1.0)

    def test_pow_two_args(self):
        assert ev("pow(2, 8)") == 256

    def test_if_function(self):
        assert ev("if(num_nodes > 4, 100, 200)", num_nodes=8) == 100
        assert ev("if(num_nodes > 4, 100, 200)", num_nodes=2) == 200

    def test_comparison_yields_float_bool(self):
        assert ev("3 > 2") == 1.0
        assert ev("3 < 2") == 0.0
        assert ev("2 == 2") == 1.0
        assert ev("2 != 2") == 0.0

    def test_unknown_function_raises(self):
        with pytest.raises(ExpressionError, match="Unknown function"):
            parse("frobnicate(1)")

    def test_wrong_arity_raises(self):
        with pytest.raises(ExpressionError, match="argument"):
            parse("pow(1)")
        with pytest.raises(ExpressionError, match="argument"):
            parse("sqrt(1, 2)")
        with pytest.raises(ExpressionError, match="at least one"):
            parse("min()")

    def test_sqrt_negative_raises(self):
        with pytest.raises(ExpressionError):
            ev("sqrt(-1)")

    def test_log_nonpositive_raises(self):
        with pytest.raises(ExpressionError):
            ev("log(0)")


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        ["", "   ", "1 +", "* 3", "(1 + 2", "1 + 2)", "1 2", "min(1,", "@", "a b"],
    )
    def test_malformed_expressions(self, source):
        with pytest.raises(ExpressionError):
            parse(source)

    def test_non_string_rejected_by_parse(self):
        with pytest.raises(ExpressionError):
            parse(None)  # type: ignore[arg-type]


class TestCompileExpression:
    def test_number_passthrough(self):
        assert compile_expression(5).evaluate({}) == 5
        assert compile_expression(2.5).evaluate({}) == 2.5

    def test_string_parsed(self):
        assert compile_expression("2 * 3").evaluate({}) == 6

    def test_expression_passthrough(self):
        expr = parse("1 + 1")
        assert compile_expression(expr) is expr

    def test_bool_rejected(self):
        with pytest.raises(ExpressionError):
            compile_expression(True)


class TestRealWorldExpressions:
    """Shapes that actual application models use."""

    def test_strong_scaled_compute(self):
        assert ev("2e13 / num_nodes", num_nodes=32) == 6.25e11

    def test_alltoall_message_volume(self):
        got = ev("1e6 * num_nodes * (num_nodes - 1)", num_nodes=4)
        assert got == 12e6

    def test_checkpoint_every_k_iterations(self):
        assert ev("if(iteration % 10 == 0, 1e9, 0)", iteration=20) == 1e9
        assert ev("if(iteration % 10 == 0, 1e9, 0)", iteration=21) == 0

    def test_job_argument_reference(self):
        assert ev("grid_x * grid_y * 8", grid_x=100, grid_y=200) == 160000


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

@given(st.integers(min_value=-10**6, max_value=10**6))
def test_property_integer_literal_roundtrip(n):
    if n < 0:
        assert ev(str(n)) == n
    else:
        assert ev(str(n)) == n


@given(
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=-1000, max_value=1000),
)
def test_property_addition_matches_python(a, b):
    assert ev(f"({a}) + ({b})") == a + b


@given(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
)
def test_property_division_matches_python(a, b):
    assert ev(f"({a!r}) / ({b!r})") == pytest.approx(a / b)


@given(st.text(alphabet="abcdefgh_", min_size=1, max_size=10))
@settings(max_examples=50)
def test_property_identifier_resolution(name):
    assert ev(name, **{name: 3.5}) == 3.5


_expr_leaf = st.one_of(
    st.integers(min_value=0, max_value=100).map(str),
    st.sampled_from(["x", "y"]),
)


@st.composite
def _rand_exprs(draw, depth=3):
    if depth == 0:
        return draw(_expr_leaf)
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        return draw(_expr_leaf)
    if kind == 1:
        op = draw(st.sampled_from(["+", "-", "*"]))
        left = draw(_rand_exprs(depth=depth - 1))
        right = draw(_rand_exprs(depth=depth - 1))
        return f"({left} {op} {right})"
    if kind == 2:
        inner = draw(_rand_exprs(depth=depth - 1))
        return f"-({inner})"
    fn = draw(st.sampled_from(["min", "max"]))
    left = draw(_rand_exprs(depth=depth - 1))
    right = draw(_rand_exprs(depth=depth - 1))
    return f"{fn}({left}, {right})"


@given(_rand_exprs())
@settings(max_examples=200, deadline=None)
def test_property_random_expressions_match_python_eval(source):
    """Our evaluator agrees with Python's own eval on the shared subset."""
    ours = ev(source, x=7, y=13)
    theirs = eval(source, {"__builtins__": {}}, {"x": 7, "y": 13, "min": min, "max": max})
    assert ours == theirs
