"""Edge-path tests that round out coverage of smaller branches."""

import json

import pytest

from repro.cli import main
from repro.expressions import parse

from tests.batch.conftest import make_job


class TestExpressionEdges:
    def test_unary_plus(self):
        assert parse("+5").evaluate({}) == 5
        assert parse("+-+5").evaluate({}) == -5

    def test_modulo_floats(self):
        assert parse("7.5 % 2").evaluate({}) == pytest.approx(1.5)

    def test_comparison_chains_via_if(self):
        expr = parse("if((a >= 1) * (a <= 3), 10, 20)")
        assert expr.evaluate({"a": 2}) == 10
        assert expr.evaluate({"a": 5}) == 20


class TestTransferUsageMerge:
    def test_extra_usage_max_merges_with_route(self):
        """A resource appearing in both route and extra keeps the max factor."""
        from repro.des import Environment
        from repro.engine import transfer
        from repro.platform import Route
        from repro.sharing import FairShareModel, SharedResource

        env = Environment()
        model = FairShareModel(env)
        shared = SharedResource("dual", 1e9)
        route = Route((shared,), 0.0)
        act = transfer(env, model, route, 1e9, extra_usages={shared: 2.0})
        assert act.usages[shared] == 2.0  # max(1.0, 2.0)
        env.run()
        # factor 2: effective rate 0.5e9 → 2 s.
        assert env.now == pytest.approx(2.0)

    def test_zero_resource_route_with_latency_completes(self):
        from repro.des import Environment
        from repro.engine import transfer
        from repro.platform import Route
        from repro.sharing import FairShareModel

        env = Environment()
        model = FairShareModel(env)
        act = transfer(env, model, Route((), 0.5), 1e9)
        env.run()
        # No resources → unbounded rate → immediate completion (loopback).
        assert act.done.triggered


class TestCliRunOptions:
    @pytest.fixture()
    def files(self, tmp_path):
        platform = tmp_path / "p.json"
        platform.write_text(
            json.dumps(
                {
                    "nodes": {"count": 8, "flops": 1e12},
                    "network": {"topology": "star", "bandwidth": 1e10},
                }
            )
        )
        workload = tmp_path / "w.json"
        assert (
            main(
                [
                    "generate",
                    "--output",
                    str(workload),
                    "--num-jobs",
                    "4",
                    "--max-request",
                    "8",
                    "--mean-runtime",
                    "100",
                ]
            )
            == 0
        )
        return platform, workload

    def test_run_with_until(self, files, capsys):
        platform, workload = files
        assert (
            main(
                [
                    "run",
                    "--platform",
                    str(platform),
                    "--workload",
                    str(workload),
                    "--until",
                    "1.0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "completed_jobs" in out

    def test_run_with_interval(self, files, capsys):
        platform, workload = files
        assert (
            main(
                [
                    "run",
                    "--platform",
                    str(platform),
                    "--workload",
                    str(workload),
                    "--interval",
                    "10",
                ]
            )
            == 0
        )


class TestPeriodicStops:
    def test_periodic_process_ends_with_last_job(self, platform):
        """The periodic scheduler loop must not keep the run alive forever."""
        from repro.batch import Simulation

        job = make_job(1, total_flops=8e9, num_nodes=8)  # 1 s
        sim = Simulation(
            platform, [job], algorithm="fcfs", invocation_interval=0.25
        )
        monitor = sim.run()
        assert job.end_time == pytest.approx(1.0)
        # Queue drained; env has at most the final periodic tick pending.
        assert monitor.makespan() == pytest.approx(1.0)


class TestMonitorFinalizeIdempotence:
    def test_double_finalize_is_harmless(self, platform):
        from repro.batch import Simulation

        job = make_job(1, total_flops=8e9, num_nodes=8)
        sim = Simulation(platform, [job], algorithm="fcfs")
        monitor = sim.run()
        before = len(monitor.allocation_series)
        monitor.finalize()
        assert len(monitor.allocation_series) == before + 1  # appends again
        assert monitor.summary().completed_jobs == 1
