"""Analytic timing tests for mixed compute/comm/I/O scenarios.

Each case has a closed-form runtime derived from the max-min fair-sharing
model; these pin the engine+sharing semantics down far beyond the single-
task cases in test_executor.py.
"""

import pytest

from repro.application import (
    ApplicationModel,
    CommPattern,
    CommTask,
    CpuTask,
    DelayTask,
    PfsReadTask,
    PfsWriteTask,
    Phase,
)
from repro.batch import Simulation
from repro.job import Job
from repro.platform import platform_from_dict


def tiny_platform(**overrides):
    spec = {
        "nodes": {"count": 8, "flops": 1e9},
        "network": {
            "topology": "star",
            "bandwidth": 1e9,
            "latency": 0.0,
            "pfs_bandwidth": 1e12,
        },
        "pfs": {"read_bw": 2e9, "write_bw": 2e9},
    }
    spec.update(overrides)
    return platform_from_dict(spec)


def run_jobs(platform, *jobs):
    Simulation(platform, list(jobs), algorithm="fcfs").run()
    return jobs


class TestSequentialPipelines:
    def test_compute_comm_write_pipeline(self):
        # Phase: cpu 8e9 on 4 nodes (2 s) → ring 1e9 (1 s) → write 4e9
        # total at 2e9 B/s PFS, links 1e9 x 4 ample (2 s).  Total 5 s.
        app = ApplicationModel(
            [
                Phase(
                    [
                        CpuTask("8e9"),
                        CommTask("1e9", pattern=CommPattern.RING),
                        PfsWriteTask("4e9"),
                    ]
                )
            ]
        )
        (job,) = run_jobs(tiny_platform(), Job(1, app, num_nodes=4))
        assert job.runtime == pytest.approx(5.0)

    def test_iterated_pipeline_multiplies(self):
        app = ApplicationModel(
            [
                Phase(
                    [CpuTask("4e9"), DelayTask("0.5")],
                    iterations=4,
                )
            ]
        )
        (job,) = run_jobs(tiny_platform(), Job(1, app, num_nodes=4))
        # (1 + 0.5) x 4.
        assert job.runtime == pytest.approx(6.0)

    def test_read_compute_write_with_uneven_phases(self):
        app = ApplicationModel(
            [
                Phase([PfsReadTask("2e9")], name="in", scheduling_point=False),
                Phase([CpuTask("8e9")], name="solve"),
                Phase([PfsWriteTask("2e9")], name="out", scheduling_point=False),
            ]
        )
        (job,) = run_jobs(tiny_platform(), Job(1, app, num_nodes=2))
        # Read: 2e9 total, 1e9/node over 1e9 links, PFS read 2e9 → 1 s.
        # Compute: 8e9 / 2e9 = 4 s.  Write: 1 s.  Total 6 s.
        assert job.runtime == pytest.approx(6.0)


class TestCrossJobContention:
    def test_two_jobs_share_pfs_writes(self):
        # Both jobs write 4e9 B concurrently; PFS write 2e9 B/s total →
        # 8e9 B at 2e9 → 4 s each (links not limiting: 4 nodes x 1e9 each).
        app = ApplicationModel([Phase([PfsWriteTask("4e9")])])
        platform = tiny_platform()
        j1, j2 = run_jobs(
            platform,
            Job(1, app, num_nodes=4),
            Job(2, app, num_nodes=4),
        )
        assert j1.runtime == pytest.approx(4.0)
        assert j2.runtime == pytest.approx(4.0)

    def test_compute_job_unaffected_by_io_job(self):
        # CPU and PFS are disjoint resources: timings are independent.
        cpu_app = ApplicationModel([Phase([CpuTask("4e9")])])
        io_app = ApplicationModel([Phase([PfsWriteTask("8e9")])])
        platform = tiny_platform()
        j1, j2 = run_jobs(
            platform,
            Job(1, cpu_app, num_nodes=4),
            Job(2, io_app, num_nodes=4),
        )
        assert j1.runtime == pytest.approx(1.0)  # 4e9 / 4e9 flops
        assert j2.runtime == pytest.approx(4.0)  # 8e9 / 2e9 B/s

    def test_comm_jobs_share_interfering_links(self):
        # Two 2-node jobs: job1 on nodes {0,1}, job2 on nodes {2,3}.
        # Disjoint node pairs → disjoint up/down links → no interference.
        app = ApplicationModel(
            [Phase([CommTask("1e9", pattern=CommPattern.RING)])]
        )
        platform = tiny_platform()
        j1, j2 = run_jobs(
            platform, Job(1, app, num_nodes=2), Job(2, app, num_nodes=2)
        )
        assert j1.runtime == pytest.approx(1.0)
        assert j2.runtime == pytest.approx(1.0)

    def test_queueing_behind_io_heavy_job(self):
        # An 8-node I/O job holds the machine for 4 s; a compute job queues.
        io_app = ApplicationModel([Phase([PfsWriteTask("8e9")])])
        cpu_app = ApplicationModel([Phase([CpuTask("8e9")])])
        platform = tiny_platform()
        j1, j2 = run_jobs(
            platform,
            Job(1, io_app, num_nodes=8),
            Job(2, cpu_app, num_nodes=8, submit_time=0.5),
        )
        assert j1.runtime == pytest.approx(4.0)
        assert j2.start_time == pytest.approx(4.0)
        assert j2.runtime == pytest.approx(1.0)


class TestExpressionDrivenTasks:
    def test_iteration_dependent_checkpoint(self):
        # Checkpoint only on iteration 2 (0-based): 2 light iterations and
        # one with a 2e9 write (1 s at PFS 2e9 B/s).
        app = ApplicationModel(
            [
                Phase(
                    [
                        CpuTask("4e9"),
                        PfsWriteTask("if(iteration == 2, 2e9, 0)"),
                    ],
                    iterations=3,
                )
            ]
        )
        (job,) = run_jobs(tiny_platform(), Job(1, app, num_nodes=4))
        # 3 x 1 s compute + 1 s single checkpoint.
        assert job.runtime == pytest.approx(4.0)

    def test_job_argument_scales_work(self):
        app = ApplicationModel(
            [Phase([CpuTask("per_step * num_nodes")], iterations="steps")]
        )
        (job,) = run_jobs(
            tiny_platform(),
            Job(
                1,
                app,
                num_nodes=4,
                arguments={"per_step": 1e9, "steps": 3},
            ),
        )
        # Each iteration: 4e9 total over 4 nodes → 1 s; 3 iterations.
        assert job.runtime == pytest.approx(3.0)

    def test_num_nodes_in_comm_expression(self):
        app = ApplicationModel(
            [Phase([CommTask("1e9 / (num_nodes - 1)", pattern=CommPattern.BCAST)])]
        )
        (job,) = run_jobs(tiny_platform(), Job(1, app, num_nodes=5))
        # Root sends 4 messages of 0.25e9 through its 1e9 uplink → 1 s.
        assert job.runtime == pytest.approx(1.0)


class TestLatencyAccounting:
    def test_link_latency_adds_to_transfers(self):
        platform = tiny_platform(
            network={
                "topology": "star",
                "bandwidth": 1e9,
                "latency": 0.05,
                "pfs_bandwidth": 1e12,
            }
        )
        app = ApplicationModel(
            [Phase([CommTask("1e9", pattern=CommPattern.RING)])]
        )
        (job,) = run_jobs(platform, Job(1, app, num_nodes=2))
        # 1e9 B at 1e9 B/s + 2 links x 0.05 s latency = 1.1 s (the latency
        # is charged as equivalent bytes at the bottleneck bandwidth).
        assert job.runtime == pytest.approx(1.1, rel=1e-3)
