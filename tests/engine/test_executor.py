"""Tests for task execution timing: compute, comm, I/O, delays."""

import pytest

from repro.application import (
    ApplicationModel,
    BbWriteTask,
    CommPattern,
    CommTask,
    CpuTask,
    DelayTask,
    Distribution,
    PfsReadTask,
    PfsWriteTask,
    Phase,
)
from repro.engine import EngineError
from repro.platform import platform_from_dict


def app_of(*tasks, iterations=1, data_per_node=0, scheduling_point=True):
    return ApplicationModel(
        [Phase(list(tasks), iterations=iterations, scheduling_point=scheduling_point)],
        data_per_node=data_per_node,
    )


class TestCompute:
    def test_even_compute_time(self, env, start_job):
        # 4e9 flops over 4 nodes of 1e9 flops/s → 1 s.
        job, proc = start_job(app_of(CpuTask("4e9")))
        env.run()
        assert proc.value == "completed"
        assert env.now == pytest.approx(1.0)

    def test_per_node_compute_time(self, env, start_job):
        job, proc = start_job(
            app_of(CpuTask("2e9", distribution=Distribution.PER_NODE))
        )
        env.run()
        assert env.now == pytest.approx(2.0)

    def test_strong_scaling_speedup(self, env, start_job):
        # Same total work on 2 nodes takes twice the per-node share.
        job, proc = start_job(app_of(CpuTask("4e9")), num_nodes=2)
        env.run()
        assert env.now == pytest.approx(2.0)

    def test_iterations_multiply_time(self, env, start_job):
        job, proc = start_job(app_of(CpuTask("4e9"), iterations=3))
        env.run()
        assert env.now == pytest.approx(3.0)

    def test_zero_flops_instant(self, env, start_job):
        job, proc = start_job(app_of(CpuTask(0)))
        env.run()
        assert env.now == 0.0
        assert proc.value == "completed"

    def test_sequential_tasks_in_phase(self, env, start_job):
        job, proc = start_job(app_of(CpuTask("4e9"), CpuTask("8e9")))
        env.run()
        assert env.now == pytest.approx(3.0)


class TestCommunication:
    def test_ring_no_contention(self, env, start_job):
        # Ring: each up/down link carries exactly one 1e9-byte flow at 1e9 B/s.
        job, proc = start_job(app_of(CommTask("1e9", pattern=CommPattern.RING)))
        env.run()
        assert env.now == pytest.approx(1.0)

    def test_alltoall_contends_on_nics(self, env, start_job):
        # All-to-all on 4 nodes: each up link carries 3 flows → each flow
        # gets 1/3 of 1e9 B/s → 1e9 bytes take 3 s.
        job, proc = start_job(app_of(CommTask("1e9", pattern=CommPattern.ALL_TO_ALL)))
        env.run()
        assert env.now == pytest.approx(3.0)

    def test_bcast_contends_on_root_uplink(self, env, start_job):
        # Root sends 3 x 1e9 through its single 1e9 B/s uplink → 3 s.
        job, proc = start_job(app_of(CommTask("1e9", pattern=CommPattern.BCAST)))
        env.run()
        assert env.now == pytest.approx(3.0)

    def test_single_node_comm_is_free(self, env, start_job):
        job, proc = start_job(app_of(CommTask("1e9")), num_nodes=1)
        env.run()
        assert env.now == 0.0

    def test_zero_bytes_is_free(self, env, start_job):
        job, proc = start_job(app_of(CommTask(0)))
        env.run()
        assert env.now == 0.0


class TestPfsIo:
    def test_write_limited_by_pfs_bandwidth(self, env, start_job):
        # 4 nodes x 1e9 B (per_node) against a 2e9 B/s PFS write service:
        # aggregate 4e9 B at 2e9 B/s → 2 s.
        job, proc = start_job(
            app_of(PfsWriteTask("1e9", distribution=Distribution.PER_NODE))
        )
        env.run()
        assert env.now == pytest.approx(2.0)

    def test_read_limited_by_node_links_when_pfs_fast(self, env, start_job):
        # 1 node reads 3e9 B: PFS read 2e9 B/s beats the 1e9 B/s node link →
        # the link is the bottleneck → 3 s.
        job, proc = start_job(
            app_of(PfsReadTask("3e9", distribution=Distribution.PER_NODE)),
            num_nodes=1,
        )
        env.run()
        assert env.now == pytest.approx(3.0)

    def test_even_distribution_splits_io(self, env, start_job):
        # 4e9 B total over 4 nodes → 1e9 B each; PFS write 2e9 B/s shared →
        # 2 s (same as per-node 1e9 case).
        job, proc = start_job(app_of(PfsWriteTask("4e9")))
        env.run()
        assert env.now == pytest.approx(2.0)

    def test_missing_pfs_raises(self, env, model, batch):
        from repro.engine import JobExecutor
        from repro.job import Job

        spec = {
            "nodes": {"count": 2, "flops": 1e9},
            "network": {"topology": "star", "bandwidth": 1e9},
        }
        platform = platform_from_dict(spec)
        job = Job(1, app_of(PfsWriteTask("1e9")), num_nodes=2)
        nodes = platform.nodes[:2]
        for node in nodes:
            node.allocate(job)
        job.mark_started(nodes, 0.0)
        executor = JobExecutor(env, platform, model, job, batch)
        env.process(executor.run())
        with pytest.raises(EngineError, match="needs a PFS"):
            env.run()


class TestBurstBuffer:
    def test_bb_write_time_and_charge(self, env, platform, start_job):
        # Each node writes 1e9 B to its own 1e9 B/s BB → 1 s, capacity used.
        job, proc = start_job(
            app_of(BbWriteTask("1e9", distribution=Distribution.PER_NODE))
        )
        env.run()
        assert env.now == pytest.approx(1.0)
        assert platform.nodes[0].bb.used == pytest.approx(1e9)

    def test_bb_write_no_charge_option(self, env, platform, start_job):
        job, proc = start_job(
            app_of(
                BbWriteTask("1e9", distribution=Distribution.PER_NODE, charge=False)
            )
        )
        env.run()
        assert platform.nodes[0].bb.used == 0.0

    def test_bb_parallel_across_nodes(self, env, start_job):
        # BBs are node-local: 4 nodes writing in parallel still take 1 s.
        job, proc = start_job(
            app_of(BbWriteTask("1e9", distribution=Distribution.PER_NODE)),
            num_nodes=4,
        )
        env.run()
        assert env.now == pytest.approx(1.0)


class TestDelay:
    def test_delay_task(self, env, start_job):
        job, proc = start_job(app_of(DelayTask("2.5")))
        env.run()
        assert env.now == pytest.approx(2.5)

    def test_zero_delay(self, env, start_job):
        job, proc = start_job(app_of(DelayTask(0)))
        env.run()
        assert env.now == 0.0


class TestSchedulingPoints:
    def test_scheduling_point_per_iteration(self, env, batch, start_job):
        job, proc = start_job(app_of(CpuTask("4e9"), iterations=3))
        env.run()
        assert job.scheduling_points_seen == 3
        assert len(batch.scheduling_points) == 3

    def test_no_scheduling_points_when_disabled(self, env, batch, start_job):
        job, proc = start_job(
            app_of(CpuTask("4e9"), iterations=3, scheduling_point=False)
        )
        env.run()
        assert job.scheduling_points_seen == 0
        assert batch.scheduling_points == []


class TestKill:
    def test_interrupt_mid_compute_reports_killed(self, env, model, start_job):
        job, proc = start_job(app_of(CpuTask("10e9")))  # would take 2.5 s

        def killer(env, proc):
            yield env.timeout(1.0)
            proc.interrupt("walltime")

        env.process(killer(env, proc))
        env.run(until=proc)
        assert proc.value == "killed"
        assert job.kill_reason == "walltime"
        assert env.now == pytest.approx(1.0)
        # All in-flight activities were cancelled.
        assert len(model.activities) == 0

    def test_interrupt_mid_delay(self, env, start_job):
        job, proc = start_job(app_of(DelayTask("100")))

        def killer(env, proc):
            yield env.timeout(5.0)
            proc.interrupt("kill")

        env.process(killer(env, proc))
        env.run(until=proc)
        assert proc.value == "killed"
        assert env.now == pytest.approx(5.0)

    def test_kill_frees_shared_resources_for_others(self, env, model, start_job):

        job, proc = start_job(app_of(CpuTask("10e9")), num_nodes=4)

        def killer(env, proc):
            yield env.timeout(1.0)
            proc.interrupt("kill")

        env.process(killer(env, proc))
        env.run(until=proc)
        # The node CPUs must be free again: a new activity gets full rate.
        assert len(model.activities) == 0
