"""Shared fixtures for engine tests: a small platform and a stub batch."""

import pytest

from repro.des import Environment
from repro.job import Job, JobType

from repro.platform import platform_from_dict
from repro.sharing import FairShareModel


PLATFORM_SPEC = {
    "name": "engine-test",
    "nodes": {"count": 4, "flops": 1e9},
    "network": {
        "topology": "star",
        "bandwidth": 1e9,
        "latency": 0.0,
        # Fat PFS uplink so that the PFS *service* bandwidth is the
        # contention point in the I/O tests below.
        "pfs_bandwidth": 1e10,
    },
    "pfs": {"read_bw": 2e9, "write_bw": 2e9},
    "burst_buffer": {"read_bw": 4e9, "write_bw": 1e9, "capacity": 1e10},
}


class StubBatch:
    """Minimal BatchCallbacks implementation for isolated executor tests."""

    def __init__(self):
        self.scheduling_points = []
        self.evolving_requests = []
        self.commits = []
        #: Callable(job) invoked at scheduling points; may set
        #: job.pending_reconfiguration to drive reconfiguration tests.
        self.scheduler_hook = None
        self.evolving_hook = None

    def on_scheduling_point(self, job):
        self.scheduling_points.append((job.jid, job.scheduling_points_seen))
        if self.scheduler_hook is not None:
            self.scheduler_hook(job)

    def on_evolving_request(self, job, desired_nodes):
        self.evolving_requests.append((job.jid, desired_nodes))
        if self.evolving_hook is not None:
            self.evolving_hook(job, desired_nodes)

    def commit_reconfiguration(self, job, new_nodes):
        old = {n.index for n in job.assigned_nodes}
        new = {n.index for n in new_nodes}
        for node in job.assigned_nodes:
            if node.index not in new:
                node.deallocate()
        for node in new_nodes:
            if node.index not in old:
                node.allocate(job)
        job.assigned_nodes = list(new_nodes)
        self.commits.append((job.jid, sorted(new)))


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def platform():
    return platform_from_dict(PLATFORM_SPEC)


@pytest.fixture()
def model(env):
    return FairShareModel(env)


@pytest.fixture()
def batch():
    return StubBatch()


@pytest.fixture()
def start_job(env, platform, model, batch):
    """Factory: build a Job from an app model, start it, run its executor."""
    from repro.engine import JobExecutor

    def _start(application, *, num_nodes=4, job_type=JobType.RIGID, **job_kwargs):
        job = Job(
            1,
            application,
            job_type=job_type,
            num_nodes=num_nodes,
            **job_kwargs,
        )
        nodes = platform.nodes[:num_nodes]
        for node in nodes:
            node.allocate(job)
        job.mark_started(nodes, env.now)
        executor = JobExecutor(env, platform, model, job, batch)
        process = env.process(executor.run(), name=f"exec-{job.name}")
        return job, process

    return _start
