"""Tests for parallel task groups (overlapped compute/comm/I-O)."""

import pytest

from repro.application import (
    ApplicationError,
    ApplicationModel,
    CommPattern,
    CommTask,
    CpuTask,
    DelayTask,
    EvolvingRequest,
    Phase,
    PfsWriteTask,
    application_from_dict,
    application_to_dict,
)
from repro.batch import Simulation
from repro.job import Job, JobState
from repro.platform import platform_from_dict


def tiny_platform():
    return platform_from_dict(
        {
            "nodes": {"count": 8, "flops": 1e9},
            "network": {
                "topology": "star",
                "bandwidth": 1e9,
                "pfs_bandwidth": 1e12,
            },
            "pfs": {"read_bw": 2e9, "write_bw": 2e9},
        }
    )


def run_one(app, num_nodes=4, **job_kwargs):
    job = Job(1, app, num_nodes=num_nodes, **job_kwargs)
    Simulation(tiny_platform(), [job], algorithm="fcfs").run()
    return job


class TestParallelTiming:
    def test_parallel_takes_max_not_sum(self):
        # cpu: 2 s, write: 1 s → sequential 3 s, parallel 2 s.
        tasks = [CpuTask("8e9"), PfsWriteTask("2e9")]
        seq = run_one(ApplicationModel([Phase(list(tasks))]))
        par = run_one(ApplicationModel([Phase(list(tasks), parallel=True)]))
        assert seq.runtime == pytest.approx(3.0)
        assert par.runtime == pytest.approx(2.0)

    def test_three_way_overlap(self):
        # cpu 2 s | ring comm 1 s | delay 3 s → parallel = 3 s.
        app = ApplicationModel(
            [
                Phase(
                    [
                        CpuTask("8e9"),
                        CommTask("1e9", pattern=CommPattern.RING),
                        DelayTask("3"),
                    ],
                    parallel=True,
                )
            ]
        )
        job = run_one(app)
        assert job.runtime == pytest.approx(3.0)

    def test_parallel_iterations_multiply(self):
        app = ApplicationModel(
            [
                Phase(
                    [CpuTask("8e9"), PfsWriteTask("2e9")],
                    parallel=True,
                    iterations=3,
                )
            ]
        )
        job = run_one(app)
        assert job.runtime == pytest.approx(6.0)

    def test_single_task_parallel_equals_sequential(self):
        seq = run_one(ApplicationModel([Phase([CpuTask("8e9")])]))
        par = run_one(ApplicationModel([Phase([CpuTask("8e9")], parallel=True)]))
        assert seq.runtime == par.runtime


class TestParallelKill:
    def test_walltime_kill_cancels_all_branches(self, platform):
        app = ApplicationModel(
            [
                Phase(
                    [CpuTask("80e9"), PfsWriteTask("40e9"), DelayTask("100")],
                    parallel=True,
                )
            ]
        )
        job = Job(1, app, num_nodes=4, walltime=2.0)
        sim = Simulation(tiny_platform(), [job], algorithm="fcfs")
        sim.run()
        assert job.state is JobState.KILLED
        assert job.end_time == pytest.approx(2.0)
        # No leaked activities in the fair-share model.
        assert len(sim.batch.model.activities) == 0


class TestValidationAndJson:
    def test_evolving_request_forbidden_in_parallel_group(self):
        with pytest.raises(ApplicationError, match="parallel"):
            Phase([CpuTask(1), EvolvingRequest(2)], parallel=True)

    def test_json_roundtrip_preserves_parallel(self):
        app = ApplicationModel(
            [Phase([CpuTask(1), DelayTask(1)], parallel=True, name="overlap")]
        )
        spec = application_to_dict(app)
        assert spec["phases"][0]["parallel"] is True
        clone = application_from_dict(spec)
        assert clone.phases[0].parallel is True

    def test_default_not_serialized(self):
        app = ApplicationModel([Phase([CpuTask(1)])])
        assert "parallel" not in application_to_dict(app)["phases"][0]
