"""Tests for GPU nodes and GPU tasks."""

import pytest

from repro.application import (
    ApplicationModel,
    CpuTask,
    Distribution,
    GpuTask,
    Phase,
    application_from_dict,
    application_to_dict,
)
from repro.batch import Simulation
from repro.engine import EngineError
from repro.job import Job
from repro.platform import Node, PlatformError, platform_from_dict


def gpu_platform(gpus=2, gpu_flops=4e9):
    return platform_from_dict(
        {
            "nodes": {"count": 4, "flops": 1e9, "gpus": gpus, "gpu_flops": gpu_flops},
            "network": {"topology": "star", "bandwidth": 1e10},
        }
    )


class TestGpuNodes:
    def test_loader_builds_gpu_resource(self):
        platform = gpu_platform(gpus=2, gpu_flops=4e9)
        node = platform.nodes[0]
        assert node.gpus == 2
        assert node.gpu is not None
        assert node.gpu.capacity == 8e9  # 2 x 4e9 aggregate

    def test_no_gpus_by_default(self):
        platform = platform_from_dict(
            {
                "nodes": {"count": 2, "flops": 1e9},
                "network": {"topology": "star", "bandwidth": 1e10},
            }
        )
        assert platform.nodes[0].gpu is None

    def test_validation(self):
        with pytest.raises(PlatformError, match="gpus"):
            Node(0, 1e9, gpus=-1)
        with pytest.raises(PlatformError, match="gpu_flops"):
            Node(0, 1e9, gpus=2, gpu_flops=0)


class TestGpuTasks:
    def test_gpu_task_runtime(self):
        # 64e9 flops over 4 nodes x 8e9 GPU flops/s → 2 s.
        app = ApplicationModel([Phase([GpuTask("64e9")])])
        job = Job(1, app, num_nodes=4)
        Simulation(gpu_platform(), [job], algorithm="fcfs").run()
        assert job.runtime == pytest.approx(2.0)

    def test_gpu_and_cpu_phases_sequential(self):
        app = ApplicationModel(
            [Phase([CpuTask("4e9"), GpuTask("32e9")])]
        )
        job = Job(1, app, num_nodes=4)
        Simulation(gpu_platform(), [job], algorithm="fcfs").run()
        # 1 s CPU + 1 s GPU.
        assert job.runtime == pytest.approx(2.0)

    def test_gpu_cpu_overlap_in_parallel_phase(self):
        app = ApplicationModel(
            [Phase([CpuTask("8e9"), GpuTask("32e9")], parallel=True)]
        )
        job = Job(1, app, num_nodes=4)
        Simulation(gpu_platform(), [job], algorithm="fcfs").run()
        # CPU 2 s, GPU 1 s → overlap = 2 s (GPUs are a separate resource).
        assert job.runtime == pytest.approx(2.0)

    def test_per_node_distribution(self):
        app = ApplicationModel(
            [Phase([GpuTask("8e9", distribution=Distribution.PER_NODE)])]
        )
        job = Job(1, app, num_nodes=4)
        Simulation(gpu_platform(), [job], algorithm="fcfs").run()
        # Each node's 8e9 GPU work at 8e9 flops/s → 1 s.
        assert job.runtime == pytest.approx(1.0)

    def test_gpu_task_on_gpuless_platform_raises(self):
        platform = platform_from_dict(
            {
                "nodes": {"count": 2, "flops": 1e9},
                "network": {"topology": "star", "bandwidth": 1e10},
            }
        )
        app = ApplicationModel([Phase([GpuTask("1e9")])])
        job = Job(1, app, num_nodes=2)
        with pytest.raises(EngineError, match="needs GPUs"):
            Simulation(platform, [job], algorithm="fcfs").run()

    def test_gpus_per_node_expression_variable(self):
        # Work scaled by gpus_per_node: 8e9 x 2 = 16e9 total over 4 nodes
        # x 8e9 → 0.5 s.
        app = ApplicationModel(
            [Phase([GpuTask("8e9 * gpus_per_node")])]
        )
        job = Job(1, app, num_nodes=4)
        Simulation(gpu_platform(gpus=2), [job], algorithm="fcfs").run()
        assert job.runtime == pytest.approx(0.5)

    def test_json_roundtrip(self):
        app = ApplicationModel(
            [Phase([GpuTask("1e12", distribution=Distribution.PER_NODE)])]
        )
        spec = application_to_dict(app)
        assert spec["phases"][0]["tasks"][0]["type"] == "gpu"
        clone = application_from_dict(spec)
        assert isinstance(clone.phases[0].tasks[0], GpuTask)
        assert clone.phases[0].tasks[0].distribution is Distribution.PER_NODE
