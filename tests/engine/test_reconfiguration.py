"""Tests for malleable reconfiguration and evolving requests."""

import pytest

from repro.application import (
    ApplicationModel,
    CpuTask,
    EvolvingRequest,
    Phase,
)
from repro.job import JobType, ReconfigurationOrder


def two_phase_app(data_per_node=0):
    """Phase A (4e9 flops, scheduling point) then phase B (4e9 flops)."""
    return ApplicationModel(
        [
            Phase([CpuTask("4e9")], name="A"),
            Phase([CpuTask("4e9")], name="B", scheduling_point=False),
        ],
        data_per_node=data_per_node,
    )


class TestExpand:
    def test_expand_at_scheduling_point_speeds_up_next_phase(
        self, env, platform, batch, start_job
    ):
        # Phase A on 2 nodes: 4e9/2 per node at 1e9 → 2 s.
        # Expansion to 4 nodes is free (data_per_node=0).
        # Phase B on 4 nodes: 1e9 per node → 1 s.  Total 3 s.
        def expand(job):
            if job.scheduling_points_seen == 1:
                job.pending_reconfiguration = ReconfigurationOrder(
                    platform.nodes[:4], issued_at=env.now
                )

        batch.scheduler_hook = expand
        job, proc = start_job(
            two_phase_app(), num_nodes=2, job_type=JobType.MALLEABLE, max_nodes=4
        )
        env.run()
        assert proc.value == "completed"
        assert env.now == pytest.approx(3.0)
        assert job.reconfigurations_applied == 1
        assert len(job.assigned_nodes) == 4
        assert batch.commits == [(1, [0, 1, 2, 3])]

    def test_expand_pays_redistribution_cost(self, env, platform, batch, start_job):
        # data_per_node=1e9 on 2 nodes → total 2e9, new share 0.5e9.
        # Two joining nodes each pull 0.5e9 over 1e9 B/s links → 0.5 s.
        # Total: 2 (A) + 0.5 (redistribute) + 1 (B) = 3.5 s.
        def expand(job):
            if job.scheduling_points_seen == 1:
                job.pending_reconfiguration = ReconfigurationOrder(
                    platform.nodes[:4], issued_at=env.now
                )

        batch.scheduler_hook = expand
        job, proc = start_job(
            two_phase_app(data_per_node="1e9"),
            num_nodes=2,
            job_type=JobType.MALLEABLE,
            max_nodes=4,
        )
        env.run()
        assert env.now == pytest.approx(3.5)
        assert job.redistribution_bytes_moved == pytest.approx(1e9)


class TestShrink:
    def test_shrink_slows_next_phase_and_frees_nodes(
        self, env, platform, batch, start_job
    ):
        # Phase A on 4 nodes: 1 s.  Shrink to 2 (free).  Phase B: 2 s.
        def shrink(job):
            if job.scheduling_points_seen == 1:
                job.pending_reconfiguration = ReconfigurationOrder(
                    platform.nodes[:2], issued_at=env.now
                )

        batch.scheduler_hook = shrink
        job, proc = start_job(
            two_phase_app(),
            num_nodes=4,
            job_type=JobType.MALLEABLE,
            min_nodes=2,
            max_nodes=4,
        )
        env.run()
        assert env.now == pytest.approx(3.0)
        assert len(job.assigned_nodes) == 2
        assert platform.nodes[2].free
        assert platform.nodes[3].free

    def test_shrink_redistribution_cost(self, env, platform, batch, start_job):
        # Leaving nodes 2,3 each push 1e9 over their 1e9 B/s uplinks → 1 s.
        def shrink(job):
            if job.scheduling_points_seen == 1:
                job.pending_reconfiguration = ReconfigurationOrder(
                    platform.nodes[:2], issued_at=env.now
                )

        batch.scheduler_hook = shrink
        job, proc = start_job(
            two_phase_app(data_per_node="1e9"),
            num_nodes=4,
            job_type=JobType.MALLEABLE,
            min_nodes=2,
            max_nodes=4,
        )
        env.run()
        # 1 (A) + 1 (redistribute) + 2 (B) = 4 s.
        assert env.now == pytest.approx(4.0)
        assert job.redistribution_bytes_moved == pytest.approx(2e9)


class TestNoOpAndUnordered:
    def test_same_allocation_order_is_noop(self, env, platform, batch, start_job):
        def same(job):
            job.pending_reconfiguration = ReconfigurationOrder(
                list(job.assigned_nodes), issued_at=env.now
            )

        batch.scheduler_hook = same
        job, proc = start_job(
            two_phase_app(data_per_node="1e9"),
            num_nodes=2,
            job_type=JobType.MALLEABLE,
        )
        env.run()
        assert job.reconfigurations_applied == 0
        assert env.now == pytest.approx(2.0 + 2.0)

    def test_without_order_nothing_happens(self, env, batch, start_job):
        job, proc = start_job(
            two_phase_app(), num_nodes=2, job_type=JobType.MALLEABLE
        )
        env.run()
        assert job.reconfigurations_applied == 0
        assert len(batch.scheduling_points) == 1


class TestEvolving:
    def test_evolving_request_forwarded_and_granted(
        self, env, platform, batch, start_job
    ):
        # App: compute on 2 nodes, then request 4, then compute again.
        app = ApplicationModel(
            [
                Phase(
                    [CpuTask("4e9"), EvolvingRequest("4"), CpuTask("4e9")],
                    scheduling_point=False,
                )
            ]
        )

        def grant(job, desired):
            job.pending_reconfiguration = ReconfigurationOrder(
                platform.nodes[:desired], issued_at=env.now
            )

        batch.evolving_hook = grant
        job, proc = start_job(
            app, num_nodes=2, job_type=JobType.EVOLVING, max_nodes=4
        )
        env.run()
        assert batch.evolving_requests == [(1, 4)]
        # 2 s on 2 nodes + 1 s on 4 nodes.
        assert env.now == pytest.approx(3.0)
        assert job.evolving_request is None

    def test_evolving_request_denied_continues(self, env, batch, start_job):
        app = ApplicationModel(
            [
                Phase(
                    [CpuTask("4e9"), EvolvingRequest("4"), CpuTask("4e9")],
                    scheduling_point=False,
                )
            ]
        )
        # No evolving_hook: request recorded but not granted.
        job, proc = start_job(
            app, num_nodes=2, job_type=JobType.EVOLVING, max_nodes=4
        )
        env.run()
        assert batch.evolving_requests == [(1, 4)]
        assert env.now == pytest.approx(4.0)  # both phases on 2 nodes

    def test_request_for_current_size_not_forwarded(self, env, batch, start_job):
        app = ApplicationModel(
            [Phase([EvolvingRequest("num_nodes"), CpuTask("4e9")])]
        )
        job, proc = start_job(app, num_nodes=2, job_type=JobType.EVOLVING)
        env.run()
        assert batch.evolving_requests == []
