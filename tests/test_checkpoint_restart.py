"""Tests for checkpoint/restart requeue (resume from last scheduling point)."""

import pytest

from repro import Simulation
from repro.application import ApplicationModel, CpuTask, Phase
from repro.failures import Failure
from repro.job import Job, JobState



def iterated_job(jid=1, iterations=10, flops_per_iter=8e9, **kwargs):
    """10 iterations x 1 s on 8 nodes, scheduling point after each."""
    app = ApplicationModel(
        [Phase([CpuTask(flops_per_iter)], iterations=iterations, name="solve")]
    )
    defaults = dict(num_nodes=8)
    defaults.update(kwargs)
    return Job(jid, app, **defaults)


class TestCheckpointMarker:
    def test_marker_advances_with_iterations(self, platform):
        job = iterated_job()
        Simulation(platform, [job], algorithm="fcfs").run()
        assert job.checkpoint_marker == (0, 10, 10)

    def test_marker_none_without_scheduling_points(self, platform):
        app = ApplicationModel(
            [Phase([CpuTask("8e9")], iterations=3, scheduling_point=False)]
        )
        job = Job(1, app, num_nodes=8)
        Simulation(platform, [job], algorithm="fcfs").run()
        assert job.checkpoint_marker is None


class TestResumeTrimming:
    def test_clone_resumes_mid_phase(self, platform):
        job = iterated_job()
        job.checkpoint_marker = (0, 4, 10)
        clone = job.clone_for_requeue(2, submit_time=0.0, resume=True)
        phase = clone.application.phases[0]
        assert phase.num_iterations({}) == 6
        assert phase.name.endswith("~resumed")

    def test_clone_skips_completed_phases(self, platform):
        app = ApplicationModel(
            [
                Phase([CpuTask("8e9")], iterations=2, name="a"),
                Phase([CpuTask("8e9")], iterations=3, name="b"),
            ]
        )
        job = Job(1, app, num_nodes=8)
        job.checkpoint_marker = (0, 2, 2)  # phase a fully done
        clone = job.clone_for_requeue(2, submit_time=0.0, resume=True)
        assert [p.name for p in clone.application.phases] == ["b"]

    def test_clone_with_everything_done_is_epilogue(self, platform):
        job = iterated_job()
        job.checkpoint_marker = (0, 10, 10)
        clone = job.clone_for_requeue(2, submit_time=0.0, resume=True)
        assert clone.application.phases[0].name == "resume-epilogue"

    def test_no_marker_restarts_from_scratch(self, platform):
        job = iterated_job()
        clone = job.clone_for_requeue(2, submit_time=0.0, resume=True)
        assert clone.application is job.application


class TestEndToEnd:
    def _run(self, checkpoint_restart):
        # 10 x 1 s job; node fails at t=4.5 (4 iterations checkpointed),
        # node returns 0.5 s later.
        from repro.platform import platform_from_dict

        platform = platform_from_dict(
            {
                "nodes": {"count": 8, "flops": 1e9},
                "network": {"topology": "star", "bandwidth": 1e10},
            }
        )
        job = iterated_job()
        sim = Simulation(
            platform,
            [job],
            algorithm="fcfs",
            failures=[Failure(time=4.5, node_index=0, downtime=0.5)],
            requeue_on_failure=True,
            checkpoint_restart=checkpoint_restart,
        )
        monitor = sim.run()
        retry = next(j for j in sim.batch.jobs if j.origin_jid == 1)
        return job, retry, monitor

    def test_scratch_restart_redoes_everything(self):
        job, retry, monitor = self._run(checkpoint_restart=False)
        assert retry.state is JobState.COMPLETED
        # Retry starts at repair (t=5) and redoes all 10 iterations.
        assert retry.runtime == pytest.approx(10.0)
        assert monitor.makespan() == pytest.approx(15.0)

    def test_checkpoint_restart_resumes(self):
        job, retry, monitor = self._run(checkpoint_restart=True)
        assert retry.state is JobState.COMPLETED
        # 4 iterations were checkpointed before the kill at t=4.5; the
        # retry only runs the remaining 6.
        assert retry.runtime == pytest.approx(6.0)
        assert monitor.makespan() == pytest.approx(11.0)

    def test_checkpoint_restart_preserves_total_completed_iterations(self):
        job, retry, monitor = self._run(checkpoint_restart=True)
        total_points = job.scheduling_points_seen + retry.scheduling_points_seen
        assert total_points == 10


class TestPreemptionRestartCost:
    """Preemption-driven checkpoint/restart I/O, pinned to exact costs.

    Reuses the deterministic hybrid scenario (see
    ``tests/scheduler/test_hybrid``): job 1 is preempted at t=5 with 3 of
    4 iterations (1.25 s each) checkpointed, and resumes with a restart
    phase that reads its checkpoint back over the shared 1e10 B/s PFS.
    """

    def _resumed_runtime(self, checkpoint_bytes):
        import json

        from tests.scheduler.test_hybrid import HYBRID_SPEC

        spec = json.loads(json.dumps(HYBRID_SPEC))
        job_spec = spec["workload"]["inline"]["jobs"][0]
        if checkpoint_bytes:
            job_spec["checkpoint_bytes"] = checkpoint_bytes
        else:
            del job_spec["checkpoint_bytes"]
        sim = Simulation.from_spec(spec)
        sim.run()
        retry = next(j for j in sim.batch.jobs if j.origin_jid == 1)
        assert retry.state is JobState.COMPLETED
        return retry.runtime

    @pytest.mark.parametrize("checkpoint_bytes", [2e9, 8e9])
    def test_restart_read_volume_matches_declared_checkpoint(
        self, checkpoint_bytes
    ):
        # The EVEN-distributed restart read moves exactly the declared
        # bytes in total, so its duration on the saturated 1e10 B/s PFS
        # is bytes/1e10 on top of the 1.25 s of replayed compute —
        # linear in the spec value, independent of the allocation width.
        runtime = self._resumed_runtime(checkpoint_bytes)
        assert runtime == pytest.approx(1.25 + checkpoint_bytes / 1e10)

    def test_no_checkpoint_bytes_means_free_restart(self):
        spec_runtime = self._resumed_runtime(0)
        assert spec_runtime == pytest.approx(1.25)


class TestResumedWorkBitForBit:
    def test_resumed_compute_equals_remaining_work_exactly(self, platform):
        # A clone resumed from marker (0, k, n) must reproduce a job
        # built from the remaining n-k iterations bit-for-bit: same
        # runtime floats, same makespan — resume trims iterations, it
        # never rescales the per-iteration work.
        flops = 9.7e9  # 1.2125.. s per iteration: not a round binary float
        resumed_job = iterated_job(flops_per_iter=flops)
        resumed_job.checkpoint_marker = (0, 4, 10)
        clone = resumed_job.clone_for_requeue(2, submit_time=0.0, resume=True)
        clone_monitor = Simulation(platform, [clone], algorithm="fcfs").run()

        fresh = iterated_job(jid=3, iterations=6, flops_per_iter=flops)
        fresh_monitor = Simulation(platform, [fresh], algorithm="fcfs").run()

        assert clone.runtime == fresh.runtime
        assert clone_monitor.makespan() == fresh_monitor.makespan()
