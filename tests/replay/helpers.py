"""Shared byte-identity checks for the snapshot/resume test suite.

The contract under test (docs/REPLAY.md): a run resumed from any
checkpoint must produce the same ``run_record`` and the same
``processed_events`` count as the uninterrupted cold run — byte for
byte, after a JSON round-trip of the snapshot document.
"""

import json

from repro.batch import Simulation
from repro.replay import Snapshot


def fingerprint(sim) -> str:
    return json.dumps(sim.monitor.run_record(), sort_keys=True)


def cold_run(spec):
    """Cold-run ``spec``; return (fingerprint, processed_events)."""
    sim = Simulation.from_spec(json.loads(json.dumps(spec)))
    sim.run()
    return fingerprint(sim), sim.env.processed_events


def snapshot_run(spec, snapshot_every):
    """Run ``spec`` with checkpoints; return (fingerprint, events, snapshots)."""
    snapshots = []
    sim = Simulation.from_spec(json.loads(json.dumps(spec)))
    sim.run(snapshot_every=snapshot_every, snapshot_callback=snapshots.append)
    return fingerprint(sim), sim.env.processed_events, snapshots


def json_roundtrip(snapshot):
    """The snapshot as it would come back from disk."""
    return Snapshot.from_dict(json.loads(json.dumps(snapshot.to_dict())))


def assert_resume_identical(spec, snapshot_every=40, roundtrip=True):
    """Resume every checkpoint of ``spec``; assert byte-identity throughout.

    Returns the number of snapshots exercised so callers can assert the
    scenario actually produced resume points.
    """
    cold_fp, cold_events = cold_run(spec)
    snap_fp, snap_events, snapshots = snapshot_run(spec, snapshot_every)
    assert snap_fp == cold_fp, "taking snapshots perturbed the run"
    assert snap_events == cold_events
    for snap in snapshots:
        restored = json_roundtrip(snap) if roundtrip else snap
        sim = Simulation.resume(restored)
        sim.run()
        assert fingerprint(sim) == cold_fp, (
            f"resume from t={snap.time:g} "
            f"({snap.processed_events} events) diverged"
        )
        assert sim.env.processed_events == cold_events
    return len(snapshots)
