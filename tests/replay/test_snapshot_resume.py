"""Snapshot/resume byte-identity on handcrafted and fuzz scenarios.

Each scenario runs cold, then with periodic checkpoints (which must not
perturb it), then resumed from every checkpoint after a JSON round-trip
of the snapshot document; every resumed run must reproduce the cold
``run_record`` and ``processed_events`` exactly.  Alongside the identity
sweep: regressions for the snapshot-hostile nondeterminism fixed with
the replay work (event-pool recycling, insertion-ordered evolving
waits) and the snapshot file format itself.
"""

import json

import pytest

from repro.batch import Simulation
from repro.fuzz import generate_scenario
from repro.replay import SCHEMA_VERSION, ReplayError, Snapshot, capture_snapshot

from tests.replay.helpers import (
    assert_resume_identical,
    cold_run,
    fingerprint,
    json_roundtrip,
    snapshot_run,
)


def _platform(count=8, **extra):
    spec = {
        "name": "replay-test",
        "nodes": {"count": count, "flops": 1e12},
        "network": {"topology": "star", "bandwidth": 1e10, "pfs_bandwidth": 1e11},
        "pfs": {"read_bw": 1e11, "write_bw": 8e10},
    }
    spec.update(extra)
    return spec


def _job(jid, *, submit=0.0, nodes=2, seconds=30.0, **extra):
    job = {
        "id": jid,
        "submit_time": submit,
        "num_nodes": nodes,
        "application": {
            "name": "app",
            "phases": [{"tasks": [{"type": "delay", "seconds": seconds}]}],
        },
    }
    job.update(extra)
    return job


def _rigid_mix():
    """Rigid jobs with cpu/comm/pfs phases and iteration loops."""
    phases = [
        {
            "tasks": [
                {"type": "cpu", "flops": 5e10},
                {"type": "comm", "bytes": "1e6 * num_nodes", "pattern": "alltoall"},
            ],
            "iterations": 3,
        },
        {"tasks": [{"type": "pfs_write", "bytes": 2e9}]},
    ]
    jobs = [
        {
            "id": j,
            "submit_time": 10.0 * j,
            "num_nodes": 2 + (j % 3),
            "application": {"name": "app", "phases": phases},
        }
        for j in range(1, 7)
    ]
    return {"platform": _platform(), "workload": {"inline": {"jobs": jobs}}, "algorithm": "easy"}


def _elastic_mix():
    """Malleable and evolving jobs under the malleable scheduler."""

    def app(iters):
        return {
            "name": "app",
            "phases": [
                {
                    "tasks": [
                        {"type": "cpu", "flops": 2e10},
                        {"type": "comm", "bytes": "1e6 / num_nodes", "pattern": "gather"},
                    ],
                    "iterations": iters,
                }
            ],
        }

    jobs = [
        {"id": 1, "submit_time": 0.0, "num_nodes": 4, "type": "malleable",
         "min_nodes": 2, "max_nodes": 6, "application": app(6)},
        {"id": 2, "submit_time": 5.0, "num_nodes": 3, "type": "malleable",
         "min_nodes": 1, "max_nodes": 4, "application": app(5)},
        {"id": 3, "submit_time": 8.0, "num_nodes": 2, "type": "evolving",
         "min_nodes": 1, "max_nodes": 5, "application": app(4)},
        {"id": 4, "submit_time": 12.0, "num_nodes": 4, "application": app(3)},
        {"id": 5, "submit_time": 30.0, "num_nodes": 2, "type": "evolving",
         "min_nodes": 1, "max_nodes": 6, "application": app(5)},
    ]
    return {"platform": _platform(), "workload": {"inline": {"jobs": jobs}}, "algorithm": "malleable"}


def _walltime_kills():
    """Jobs killed by walltime mid-phase, between finishers."""
    jobs = [
        _job(1, nodes=2, seconds=50.0, walltime=20.0),
        _job(2, submit=2.0, nodes=2, seconds=10.0),
        _job(3, submit=4.0, nodes=2, seconds=60.0, walltime=30.0),
        _job(4, submit=6.0, nodes=2, seconds=15.0),
    ]
    return {"platform": _platform(), "workload": {"inline": {"jobs": jobs}}, "algorithm": "fcfs"}


def _failures_and_requeue():
    """Node failures with requeue + checkpoint_restart crossing snapshots."""
    jobs = [
        _job(j, submit=3.0 * j, nodes=2, seconds=25.0) for j in range(1, 6)
    ]
    sim = {
        "failures": {
            "trace": [
                {"node": 0, "time": 15.0, "downtime": 20.0},
                {"node": 3, "time": 40.0, "downtime": 10.0},
            ]
        },
        "requeue_on_failure": True,
        "max_requeues": 2,
        "checkpoint_restart": True,
    }
    return {
        "platform": _platform(),
        "workload": {"inline": {"jobs": jobs}},
        "algorithm": "easy",
        "sim": sim,
    }


def _hybrid_preemption():
    """On-demand preemption with restart I/O under the power corridor."""
    from tests.scheduler.test_hybrid import HYBRID_SPEC

    return json.loads(json.dumps(HYBRID_SPEC))


#: scenario builder + checkpoint cadence (sparse-event scenarios need a
#: finer cadence to yield multiple quiet boundaries).
SCENARIOS = {
    "rigid-mix": (_rigid_mix, 15),
    "elastic-mix": (_elastic_mix, 15),
    "walltime-kills": (_walltime_kills, 6),
    "failures-requeue": (_failures_and_requeue, 6),
    "hybrid-preemption": (_hybrid_preemption, 4),
}


class TestResumeIdentity:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_handcrafted_scenarios(self, name):
        builder, cadence = SCENARIOS[name]
        checked = assert_resume_identical(builder(), snapshot_every=cadence)
        assert checked >= 2, "scenario too short to exercise resume"

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_fuzz_scenarios(self, seed):
        scenario = generate_scenario(seed, algorithm="easy")
        assert_resume_identical(scenario, snapshot_every=50)

    def test_hybrid_snapshot_lands_mid_preemption(self):
        # The identity sweep above resumes from *every* checkpoint; this
        # pins that at least one of them sits inside the preemption epoch
        # — batch victims killed (t=5), their resumed clones not yet
        # started (t=16/3) — so preempted-job state, pending requeues,
        # and the power meter all cross a resume boundary.
        _, _, snapshots = snapshot_run(_hybrid_preemption(), 4)
        assert any(5.0 <= snap.time < 16 / 3 for snap in snapshots), (
            f"no snapshot in the preemption window: "
            f"{[snap.time for snap in snapshots]}"
        )

    def test_resume_from_saved_file(self, tmp_path):
        spec = _rigid_mix()
        cold_fp, cold_events = cold_run(spec)
        _, _, snapshots = snapshot_run(spec, 100)
        path = tmp_path / "checkpoint.json"
        snapshots[len(snapshots) // 2].save(path)
        sim = Simulation.resume(Snapshot.load(path))
        sim.run()
        assert fingerprint(sim) == cold_fp
        assert sim.env.processed_events == cold_events


class TestSnapshotDocument:
    def test_quiet_boundaries(self):
        """Checkpoints only land between timestamps: nothing queued at now."""
        _, _, snapshots = snapshot_run(_rigid_mix(), 60)
        assert snapshots
        for snap in snapshots:
            queue = snap.state["env"]["queue"]
            assert all(entry[0] > snap.time for entry in queue)

    def test_document_is_json_safe_and_versioned(self):
        _, _, snapshots = snapshot_run(_rigid_mix(), 100)
        doc = json.loads(json.dumps(snapshots[0].to_dict()))
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["spec"]["algorithm"] == "easy"
        assert doc["processed_events"] == snapshots[0].processed_events

    def test_unknown_schema_version_refused(self):
        _, _, snapshots = snapshot_run(_rigid_mix(), 100)
        doc = snapshots[0].to_dict()
        doc["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ReplayError):
            Snapshot.from_dict(doc)

    def test_capture_requires_spec(self):
        """Snapshots need a from_spec-built sim (the spec rides along)."""
        from repro.platform import platform_from_dict
        from repro.workload import workload_from_dict

        spec = _rigid_mix()
        sim = Simulation(
            platform_from_dict(spec["platform"]),
            workload_from_dict(spec["workload"]["inline"]),
            algorithm="easy",
        )
        sim.run()
        with pytest.raises(ReplayError):
            capture_snapshot(sim)


class TestNondeterminismRegressions:
    """Snapshot-hostile state must not leak across the restore boundary."""

    def test_event_pool_restored_empty(self):
        # Recycled PooledEvent objects from the captured run must never be
        # shared with (or pre-seed) the restored environment: aliasing one
        # pool across runs reorders callback lists nondeterministically.
        _, _, snapshots = snapshot_run(_rigid_mix(), 60)
        sim = Simulation.resume(json_roundtrip(snapshots[-1]))
        assert sim.env._event_pool == []
        sim.run()

    def test_waiting_evolving_is_insertion_ordered(self):
        # The evolving-growth wait set is a dict (insertion-ordered), not a
        # set: retry order feeds the event stream, so a restored run must
        # rebuild it in the captured order.
        _, _, snapshots = snapshot_run(_elastic_mix(), 60)
        for snap in snapshots:
            sim = Simulation.resume(json_roundtrip(snap))
            assert isinstance(sim.batch._waiting_evolving, dict)
            waiting = snap.state["batch"]["waiting_evolving"]
            assert [job.jid for job in sim.batch._waiting_evolving] == waiting
