"""Property test: resume from a random checkpoint is byte-identical.

For any fuzz-generated scenario, any checkpoint index, and any engine
mode (array/object state x compiled/interpreted expressions), resuming
the snapshot must reproduce the cold run's ``run_record`` and event
count exactly.  Engine pins are swept as pytest params (hypothesis
shrinks within one mode); scenario diversity — malleable, evolving,
failures, io, walltime kills — comes from the fuzz generator's own
draws across the seed range.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.batch import Simulation
from repro.expressions import compiled_enabled, set_compiled_enabled
from repro.fuzz import generate_scenario
from repro.sharing import array_engine_enabled, set_array_engine_enabled

from tests.replay.helpers import fingerprint, json_roundtrip

MODES = [
    pytest.param(True, True, id="array-compiled"),
    pytest.param(True, False, id="array-interpreted"),
    pytest.param(False, True, id="object-compiled"),
    pytest.param(False, False, id="object-interpreted"),
]


def _check(seed, pick, array, compiled):
    old_array, old_compiled = array_engine_enabled(), compiled_enabled()
    set_array_engine_enabled(array)
    set_compiled_enabled(compiled)
    try:
        scenario = generate_scenario(seed, algorithm="easy")
        cold = Simulation.from_spec(json.loads(json.dumps(scenario)))
        cold.run()
        cold_fp, cold_events = fingerprint(cold), cold.env.processed_events

        snapshots = []
        snapped = Simulation.from_spec(json.loads(json.dumps(scenario)))
        snapped.run(snapshot_every=40, snapshot_callback=snapshots.append)
        assert fingerprint(snapped) == cold_fp
        if not snapshots:
            return  # run too short for a quiet boundary at this cadence

        snap = snapshots[int(pick * len(snapshots)) % len(snapshots)]
        resumed = Simulation.resume(json_roundtrip(snap))
        resumed.run()
        assert fingerprint(resumed) == cold_fp
        assert resumed.env.processed_events == cold_events
    finally:
        set_array_engine_enabled(old_array)
        set_compiled_enabled(old_compiled)


@pytest.mark.parametrize("array,compiled", MODES)
@given(seed=st.integers(min_value=0, max_value=60), pick=st.floats(0.0, 0.999))
@settings(max_examples=15, deadline=None)
def test_random_checkpoint_resume_is_byte_identical(array, compiled, seed, pick):
    _check(seed, pick, array, compiled)
