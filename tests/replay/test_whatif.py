"""What-if replay: diffing, splicing, eligibility, and session warm-starts.

The only contract that matters: whatever path ``whatif`` takes (warm
suffix replay or cold fallback), the returned record is byte-identical
to a cold run of the edited spec.  Warm/cold routing itself is asserted
separately so an eligibility regression shows up as "silently went
cold", not just as slower wall-clock.
"""

import json
from copy import deepcopy

import pytest

from repro.replay import ReplayError, WhatIfSession, diff_workloads, whatif
from repro.replay.whatif import run_with_snapshots, splice_snapshot

from tests.replay.helpers import cold_run


def _platform():
    return {
        "name": "whatif-test",
        "nodes": {"count": 8, "flops": 1e12},
        "network": {"topology": "star", "bandwidth": 1e10, "pfs_bandwidth": 1e11},
        "pfs": {"read_bw": 1e11, "write_bw": 8e10},
    }


def _job(jid, submit, nodes=2, flops=4e10, iters=3):
    return {
        "id": jid,
        "submit_time": submit,
        "num_nodes": nodes,
        "application": {
            "name": "app",
            "phases": [
                {"tasks": [{"type": "cpu", "flops": flops}], "iterations": iters}
            ],
        },
    }


def _base_spec():
    return {
        "name": "whatif-base",
        "platform": _platform(),
        "workload": {
            "inline": {
                "jobs": [_job(j, 25.0 * (j - 1)) for j in range(1, 7)]
            }
        },
        "algorithm": "easy",
    }


def _cold_fingerprint(spec):
    """Cold record with invocations, as whatif emits it."""
    from repro.batch import Simulation

    sim = Simulation.from_spec(json.loads(json.dumps(spec)))
    monitor = sim.run()
    record = monitor.run_record()
    record["invocations"] = sim.batch.invocations
    return json.dumps(record, sort_keys=True)


class TestDiffWorkloads:
    def test_equivalent_specs(self):
        diff = diff_workloads(_base_spec(), _base_spec())
        assert diff == {
            "added": [],
            "removed": [],
            "modified": [],
            "divergence_time": float("inf"),
        }

    def test_modified_added_removed(self):
        base = _base_spec()
        edited = deepcopy(base)
        jobs = edited["workload"]["inline"]["jobs"]
        jobs[4]["num_nodes"] = 4  # modify job 5 (submit 100)
        del jobs[5]  # remove job 6 (submit 125)
        jobs.append(_job(9, 140.0))  # add job 9
        diff = diff_workloads(base, edited)
        assert diff["modified"] == [5]
        assert diff["removed"] == [6]
        assert diff["added"] == [9]
        assert diff["divergence_time"] == 100.0

    def test_retime_uses_earliest_touched_time(self):
        base = _base_spec()
        edited = deepcopy(base)
        edited["workload"]["inline"]["jobs"][3]["submit_time"] = 200.0
        diff = diff_workloads(base, edited)
        # Job 4 moved 75 -> 200: the divergence is the *old* slot.
        assert diff["modified"] == [4]
        assert diff["divergence_time"] == 75.0

    def test_non_inline_is_incomparable(self):
        base = _base_spec()
        edited = deepcopy(base)
        edited["workload"] = {"file": "workload.json"}
        assert diff_workloads(base, edited) is None

    def test_platform_change_is_incomparable(self):
        base = _base_spec()
        edited = deepcopy(base)
        edited["platform"]["nodes"]["count"] = 16
        assert diff_workloads(base, edited) is None

    def test_reordering_common_jobs_is_incomparable(self):
        base = _base_spec()
        edited = deepcopy(base)
        jobs = edited["workload"]["inline"]["jobs"]
        jobs[0], jobs[1] = jobs[1], jobs[0]
        assert diff_workloads(base, edited) is None

    def test_cosmetic_names_ignored(self):
        base = _base_spec()
        edited = deepcopy(base)
        edited["name"] = "other-label"
        edited["workload"]["name"] = "variant-b"
        assert diff_workloads(base, edited) is not None

    def test_duplicate_job_ids_rejected(self):
        base = _base_spec()
        base["workload"]["inline"]["jobs"].append(_job(1, 300.0))
        with pytest.raises(ReplayError):
            diff_workloads(base, _base_spec())


class TestWhatIf:
    @pytest.mark.parametrize(
        "edit",
        ["modify", "retime", "remove", "add"],
    )
    def test_warm_replay_matches_cold(self, edit):
        base = _base_spec()
        edited = deepcopy(base)
        jobs = edited["workload"]["inline"]["jobs"]
        if edit == "modify":
            jobs[5]["num_nodes"] = 5
        elif edit == "retime":
            jobs[5]["submit_time"] = 170.0
        elif edit == "remove":
            del jobs[5]
        else:
            jobs.append(_job(7, 130.0))
        result = whatif(base, edited, snapshot_every=25)
        assert result.warm, f"{edit}: expected a warm suffix replay ({result.reason})"
        assert json.dumps(result.record, sort_keys=True) == _cold_fingerprint(edited)
        assert result.events_saved > 0
        assert result.snapshot_time < result.diff["divergence_time"]

    def test_early_divergence_falls_back_cold(self):
        base = _base_spec()
        edited = deepcopy(base)
        edited["workload"]["inline"]["jobs"][0]["num_nodes"] = 4  # submit 0
        result = whatif(base, edited, snapshot_every=25)
        assert not result.warm
        assert "no snapshot before the divergence" in result.reason
        assert json.dumps(result.record, sort_keys=True) == _cold_fingerprint(edited)

    def test_incomparable_specs_fall_back_cold(self):
        base = _base_spec()
        edited = deepcopy(base)
        edited["algorithm"] = "fcfs"
        result = whatif(base, edited, snapshot_every=25)
        assert not result.warm
        assert result.diff is None
        assert json.dumps(result.record, sort_keys=True) == _cold_fingerprint(edited)

    def test_precomputed_snapshots_are_reused(self):
        base = _base_spec()
        _, snapshots = run_with_snapshots(base, 25)
        edited = deepcopy(base)
        edited["workload"]["inline"]["jobs"][5]["num_nodes"] = 5
        result = whatif(base, edited, snapshots=snapshots)
        assert result.warm
        assert json.dumps(result.record, sort_keys=True) == _cold_fingerprint(edited)


class TestSpliceEligibility:
    def test_splice_refuses_snapshot_past_divergence(self):
        base = _base_spec()
        _, snapshots = run_with_snapshots(base, 25)
        edited = deepcopy(base)
        edited["workload"]["inline"]["jobs"][0]["num_nodes"] = 4
        diff = diff_workloads(base, edited)
        late = max(snapshots, key=lambda s: s.processed_events)
        assert late.time >= diff["divergence_time"]
        with pytest.raises(ReplayError):
            splice_snapshot(late, edited, diff)

    def test_splice_refuses_finish_line_behind_snapshot(self):
        # Removing jobs moves the finished-count finish line: a snapshot
        # where every *surviving* job already finished does not exist in
        # the edited timeline (all_done fired earlier there).
        base = _base_spec()
        _, snapshots = run_with_snapshots(base, 25)
        edited = deepcopy(base)
        edited["workload"]["inline"]["jobs"] = edited["workload"]["inline"]["jobs"][:1]
        edited["workload"]["inline"]["jobs"].append(_job(6, 125.0))
        snap = next(
            (s for s in snapshots if s.state["batch"]["finished_count"] >= 2),
            None,
        )
        assert snap is not None, "need a snapshot with >= 2 finished jobs"
        diff = diff_workloads(base, edited)
        if snap.time < diff["divergence_time"]:
            with pytest.raises(ReplayError):
                splice_snapshot(snap, edited, diff)

    def test_whatif_skips_ineligible_snapshots_but_stays_correct(self):
        base = _base_spec()
        edited = deepcopy(base)
        # Keep only the first job and add a late one: most snapshots have
        # finished_count >= 2 and must be skipped.
        edited["workload"]["inline"]["jobs"] = [
            edited["workload"]["inline"]["jobs"][0],
            _job(8, 140.0),
        ]
        result = whatif(base, edited, snapshot_every=25)
        assert json.dumps(result.record, sort_keys=True) == _cold_fingerprint(edited)


class TestWhatIfSession:
    def _variant(self, num_nodes, label):
        spec = _base_spec()
        spec["workload"]["name"] = label
        spec["workload"]["inline"]["jobs"][5]["num_nodes"] = num_nodes
        return spec

    def test_grid_members_warm_start_after_base(self):
        session = WhatIfSession(snapshot_every=25)
        first = session.run(self._variant(2, "v0"))
        assert not first.warm  # the base run records snapshots
        for index, nodes in enumerate((3, 4, 5)):
            spec = self._variant(nodes, f"v{index + 1}")
            result = session.run(spec)
            assert result.warm, result.reason
            assert json.dumps(result.record, sort_keys=True) == _cold_fingerprint(spec)
        assert session.stats["cold"] == 1
        assert session.stats["warm"] == 3
        assert session.stats["events_saved"] > 0

    def test_auto_refines_coarse_cadence(self):
        # Default cadence (2000 events) exceeds this whole run; the session
        # re-runs the base finer instead of never warm-starting.
        session = WhatIfSession()
        session.run(self._variant(2, "v0"))
        result = session.run(self._variant(5, "v1"))
        assert result.warm, result.reason

    def test_incompatible_scenarios_run_cold(self):
        session = WhatIfSession(snapshot_every=25)
        session.run(self._variant(2, "v0"))
        other = self._variant(5, "v1")
        other["algorithm"] = "fcfs"
        result = session.run(other)
        assert not result.warm  # different compatibility group: new base
        non_inline = {
            "platform": _platform(),
            "workload": {"file": "does-not-matter.json"},
            "algorithm": "easy",
        }
        assert session.compatibility_key(non_inline) is None

    def test_until_blocks_warm_start(self):
        session = WhatIfSession(snapshot_every=25)
        spec = self._variant(2, "v0")
        spec["sim"] = {"until": 100.0}
        assert session.compatibility_key(spec) is None
