"""CLI surface of the replay layer: ``elastisim whatif``."""

import json
from copy import deepcopy

import pytest

from repro.cli import EXIT_OK, EXIT_USAGE, main


def _base_spec():
    jobs = [
        {
            "id": j,
            "submit_time": 25.0 * (j - 1),
            "num_nodes": 2,
            "application": {
                "name": "app",
                "phases": [
                    {"tasks": [{"type": "cpu", "flops": 4e10}], "iterations": 3}
                ],
            },
        }
        for j in range(1, 7)
    ]
    return {
        "name": "cli-whatif",
        "platform": {
            "name": "cli-whatif-test",
            "nodes": {"count": 8, "flops": 1e12},
            "network": {"topology": "star", "bandwidth": 1e10, "pfs_bandwidth": 1e11},
            "pfs": {"read_bw": 1e11, "write_bw": 8e10},
        },
        "workload": {"inline": {"jobs": jobs}},
        "algorithm": "easy",
    }


@pytest.fixture()
def base_file(tmp_path):
    path = tmp_path / "base.json"
    path.write_text(json.dumps(_base_spec()))
    return path


class TestWhatIfCli:
    def test_resume_at_self_test(self, base_file, tmp_path, capsys):
        out = tmp_path / "out"
        code = main(
            [
                "whatif",
                "--base", str(base_file),
                "--resume-at", "0.5",
                "--snapshot-every", "25",
                "--output-dir", str(out),
            ]
        )
        assert code == EXIT_OK
        assert "records byte-identical: True" in capsys.readouterr().out
        cold = (out / "cold_record.json").read_text()
        resumed = (out / "resumed_record.json").read_text()
        assert cold == resumed

    def test_edited_warm_replay_with_verify(self, base_file, tmp_path, capsys):
        edited = _base_spec()
        edited["workload"]["inline"]["jobs"][5]["num_nodes"] = 5
        edited_file = tmp_path / "edited.json"
        edited_file.write_text(json.dumps(edited))
        out = tmp_path / "out"
        code = main(
            [
                "whatif",
                "--base", str(base_file),
                "--edited", str(edited_file),
                "--snapshot-every", "25",
                "--verify",
                "--output-dir", str(out),
            ]
        )
        captured = capsys.readouterr().out
        assert code == EXIT_OK
        assert "warm replay from checkpoint" in captured
        assert "byte-identical=True" in captured
        record = json.loads((out / "whatif_record.json").read_text())
        assert record["invocations"] > 0

    def test_cold_fallback_still_succeeds(self, base_file, tmp_path, capsys):
        edited = _base_spec()
        edited["algorithm"] = "fcfs"  # incomparable: falls back cold
        edited_file = tmp_path / "edited.json"
        edited_file.write_text(json.dumps(edited))
        code = main(
            [
                "whatif",
                "--base", str(base_file),
                "--edited", str(edited_file),
                "--verify",
                "--output-dir", str(tmp_path / "out"),
            ]
        )
        captured = capsys.readouterr().out
        assert code == EXIT_OK
        assert "cold run" in captured
        assert "byte-identical=True" in captured

    def test_usage_errors(self, base_file, tmp_path, capsys):
        assert main(["whatif", "--base", str(base_file)]) == EXIT_USAGE
        assert (
            main(["whatif", "--base", str(base_file), "--resume-at", "1.5"])
            == EXIT_USAGE
        )
        # A run shorter than the first checkpoint is a usage error, not a
        # silent cold pass.
        assert (
            main(
                [
                    "whatif",
                    "--base", str(base_file),
                    "--resume-at", "0.5",
                    "--snapshot-every", "100000",
                    "--output-dir", str(tmp_path / "out"),
                ]
            )
            == EXIT_USAGE
        )
