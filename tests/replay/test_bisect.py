"""Checkpoint bisection of crashing fuzz cases (``fuzz shrink --bisect``).

A deterministic crash is injected via a test-only scheduler that raises
once simulated time passes a threshold; bisection must find the latest
checkpoint whose resume still crashes and bulk-drop every job already
finished there, and ``shrink_failure(bisect=True)`` must accept that
head start and still converge on a failing reproducer.
"""

import pytest

from repro.fuzz import bisect_candidates, shrink_failure
from repro.fuzz.oracles import OracleFailure, check_scenario
from repro.fuzz.runner import FuzzFailure
from repro.scheduler import FcfsScheduler
from repro.scheduler.algorithms import _REGISTRY

CRASH_TIME = 120.0


class CrashAfterScheduler(FcfsScheduler):
    """FCFS until ``CRASH_TIME``, then raises — deterministic, state-free."""

    name = "crash-after"

    def schedule(self, ctx, invocation):
        if invocation.time > CRASH_TIME:
            raise RuntimeError(f"scheduler crash at t={invocation.time:g}")
        super().schedule(ctx, invocation)


@pytest.fixture(autouse=True)
def _register_crash_scheduler():
    _REGISTRY[CrashAfterScheduler.name] = CrashAfterScheduler
    try:
        yield
    finally:
        _REGISTRY.pop(CrashAfterScheduler.name, None)


def _job(jid, submit, seconds=20.0):
    return {
        "id": jid,
        "submit_time": submit,
        "num_nodes": 2,
        "application": {
            "name": "app",
            "phases": [{"tasks": [{"type": "delay", "seconds": seconds}]}],
        },
    }


def _crashing_scenario():
    # Jobs 1-4 finish well before CRASH_TIME; jobs 5-6 are in flight or
    # pending when the scheduler blows up.
    return {
        "name": "bisect-crash",
        "platform": {
            "name": "bisect-test",
            "nodes": {"count": 8, "flops": 1e12},
            "network": {"topology": "star", "bandwidth": 1e10, "pfs_bandwidth": 1e11},
            "pfs": {"read_bw": 1e11, "write_bw": 8e10},
        },
        "workload": {
            "inline": {"jobs": [_job(j, 22.0 * (j - 1)) for j in range(1, 7)]}
        },
        "algorithm": "crash-after",
    }


class TestBisectCandidates:
    def test_bulk_drops_finished_jobs(self):
        scenario = _crashing_scenario()
        candidates, info = bisect_candidates(scenario, snapshot_every=10)
        assert info["signature"] == "RuntimeError"
        assert info["snapshots"] > 0
        assert info["dropped_jobs"] >= 1
        assert info["suffix_time"] <= CRASH_TIME
        assert len(candidates) == 1
        kept = candidates[0]["workload"]["inline"]["jobs"]
        full = scenario["workload"]["inline"]["jobs"]
        assert 0 < len(kept) < len(full)
        # The candidate is a genuine head start: it still crashes.
        failures = check_scenario(candidates[0])
        assert any(f.oracle == "crash" for f in failures)

    def test_non_crashing_scenario_yields_nothing(self):
        scenario = _crashing_scenario()
        scenario["algorithm"] = "fcfs"
        candidates, info = bisect_candidates(scenario, snapshot_every=10)
        assert candidates == []
        assert info["signature"] is None

    def test_shrink_failure_accepts_the_head_start(self):
        scenario = _crashing_scenario()
        failure = FuzzFailure(
            seed=0,
            algorithm="crash-after",
            scenario=scenario,
            failures=[OracleFailure("crash", "RuntimeError: scheduler crash")],
        )
        small, evals = shrink_failure(failure, max_evals=60, bisect=True)
        assert evals > 0
        assert any(
            f.oracle == "crash" for f in check_scenario(small)
        ), "shrunk scenario no longer crashes"
        assert len(small["workload"]["inline"]["jobs"]) < len(
            scenario["workload"]["inline"]["jobs"]
        )
