"""Regression checker: tolerances, direction inference, exit codes."""

import json

import pytest

from repro.campaign.compare import (
    CompareError,
    compare_reports,
    load_report,
    main,
    metric_direction,
)


def report(rows, header=("scenario", "makespan", "mean_utilization")):
    return {"header": list(header), "rows": [dict(zip(header, r)) for r in rows]}


class TestMetricDirection:
    def test_lower_is_better_by_default(self):
        assert metric_direction("makespan") is False
        assert metric_direction("mean_wait") is False
        assert metric_direction("mean_bounded_slowdown") is False

    def test_higher_is_better_tokens(self):
        assert metric_direction("mean_utilization") is True
        assert metric_direction("completed_jobs") is True
        assert metric_direction("speedup_vs_serial") is True
        assert metric_direction("cache_hits") is True


class TestCompareReports:
    def test_within_tolerance_is_clean(self):
        base = report([["a", 100.0, 0.80]])
        cur = report([["a", 103.0, 0.79]])
        comparison = compare_reports(cur, base)
        assert comparison.clean
        assert comparison.regressions == []

    def test_lower_is_better_regression(self):
        comparison = compare_reports(
            report([["a", 120.0, 0.80]]), report([["a", 100.0, 0.80]])
        )
        assert not comparison.clean
        assert [d.metric for d in comparison.regressions] == ["makespan"]
        assert comparison.regressions[0].rel_change == pytest.approx(0.2)

    def test_higher_is_better_regression(self):
        comparison = compare_reports(
            report([["a", 100.0, 0.60]]), report([["a", 100.0, 0.80]])
        )
        assert [d.metric for d in comparison.regressions] == ["mean_utilization"]

    def test_improvements_never_regress(self):
        comparison = compare_reports(
            report([["a", 50.0, 0.99]]), report([["a", 100.0, 0.80]])
        )
        assert comparison.clean

    def test_per_metric_tolerance_overrides_default(self):
        base = report([["a", 100.0, 0.80]])
        cur = report([["a", 108.0, 0.80]])
        assert not compare_reports(cur, base).clean
        assert compare_reports(cur, base, tolerances={"makespan": 0.10}).clean

    def test_metrics_filter_restricts_columns(self):
        base = report([["a", 100.0, 0.80]])
        cur = report([["a", 200.0, 0.80]])
        comparison = compare_reports(cur, base, metrics=["mean_utilization"])
        assert comparison.clean
        assert {d.metric for d in comparison.deltas} == {"mean_utilization"}

    def test_missing_row_is_not_clean(self):
        comparison = compare_reports(
            report([["a", 100.0, 0.8]]),
            report([["a", 100.0, 0.8], ["b", 90.0, 0.7]]),
        )
        assert comparison.missing_rows == ["b"]
        assert not comparison.clean

    def test_new_rows_are_reported_but_clean(self):
        comparison = compare_reports(
            report([["a", 100.0, 0.8], ["c", 90.0, 0.7]]),
            report([["a", 100.0, 0.8]]),
        )
        assert comparison.new_rows == ["c"]
        assert comparison.clean

    def test_non_numeric_columns_skipped(self):
        header = ("scenario", "status", "makespan")
        comparison = compare_reports(
            report([["a", "ok", 100.0]], header),
            report([["a", "failed", 100.0]], header),
        )
        assert {d.metric for d in comparison.deltas} == {"makespan"}

    def test_zero_baseline_regresses_only_on_growth(self):
        header = ("scenario", "killed_jobs")
        assert compare_reports(
            report([["a", 0]], header), report([["a", 0]], header)
        ).clean
        assert not compare_reports(
            report([["a", 2]], header), report([["a", 0]], header)
        ).clean

    def test_malformed_report_raises(self):
        with pytest.raises(CompareError):
            compare_reports({"rows": []}, report([["a", 1.0, 0.5]]))
        with pytest.raises(CompareError):
            compare_reports(
                {"header": ["scenario"], "rows": [{"other": 1}]},
                report([["a", 1.0, 0.5]]),
            )


class TestCli:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exit_codes(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", report([["a", 100.0, 0.8]]))
        good = self.write(tmp_path, "good.json", report([["a", 101.0, 0.8]]))
        bad = self.write(tmp_path, "bad.json", report([["a", 150.0, 0.8]]))
        assert main([good, base]) == 0
        assert main([bad, base]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        assert main([bad, base, "--soft"]) == 0
        assert main([bad, base, "--tolerance", "makespan=0.6"]) == 0

    def test_bad_tolerance_and_bad_file_are_usage_errors(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", report([["a", 100.0, 0.8]]))
        assert main([base, base, "--tolerance", "nonsense"]) == 2
        assert main([str(tmp_path / "ghost.json"), base]) == 2
        not_json = tmp_path / "nope.json"
        not_json.write_text("{")
        assert main([str(not_json), base]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_baseline_ok_waives(self, tmp_path, capsys):
        current = self.write(tmp_path, "cur.json", report([["a", 100.0, 0.8]]))
        code = main([current, str(tmp_path / "ghost.json"), "--missing-baseline-ok"])
        assert code == 0
        assert "no baseline" in capsys.readouterr().err

    def test_load_report_rejects_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(CompareError):
            load_report(path)


def aggregate_payload(metrics, scenarios=4):
    return {
        "schema": "elastisim-campaign-aggregate/1",
        "scenarios": scenarios,
        "metrics": metrics,
    }


class TestAggregateSchemaNormalization:
    """Streaming-aggregate payloads gate exactly like row tables."""

    def test_identical_aggregates_are_clean(self):
        payload = aggregate_payload({"makespan": {"mean": 100.0, "max": 120.0}})
        comparison = compare_reports(payload, json.loads(json.dumps(payload)))
        assert comparison.clean
        assert {d.metric for d in comparison.deltas} == {
            "makespan_mean",
            "makespan_max",
            "scenarios",
        }

    def test_metric_name_keeps_direction_visible(self):
        # The whole point of <metric>_<stat> columns: utilization means
        # must stay higher-is-better even though the stat is "mean".
        base = aggregate_payload(
            {"mean_utilization": {"mean": 0.9}, "makespan": {"mean": 100.0}}
        )
        worse = aggregate_payload(
            {"mean_utilization": {"mean": 0.5}, "makespan": {"mean": 100.0}}
        )
        comparison = compare_reports(worse, base)
        (regressed,) = comparison.regressions
        assert regressed.metric == "mean_utilization_mean"
        assert regressed.higher_is_better

    def test_makespan_increase_regresses(self):
        base = aggregate_payload({"makespan": {"mean": 100.0}})
        worse = aggregate_payload({"makespan": {"mean": 200.0}})
        assert not compare_reports(worse, base).clean

    def test_malformed_aggregate_metric_rejected(self):
        bad = aggregate_payload({"makespan": 100.0})
        with pytest.raises(CompareError):
            compare_reports(bad, bad)

    def test_plain_reports_pass_through_unchanged(self):
        plain = report([["a", 100.0, 0.8]])
        comparison = compare_reports(plain, plain)
        assert comparison.clean
