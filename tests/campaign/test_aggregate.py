"""Streaming aggregation: exact folds, certified sketch bounds, merge laws."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (
    AGGREGATE_SCHEMA,
    MetricAccumulator,
    QuantileSketch,
    StreamingAggregator,
)

METRIC = "makespan"

finite_values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def ok_record(value, wall=0.5):
    return {
        "status": "ok",
        "wall_s": wall,
        "result": {"summary": {METRIC: value}},
    }


def exact_quantile(values, q):
    """Linear interpolation between order statistics (numpy's default)."""
    ordered = sorted(values)
    rank = q * (len(ordered) - 1)
    low, high = math.floor(rank), math.ceil(rank)
    if low == high:
        return ordered[low]
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


class TestQuantileSketch:
    def test_small_inputs_are_exact(self):
        # n <= 2 * compression: nothing is ever compressed.
        values = [9.0, 1.0, 5.0, 3.0, 7.0]
        sketch = QuantileSketch(compression=10)
        for value in values:
            sketch.add(value)
        for q in (0.0, 0.25, 0.5, 0.75, 0.9, 1.0):
            assert sketch.quantile(q) == pytest.approx(exact_quantile(values, q))

    def test_memory_stays_bounded(self):
        sketch = QuantileSketch(compression=50)
        for i in range(10_000):
            sketch.add(math.sin(i) * 1000.0)
        sketch._compress()
        assert len(sketch) <= 2 * sketch.compression + 1
        assert sketch.count == 10_000

    def test_bracket_certifies_exact_quantile(self):
        values = [float((i * 37) % 1000) for i in range(5_000)]
        sketch = QuantileSketch(compression=25)
        for value in values:
            sketch.add(value)
        for q in (0.01, 0.1, 0.5, 0.9, 0.99):
            lo, hi = sketch.quantile_bounds(q)
            assert lo <= exact_quantile(values, q) <= hi
            assert lo <= sketch.quantile(q) <= hi

    def test_rejects_nonfinite(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError, match="finite"):
            sketch.add(float("nan"))
        with pytest.raises(ValueError, match="finite"):
            sketch.add(float("inf"))

    def test_rejects_bad_compression(self):
        with pytest.raises(ValueError, match="compression"):
            QuantileSketch(compression=0)

    def test_empty_sketch_has_no_quantiles(self):
        with pytest.raises(ValueError, match="empty"):
            QuantileSketch().quantile(0.5)
        with pytest.raises(ValueError, match="empty"):
            QuantileSketch().quantile_bounds(0.5)

    def test_serialization_roundtrip(self):
        sketch = QuantileSketch(compression=20)
        for i in range(500):
            sketch.add(float(i % 97))
        clone = QuantileSketch.from_dict(json.loads(json.dumps(sketch.to_dict())))
        assert clone.count == sketch.count
        for q in (0.1, 0.5, 0.9):
            assert clone.quantile(q) == sketch.quantile(q)
            assert clone.quantile_bounds(q) == sketch.quantile_bounds(q)


class TestStreamingAggregator:
    def test_counts_statuses_and_error_kinds(self):
        agg = StreamingAggregator(metrics=(METRIC,))
        agg.fold_record(ok_record(10.0))
        agg.fold_record({"status": "failed", "error_kind": "timeout"})
        agg.fold_record({"status": "failed", "error_kind": "exception"})
        agg.fold_record({"status": "failed", "error_kind": "timeout"})
        payload = agg.as_dict()
        assert payload["schema"] == AGGREGATE_SCHEMA
        assert payload["scenarios"] == 4
        assert payload["status"] == {"failed": 3, "ok": 1}
        assert payload["error_kinds"] == {"exception": 1, "timeout": 2}
        assert payload["metrics"][METRIC]["count"] == 1

    def test_fold_jsonl_skips_blank_and_corrupt_lines(self, tmp_path):
        shard = tmp_path / "w1.jsonl"
        shard.write_text(
            json.dumps(ok_record(1.0))
            + "\n\n"
            + "not json at all\n"
            + json.dumps(ok_record(3.0))
            + "\n"
            + '{"status": "ok", "result": {"summ'  # killed mid-append
        )
        agg = StreamingAggregator(metrics=(METRIC,))
        assert agg.fold_jsonl(shard) == 2
        assert agg.accumulator(METRIC).mean == pytest.approx(2.0)

    def test_merge_requires_matching_metrics(self):
        left = StreamingAggregator(metrics=("a",))
        right = StreamingAggregator(metrics=("b",))
        with pytest.raises(ValueError, match="different metrics"):
            left.merge(right)

    def test_percentile_labels(self):
        agg = StreamingAggregator(metrics=(METRIC,))
        agg.fold_record(ok_record(1.0))
        block = agg.as_dict(percentiles=(0.5, 0.999))["metrics"][METRIC]
        assert set(block) == {"count", "mean", "min", "max", "p50", "p99_9"}

    def test_nonnumeric_and_bool_summary_values_ignored(self):
        agg = StreamingAggregator(metrics=(METRIC,))
        agg.fold_record(
            {"status": "ok", "result": {"summary": {METRIC: True}}}
        )
        agg.fold_record(
            {"status": "ok", "result": {"summary": {METRIC: "fast"}}}
        )
        assert agg.accumulator(METRIC).count == 0


class TestShardingInvariance:
    """ISSUE satellite: any sharded/permuted split folds identically."""

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_sharded_permuted_fold_matches_sequential(self, data, tmp_path_factory):
        values = data.draw(
            st.lists(finite_values, min_size=1, max_size=120), label="values"
        )
        order = data.draw(st.permutations(range(len(values))), label="order")
        cuts = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(values)), max_size=4
            ).map(sorted),
            label="cuts",
        )
        failures = data.draw(
            st.lists(st.sampled_from(["timeout", "exception"]), max_size=5),
            label="failures",
        )

        records = [ok_record(values[i]) for i in order]
        records += [{"status": "failed", "error_kind": kind} for kind in failures]
        bounds = [0, *cuts, len(records)]
        shards = [
            records[start:stop] for start, stop in zip(bounds, bounds[1:])
        ]

        # Sequential reference: one aggregator, original order.
        compression = 8  # small enough that 120 values exercise compression
        reference = StreamingAggregator(metrics=(METRIC,), compression=compression)
        for record in [ok_record(v) for v in values] + records[len(values):]:
            reference.fold_record(record)

        # Sharded run: each shard becomes a JSONL file folded by its own
        # aggregator, then partials merge as a reduction tree would.
        shard_dir = tmp_path_factory.mktemp("shards")
        partials = []
        for index, shard in enumerate(shards):
            path = shard_dir / f"w{index}.jsonl"
            path.write_text(
                "".join(json.dumps(record) + "\n" for record in shard)
            )
            partial = StreamingAggregator(
                metrics=(METRIC,), compression=compression
            )
            partial.fold_jsonl(path)
            partials.append(partial)
        merged = partials[0]
        for partial in partials[1:]:
            merged.merge(partial)

        # Counts and means are exact — bit-identical, not approximate.
        assert merged.scenarios == reference.scenarios
        assert merged.status_counts == reference.status_counts
        assert merged.error_kinds == reference.error_kinds
        acc, ref_acc = merged.accumulator(METRIC), reference.accumulator(METRIC)
        assert acc.count == ref_acc.count
        assert acc.mean == ref_acc.mean
        assert acc.min == ref_acc.min
        assert acc.max == ref_acc.max

        # Percentile estimates respect the documented certified bracket:
        # the order statistics around the exact quantile lie within
        # quantile_bounds, and the point estimate stays inside it (up to
        # one interpolation rounding).
        ordered = sorted(values)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            lo, hi = acc.sketch.quantile_bounds(q)
            rank = q * (len(ordered) - 1)
            assert lo <= ordered[math.floor(rank)]
            assert ordered[math.ceil(rank)] <= hi
            slack = 1e-9 * max(1.0, abs(lo), abs(hi))
            assert lo - slack <= acc.sketch.quantile(q) <= hi + slack

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(finite_values, min_size=1, max_size=60))
    def test_mean_is_order_independent_bit_for_bit(self, values):
        forward = MetricAccumulator()
        backward = MetricAccumulator()
        for value in values:
            forward.add(value)
        for value in reversed(values):
            backward.add(value)
        assert forward.mean == backward.mean
        assert forward.count == backward.count
