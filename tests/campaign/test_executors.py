"""Executor protocol: capability flags, fingerprint identity, failure paths."""

import json

import pytest

from repro.campaign import (
    AsyncioExecutor,
    BaseExecutor,
    CampaignError,
    CampaignRunner,
    ExecutorBroken,
    ExecutorError,
    InProcessExecutor,
    ProcessPoolCampaignExecutor,
    QueueWorkerExecutor,
    ScenarioSpec,
    executor_names,
    make_executor,
    result_fingerprint,
    run_scenario,
)

PLATFORM = {
    "nodes": {"count": 8, "flops": 1e12},
    "network": {"topology": "star", "bandwidth": 1e10},
}


def make_scenario(**overrides):
    kwargs = dict(
        platform=PLATFORM,
        workload={
            "generate": {
                "num_jobs": 4,
                "max_request": 4,
                "mean_runtime": 60.0,
                "malleable_fraction": 0.5,
            }
        },
        algorithm="malleable",
        seed=3,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


def small_grid():
    return [
        make_scenario(algorithm=algorithm, seed=seed)
        for algorithm in ("easy", "malleable")
        for seed in (3, 4)
    ]


def slow_scenario():
    """A valid scenario big enough to outlive any sub-second deadline."""
    return make_scenario(
        algorithm="easy",
        workload={"generate": {"num_jobs": 2000, "max_request": 4}},
    )


class TestProtocol:
    def test_registry_names(self):
        assert executor_names() == (
            "in-process",
            "process-pool",
            "asyncio",
            "queue-worker",
        )

    def test_capability_flags(self):
        assert not InProcessExecutor.parallel
        assert not InProcessExecutor.distributed
        assert ProcessPoolCampaignExecutor.parallel
        assert ProcessPoolCampaignExecutor.isolates_processes
        assert AsyncioExecutor.parallel
        assert not AsyncioExecutor.isolates_processes
        assert QueueWorkerExecutor.distributed
        assert QueueWorkerExecutor.isolates_processes

    def test_all_backends_implement_base(self):
        for cls in (
            InProcessExecutor,
            ProcessPoolCampaignExecutor,
            AsyncioExecutor,
            QueueWorkerExecutor,
        ):
            assert issubclass(cls, BaseExecutor)
            assert cls.name in executor_names()

    def test_make_executor_unknown_name(self):
        with pytest.raises(ExecutorError, match="unknown executor"):
            make_executor("carrier-pigeon")

    def test_make_executor_bad_options(self):
        with pytest.raises(ExecutorError, match="bad options"):
            make_executor("in-process", workers=4)

    def test_queue_worker_requires_queue_dir(self):
        with pytest.raises(ExecutorError, match="queue_dir"):
            make_executor("queue-worker")

    def test_runner_rejects_unknown_executor(self):
        with pytest.raises(CampaignError, match="unknown executor"):
            CampaignRunner([make_scenario()], executor="carrier-pigeon")


class TestFingerprintIdentity:
    """The serial/parallel/cached identity contract, across the matrix."""

    @pytest.fixture(scope="class")
    def reference(self):
        report = CampaignRunner(small_grid(), workers=1).run()
        assert [r["status"] for r in report.records] == ["ok"] * 4
        return [result_fingerprint(r) for r in report.records]

    @pytest.mark.parametrize("name", ["in-process", "asyncio", "process-pool"])
    def test_backend_matches_serial_reference(self, name, reference):
        report = CampaignRunner(small_grid(), workers=2, executor=name).run()
        assert report.executor == name
        assert [result_fingerprint(r) for r in report.records] == reference

    def test_queue_worker_matches_serial_reference(self, reference, tmp_path):
        report = CampaignRunner(
            small_grid(),
            workers=2,
            executor="queue-worker",
            executor_options={
                "queue_dir": tmp_path / "queue",
                "workers": 1,
                "lease_s": 15.0,
            },
        ).run()
        assert report.executor == "queue-worker"
        assert [result_fingerprint(r) for r in report.records] == reference

    def test_explicit_executor_instance(self, reference):
        report = CampaignRunner(
            small_grid(), workers=2, executor=AsyncioExecutor(workers=2)
        ).run()
        assert [result_fingerprint(r) for r in report.records] == reference


class TestScenarioTimeout:
    def test_run_scenario_times_out_with_error_kind(self):
        record = run_scenario(slow_scenario().as_record(), None, False, 0.2)
        assert record["status"] == "failed"
        assert record["error_kind"] == "timeout"
        assert "ScenarioTimeout" in record["error"]

    def test_ordinary_failures_are_kind_exception(self):
        record = run_scenario(make_scenario(algorithm="wishful").as_record())
        assert record["status"] == "failed"
        assert record["error_kind"] == "exception"

    def test_fast_scenario_unaffected_by_deadline(self):
        with_deadline = run_scenario(make_scenario().as_record(), None, False, 60.0)
        without = run_scenario(make_scenario().as_record())
        assert with_deadline["status"] == "ok"
        assert result_fingerprint(with_deadline) == result_fingerprint(without)

    def test_runner_records_timeout_and_continues(self):
        scenarios = [slow_scenario(), make_scenario(algorithm="easy", seed=4)]
        report = CampaignRunner(scenarios, workers=1, scenario_timeout=0.2).run()
        statuses = {r["name"]: r.get("status") for r in report.records}
        kinds = {r["name"]: r.get("error_kind") for r in report.records}
        assert statuses[scenarios[0].name] == "failed"
        assert kinds[scenarios[0].name] == "timeout"
        assert statuses[scenarios[1].name] == "ok"

    def test_timeout_on_asyncio_executor_thread(self):
        # to_thread workers cannot receive signals; the watchdog must
        # deliver the deadline to non-main threads too.
        report = CampaignRunner(
            [slow_scenario()],
            workers=2,
            executor="asyncio",
            scenario_timeout=0.2,
        ).run()
        (record,) = report.records
        assert record["status"] == "failed"
        assert record["error_kind"] == "timeout"

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(CampaignError, match="scenario_timeout"):
            CampaignRunner([make_scenario()], scenario_timeout=0.0)

    def test_deadline_survives_a_swallowed_delivery(self):
        # Asynchronous injection can land inside an arbitrary except
        # clause and be absorbed; the watchdog must re-inject until the
        # scenario frame actually unwinds, or the deadline is lost and
        # the scenario runs unbounded.
        import time

        from repro.campaign.runner import ScenarioTimeout, _scenario_deadline

        absorbed = False
        with pytest.raises(ScenarioTimeout):
            with _scenario_deadline(0.05):
                try:
                    end = time.monotonic() + 30.0
                    while time.monotonic() < end:
                        pass
                except ScenarioTimeout:
                    absorbed = True
                # The first delivery was swallowed above; only a repeat
                # injection can terminate this second spin.
                end = time.monotonic() + 30.0
                while time.monotonic() < end:
                    pass
        assert absorbed

    def test_deadline_exit_leaves_profiling_usable(self):
        # Disposal of a raced injection must not leave the interpreter's
        # eval-breaker signalled (as PyThreadState_SetAsyncExc(tid, NULL)
        # does on CPython 3.11): that silently turns every later
        # cProfile'd run into a near-livelock, surfacing as
        # order-dependent multi-minute stalls in unrelated tests.
        import cProfile
        import time

        from repro.campaign.runner import ScenarioTimeout, _scenario_deadline

        with _scenario_deadline(60.0):
            pass
        with pytest.raises(ScenarioTimeout):
            with _scenario_deadline(0.05):
                end = time.monotonic() + 30.0
                while time.monotonic() < end:
                    pass
        start = time.perf_counter()
        profiler = cProfile.Profile()
        profiler.enable()
        total = 0
        for i in range(100_000):
            total += i
        profiler.disable()
        assert total == sum(range(100_000))
        assert time.perf_counter() - start < 10.0


class _BrokenOnceExecutor(BaseExecutor):
    """Raises ExecutorBroken for every other submit."""

    name = "broken-once"

    def __init__(self):
        self.calls = 0

    async def submit(self, fn, /, *args):
        self.calls += 1
        if self.calls % 2 == 1:
            raise ExecutorBroken("simulated backend death")
        return fn(*args)


class TestBrokenExecutor:
    def test_broken_submits_rerun_in_process(self):
        grid = small_grid()
        reference = [
            result_fingerprint(r)
            for r in CampaignRunner(grid, workers=1).run().records
        ]
        report = CampaignRunner(grid, executor=_BrokenOnceExecutor()).run()
        assert [r["status"] for r in report.records] == ["ok"] * 4
        assert [result_fingerprint(r) for r in report.records] == reference


class TestReportShape:
    def test_campaign_dict_carries_executor(self):
        report = CampaignRunner([make_scenario()], workers=1).run()
        payload = report.as_dict()
        assert payload["campaign"]["executor"] == "serial"
        fingerprint = result_fingerprint(report.records[0])
        assert "wall_s" not in json.loads(fingerprint)
