"""Scenario canonicalisation, content keys, and grid expansion."""

import json

import pytest

from repro.campaign import (
    CampaignError,
    ScenarioSpec,
    canonical_json,
    canonicalize,
    derive_seed,
    expand_campaign,
    load_campaign,
    scenario_key,
    scenarios_from_grid,
)

PLATFORM = {
    "nodes": {"count": 8, "flops": 1e12},
    "network": {"topology": "star", "bandwidth": 1e10},
}
WORKLOAD = {"generate": {"num_jobs": 4, "max_request": 4}}


def make_scenario(**overrides):
    kwargs = dict(platform=PLATFORM, workload=WORKLOAD, algorithm="easy", seed=0)
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestCanonicalize:
    def test_sorts_keys_and_normalises_numbers(self):
        assert canonical_json({"b": 1, "a": 32.0}) == '{"a":32,"b":1}'

    def test_key_order_does_not_matter(self):
        a = {"x": 1, "y": {"p": 2, "q": 3}}
        b = {"y": {"q": 3, "p": 2}, "x": 1}
        assert canonical_json(a) == canonical_json(b)

    def test_tuples_become_lists(self):
        assert canonicalize((1, 2)) == [1, 2]

    def test_rejects_non_json(self):
        with pytest.raises(CampaignError):
            canonicalize({"f": object()})

    def test_rejects_non_finite(self):
        with pytest.raises(CampaignError):
            canonicalize(float("inf"))

    def test_rejects_non_string_keys(self):
        with pytest.raises(CampaignError):
            canonicalize({1: "x"})


class TestScenarioKey:
    def test_key_is_stable(self):
        assert make_scenario().key() == make_scenario().key()

    def test_key_tracks_physics(self):
        base = make_scenario().key()
        assert make_scenario(seed=1).key() != base
        assert make_scenario(algorithm="fcfs").key() != base
        assert (
            make_scenario(workload={"generate": {"num_jobs": 5}}).key() != base
        )
        assert (
            make_scenario(
                platform={**PLATFORM, "nodes": {"count": 16, "flops": 1e12}}
            ).key()
            != base
        )

    def test_key_ignores_labels(self):
        base = make_scenario().key()
        assert make_scenario(name="other", params={"load": 1}).key() == base

    def test_key_tracks_salt(self):
        scenario = make_scenario()
        assert scenario.key(salt="a") != scenario.key(salt="b")

    def test_integral_floats_hash_like_ints(self):
        a = make_scenario(workload={"generate": {"num_jobs": 4.0}})
        b = make_scenario(workload={"generate": {"num_jobs": 4}})
        assert a.key() == b.key()

    def test_scenario_key_function_matches_method(self):
        scenario = make_scenario()
        assert scenario.key() == scenario_key(scenario.canonical())


class TestScenarioSpec:
    def test_needs_workload_source(self):
        with pytest.raises(CampaignError):
            make_scenario(workload={})

    def test_needs_algorithm(self):
        with pytest.raises(CampaignError):
            make_scenario(algorithm="")

    def test_auto_name_includes_params_and_seed(self):
        scenario = make_scenario(params={"load": 0.9}, seed=7)
        assert scenario.name == "easy/load=0.9/seed=7"


class TestEngine:
    def test_numeric_values_fold_to_booleans(self):
        scenario = make_scenario(engine={"array_engine": 1, "vectorize": 0})
        assert scenario.engine == {"array_engine": True, "vectorize": False}

    def test_vectorize_accepts_none_for_auto_dispatch(self):
        assert make_scenario(engine={"vectorize": None}).engine == {"vectorize": None}

    def test_unknown_mode_rejected(self):
        with pytest.raises(CampaignError):
            make_scenario(engine={"turbo": True})

    def test_non_boolean_value_rejected(self):
        with pytest.raises(CampaignError):
            make_scenario(engine={"compiled": "yes"})
        with pytest.raises(CampaignError):
            make_scenario(engine={"array_engine": None})

    def test_unpinned_spec_keeps_its_pre_engine_key(self):
        # Scenarios without pins must hash exactly as they did before the
        # engine field existed, so existing result caches stay warm.
        assert make_scenario(engine={}).key() == make_scenario().key()
        assert "engine" not in make_scenario().canonical()

    def test_pinned_spec_gets_its_own_key(self):
        base = make_scenario().key()
        on = make_scenario(engine={"array_engine": True}).key()
        off = make_scenario(engine={"array_engine": False}).key()
        assert base != on and base != off and on != off


class TestDeriveSeed:
    def test_deterministic_and_distinct(self):
        assert derive_seed(0, "a") == derive_seed(0, "a")
        assert derive_seed(0, "a") != derive_seed(0, "b")
        assert derive_seed(0, "a") != derive_seed(1, "a")

    def test_fits_in_63_bits(self):
        assert 0 <= derive_seed(12345, "x") < 2**63


class TestExpandCampaign:
    def base(self, **extra):
        spec = {
            "platform": PLATFORM,
            "workload": WORKLOAD,
            "algorithms": ["easy", "fcfs"],
            "seeds": [0, 1, 2],
        }
        spec.update(extra)
        return spec

    def test_cartesian_product_size(self):
        scenarios = expand_campaign(self.base(grid={"load": [0.5, 0.9]}))
        assert len(scenarios) == 2 * 3 * 2
        assert len({s.name for s in scenarios}) == len(scenarios)

    def test_grid_values_bind_into_expressions(self):
        scenarios = expand_campaign(
            self.base(
                workload={
                    "generate": {
                        "num_jobs": 4,
                        "malleable_fraction": "share",
                        "mean_runtime": "100 * load",
                    }
                },
                grid={"load": [0.5, 1.0], "share": [0.0, 0.25]},
            )
        )
        generate = scenarios[0].workload["generate"]
        assert generate["malleable_fraction"] in (0.0, 0.25)
        assert generate["mean_runtime"] in (50.0, 100, 100.0, 25.0)
        picked = {
            (s.params["load"], s.params["share"], s.workload["generate"]["mean_runtime"])
            for s in scenarios
        }
        for load, share, runtime in picked:
            assert runtime == 100 * load

    def test_engine_block_binds_grid_expressions(self):
        scenarios = expand_campaign(
            self.base(engine={"array_engine": "arr"}, grid={"arr": [0, 1]})
        )
        pins = {(s.params["arr"], s.engine["array_engine"]) for s in scenarios}
        assert pins == {(0, False), (1, True)}

    def test_non_expression_strings_pass_through(self):
        scenarios = expand_campaign(self.base())
        assert scenarios[0].platform["network"]["topology"] == "star"
        assert scenarios[0].platform["nodes"]["count"] == 8

    def test_num_seeds_derives_deterministic_seeds(self):
        spec = self.base(num_seeds=3)
        del spec["seeds"]
        a = expand_campaign(spec)
        b = expand_campaign(dict(spec))
        assert [s.seed for s in a] == [s.seed for s in b]
        assert len({s.seed for s in a}) == 3

    def test_unknown_keys_rejected(self):
        with pytest.raises(CampaignError):
            expand_campaign(self.base(surprise=1))

    def test_empty_axes_rejected(self):
        with pytest.raises(CampaignError):
            expand_campaign(self.base(grid={"load": []}))
        with pytest.raises(CampaignError):
            expand_campaign(self.base(seeds=[]))

    def test_singular_and_plural_conflict(self):
        with pytest.raises(CampaignError):
            expand_campaign(self.base(algorithm="easy"))


class TestLoadCampaign:
    def test_json_file(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(
            json.dumps(
                {"platform": PLATFORM, "workload": WORKLOAD, "seeds": [0, 1]}
            )
        )
        scenarios = load_campaign(path)
        assert len(scenarios) == 2

    def test_toml_file(self, tmp_path):
        path = tmp_path / "c.toml"
        path.write_text(
            "\n".join(
                [
                    'algorithms = ["easy", "fcfs"]',
                    "[platform.nodes]",
                    "count = 8",
                    "flops = 1e12",
                    "[platform.network]",
                    'topology = "star"',
                    "bandwidth = 1e10",
                    "[workload.generate]",
                    "num_jobs = 4",
                ]
            )
        )
        scenarios = load_campaign(path)
        assert len(scenarios) == 2
        assert scenarios[0].platform["nodes"]["count"] == 8

    def test_missing_file(self, tmp_path):
        with pytest.raises(CampaignError):
            load_campaign(tmp_path / "ghost.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("{nope")
        with pytest.raises(CampaignError):
            load_campaign(path)

    def test_workload_file_content_pins_the_key(self, tmp_path):
        workload = {
            "jobs": [
                {
                    "id": 1,
                    "type": "rigid",
                    "num_nodes": 2,
                    "application": {
                        "phases": [{"tasks": [{"type": "cpu", "flops": 1e9}]}]
                    },
                }
            ]
        }
        wl_path = tmp_path / "wl.json"
        wl_path.write_text(json.dumps(workload))
        campaign = tmp_path / "c.json"
        campaign.write_text(
            json.dumps({"platform": PLATFORM, "workload": {"file": "wl.json"}})
        )
        key_before = load_campaign(campaign)[0].key()
        # Same path, different content -> different content address.
        workload["jobs"][0]["num_nodes"] = 4
        wl_path.write_text(json.dumps(workload))
        key_after = load_campaign(campaign)[0].key()
        assert key_before != key_after


class TestScenariosFromGrid:
    def test_calls_build_per_point_in_order(self):
        seen = []

        def build(load, share):
            seen.append((load, share))
            return make_scenario(params={"load": load, "share": share})

        scenarios = scenarios_from_grid(
            {"load": [1, 2], "share": [3, 4]}, build
        )
        assert seen == [(1, 3), (1, 4), (2, 3), (2, 4)]
        assert len(scenarios) == 4

    def test_none_skips_a_point(self):
        scenarios = scenarios_from_grid(
            {"x": [0, 1]}, lambda x: make_scenario(params={"x": x}) if x else None
        )
        assert len(scenarios) == 1
