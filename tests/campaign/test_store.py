"""Shared artifact store: read-through, write-through, copy-back, env default."""

import json

from repro.campaign import (
    ArtifactStore,
    CampaignRunner,
    ResultCache,
    ScenarioSpec,
    default_store_dir,
    result_fingerprint,
)
from repro.campaign.store import STORE_DIR_ENV

PLATFORM = {
    "nodes": {"count": 8, "flops": 1e12},
    "network": {"topology": "star", "bandwidth": 1e10},
}

OK_RECORD = {"status": "ok", "result": {"summary": {"makespan": 1.0}}}
KEY = "ab" + "0" * 62


def make_scenario(seed=3):
    return ScenarioSpec(
        platform=PLATFORM,
        workload={"generate": {"num_jobs": 4, "max_request": 4}},
        algorithm="easy",
        seed=seed,
    )


class TestArtifactStore:
    def test_local_only_is_a_plain_cache(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        store = ArtifactStore(tmp_path / "local")
        assert store.shared is None
        assert isinstance(store, ResultCache)
        store.store(KEY, OK_RECORD)
        assert store.lookup(KEY) == OK_RECORD
        assert store.shared_hits == 0

    def test_write_through_lands_in_both_trees(self, tmp_path):
        store = ArtifactStore(tmp_path / "local", shared_root=tmp_path / "shared")
        store.store(KEY, OK_RECORD)
        local = ResultCache(tmp_path / "local")
        shared = ResultCache(tmp_path / "shared")
        assert local.lookup(KEY) == OK_RECORD
        assert shared.lookup(KEY) == OK_RECORD

    def test_read_through_with_copy_back(self, tmp_path):
        # Another host populated the shared tree; this host's local tree
        # is empty.
        ResultCache(tmp_path / "shared").store(KEY, OK_RECORD)
        store = ArtifactStore(tmp_path / "local", shared_root=tmp_path / "shared")
        assert store.lookup(KEY) == OK_RECORD
        assert store.shared_hits == 1
        # Copy-back: the next lookup is answered locally.
        assert ResultCache(tmp_path / "local").lookup(KEY) == OK_RECORD
        assert store.lookup(KEY) == OK_RECORD
        assert store.shared_hits == 1

    def test_miss_everywhere_is_none(self, tmp_path):
        store = ArtifactStore(tmp_path / "local", shared_root=tmp_path / "shared")
        assert store.lookup(KEY) is None

    def test_failed_records_never_stored(self, tmp_path):
        store = ArtifactStore(tmp_path / "local", shared_root=tmp_path / "shared")
        store.store(KEY, {"status": "failed", "error": "boom"})
        assert store.lookup(KEY) is None
        assert ResultCache(tmp_path / "shared").lookup(KEY) is None

    def test_env_default_arms_the_shared_layer(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "env-shared"))
        assert default_store_dir() == tmp_path / "env-shared"
        store = ArtifactStore(tmp_path / "local")
        assert store.shared is not None
        store.store(KEY, OK_RECORD)
        assert ResultCache(tmp_path / "env-shared").lookup(KEY) == OK_RECORD


class TestFleetDedupe:
    def test_two_hosts_share_results_through_the_store(self, tmp_path):
        """Distinct local caches, one shared store: compute once, reuse."""
        scenarios = [make_scenario(seed=seed) for seed in (3, 4)]
        host_a = ArtifactStore(tmp_path / "a", shared_root=tmp_path / "shared")
        first = CampaignRunner(scenarios, workers=1, cache=host_a).run()
        assert first.executed == 2

        host_b = ArtifactStore(tmp_path / "b", shared_root=tmp_path / "shared")
        second = CampaignRunner(scenarios, workers=1, cache=host_b).run()
        assert second.executed == 0
        assert second.cache_hits == 2
        assert host_b.shared_hits == 2
        assert [result_fingerprint(r) for r in second.records] == [
            result_fingerprint(r) for r in first.records
        ]

    def test_cached_records_are_byte_identical(self, tmp_path):
        scenario = make_scenario()
        store = ArtifactStore(tmp_path / "local", shared_root=tmp_path / "shared")
        fresh = CampaignRunner([scenario], workers=1, cache=store).run()
        cached = CampaignRunner([scenario], workers=1, cache=store).run()
        assert cached.records[0]["cached"] is True
        assert result_fingerprint(cached.records[0]) == result_fingerprint(
            fresh.records[0]
        )
        # The stored payload is canonical JSON on disk in both trees.
        local_path = store.path_for(fresh.records[0]["key"])
        shared_path = store.shared.path_for(fresh.records[0]["key"])
        assert json.loads(local_path.read_text()) == json.loads(
            shared_path.read_text()
        )
