"""Shared queue: claims, leases, reclamation, worker loop, dead-worker survival."""

import json
import os
import time

import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignRunner,
    QueueError,
    QueueWorkerExecutor,
    ScenarioQueue,
    ScenarioSpec,
    result_fingerprint,
    run_scenario,
    scenario_key,
    worker_loop,
)

PLATFORM = {
    "nodes": {"count": 8, "flops": 1e12},
    "network": {"topology": "star", "bandwidth": 1e10},
}


def make_scenario(**overrides):
    kwargs = dict(
        platform=PLATFORM,
        workload={"generate": {"num_jobs": 4, "max_request": 4, "mean_runtime": 60.0}},
        algorithm="easy",
        seed=3,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


def enqueue_scenario(queue, task_id, scenario, *, salt="test-salt"):
    payload = scenario.as_record()
    key = scenario_key(scenario.canonical(), salt=salt)
    queue.enqueue(task_id, payload, key)
    return key


def backdate_claim(queue, task_id, age_s):
    path = queue.claims_dir / f"{task_id}.json"
    stamp = time.time() - age_s
    os.utime(path, (stamp, stamp))


class TestScenarioQueue:
    def test_create_open_roundtrip(self, tmp_path):
        created = ScenarioQueue.create(tmp_path / "q", salt="s", lease_s=7.0)
        opened = ScenarioQueue.open(tmp_path / "q")
        assert opened.manifest["salt"] == "s"
        assert opened.lease_s == 7.0
        assert created.task_ids() == []
        assert not opened.is_closed

    def test_create_twice_refuses(self, tmp_path):
        ScenarioQueue.create(tmp_path / "q")
        with pytest.raises(QueueError, match="already exists"):
            ScenarioQueue.create(tmp_path / "q")

    def test_open_missing_queue(self, tmp_path):
        with pytest.raises(QueueError, match="no compatible queue manifest"):
            ScenarioQueue.open(tmp_path / "ghost")

    def test_claim_is_exclusive(self, tmp_path):
        queue = ScenarioQueue.create(tmp_path / "q")
        enqueue_scenario(queue, "000001", make_scenario())
        assert queue.claimable() == ["000001"]
        assert queue.try_claim("000001", "alice")
        assert not queue.try_claim("000001", "bob")
        assert queue.claimable() == []
        queue.release("000001")
        assert queue.claimable() == ["000001"]

    def test_stale_claim_becomes_claimable(self, tmp_path):
        queue = ScenarioQueue.create(tmp_path / "q", lease_s=5.0)
        enqueue_scenario(queue, "000001", make_scenario())
        assert queue.try_claim("000001", "doomed")
        backdate_claim(queue, "000001", age_s=60.0)
        assert queue.claimable() == ["000001"]
        assert queue.reclaim_stale() == ["000001"]
        # The claim file is gone: a healthy worker can claim it again.
        assert queue.try_claim("000001", "rescuer")

    def test_heartbeat_keeps_claim_live(self, tmp_path):
        queue = ScenarioQueue.create(tmp_path / "q", lease_s=5.0)
        enqueue_scenario(queue, "000001", make_scenario())
        queue.try_claim("000001", "alice")
        backdate_claim(queue, "000001", age_s=60.0)
        queue.heartbeat("000001")
        assert queue.claimable() == []
        assert queue.reclaim_stale() == []

    def test_finished_task_claim_is_tidied(self, tmp_path):
        queue = ScenarioQueue.create(tmp_path / "q", lease_s=5.0)
        enqueue_scenario(queue, "000001", make_scenario())
        queue.try_claim("000001", "alice")
        queue.write_result("000001", {"status": "ok", "result": {}})
        # Owner died between result write and release: not stale yet, but
        # the result exists, so the claim is just litter.
        assert queue.reclaim_stale() == []
        assert not (queue.claims_dir / "000001.json").exists()
        assert queue.unfinished() == []

    def test_increments_append_one_line_per_record(self, tmp_path):
        queue = ScenarioQueue.create(tmp_path / "q")
        queue.append_increment("w1", {"status": "ok", "n": 1})
        queue.append_increment("w1", {"status": "failed", "n": 2})
        queue.append_increment("w2", {"status": "ok", "n": 3})
        paths = queue.increment_paths()
        assert [p.name for p in paths] == ["w1.jsonl", "w2.jsonl"]
        lines = [json.loads(line) for line in paths[0].read_text().splitlines()]
        assert [line["n"] for line in lines] == [1, 2]


class TestWorkerLoop:
    def test_drains_queue_inline(self, tmp_path):
        queue = ScenarioQueue.create(tmp_path / "q", salt="test-salt")
        keys = [
            enqueue_scenario(queue, f"{i:06d}", make_scenario(seed=seed))
            for i, seed in enumerate((3, 4), start=1)
        ]
        queue.close()
        executed = worker_loop(tmp_path / "q", worker_id="inline", poll_s=0.01)
        assert executed == 2
        for i, key in enumerate(keys, start=1):
            record = queue.read_result(f"{i:06d}")
            assert record["status"] == "ok"
        shards = queue.increment_paths()
        assert len(shards) == 1
        assert len(shards[0].read_text().splitlines()) == 2

    def test_reclaims_a_dead_workers_task(self, tmp_path):
        queue = ScenarioQueue.create(tmp_path / "q", salt="test-salt", lease_s=0.5)
        enqueue_scenario(queue, "000001", make_scenario())
        queue.try_claim("000001", "died-mid-run")
        backdate_claim(queue, "000001", age_s=10.0)
        queue.close()
        executed = worker_loop(tmp_path / "q", worker_id="rescuer", poll_s=0.01)
        assert executed == 1
        assert queue.read_result("000001")["status"] == "ok"

    def test_answers_from_shared_store(self, tmp_path):
        scenario = make_scenario()
        record = run_scenario(scenario.as_record())
        key = scenario_key(scenario.canonical(), salt="test-salt")
        store = ArtifactStore(tmp_path / "local", shared_root=tmp_path / "shared")
        store.store(key, record)

        queue = ScenarioQueue.create(
            tmp_path / "q",
            salt="test-salt",
            store_dir=tmp_path / "shared",
            cache_dir=tmp_path / "worker-local",
        )
        queue.enqueue("000001", scenario.as_record(), key)
        queue.close()
        executed = worker_loop(tmp_path / "q", worker_id="cached", poll_s=0.01)
        assert executed == 1
        answered = queue.read_result("000001")
        assert answered["cached"] is True
        assert result_fingerprint(answered) == result_fingerprint(record)

    def test_exit_when_idle_on_empty_queue(self, tmp_path):
        ScenarioQueue.create(tmp_path / "q")
        assert (
            worker_loop(tmp_path / "q", worker_id="idle", exit_when_idle=True) == 0
        )


class TestQueueWorkerExecutor:
    def test_killed_worker_loses_no_scenarios(self, tmp_path):
        """The acceptance-criterion unit test: kill a worker, lose nothing."""
        scenarios = [make_scenario(seed=seed) for seed in (3, 4, 5)]
        reference = [
            result_fingerprint(r)
            for r in CampaignRunner(scenarios, workers=1).run().records
        ]
        executor = QueueWorkerExecutor(
            queue_dir=tmp_path / "q", workers=2, lease_s=2.0, salt="test-salt"
        )
        # One of the fleet dies before it can finish anything; the lease
        # mechanism hands its claims to the survivor.
        executor._spawned[0].kill()
        report = CampaignRunner(scenarios, workers=2, executor=executor).run()
        assert [r["status"] for r in report.records] == ["ok"] * 3
        assert [result_fingerprint(r) for r in report.records] == reference

    def test_whole_fleet_dead_falls_back_in_process(self, tmp_path):
        scenarios = [make_scenario(seed=3)]
        executor = QueueWorkerExecutor(
            queue_dir=tmp_path / "q", workers=1, lease_s=0.3, salt="test-salt"
        )
        for proc in executor._spawned:
            proc.kill()
            proc.wait(timeout=10)
        report = CampaignRunner(scenarios, workers=2, executor=executor).run()
        assert [r["status"] for r in report.records] == ["ok"]
