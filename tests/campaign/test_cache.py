"""Content-addressed result cache: hits, misses, and invalidation."""

import json

from repro.campaign import ResultCache, ScenarioSpec

PLATFORM = {
    "nodes": {"count": 8, "flops": 1e12},
    "network": {"topology": "star", "bandwidth": 1e10},
}


def make_scenario(**overrides):
    kwargs = dict(
        platform=PLATFORM,
        workload={"generate": {"num_jobs": 4, "max_request": 4}},
        algorithm="easy",
        seed=0,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


def ok_record(**extra):
    record = {"status": "ok", "result": {"summary": {"makespan": 10.0}}}
    record.update(extra)
    return record


class TestLookupAndStore:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_scenario().key()
        assert cache.lookup(key) is None
        assert cache.misses == 1
        cache.store(key, ok_record())
        assert cache.lookup(key) == ok_record()
        assert cache.hits == 1
        assert key in cache
        assert len(cache) == 1

    def test_spec_change_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(make_scenario().key(), ok_record())
        assert cache.lookup(make_scenario(seed=1).key()) is None
        assert cache.lookup(make_scenario(algorithm="fcfs").key()) is None

    def test_salt_change_is_a_miss(self, tmp_path):
        # A simulator version bump moves every scenario to a new address.
        scenario = make_scenario()
        cache = ResultCache(tmp_path)
        cache.store(scenario.key(salt="v1"), ok_record())
        assert cache.lookup(scenario.key(salt="v2")) is None
        assert cache.lookup(scenario.key(salt="v1")) is not None

    def test_failed_records_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_scenario().key()
        assert cache.store(key, {"status": "failed", "error": "boom"}) is None
        assert key not in cache
        assert cache.lookup(key) is None


class TestRobustness:
    def test_corrupt_entry_is_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_scenario().key()
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text('{"status": "ok", "trunc')
        assert cache.lookup(key) is None
        assert not path.exists()

    def test_non_ok_entry_on_disk_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_scenario().key()
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"status": "failed"}))
        assert cache.lookup(key) is None

    def test_store_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(make_scenario().key(), ok_record())
        leftovers = [p for p in tmp_path.rglob("*") if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_clear_drops_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(make_scenario().key(), ok_record())
        cache.store(make_scenario(seed=1).key(), ok_record())
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_empty_cache_has_len_zero(self, tmp_path):
        assert len(ResultCache(tmp_path / "never-created")) == 0


class TestDefaultLocation:
    def test_env_var_overrides_root(self, tmp_path, monkeypatch):
        from repro.campaign.cache import CACHE_DIR_ENV, default_cache_dir

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"
        assert ResultCache().root == tmp_path / "custom"

    def test_fan_out_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_scenario().key()
        assert cache.path_for(key) == tmp_path / key[:2] / f"{key}.json"
