"""Tests for the grouped campaign study report."""

import json

from repro.campaign import (
    REPORT_SCHEMA,
    STUDY_METRICS,
    CampaignStudyReport,
    build_report,
)


def record(
    *,
    workload="mix-a",
    algorithm="easy",
    seed=0,
    makespan=100.0,
    util=0.5,
    status="ok",
):
    return {
        "name": f"{algorithm}/{workload}/seed={seed}",
        "params": {"workload": workload},
        "status": status,
        "result": {
            "summary": {
                "makespan": makespan,
                "mean_utilization": util,
                "completed_jobs": 10,
            }
        },
        "scenario": {"algorithm": algorithm, "seed": seed},
    }


class TestGrouping:
    def test_default_groups_by_params_and_algorithm(self):
        report = build_report(
            [
                record(workload="mix-a", algorithm="easy"),
                record(workload="mix-a", algorithm="malleable"),
                record(workload="mix-b", algorithm="easy"),
            ],
            metrics=("makespan",),
        )
        labels = [row["group"] for row in report.rows()]
        assert labels == [
            "algorithm=easy/workload=mix-a",
            "algorithm=easy/workload=mix-b",
            "algorithm=malleable/workload=mix-a",
        ]

    def test_seeds_aggregate_within_group(self):
        report = build_report(
            [
                record(seed=0, makespan=100.0),
                record(seed=1, makespan=300.0),
            ],
            metrics=("makespan",),
        )
        (row,) = report.rows()
        assert row["scenarios"] == 2
        assert row["makespan_mean"] == 200.0
        assert row["makespan_min"] == 100.0
        assert row["makespan_max"] == 300.0

    def test_explicit_group_by(self):
        report = build_report(
            [record(workload="mix-a", algorithm="easy"),
             record(workload="mix-a", algorithm="malleable")],
            group_by=("workload",),
            metrics=("makespan",),
        )
        (row,) = report.rows()  # algorithms merged on purpose
        assert row["group"] == "workload=mix-a"
        assert row["scenarios"] == 2

    def test_records_without_params_group_as_all(self):
        report = build_report(
            [{"status": "ok", "result": {"summary": {"makespan": 5.0}}}],
            metrics=("makespan",),
        )
        (row,) = report.rows()
        assert row["group"] == "all"
        assert row["makespan_mean"] == 5.0

    def test_failed_records_counted_not_folded(self):
        report = build_report(
            [record(makespan=100.0), record(status="failed")],
            metrics=("makespan",),
        )
        (row,) = report.rows()
        assert row["scenarios"] == 2
        assert row["failed"] == 1
        assert row["makespan_mean"] == 100.0


class TestDeterminism:
    def test_json_identical_under_record_permutation(self):
        records = [
            record(workload=w, algorithm=a, seed=s, makespan=100.0 * (s + 1))
            for w in ("mix-a", "mix-b")
            for a in ("easy", "malleable")
            for s in (0, 1, 2)
        ]
        forward = build_report(records, metrics=("makespan",)).to_json()
        backward = build_report(list(reversed(records)), metrics=("makespan",)).to_json()
        assert forward == backward

    def test_fold_jsonl_matches_in_memory(self, tmp_path):
        records = [record(seed=s, makespan=10.0 * s) for s in range(5)]
        path = tmp_path / "scenarios.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        from_file = CampaignStudyReport(metrics=("makespan",))
        assert from_file.fold_jsonl(path) == 5
        assert from_file.to_json() == build_report(
            records, metrics=("makespan",)
        ).to_json()

    def test_fold_jsonl_skips_corrupt_tail(self, tmp_path):
        path = tmp_path / "increment.jsonl"
        path.write_text(json.dumps(record()) + "\n{ truncated")
        report = CampaignStudyReport(metrics=("makespan",))
        assert report.fold_jsonl(path) == 1


class TestRendering:
    def test_schema_and_header(self):
        report = build_report([record()], metrics=("makespan", "mean_utilization"))
        payload = report.as_dict()
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["header"][:3] == ["group", "scenarios", "failed"]
        assert "makespan_mean" in payload["header"]
        assert "mean_utilization_max" in payload["header"]

    def test_markdown_table(self):
        text = build_report(
            [record(makespan=123.5, util=0.75)], metrics=("makespan",)
        ).to_markdown(title="Study")
        lines = text.splitlines()
        assert lines[0] == "# Study"
        assert lines[2].startswith("| group |")
        assert "123.5" in text

    def test_markdown_renders_missing_metric_as_dash(self):
        text = build_report([record()], metrics=("no_such_metric",)).to_markdown()
        assert "—" in text

    def test_write_emits_json_and_markdown(self, tmp_path):
        report = build_report([record()], metrics=STUDY_METRICS)
        paths = report.write(tmp_path / "out", title="T")
        assert paths["json"].read_text() == report.to_json()
        assert paths["markdown"].read_text() == report.to_markdown(title="T")

    def test_compare_accepts_report_payload(self):
        # The report must diff against itself cleanly through the
        # regression comparer (the CI golden-gate path).
        from repro.campaign.compare import compare_reports

        payload = build_report(
            [record(makespan=100.0)], metrics=("makespan", "mean_utilization")
        ).as_dict()
        comparison = compare_reports(payload, json.loads(json.dumps(payload)))
        assert comparison.clean
        assert comparison.deltas
