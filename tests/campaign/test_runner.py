"""Campaign execution: determinism, parallel equality, failure isolation."""

import json

import pytest

from repro.campaign import (
    CampaignError,
    CampaignRunner,
    ResultCache,
    ScenarioSpec,
    result_fingerprint,
    run_scenario,
)

PLATFORM = {
    "nodes": {"count": 8, "flops": 1e12},
    "network": {"topology": "star", "bandwidth": 1e10},
}


def make_scenario(**overrides):
    kwargs = dict(
        platform=PLATFORM,
        workload={
            "generate": {
                "num_jobs": 4,
                "max_request": 4,
                "mean_runtime": 60.0,
                "malleable_fraction": 0.5,
            }
        },
        algorithm="malleable",
        seed=3,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


def small_grid():
    return [
        make_scenario(algorithm=algorithm, seed=seed)
        for algorithm in ("easy", "malleable")
        for seed in (3, 4)
    ]


class TestRunScenario:
    def test_ok_record_shape(self):
        record = run_scenario(make_scenario().as_record())
        assert record["status"] == "ok"
        summary = record["result"]["summary"]
        assert summary["completed_jobs"] + summary["killed_jobs"] == 4
        assert record["result"]["processed_events"] > 0
        assert record["wall_s"] >= 0

    def test_failure_is_a_record_not_an_exception(self):
        record = run_scenario(make_scenario(algorithm="wishful").as_record())
        assert record["status"] == "failed"
        assert "wishful" in record["error"]

    def test_same_spec_same_fingerprint(self):
        a = run_scenario(make_scenario().as_record())
        b = run_scenario(make_scenario().as_record())
        assert result_fingerprint(a) == result_fingerprint(b)
        # wall_s is volatile and must not leak into the fingerprint.
        assert "wall_s" not in json.loads(result_fingerprint(a))

    def test_different_seed_different_fingerprint(self):
        a = run_scenario(make_scenario(seed=3).as_record())
        b = run_scenario(make_scenario(seed=4).as_record())
        assert result_fingerprint(a) != result_fingerprint(b)


class TestEnginePinning:
    def test_pins_do_not_change_the_result(self):
        base = run_scenario(make_scenario().as_record())
        for engine in (
            {"array_engine": False},
            {"array_engine": True, "vectorize": True, "compiled": False},
        ):
            pinned = run_scenario(make_scenario(engine=engine).as_record())
            assert pinned["status"] == "ok"
            assert result_fingerprint(pinned) == result_fingerprint(base)

    def test_pins_are_undone_after_an_in_process_run(self):
        import repro.sharing.model as sharing_model
        from repro.expressions import compiled_enabled
        from repro.sharing import array_engine_enabled

        before = (
            compiled_enabled(),
            sharing_model.DEFAULT_VECTORIZE,
            array_engine_enabled(),
        )
        run_scenario(
            make_scenario(
                engine={
                    "compiled": False,
                    "vectorize": True,
                    "array_engine": not before[2],
                }
            ).as_record()
        )
        after = (
            compiled_enabled(),
            sharing_model.DEFAULT_VECTORIZE,
            array_engine_enabled(),
        )
        assert after == before

    def test_pinned_scenarios_have_distinct_cache_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenarios = [
            make_scenario(engine={"array_engine": True}, name="array-on"),
            make_scenario(engine={"array_engine": False}, name="array-off"),
        ]
        report = CampaignRunner(scenarios, workers=1, cache=cache).run()
        # Distinct content keys: the cache must not answer one backend's
        # scenario with the other's run, even though the results agree.
        assert report.executed == 2
        a, b = report.records
        assert result_fingerprint(a) == result_fingerprint(b)


class TestRunner:
    def test_rejects_empty_and_duplicate_names(self):
        with pytest.raises(CampaignError):
            CampaignRunner([])
        with pytest.raises(CampaignError):
            CampaignRunner([make_scenario(name="x"), make_scenario(name="x")])

    def test_serial_run_order_and_accounting(self):
        scenarios = small_grid()
        report = CampaignRunner(scenarios, name="t", workers=1).run()
        assert [r["name"] for r in report.records] == [s.name for s in scenarios]
        assert len(report.ok) == 4
        assert report.failed == []
        assert report.executed == 4
        assert report.cache_hits == 0

    def test_parallel_equals_serial(self):
        scenarios = small_grid()
        serial = CampaignRunner(scenarios, name="t", workers=1).run()
        parallel = CampaignRunner(scenarios, name="t", workers=2).run()
        assert [result_fingerprint(r) for r in serial.records] == [
            result_fingerprint(r) for r in parallel.records
        ]

    def test_failed_scenario_does_not_kill_campaign(self):
        scenarios = [
            make_scenario(seed=3),
            make_scenario(algorithm="wishful", seed=3),
            make_scenario(seed=4),
        ]
        report = CampaignRunner(scenarios, name="t", workers=2).run()
        assert len(report.records) == 3
        assert len(report.ok) == 2
        assert len(report.failed) == 1
        assert "wishful" in report.failed[0]["error"]

    def test_progress_callback_sees_every_record(self):
        seen = []
        CampaignRunner(small_grid(), name="t", workers=1).run(progress=seen.append)
        assert len(seen) == 4
        assert all(r["status"] == "ok" for r in seen)


class TestRunnerCache:
    def test_second_run_is_all_hits_and_identical(self, tmp_path):
        scenarios = small_grid()
        cache = ResultCache(tmp_path)
        cold = CampaignRunner(scenarios, name="t", workers=1, cache=cache).run()
        warm = CampaignRunner(scenarios, name="t", workers=1, cache=cache).run()
        assert cold.cache_hits == 0 and cold.executed == 4
        assert warm.cache_hits == 4 and warm.executed == 0
        assert all(r["cached"] for r in warm.records)
        assert [result_fingerprint(r) for r in cold.records] == [
            result_fingerprint(r) for r in warm.records
        ]

    def test_spec_change_invalidates_only_that_scenario(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenarios = small_grid()
        CampaignRunner(scenarios, name="t", workers=1, cache=cache).run()
        scenarios[0] = make_scenario(algorithm="easy", seed=99)
        rerun = CampaignRunner(scenarios, name="t", workers=1, cache=cache).run()
        assert rerun.cache_hits == 3
        assert rerun.executed == 1

    def test_force_reruns_despite_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenarios = small_grid()
        CampaignRunner(scenarios, name="t", workers=1, cache=cache).run()
        forced = CampaignRunner(
            scenarios, name="t", workers=1, cache=cache, force=True
        ).run()
        assert forced.cache_hits == 0
        assert forced.executed == 4

    def test_failed_scenarios_are_retried_next_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        bad = [make_scenario(algorithm="wishful")]
        CampaignRunner(bad, name="t", workers=1, cache=cache).run()
        retry = CampaignRunner(bad, name="t", workers=1, cache=cache).run()
        assert retry.cache_hits == 0
        assert retry.executed == 1


class TestReport:
    def test_write_emits_jsonl_and_aggregate(self, tmp_path):
        report = CampaignRunner(small_grid(), name="demo", workers=1).run()
        out = report.write(tmp_path / "results")
        lines = out["scenarios"].read_text().splitlines()
        assert len(lines) == 4
        assert all(json.loads(line)["status"] == "ok" for line in lines)
        aggregate = json.loads(out["aggregate"].read_text())
        assert aggregate["header"][0] == "scenario"
        assert len(aggregate["rows"]) == 4
        assert aggregate["campaign"]["failed"] == 0
        assert {row["scenario"] for row in aggregate["rows"]} == {
            s.name for s in small_grid()
        }

    def test_aggregate_rows_carry_metrics(self):
        report = CampaignRunner([make_scenario()], name="demo", workers=1).run()
        row = report.as_dict()["rows"][0]
        assert row["status"] == "ok"
        assert row["makespan"] > 0
        assert row["completed_jobs"] + row["killed_jobs"] == 4

    def test_written_report_is_byte_identical_across_runs(self, tmp_path):
        # The full determinism claim: same spec, same bytes on disk.
        scenarios = [make_scenario()]
        a = CampaignRunner(scenarios, name="demo", workers=1).run()
        b = CampaignRunner(scenarios, name="demo", workers=1).run()

        def stable_lines(report, out):
            paths = report.write(out)
            return [
                {k: v for k, v in json.loads(line).items() if k != "wall_s"}
                for line in paths["scenarios"].read_text().splitlines()
            ]

        assert stable_lines(a, tmp_path / "a") == stable_lines(b, tmp_path / "b")


class TestTracingIntegration:
    def test_run_scenario_writes_trace(self, tmp_path):
        record = run_scenario(
            make_scenario().as_record(), str(tmp_path), check_invariants=True
        )
        assert record["status"] == "ok"
        trace = record["trace"]
        assert trace.endswith(".trace.jsonl")
        from repro.tracing import check_trace

        assert check_trace(trace, num_nodes=8) == []

    def test_trace_filename_is_sanitised(self, tmp_path):
        record = run_scenario(
            make_scenario(name="easy/seed=0").as_record(),
            str(tmp_path),
            check_invariants=False,
        )
        assert "/" not in record["trace"].rsplit("/", 1)[-1].replace(".trace.jsonl", "")
        assert (tmp_path / "easy_seed_0.trace.jsonl").exists()

    def test_check_invariants_changes_cache_salt(self):
        plain = CampaignRunner([make_scenario()], workers=1)
        checked = CampaignRunner([make_scenario()], workers=1, check_invariants=True)
        assert checked.salt == plain.salt + "+invariants"

    def test_trace_dir_bypasses_cache_reads(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        scenarios = [make_scenario()]
        warm = CampaignRunner(scenarios, workers=1, cache=cache).run()
        assert warm.executed == 1
        # A cache hit has no trace to offer: the traced run must execute.
        traced = CampaignRunner(
            scenarios, workers=1, cache=cache, trace_dir=tmp_path / "traces"
        ).run()
        assert traced.cache_hits == 0
        assert traced.executed == 1
        assert (tmp_path / "traces").is_dir()
        assert list((tmp_path / "traces").glob("*.trace.jsonl"))

    def test_trace_path_not_stored_in_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        scenarios = [make_scenario()]
        CampaignRunner(
            scenarios, workers=1, cache=cache, trace_dir=tmp_path / "traces"
        ).run()
        # The cached record must not advertise a file it never wrote.
        hit = CampaignRunner(scenarios, workers=1, cache=cache).run()
        (record,) = hit.records
        assert record["cached"] is True
        assert "trace" not in record

    def test_parallel_workers_write_traces(self, tmp_path):
        report = CampaignRunner(
            small_grid(),
            workers=2,
            trace_dir=tmp_path / "traces",
            check_invariants=True,
        ).run()
        assert len(report.ok) == 4
        assert len(list((tmp_path / "traces").glob("*.trace.jsonl"))) == 4
