"""Campaign warm-start: grid scenarios share one snapshotted base run.

``CampaignRunner(..., warm_start=True)`` routes scenarios through a
:class:`repro.replay.WhatIfSession`; results must be fingerprint-
identical to a plain serial campaign, with warm scenarios flagged in
their records.
"""

import pytest

from repro.campaign import (
    CampaignError,
    CampaignRunner,
    ScenarioSpec,
    result_fingerprint,
)

PLATFORM = {
    "name": "warm-test",
    "nodes": {"count": 8, "flops": 1e12},
    "network": {"topology": "star", "bandwidth": 1e10, "pfs_bandwidth": 1e11},
    "pfs": {"read_bw": 1e11, "write_bw": 8e10},
}


def _jobs(last_nodes):
    jobs = [
        {
            "id": j,
            "submit_time": 25.0 * (j - 1),
            "num_nodes": 2,
            "application": {
                "name": "app",
                "phases": [
                    {"tasks": [{"type": "cpu", "flops": 4e10}], "iterations": 3}
                ],
            },
        }
        for j in range(1, 7)
    ]
    jobs[-1]["num_nodes"] = last_nodes
    return jobs


def _grid():
    return [
        ScenarioSpec(
            name=f"variant-{nodes}",
            platform=PLATFORM,
            workload={"name": f"jobs-{nodes}", "inline": {"jobs": _jobs(nodes)}},
            algorithm="easy",
            seed=3,
        )
        for nodes in (2, 3, 4, 5)
    ]


class TestWarmStartCampaign:
    def test_results_identical_to_serial(self):
        cold = CampaignRunner(_grid()).run()
        warm = CampaignRunner(_grid(), warm_start=True).run()
        assert [result_fingerprint(r) for r in cold.records] == [
            result_fingerprint(r) for r in warm.records
        ]
        assert warm.executor == "serial+warm-start"
        assert len(warm.ok) == 4

    def test_warm_flags_and_savings_recorded(self):
        report = CampaignRunner(_grid(), warm_start=True).run()
        flags = [r.get("warm_start", False) for r in report.records]
        assert flags[0] is False  # the base run records snapshots
        assert any(flags[1:]), "no grid member warm-started"
        saved = [r.get("events_saved", 0) for r in report.records if r.get("warm_start")]
        assert all(s > 0 for s in saved)

    def test_warm_start_excludes_conflicting_options(self):
        with pytest.raises(CampaignError):
            CampaignRunner(_grid(), warm_start=True, executor="process-pool")
        with pytest.raises(CampaignError):
            CampaignRunner(_grid(), warm_start=True, trace_dir="/tmp/traces")
        with pytest.raises(CampaignError):
            CampaignRunner(_grid(), warm_start=True, check_invariants=True)

    def test_warm_cache_salt_differs(self):
        plain = CampaignRunner(_grid())
        warm = CampaignRunner(_grid(), warm_start=True)
        assert plain.salt != warm.salt
