"""Repo-wide shared fixtures (the standard 8-node test platform)."""

from tests.batch.conftest import platform  # noqa: F401
