"""Public-API stability: exports exist, are documented, and stay importable.

Release-quality guard: everything a downstream user can reach through
``__all__`` must resolve and carry a docstring; the module entry point
(`python -m repro`) must work.
"""

import importlib
import subprocess
import sys

import pytest

PACKAGES = [
    "repro",
    "repro.des",
    "repro.sharing",
    "repro.platform",
    "repro.expressions",
    "repro.application",
    "repro.job",
    "repro.engine",
    "repro.scheduler",
    "repro.batch",
    "repro.workload",
    "repro.monitoring",
    "repro.failures",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} defines no __all__"
    for symbol in exported:
        obj = getattr(module, symbol)
        if callable(obj) or isinstance(obj, type):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


def test_version_attribute():
    import repro

    assert repro.__version__


def test_module_entry_point_help():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0
    assert "elastisim" in result.stdout


def test_module_entry_point_algorithms():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "algorithms"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0
    assert "malleable" in result.stdout


def test_quickstart_docstring_example_runs():
    """The README/module-docstring quickstart must actually work."""
    from repro import Simulation, platform_from_dict
    from repro.workload import WorkloadSpec, generate_workload

    platform = platform_from_dict(
        {
            "nodes": {"count": 32, "flops": 1e12},
            "network": {"topology": "star", "bandwidth": 1e10,
                        "pfs_bandwidth": 2e11},
            "pfs": {"read_bw": 1e11, "write_bw": 1e11},
        }
    )
    jobs = generate_workload(WorkloadSpec(num_jobs=10), seed=42)
    monitor = Simulation(platform, jobs, algorithm="easy").run()
    assert monitor.summary().completed_jobs == 10
