"""Tests for Phase / ApplicationModel and the JSON loader."""

import json

import pytest

from repro.application import (
    ApplicationError,
    ApplicationModel,
    CommTask,
    CpuTask,
    Phase,
    application_from_dict,
    load_application,
)
from repro.application.loader import task_from_dict


VALID_SPEC = {
    "name": "demo-app",
    "data_per_node": "2e9",
    "phases": [
        {"name": "init", "tasks": [{"type": "pfs_read", "bytes": "1e10"}]},
        {
            "name": "solve",
            "iterations": "num_steps",
            "tasks": [
                {"type": "cpu", "flops": "2e13 / num_nodes", "distribution": "per_node"},
                {"type": "comm", "bytes": "5e6", "pattern": "ring"},
            ],
        },
        {"name": "output", "tasks": [{"type": "pfs_write", "bytes": "5e10"}]},
    ],
}


class TestPhase:
    def test_empty_tasks_rejected(self):
        with pytest.raises(ApplicationError, match="no tasks"):
            Phase([], name="empty")

    def test_non_task_rejected(self):
        with pytest.raises(ApplicationError, match="not a Task"):
            Phase(["not a task"], name="bad")  # type: ignore[list-item]

    def test_iterations_expression(self):
        phase = Phase([CpuTask(1)], iterations="steps // 2")
        assert phase.num_iterations({"steps": 10}) == 5

    def test_iterations_below_one_rejected(self):
        phase = Phase([CpuTask(1)], iterations=0)
        with pytest.raises(ApplicationError, match=">= 1"):
            phase.num_iterations({})

    def test_scheduling_point_default_true(self):
        assert Phase([CpuTask(1)]).scheduling_point is True


class TestApplicationModel:
    def test_empty_phases_rejected(self):
        with pytest.raises(ApplicationError, match="no phases"):
            ApplicationModel([])

    def test_non_phase_rejected(self):
        with pytest.raises(ApplicationError, match="not a Phase"):
            ApplicationModel([CpuTask(1)])  # type: ignore[list-item]

    def test_redistribution_bytes(self):
        model = ApplicationModel([Phase([CpuTask(1)])], data_per_node="1e9 * 2")
        assert model.redistribution_bytes_per_node({}) == 2e9

    def test_default_free_reconfiguration(self):
        model = ApplicationModel([Phase([CpuTask(1)])])
        assert model.redistribution_bytes_per_node({}) == 0

    def test_negative_data_per_node_raises(self):
        model = ApplicationModel([Phase([CpuTask(1)])], data_per_node="-1")
        with pytest.raises(ApplicationError, match="negative"):
            model.redistribution_bytes_per_node({})


class TestLoader:
    def test_valid_spec_builds(self):
        model = application_from_dict(VALID_SPEC)
        assert model.name == "demo-app"
        assert len(model.phases) == 3
        assert model.phases[1].name == "solve"
        assert isinstance(model.phases[1].tasks[1], CommTask)

    def test_all_task_types_parse(self):
        specs = [
            {"type": "cpu", "flops": 1},
            {"type": "gpu", "flops": 1},
            {"type": "comm", "bytes": 1},
            {"type": "pfs_read", "bytes": 1},
            {"type": "pfs_write", "bytes": 1},
            {"type": "bb_read", "bytes": 1},
            {"type": "bb_write", "bytes": 1, "charge": False},
            {"type": "delay", "seconds": 5},
            {"type": "evolving_request", "num_nodes": 4, "blocking": True},
        ]
        for spec in specs:
            task_from_dict(spec)

    def test_unknown_task_type(self):
        with pytest.raises(ApplicationError, match="unknown task type"):
            task_from_dict({"type": "quantum"})

    def test_missing_magnitude(self):
        with pytest.raises(ApplicationError, match="missing required key"):
            task_from_dict({"type": "cpu"})

    def test_unknown_pattern(self):
        with pytest.raises(ApplicationError, match="unknown pattern"):
            task_from_dict({"type": "comm", "bytes": 1, "pattern": "butterfly"})

    def test_unknown_distribution(self):
        with pytest.raises(ApplicationError, match="unknown distribution"):
            task_from_dict({"type": "cpu", "flops": 1, "distribution": "random"})

    def test_phases_must_be_nonempty_list(self):
        with pytest.raises(ApplicationError, match="non-empty"):
            application_from_dict({"phases": []})

    def test_missing_phases(self):
        with pytest.raises(ApplicationError, match="phases"):
            application_from_dict({"name": "x"})

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "app.json"
        path.write_text(json.dumps(VALID_SPEC))
        model = load_application(path)
        assert model.name == "demo-app"

    def test_missing_file(self, tmp_path):
        with pytest.raises(ApplicationError, match="not found"):
            load_application(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[whoops")
        with pytest.raises(ApplicationError, match="Invalid JSON"):
            load_application(path)
