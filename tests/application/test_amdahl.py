"""Tests for the Amdahl serial-fraction compute model."""

import pytest

from repro.application import ApplicationError, CpuTask, Distribution
from repro.application.loader import task_from_dict
from repro.application.serialize import task_to_dict


class TestAmdahlScaling:
    def test_zero_serial_fraction_is_pure_strong_scaling(self):
        task = CpuTask("1e12")
        assert task.flops_per_node({}, 1) == 1e12
        assert task.flops_per_node({}, 4) == 2.5e11

    def test_full_serial_no_speedup(self):
        task = CpuTask("1e12", serial_fraction=1.0)
        assert task.flops_per_node({}, 1) == 1e12
        assert task.flops_per_node({}, 16) == 1e12

    def test_amdahl_formula(self):
        # s=0.1, n=4: per-node = W x (0.1 + 0.9/4) = 0.325 W.
        task = CpuTask("1e12", serial_fraction=0.1)
        assert task.flops_per_node({}, 4) == pytest.approx(3.25e11)

    def test_speedup_saturates_at_inverse_s(self):
        task = CpuTask("1e12", serial_fraction=0.25)
        t1 = task.flops_per_node({}, 1)
        t_huge = task.flops_per_node({}, 10_000)
        assert t1 / t_huge == pytest.approx(4.0, rel=0.01)  # 1/s

    def test_serial_fraction_expression(self):
        task = CpuTask("1e12", serial_fraction="s")
        assert task.flops_per_node({"s": 0.5}, 2) == pytest.approx(7.5e11)

    def test_per_node_distribution_ignores_serial_fraction(self):
        task = CpuTask("1e10", distribution=Distribution.PER_NODE, serial_fraction=0.5)
        assert task.flops_per_node({}, 8) == 1e10

    def test_fraction_above_one_rejected(self):
        task = CpuTask("1e12", serial_fraction=1.5)
        with pytest.raises(ApplicationError, match="<= 1"):
            task.flops_per_node({}, 2)

    def test_negative_fraction_rejected(self):
        task = CpuTask("1e12", serial_fraction=-0.1)
        with pytest.raises(ApplicationError, match="negative"):
            task.flops_per_node({}, 2)


class TestAmdahlJsonRoundTrip:
    def test_loader_accepts_serial_fraction(self):
        task = task_from_dict(
            {"type": "cpu", "flops": 1e12, "serial_fraction": 0.2}
        )
        assert task.flops_per_node({}, 10) == pytest.approx(1e12 * 0.28)

    def test_serializer_roundtrip(self):
        task = CpuTask("1e12", serial_fraction=0.2)
        spec = task_to_dict(task)
        assert spec["serial_fraction"] == 0.2
        clone = task_from_dict(spec)
        assert clone.flops_per_node({}, 5) == task.flops_per_node({}, 5)

    def test_default_omitted_from_json(self):
        assert "serial_fraction" not in task_to_dict(CpuTask(1))


class TestAmdahlEndToEnd:
    def test_runtime_follows_amdahl(self, tmp_path):
        from repro import Simulation, platform_from_dict
        from repro.application import ApplicationModel, Phase
        from repro.job import Job

        platform = platform_from_dict(
            {
                "nodes": {"count": 8, "flops": 1e9},
                "network": {"topology": "star", "bandwidth": 1e10},
            }
        )
        app = ApplicationModel(
            [Phase([CpuTask("8e9", serial_fraction=0.5)])]
        )
        job = Job(1, app, num_nodes=8)
        Simulation(platform, [job], algorithm="fcfs").run()
        # T(8) = 8e9 x (0.5 + 0.5/8) / 1e9 = 4.5 s (vs 1 s at s=0).
        assert job.runtime == pytest.approx(4.5)
