"""Tests for task types: magnitudes, distributions, and comm patterns."""

import pytest

from repro.application import (
    ApplicationError,
    BbWriteTask,
    CommPattern,
    CommTask,
    CpuTask,
    DelayTask,
    Distribution,
    EvolvingRequest,
    PfsWriteTask,
)


class TestCpuTask:
    def test_even_distribution_splits_total(self):
        task = CpuTask("1e12")
        assert task.flops_per_node({}, num_nodes=4) == 2.5e11

    def test_per_node_distribution(self):
        task = CpuTask("1e10", distribution=Distribution.PER_NODE)
        assert task.flops_per_node({}, num_nodes=4) == 1e10

    def test_expression_with_num_nodes(self):
        task = CpuTask("1e12 / num_nodes", distribution=Distribution.PER_NODE)
        assert task.flops_per_node({"num_nodes": 8}, num_nodes=8) == 1.25e11

    def test_negative_result_raises(self):
        task = CpuTask("-5")
        with pytest.raises(ApplicationError, match="negative"):
            task.flops_per_node({}, num_nodes=1)

    def test_bad_expression_rejected_at_build(self):
        with pytest.raises(ApplicationError, match="Invalid expression"):
            CpuTask("1 +")

    def test_unknown_variable_raises_at_eval(self):
        task = CpuTask("nope * 2")
        with pytest.raises(ApplicationError, match="Evaluating"):
            task.flops_per_node({}, num_nodes=1)


class TestCommTaskPatterns:
    def test_alltoall_pairs(self):
        flows = CommTask(1, pattern=CommPattern.ALL_TO_ALL).flows(3)
        assert sorted(flows) == [(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)]

    def test_ring_pairs(self):
        flows = CommTask(1, pattern=CommPattern.RING).flows(4)
        assert flows == [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_bcast_pairs(self):
        flows = CommTask(1, pattern=CommPattern.BCAST).flows(4)
        assert flows == [(0, 1), (0, 2), (0, 3)]

    def test_gather_pairs(self):
        flows = CommTask(1, pattern=CommPattern.GATHER).flows(4)
        assert flows == [(1, 0), (2, 0), (3, 0)]

    def test_pairwise_even_count(self):
        flows = CommTask(1, pattern=CommPattern.PAIRWISE).flows(4)
        assert flows == [(0, 1), (1, 0), (2, 3), (3, 2)]

    def test_pairwise_odd_count_leaves_last_alone(self):
        flows = CommTask(1, pattern=CommPattern.PAIRWISE).flows(5)
        assert (4, 3) not in flows and (3, 4) not in flows

    def test_single_node_no_flows(self):
        for pattern in CommPattern:
            assert CommTask(1, pattern=pattern).flows(1) == []

    def test_message_size_expression(self):
        task = CommTask("1e6 * (num_nodes - 1)")
        assert task.message_size({"num_nodes": 5}) == 4e6


class TestIoTasks:
    def test_even_bytes_split(self):
        task = PfsWriteTask("1e9")
        assert task.bytes_per_node({}, num_nodes=4) == 2.5e8

    def test_per_node_bytes(self):
        task = PfsWriteTask("1e9", distribution=Distribution.PER_NODE)
        assert task.bytes_per_node({}, num_nodes=4) == 1e9

    def test_bb_write_charge_flag(self):
        assert BbWriteTask(1).charge is True
        assert BbWriteTask(1, charge=False).charge is False


class TestDelayTask:
    def test_duration(self):
        assert DelayTask("30 * 2").duration({}) == 60

    def test_negative_duration_raises(self):
        with pytest.raises(ApplicationError):
            DelayTask("-1").duration({})


class TestEvolvingRequest:
    def test_desired_nodes_rounds(self):
        req = EvolvingRequest("num_nodes * 2")
        assert req.desired_nodes({"num_nodes": 3}) == 6

    def test_zero_request_rejected(self):
        req = EvolvingRequest("0")
        with pytest.raises(ApplicationError, match=">= 1"):
            req.desired_nodes({})

    def test_blocking_flag(self):
        assert EvolvingRequest(2).blocking is False
        assert EvolvingRequest(2, blocking=True).blocking is True
