"""Tests for the benchmark harness's machine-readable output."""

import json

from benchmarks.common import write_bench_json


def test_write_bench_json_emits_rows_and_extras(tmp_path, monkeypatch):
    monkeypatch.setenv("BENCH_RESULTS_DIR", str(tmp_path))
    path = write_bench_json(
        "TEST",
        title="a test table",
        header=["configuration", "wall_s"],
        rows=[["small", 0.5], ["large", 2.0]],
        extra={"processed_events": 123, "resolves": 7},
    )
    assert path == tmp_path / "BENCH_TEST.json"
    payload = json.loads(path.read_text())
    assert payload["bench"] == "TEST"
    assert payload["title"] == "a test table"
    assert payload["rows"] == [
        {"configuration": "small", "wall_s": 0.5},
        {"configuration": "large", "wall_s": 2.0},
    ]
    assert payload["processed_events"] == 123
    assert payload["resolves"] == 7


def test_write_bench_json_stringifies_unserializable(tmp_path, monkeypatch):
    monkeypatch.setenv("BENCH_RESULTS_DIR", str(tmp_path))

    class Odd:
        def __repr__(self):
            return "odd-object"

    path = write_bench_json(
        "TEST2", title="t", header=["x"], rows=[[Odd()]], extra=None
    )
    payload = json.loads(path.read_text())
    assert payload["rows"] == [{"x": "odd-object"}]
