"""Tests for the priority/preemption scheduler."""

import pytest

from repro.batch import Simulation
from repro.job import JobState
from repro.scheduler import PreemptivePriorityScheduler, get_algorithm

from tests.batch.conftest import make_job


class TestPriorityOrdering:
    def test_registry(self):
        assert isinstance(
            get_algorithm("priority-preempt"), PreemptivePriorityScheduler
        )

    def test_high_priority_jumps_queue(self, platform):
        jobs = [
            make_job(1, total_flops=16e9, num_nodes=8, walltime=10),
            make_job(2, total_flops=8e9, num_nodes=8, walltime=10,
                     submit_time=0.1, priority=0),
            make_job(3, total_flops=8e9, num_nodes=8, walltime=10,
                     submit_time=0.2, priority=5),
        ]
        Simulation(
            platform, jobs, algorithm=PreemptivePriorityScheduler(preempt=False)
        ).run()
        assert jobs[2].start_time < jobs[1].start_time


class TestPreemption:
    def test_high_priority_preempts_running_low(self, platform):
        # Low-priority job holds the machine for 10 s; a priority-5 job
        # arrives at t=1 → the low job is preempted, requeued, and redone.
        low = make_job(1, total_flops=80e9, num_nodes=8, priority=0)
        high = make_job(
            2, total_flops=8e9, num_nodes=8, submit_time=1.0, priority=5
        )
        sim = Simulation(platform, [low, high], algorithm="priority-preempt")
        sim.run()
        assert low.state is JobState.KILLED
        assert low.kill_reason == "preempted"
        assert high.start_time == pytest.approx(1.0)
        # The preempted job was requeued automatically and completed.
        retry = next(j for j in sim.batch.jobs if j.origin_jid == 1)
        assert retry.state is JobState.COMPLETED
        assert retry.start_time == pytest.approx(high.end_time)

    def test_equal_priority_never_preempts(self, platform):
        low = make_job(1, total_flops=80e9, num_nodes=8, priority=3)
        other = make_job(
            2, total_flops=8e9, num_nodes=8, submit_time=1.0, priority=3
        )
        sim = Simulation(platform, [low, other], algorithm="priority-preempt")
        sim.run()
        assert low.state is JobState.COMPLETED
        assert other.start_time == pytest.approx(low.end_time)

    def test_useless_preemption_avoided(self, platform):
        # Head needs 8 nodes but only a 4-node low-priority job runs next
        # to a 4-node SAME-priority job: killing the low one alone cannot
        # admit the head → nothing is preempted.
        low = make_job(1, total_flops=40e9, num_nodes=4, priority=0)
        peer = make_job(2, total_flops=40e9, num_nodes=4, priority=5)
        high = make_job(
            3, total_flops=8e9, num_nodes=8, submit_time=1.0, priority=5
        )
        sim = Simulation(platform, [low, peer, high], algorithm="priority-preempt")
        sim.run()
        assert low.state is JobState.COMPLETED  # never preempted
        assert low.kill_reason is None

    def test_preempt_disabled_flag(self, platform):
        low = make_job(1, total_flops=80e9, num_nodes=8, priority=0)
        high = make_job(
            2, total_flops=8e9, num_nodes=8, submit_time=1.0, priority=5
        )
        Simulation(
            platform,
            [low, high],
            algorithm=PreemptivePriorityScheduler(preempt=False),
        ).run()
        assert low.state is JobState.COMPLETED
        assert high.start_time == pytest.approx(low.end_time)

    def test_victim_selection_prefers_latest_start(self, platform):
        # Two low-priority 4-node jobs; the later-started one is the victim
        # (least work lost) when a priority job needs 4 nodes... but the
        # head here needs 8, so both must go: verify both were preempted.
        low_a = make_job(1, total_flops=400e9, num_nodes=4, priority=0)
        low_b = make_job(
            2, total_flops=400e9, num_nodes=4, priority=0, submit_time=0.5
        )
        high = make_job(
            3, total_flops=8e9, num_nodes=8, submit_time=1.0, priority=9
        )
        sim = Simulation(platform, [low_a, low_b, high], algorithm="priority-preempt")
        sim.run()
        assert low_a.kill_reason == "preempted"
        assert low_b.kill_reason == "preempted"
        assert high.start_time == pytest.approx(1.0)


class TestPreemptionWithCheckpointRestart:
    def test_preempted_job_resumes_from_checkpoint(self):
        from repro.application import ApplicationModel, CpuTask, Phase
        from repro.job import Job
        from repro.platform import platform_from_dict

        platform = platform_from_dict(
            {
                "nodes": {"count": 8, "flops": 1e9},
                "network": {"topology": "star", "bandwidth": 1e10},
            }
        )
        # 10 x 1 s iterations; preempted at t=3.5 (mid-iteration 4, with
        # 3 iterations checkpointed at scheduling points).
        app = ApplicationModel(
            [Phase([CpuTask("8e9")], iterations=10, name="solve")]
        )
        low = Job(1, app, num_nodes=8, priority=0)
        high = make_job(2, total_flops=16e9, num_nodes=8, submit_time=3.5, priority=5)
        sim = Simulation(
            platform,
            [low, high],
            algorithm="priority-preempt",
            checkpoint_restart=True,
        )
        sim.run()
        retry = next(j for j in sim.batch.jobs if j.origin_jid == 1)
        assert retry.state is JobState.COMPLETED
        # High job runs 3.5..5.5; retry does the remaining 7 iterations
        # (the half-done 4th iteration is lost — checkpoints live only at
        # scheduling points).
        assert retry.runtime == pytest.approx(7.0)
        assert retry.end_time == pytest.approx(12.5)
