"""Hybrid job classes: on-demand preemption, the power corridor, and the
task-placement hook.

The deterministic scenario: 8 nodes (100 W idle / 300 W peak) under a
2000 W corridor (six busy nodes).  Two batch jobs fill the machine; an
on-demand job for six nodes arrives at t=5 and must start *at* t=5 by
preempting both, paying checkpoint/restart I/O where the job declared a
checkpoint size.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import Simulation
from repro.fuzz.generate import FuzzBudget, generate_scenario
from repro.fuzz.oracles import run_scenario_record
from repro.job import JobState
from repro.scheduler import FcfsScheduler

HYBRID_SPEC = {
    "platform": {
        "nodes": {"count": 8, "flops": 1e12},
        "network": {"topology": "star", "bandwidth": 1e10, "pfs_bandwidth": 1e10},
        "pfs": {"read_bw": 1e10, "write_bw": 1e10},
        "power": {"idle_watts": 100.0, "peak_watts": 300.0, "corridor_watts": 2000.0},
    },
    "workload": {
        "inline": {
            "jobs": [
                {
                    "id": 1,
                    "type": "rigid",
                    "num_nodes": 4,
                    "submit_time": 0.0,
                    "checkpoint_bytes": 2e9,
                    "application": {
                        "phases": [
                            {"tasks": [{"type": "cpu", "flops": 5e12}], "iterations": 4}
                        ]
                    },
                },
                {
                    "id": 2,
                    "type": "rigid",
                    "num_nodes": 2,
                    "submit_time": 0.0,
                    "application": {
                        "phases": [
                            {"tasks": [{"type": "cpu", "flops": 4e12}], "iterations": 3}
                        ]
                    },
                },
                {
                    "id": 3,
                    "type": "rigid",
                    "num_nodes": 6,
                    "submit_time": 5.0,
                    "class": "on-demand",
                    "application": {
                        "phases": [{"tasks": [{"type": "cpu", "flops": 2e12}]}]
                    },
                },
            ]
        }
    },
    "algorithm": "hybrid-corridor",
    "sim": {"checkpoint_restart": True},
}


def run_hybrid(spec=HYBRID_SPEC, **run_kwargs):
    sim = Simulation.from_spec(json.loads(json.dumps(spec)))
    monitor = sim.run(**run_kwargs)
    return sim, monitor


class TestOnDemandPreemption:
    def test_on_demand_starts_at_submit_by_preempting(self):
        sim, monitor = run_hybrid()
        by_jid = {job.jid: job for job in sim.batch.jobs}
        ondemand = by_jid[3]
        assert ondemand.start_time == 5.0  # zero queue wait
        assert by_jid[1].state is JobState.KILLED
        assert by_jid[1].kill_reason == "preempted"
        assert by_jid[2].kill_reason == "preempted"
        assert monitor.makespan() == pytest.approx(22 / 3)

    def test_preempted_jobs_resume_and_finish(self):
        sim, _monitor = run_hybrid()
        clones = {job.origin_jid: job for job in sim.batch.jobs if job.origin_jid}
        assert set(clones) == {1, 2}
        assert all(c.state is JobState.COMPLETED for c in clones.values())
        # Batch restarts hold until the on-demand job has its nodes; the
        # corridor (six busy nodes) then delays them to its completion.
        assert clones[1].start_time == pytest.approx(16 / 3)
        assert clones[2].start_time == pytest.approx(16 / 3)

    def test_restart_read_charges_checkpoint_io(self):
        sim, _monitor = run_hybrid()
        clones = {job.origin_jid: job for job in sim.batch.jobs if job.origin_jid}
        # Job 1: killed at t=5 with 3 of 4 iterations (1.25 s each)
        # checkpointed; the resume replays the last iteration plus a 2 GB
        # restart read over the shared 1e10 B/s PFS link (0.2 s).
        assert clones[1].runtime == pytest.approx(1.25 + 0.2)
        # Job 2 declared no checkpoint size: remaining work only.
        assert clones[2].runtime == pytest.approx(2.0)

    def test_corridor_capped_draw_with_invariants(self):
        sim, monitor = run_hybrid(check_invariants=True)
        assert sim.violations == []
        energy = monitor.run_record()["energy"]
        assert energy["max_power_watts"] == 2000.0
        assert energy["corridor_watts"] == 2000.0


class TestResponseTimeAdvantage:
    #: One 10 s batch job owns the machine; an on-demand job arrives at
    #: t=2 needing half of it.
    SPEC = {
        "platform": {
            "nodes": {"count": 8, "flops": 1e12},
            "network": {"topology": "star", "bandwidth": 1e10},
        },
        "workload": {
            "inline": {
                "jobs": [
                    {
                        "id": 1,
                        "type": "rigid",
                        "num_nodes": 8,
                        "submit_time": 0.0,
                        "application": {
                            "phases": [{"tasks": [{"type": "cpu", "flops": 8e13}]}]
                        },
                    },
                    {
                        "id": 2,
                        "type": "rigid",
                        "num_nodes": 4,
                        "submit_time": 2.0,
                        "class": "on-demand",
                        "application": {
                            "phases": [{"tasks": [{"type": "cpu", "flops": 4e12}]}]
                        },
                    },
                ]
            }
        },
        "algorithm": "hybrid-corridor",
    }

    @staticmethod
    def _response(algorithm):
        spec = json.loads(json.dumps(TestResponseTimeAdvantage.SPEC))
        spec["algorithm"] = algorithm
        sim = Simulation.from_spec(spec)
        sim.run()
        job = next(j for j in sim.batch.jobs if j.jid == 2)
        return job.start_time - job.submit_time

    def test_hybrid_response_at_most_quarter_of_fcfs(self):
        fcfs = self._response("fcfs")
        hybrid = self._response("hybrid-corridor")
        assert fcfs == pytest.approx(8.0)  # waits for the batch job
        assert hybrid <= 0.25 * fcfs


class TestPlacementHook:
    def _spec(self):
        return {
            "platform": {
                "nodes": {"count": 4, "flops": 1e9},
                "network": {"topology": "star", "bandwidth": 1e10},
            },
            "workload": {
                "inline": {
                    "jobs": [
                        {
                            "id": 1,
                            "type": "rigid",
                            "num_nodes": 4,
                            "submit_time": 0.0,
                            "application": {
                                "phases": [{"tasks": [{"type": "cpu", "flops": 4e9}]}]
                            },
                        }
                    ]
                }
            },
        }

    def test_default_placement_uses_whole_allocation(self):
        sim = Simulation.from_spec(self._spec())
        sim.run()
        assert sim.batch.jobs[0].runtime == pytest.approx(1.0)

    def test_hook_narrows_the_task_to_chosen_nodes(self):
        class PackOneNode(FcfsScheduler):
            name = "pack-one"

            def place_tasks(self, job, task, nodes):
                return nodes[:1]

        spec = self._spec()
        sim = Simulation.from_spec(spec)
        sim.batch.algorithm = PackOneNode()
        sim.batch._has_placement = True
        sim.run()
        # 4e9 flops on one 1e9 flops node instead of four: 4 s, not 1 s.
        assert sim.batch.jobs[0].runtime == pytest.approx(4.0)

    def _run_with_placement(self, placement, *, num_nodes=4):
        from repro.batch import BatchError

        class BadPlacement(FcfsScheduler):
            name = "bad-placement"

            def place_tasks(self, job, task, nodes):
                return placement(self, nodes)

        spec = self._spec()
        spec["workload"]["inline"]["jobs"][0]["num_nodes"] = num_nodes
        sim = Simulation.from_spec(spec)
        algorithm = BadPlacement()
        algorithm.spare = sim.batch.platform.nodes[-1]
        sim.batch.algorithm = algorithm
        sim.batch._has_placement = True
        return sim, BatchError

    def test_empty_placement_is_rejected(self):
        sim, BatchError = self._run_with_placement(lambda self, nodes: [])
        with pytest.raises(BatchError, match="empty"):
            sim.run()

    def test_duplicate_placement_is_rejected(self):
        sim, BatchError = self._run_with_placement(
            lambda self, nodes: nodes[:1] * 2
        )
        with pytest.raises(BatchError, match="twice"):
            sim.run()

    def test_foreign_node_placement_is_rejected(self):
        # The job holds 2 of 4 nodes; placing on the idle spare is illegal.
        sim, BatchError = self._run_with_placement(
            lambda self, nodes: [self.spare], num_nodes=2
        )
        with pytest.raises(BatchError, match="not part of the job's allocation"):
            sim.run()


#: Hybrid-pinned scenarios, every one powered and on-demand-heavy: the
#: preemption machinery must never double-allocate a node or breach the
#: corridor (both audited by the streaming invariant checker).
PREEMPT_BUDGET = FuzzBudget(power_probability=1.0, ondemand_probability=1.0)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_preemption_preserves_alloc_invariants(seed):
    scenario = generate_scenario(
        seed, algorithm="hybrid-corridor", budget=PREEMPT_BUDGET
    )
    # Raises InvariantViolation on any double-alloc / corridor breach.
    run_scenario_record(scenario, check_invariants=True)
