"""Tests for the finish-time-minimizing moldable policy."""

import pytest

from repro.batch import Simulation
from repro.job import JobState, JobType
from repro.scheduler import AdaptiveMoldableScheduler, get_algorithm

from tests.batch.conftest import make_job


class TestAdaptiveMoldable:
    def test_registry(self):
        assert isinstance(
            get_algorithm("adaptive-moldable"), AdaptiveMoldableScheduler
        )

    def test_empty_machine_starts_at_max(self, platform):
        job = make_job(
            1,
            total_flops=8e9,
            job_type=JobType.MOLDABLE,
            num_nodes=4,
            min_nodes=1,
            max_nodes=8,
            walltime=10.0,
        )
        Simulation(platform, [job], algorithm="adaptive-moldable").run()
        # On an empty machine, wider is strictly better (perfect scaling).
        assert len(job.assigned_nodes) == 8
        assert job.end_time == pytest.approx(1.0)

    def test_waits_for_wide_slot_when_worth_it(self, platform):
        # 6 nodes busy for 1 s.  Moldable job: walltime 16 s at 4 nodes.
        # Start now on 2 free nodes: finish ~ 0 + 16*4/2 = 32 s.
        # Wait 1 s for 8 nodes:      finish ~ 1 + 16*4/8 = 9 s.  → wait.
        blocker = make_job(1, total_flops=6e9, num_nodes=6, walltime=2.0)
        moldable = make_job(
            2,
            total_flops=32e9,
            job_type=JobType.MOLDABLE,
            num_nodes=4,
            min_nodes=2,
            max_nodes=8,
            walltime=16.0,
            submit_time=0.1,
        )
        Simulation(platform, [blocker, moldable], algorithm="adaptive-moldable").run()
        assert moldable.start_time >= blocker.end_time  # waited
        assert len(moldable.assigned_nodes) == 8

    def test_starts_immediately_when_narrow_wins(self, platform):
        # Long blocker (walltime 100 s) on 4 nodes; moldable can use 4 now.
        # Start now on 4: finish 0.1 + 8*4/4 = 8.1.  Waiting for 8 means
        # t=100 → hopeless.  → start now.
        blocker = make_job(1, total_flops=400e9, num_nodes=4, walltime=100.0)
        moldable = make_job(
            2,
            total_flops=16e9,
            job_type=JobType.MOLDABLE,
            num_nodes=4,
            min_nodes=2,
            max_nodes=8,
            walltime=8.0,
            submit_time=0.1,
        )
        Simulation(platform, [blocker, moldable], algorithm="adaptive-moldable").run()
        assert moldable.start_time == pytest.approx(0.1)
        assert len(moldable.assigned_nodes) == 4

    def test_rigid_jobs_keep_fcfs(self, platform):
        jobs = [
            make_job(1, total_flops=16e9, num_nodes=8, walltime=10),
            make_job(2, total_flops=8e9, num_nodes=8, walltime=10, submit_time=0.1),
        ]
        Simulation(platform, jobs, algorithm="adaptive-moldable").run()
        assert jobs[1].start_time == pytest.approx(jobs[0].end_time)

    def test_no_walltime_falls_back_to_free_nodes(self, platform):
        job = make_job(
            1,
            total_flops=8e9,
            job_type=JobType.MOLDABLE,
            num_nodes=4,
            min_nodes=2,
            max_nodes=8,
        )
        Simulation(platform, [job], algorithm="adaptive-moldable").run()
        assert job.state is JobState.COMPLETED
        assert len(job.assigned_nodes) == 8

    def test_mixed_stream_all_complete(self, platform):
        jobs = []
        for i in range(1, 9):
            if i % 2:
                jobs.append(
                    make_job(i, total_flops=4e9, num_nodes=4, walltime=5.0,
                             submit_time=0.3 * i)
                )
            else:
                jobs.append(
                    make_job(
                        i,
                        total_flops=4e9,
                        job_type=JobType.MOLDABLE,
                        num_nodes=4,
                        min_nodes=1,
                        max_nodes=8,
                        walltime=5.0,
                        submit_time=0.3 * i,
                    )
                )
        Simulation(platform, jobs, algorithm="adaptive-moldable").run()
        assert all(j.state is JobState.COMPLETED for j in jobs)
