"""Smoke tests for the ported malleability-study strategies.

Two contracts from the study (docs/STUDY.md):

* on a malleable mix that a rigid scheduler cannot pack (wide jobs that
  leave permanent holes), every flexible strategy must beat or match the
  ``rigid-easy-backfill`` baseline's makespan;
* within each flexible strategy, the all-malleable mix must improve on
  the all-rigid mix (the mix-vs-mix comparison the study reports);
* ``rigid-easy-backfill`` itself must be mix-invariant — it is the
  control row.
"""

import pytest

from repro import Simulation, platform_from_dict
from repro.scheduler import get_algorithm
from repro.workload import convert_trace
from repro.workload.swf import SwfRecord

STRATEGIES = ("rigid-easy-backfill", "pref-common-pool", "average-steal-agreement")
NODE_FLOPS = 1e9


def build_platform():
    return platform_from_dict(
        {
            "name": "study-smoke",
            "nodes": {"count": 32, "flops": NODE_FLOPS},
            "network": {"topology": "star", "bandwidth": 1e10},
        }
    )


def wide_trace(n=6, procs=20, run_time=100.0):
    """Wide jobs a 32-node machine cannot pack two-abreast: a rigid
    scheduler strands 12 nodes per job, a flexible one reclaims them."""
    return [
        SwfRecord(
            job_id=i + 1,
            submit_time=0.0,
            run_time=run_time,
            allocated_procs=procs,
            requested_procs=procs,
            requested_time=run_time,
            user_id=1,
            status=1,
        )
        for i in range(n)
    ]


def replay(algorithm, mix, *, parallel=0.9999):
    jobs = convert_trace(
        wide_trace(),
        mix,
        node_flops=NODE_FLOPS,
        max_nodes=32,
        parallel_fractions=[parallel],
        walltime_slack=4.0,
    )
    monitor = Simulation(build_platform(), jobs, algorithm=algorithm).run()
    return monitor.summary()


@pytest.mark.parametrize("name", STRATEGIES)
def test_strategy_registered_and_runs(name):
    assert get_algorithm(name) is not None
    summary = replay(name, "50,0,50")
    assert summary.completed_jobs == 6
    assert summary.killed_jobs == 0


@pytest.mark.parametrize("name", ("pref-common-pool", "average-steal-agreement"))
def test_flexible_strategies_beat_rigid_baseline_on_malleable_mix(name):
    baseline = replay("rigid-easy-backfill", "0,0,100")
    flexible = replay(name, "0,0,100")
    assert flexible.makespan <= baseline.makespan
    assert flexible.mean_utilization >= baseline.mean_utilization


@pytest.mark.parametrize("name", ("pref-common-pool", "average-steal-agreement"))
def test_malleable_mix_improves_on_rigid_mix_within_strategy(name):
    rigid_mix = replay(name, "100,0,0")
    malleable_mix = replay(name, "0,0,100")
    assert malleable_mix.makespan < rigid_mix.makespan
    assert malleable_mix.mean_turnaround < rigid_mix.mean_turnaround
    assert malleable_mix.mean_utilization > rigid_mix.mean_utilization


def test_rigid_easy_backfill_is_mix_invariant():
    results = [replay("rigid-easy-backfill", mix).as_dict()
               for mix in ("100,0,0", "50,0,50", "0,0,100")]
    assert results[0] == results[1] == results[2]


def test_reconfigurations_only_from_flexible_strategies():
    assert replay("rigid-easy-backfill", "0,0,100").total_reconfigurations == 0
    flexible_total = sum(
        replay(name, "0,0,100").total_reconfigurations
        for name in ("pref-common-pool", "average-steal-agreement")
    )
    assert flexible_total > 0
