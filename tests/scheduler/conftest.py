"""Reuse the batch test platform fixture for scheduler tests."""

from tests.batch.conftest import platform  # noqa: F401
