"""The adversarial random-decision scheduler (fuzzing subject).

Its two documented contracts — determinism from the seed and guaranteed
queue progress — are what make it usable as a differential-oracle
subject; both are pinned here, along with the decision branches that
bound preemption ping-pong.
"""

import json

import pytest

from repro.batch import Simulation
from repro.job import JobState, JobType
from repro.scheduler import SchedulerError, get_algorithm
from repro.scheduler.algorithms import RandomDecisionScheduler

from tests.batch.conftest import make_job


def mixed_jobs():
    return [
        make_job(1, total_flops=8e9, num_nodes=4, walltime=200),
        make_job(2, total_flops=4e9, num_nodes=2, walltime=200,
                 submit_time=0.5, job_type=JobType.MALLEABLE,
                 min_nodes=1, max_nodes=6, phases=4),
        make_job(3, total_flops=6e9, num_nodes=3, walltime=200,
                 submit_time=1.0, job_type=JobType.MOLDABLE,
                 min_nodes=1, max_nodes=8),
        make_job(4, total_flops=2e9, num_nodes=8, walltime=200,
                 submit_time=2.0),
    ]


def run_record(platform, seed):
    jobs = mixed_jobs()
    sim = Simulation(platform, jobs, algorithm=f"random:{seed}")
    sim.run()
    return json.dumps(
        [
            [j.jid, j.state.name, j.start_time, j.end_time, j.attempt]
            for j in jobs
        ],
        sort_keys=True,
    )


class TestFromParam:
    def test_param_seed_round_trips(self):
        algorithm = get_algorithm("random:17")
        assert isinstance(algorithm, RandomDecisionScheduler)
        assert algorithm.rng.random() == RandomDecisionScheduler(seed=17).rng.random()

    def test_non_integer_param_rejected(self):
        with pytest.raises(SchedulerError):
            get_algorithm("random:chaos")

    def test_bare_name_defaults_seed_zero(self):
        algorithm = get_algorithm("random")
        assert isinstance(algorithm, RandomDecisionScheduler)


class TestDeterminism:
    def test_same_seed_identical_outcome(self, platform):
        assert run_record(platform, 5) == run_record(platform, 5)

    def test_different_seeds_diverge_somewhere(self, platform):
        outcomes = {run_record(platform, seed) for seed in range(6)}
        assert len(outcomes) > 1


class TestProgress:
    @pytest.mark.parametrize("seed", range(8))
    def test_every_job_reaches_a_terminal_state(self, platform, seed):
        jobs = mixed_jobs()
        Simulation(platform, jobs, algorithm=f"random:{seed}").run()
        for job in jobs:
            assert job.state in (JobState.COMPLETED, JobState.KILLED), (
                f"seed {seed}: job {job.jid} ended {job.state}"
            )

    def test_force_progress_starts_first_fit_when_rng_stalls(self, platform):
        # An RNG that always rolls high makes every probabilistic branch
        # a no-op; the force-progress fallback must still start work.
        class HighRoll:
            def random(self):
                return 0.99

            def shuffle(self, seq):
                pass

        algorithm = RandomDecisionScheduler(seed=0)
        algorithm.rng = HighRoll()
        jobs = [make_job(1, total_flops=8e9, num_nodes=4, walltime=200)]
        Simulation(platform, jobs, algorithm=algorithm).run()
        assert jobs[0].state is JobState.COMPLETED


class TestKillBounds:
    @pytest.mark.parametrize("seed", range(10))
    def test_preemption_ping_pong_is_bounded(self, platform, seed):
        # First-attempt kills requeue ("preempted"); later kills are
        # permanent, so no job ever runs more than two attempts.
        jobs = mixed_jobs()
        Simulation(platform, jobs, algorithm=f"random:{seed}").run()
        for job in jobs:
            assert job.attempt <= 2, (
                f"seed {seed}: job {job.jid} ran {job.attempt} attempts"
            )
