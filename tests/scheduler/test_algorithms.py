"""Behavioural tests for the built-in scheduling algorithms."""

import pytest

from repro.batch import Simulation
from repro.job import JobState, JobType
from repro.scheduler import (
    ConservativeBackfillingScheduler,
    EasyBackfillingScheduler,
    FcfsScheduler,
    MalleableScheduler,
    MoldableScheduler,
    get_algorithm,
)

from tests.batch.conftest import make_job


class TestRegistry:
    def test_all_names_resolve(self):
        for name, cls in [
            ("fcfs", FcfsScheduler),
            ("easy", EasyBackfillingScheduler),
            ("conservative", ConservativeBackfillingScheduler),
            ("moldable", MoldableScheduler),
            ("malleable", MalleableScheduler),
        ]:
            assert isinstance(get_algorithm(name), cls)


class TestFcfs:
    def test_head_of_queue_blocks_backfill(self, platform):
        # j1 takes the whole machine for 2 s; j2 needs 8 (waits);
        # j3 needs 1 and could run now — FCFS must NOT start it early.
        jobs = [
            make_job(1, total_flops=16e9, num_nodes=8, walltime=100),
            make_job(2, total_flops=8e9, num_nodes=8, walltime=100, submit_time=0.1),
            make_job(3, total_flops=1e9, num_nodes=1, walltime=100, submit_time=0.2),
        ]
        Simulation(platform, jobs, algorithm="fcfs").run()
        assert jobs[2].start_time >= jobs[1].start_time


class TestEasyBackfilling:
    def test_small_job_backfills_into_hole(self, platform):
        # j1: 4 nodes for 4 s.  j2: 8 nodes → must wait until t=4 (shadow).
        # j3: 4 nodes, walltime 2 s → fits in the hole before the shadow.
        jobs = [
            make_job(1, total_flops=16e9, num_nodes=4, walltime=4.0),
            make_job(2, total_flops=8e9, num_nodes=8, walltime=100, submit_time=0.1),
            make_job(3, total_flops=4e9, num_nodes=4, walltime=2.0, submit_time=0.2),
        ]
        Simulation(platform, jobs, algorithm="easy").run()
        assert jobs[2].start_time == pytest.approx(0.2)  # backfilled
        assert jobs[1].start_time == pytest.approx(4.0)  # not delayed

    def test_backfill_never_delays_head(self, platform):
        # j3's walltime (5 s) exceeds the shadow (4 s) and it would take
        # nodes the head needs → it must NOT backfill.
        jobs = [
            make_job(1, total_flops=16e9, num_nodes=4, walltime=4.0),
            make_job(2, total_flops=8e9, num_nodes=8, walltime=100, submit_time=0.1),
            make_job(3, total_flops=4e9, num_nodes=4, walltime=5.0, submit_time=0.2),
        ]
        Simulation(platform, jobs, algorithm="easy").run()
        assert jobs[1].start_time == pytest.approx(4.0)
        assert jobs[2].start_time >= jobs[1].start_time

    def test_backfill_on_spare_nodes_beyond_shadow(self, platform):
        # Head needs 6 nodes at the shadow; 2 nodes remain spare even then,
        # so a long 2-node job may backfill.
        jobs = [
            make_job(1, total_flops=16e9, num_nodes=4, walltime=4.0),
            make_job(2, total_flops=6e9, num_nodes=6, walltime=100, submit_time=0.1),
            make_job(3, total_flops=2e9, num_nodes=2, walltime=1000, submit_time=0.2),
        ]
        Simulation(platform, jobs, algorithm="easy").run()
        assert jobs[2].start_time == pytest.approx(0.2)
        assert jobs[1].start_time == pytest.approx(4.0)

    def test_easy_beats_fcfs_makespan_on_mixed_load(self, platform):
        def build():
            return [
                make_job(1, total_flops=16e9, num_nodes=4, walltime=4.0),
                make_job(2, total_flops=8e9, num_nodes=8, walltime=10, submit_time=0.1),
                make_job(3, total_flops=4e9, num_nodes=4, walltime=2.0, submit_time=0.2),
            ]

        fcfs = Simulation(platform, build(), algorithm="fcfs").run().makespan()

        from repro.platform import platform_from_dict
        from tests.batch.conftest import make_job as _  # noqa: F401

        platform2 = platform_from_dict(
            {
                "name": "batch-test",
                "nodes": {"count": 8, "flops": 1e9},
                "network": {"topology": "star", "bandwidth": 1e10},
                "pfs": {"read_bw": 1e10, "write_bw": 1e10},
            }
        )
        easy = Simulation(platform2, build(), algorithm="easy").run().makespan()
        assert easy <= fcfs


class TestConservative:
    def test_backfills_without_delaying_any_reservation(self, platform):
        jobs = [
            make_job(1, total_flops=16e9, num_nodes=4, walltime=4.0),
            make_job(2, total_flops=8e9, num_nodes=8, walltime=10, submit_time=0.1),
            make_job(3, total_flops=4e9, num_nodes=4, walltime=2.0, submit_time=0.2),
        ]
        Simulation(platform, jobs, algorithm="conservative").run()
        assert jobs[2].start_time == pytest.approx(0.2)
        assert jobs[1].start_time == pytest.approx(4.0)

    def test_no_starvation_under_stream_of_small_jobs(self, platform):
        # Conservative guarantees the big job a reservation even as small
        # jobs keep arriving.
        jobs = [make_job(1, total_flops=8e9, num_nodes=4, walltime=3.0)]
        jobs.append(
            make_job(2, total_flops=8e9, num_nodes=8, walltime=10, submit_time=0.1)
        )
        for i in range(3, 9):
            jobs.append(
                make_job(
                    i,
                    total_flops=2e9,
                    num_nodes=4,
                    walltime=10.0,
                    submit_time=0.2 + 0.01 * i,
                )
            )
        Simulation(platform, jobs, algorithm="conservative").run()
        big = jobs[1]
        assert big.state is JobState.COMPLETED
        # The head job's walltime is 3 s but it actually finishes at t=2;
        # no small job may backfill ahead of the big job's reservation, so
        # the big job starts as soon as the machine drains.
        assert big.start_time == pytest.approx(2.0)


class TestMoldable:
    def test_moldable_job_takes_all_free_nodes(self, platform):
        job = make_job(
            1,
            total_flops=8e9,
            job_type=JobType.MOLDABLE,
            num_nodes=4,
            min_nodes=1,
            max_nodes=8,
        )
        Simulation(platform, [job], algorithm="moldable").run()
        assert len(job.assigned_nodes) == 8
        assert job.end_time == pytest.approx(1.0)  # 8e9 / (8 x 1e9)

    def test_moldable_respects_max(self, platform):
        job = make_job(
            1,
            total_flops=8e9,
            job_type=JobType.MOLDABLE,
            num_nodes=2,
            min_nodes=1,
            max_nodes=2,
        )
        Simulation(platform, [job], algorithm="moldable").run()
        assert len(job.assigned_nodes) == 2

    def test_moldable_starts_early_at_min(self, platform):
        # Rigid 6-node job holds the machine; a moldable (min 2) starts on
        # the 2 leftover nodes instead of waiting.
        jobs = [
            make_job(1, total_flops=12e9, num_nodes=6, walltime=100),
            make_job(
                2,
                total_flops=4e9,
                job_type=JobType.MOLDABLE,
                num_nodes=4,
                min_nodes=2,
                max_nodes=4,
                submit_time=0.1,
            ),
        ]
        Simulation(platform, jobs, algorithm="moldable").run()
        assert jobs[1].start_time == pytest.approx(0.1)
        assert len(jobs[1].assigned_nodes) == 2

    def test_rigid_jobs_still_fcfs(self, platform):
        jobs = [
            make_job(1, total_flops=16e9, num_nodes=8, walltime=100),
            make_job(2, total_flops=8e9, num_nodes=8, walltime=100, submit_time=0.1),
        ]
        Simulation(platform, jobs, algorithm="moldable").run()
        assert jobs[1].start_time == pytest.approx(jobs[0].end_time)


class TestMalleable:
    def test_lone_flexible_job_starts_at_fair_share_of_whole_machine(self, platform):
        job = make_job(
            1,
            total_flops=32e9,
            phases=4,
            job_type=JobType.MALLEABLE,
            num_nodes=4,
            min_nodes=2,
            max_nodes=8,
        )
        Simulation(platform, [job], algorithm="malleable").run()
        # Alone on the machine, the fair share is everything.
        assert len(job.assigned_nodes) == 8
        assert job.end_time == pytest.approx(4.0)  # 32e9 / 8e9

    def test_expand_into_nodes_freed_by_completion(self, platform):
        # A rigid blocker holds 4 nodes for 1 s; the malleable job starts
        # on the other 4 and expands once the blocker completes.
        blocker = make_job(1, total_flops=4e9, num_nodes=4, walltime=100)
        malleable = make_job(
            2,
            total_flops=32e9,
            phases=4,
            job_type=JobType.MALLEABLE,
            num_nodes=4,
            min_nodes=2,
            max_nodes=8,
            submit_time=0.0,
        )
        Simulation(platform, [blocker, malleable], algorithm="malleable").run()
        assert malleable.reconfigurations_applied >= 1
        assert len(malleable.assigned_nodes) == 8
        # Far faster than staying on 4 nodes (32e9 / 4e9 = 8 s).
        assert malleable.end_time < 8.0

    def test_shrink_to_admit_queued_rigid_job(self, platform):
        # Malleable job holds all 8; a rigid 4-node job arrives; the
        # malleable must shrink at its next scheduling point to admit it.
        malleable = make_job(
            1,
            total_flops=32e9,
            phases=8,
            job_type=JobType.MALLEABLE,
            num_nodes=8,
            min_nodes=2,
            max_nodes=8,
        )
        rigid = make_job(2, total_flops=4e9, num_nodes=4, submit_time=0.5)
        Simulation(platform, [malleable, rigid], algorithm="malleable").run()
        assert rigid.state is JobState.COMPLETED
        assert malleable.state is JobState.COMPLETED
        assert malleable.reconfigurations_applied >= 1
        assert rigid.start_time < malleable.end_time  # ran concurrently

    def test_malleable_mix_beats_rigid_fcfs(self, platform):
        # The headline effect (E2): jobs requesting 5 of 8 nodes pack badly
        # when rigid (3 nodes always idle); malleability reclaims the waste.
        def build(job_type):
            kwargs = {}
            if job_type is not JobType.RIGID:
                kwargs = dict(min_nodes=1, max_nodes=8)
            return [
                make_job(
                    i,
                    total_flops=8e9,
                    phases=4,
                    job_type=job_type,
                    num_nodes=5,
                    submit_time=0.1 * i,
                    **kwargs,
                )
                for i in range(1, 7)
            ]

        from repro.platform import platform_from_dict

        spec = {
            "nodes": {"count": 8, "flops": 1e9},
            "network": {"topology": "star", "bandwidth": 1e10},
            "pfs": {"read_bw": 1e10, "write_bw": 1e10},
        }
        rigid_res = Simulation(
            platform_from_dict(spec), build(JobType.RIGID), algorithm="fcfs"
        ).run()
        malleable_res = Simulation(
            platform_from_dict(spec), build(JobType.MALLEABLE), algorithm="malleable"
        ).run()
        assert malleable_res.makespan() <= rigid_res.makespan()
        assert malleable_res.mean_utilization() >= rigid_res.mean_utilization() - 1e-9

    def test_evolving_request_granted_when_nodes_free(self, platform):
        from repro.application import (
            ApplicationModel,
            CpuTask,
            EvolvingRequest,
            Phase,
        )
        from repro.job import Job

        app = ApplicationModel(
            [
                Phase(
                    [CpuTask("8e9"), EvolvingRequest("8"), CpuTask("8e9")],
                    scheduling_point=False,
                )
            ]
        )
        # The blocker has the lower id, so it starts first at t=0 and the
        # evolving job molds onto the remaining 4 nodes.
        blocker = make_job(1, total_flops=4e9, num_nodes=4, walltime=100)
        job = Job(
            2,
            app,
            job_type=JobType.EVOLVING,
            num_nodes=4,
            min_nodes=2,
            max_nodes=8,
            submit_time=0.0,
        )
        Simulation(platform, [blocker, job], algorithm="malleable").run()
        # Evolving job starts on the 4 nodes the blocker left, computes 2 s,
        # then asks for 8; the blocker is long gone, so the grant succeeds.
        assert len(job.assigned_nodes) == 8
        # 8e9/4e9 = 2 s + 8e9/8e9 = 1 s.
        assert job.end_time == pytest.approx(3.0)

    def test_no_expand_flag(self, platform):
        # With expansion disabled, the malleable job stays on the 4 nodes
        # it started with even after the blocker frees the other 4.
        blocker = make_job(1, total_flops=4e9, num_nodes=4, walltime=100)
        job = make_job(
            2,
            total_flops=32e9,
            phases=4,
            job_type=JobType.MALLEABLE,
            num_nodes=4,
            min_nodes=2,
            max_nodes=8,
        )
        Simulation(
            platform, [blocker, job], algorithm=MalleableScheduler(expand=False)
        ).run()
        assert job.reconfigurations_applied == 0
        assert job.end_time == pytest.approx(8.0)  # 32e9 / 4e9
