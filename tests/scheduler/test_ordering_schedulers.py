"""Tests for the queue-reordering schedulers: SJF and user fair-share."""

import pytest

from repro.batch import Simulation
from repro.job import JobState
from repro.scheduler import (
    SjfBackfillingScheduler,
    UserFairShareScheduler,
    get_algorithm,
)

from tests.batch.conftest import make_job


class TestSjf:
    def test_registry(self):
        assert isinstance(get_algorithm("sjf"), SjfBackfillingScheduler)

    def test_short_job_jumps_long_queue(self, platform):
        # Machine busy until t=2; queue: long job (walltime 100) then short
        # (walltime 1).  SJF starts the short one first when nodes free.
        jobs = [
            make_job(1, total_flops=16e9, num_nodes=8, walltime=10),
            make_job(2, total_flops=8e9, num_nodes=8, walltime=100, submit_time=0.1),
            make_job(3, total_flops=4e9, num_nodes=8, walltime=1.0, submit_time=0.2),
        ]
        Simulation(platform, jobs, algorithm="sjf").run()
        assert jobs[2].start_time < jobs[1].start_time

    def test_fcfs_order_when_walltimes_equal(self, platform):
        jobs = [
            make_job(1, total_flops=16e9, num_nodes=8, walltime=10),
            make_job(2, total_flops=8e9, num_nodes=8, walltime=5, submit_time=0.1),
            make_job(3, total_flops=8e9, num_nodes=8, walltime=5, submit_time=0.2),
        ]
        Simulation(platform, jobs, algorithm="sjf").run()
        assert jobs[1].start_time < jobs[2].start_time

    def test_sjf_improves_mean_wait_on_skewed_queue(self, platform):
        def build():
            jobs = [make_job(1, total_flops=16e9, num_nodes=8, walltime=10)]
            # One long job then many short ones, all 8-node (no backfill).
            jobs.append(
                make_job(2, total_flops=40e9, num_nodes=8, walltime=20, submit_time=0.1)
            )
            for i in range(3, 8):
                jobs.append(
                    make_job(
                        i,
                        total_flops=2e9,
                        num_nodes=8,
                        walltime=1.0,
                        submit_time=0.1 + 0.01 * i,
                    )
                )
            return jobs

        from repro.platform import platform_from_dict


        spec = {
            "nodes": {"count": 8, "flops": 1e9},
            "network": {"topology": "star", "bandwidth": 1e10},
        }
        fcfs_jobs = build()
        Simulation(platform_from_dict(spec), fcfs_jobs, algorithm="easy").run()
        sjf_jobs = build()
        Simulation(platform_from_dict(spec), sjf_jobs, algorithm="sjf").run()

        def mean_wait(jobs):
            return sum(j.wait_time for j in jobs) / len(jobs)

        assert mean_wait(sjf_jobs) < mean_wait(fcfs_jobs)


class TestFairShare:
    def test_registry(self):
        assert isinstance(get_algorithm("fairshare"), UserFairShareScheduler)

    def test_light_user_overtakes_heavy_user(self, platform):
        # Heavy user runs one machine-filling job; then both users queue
        # one job each (heavy first).  Fair share starts the light user's
        # job first because heavy already consumed node-seconds.
        jobs = [
            make_job(1, total_flops=16e9, num_nodes=8, walltime=10, user="heavy"),
            make_job(
                2, total_flops=8e9, num_nodes=8, walltime=10, submit_time=0.1,
                user="heavy",
            ),
            make_job(
                3, total_flops=8e9, num_nodes=8, walltime=10, submit_time=0.2,
                user="light",
            ),
        ]
        Simulation(platform, jobs, algorithm="fairshare").run()
        assert jobs[2].start_time < jobs[1].start_time  # light first

    def test_usage_accumulates_across_jobs(self, platform):
        algo = UserFairShareScheduler()
        jobs = [
            make_job(1, total_flops=8e9, num_nodes=4, user="alice"),
            make_job(2, total_flops=8e9, num_nodes=4, user="bob"),
        ]
        Simulation(platform, jobs, algorithm=algo).run()
        # Both ran 2 s on 4 nodes → 8 node-seconds each.
        assert algo.usage["alice"] == pytest.approx(8.0)
        assert algo.usage["bob"] == pytest.approx(8.0)

    def test_equal_usage_falls_back_to_fcfs(self, platform):
        jobs = [
            make_job(1, total_flops=16e9, num_nodes=8, walltime=10, user="a"),
            make_job(2, total_flops=8e9, num_nodes=8, walltime=10, submit_time=0.1, user="b"),
            make_job(3, total_flops=8e9, num_nodes=8, walltime=10, submit_time=0.2, user="c"),
        ]
        Simulation(platform, jobs, algorithm="fairshare").run()
        assert jobs[1].start_time < jobs[2].start_time

    def test_all_jobs_complete(self, platform):
        jobs = [
            make_job(i, total_flops=4e9, num_nodes=4, user=f"u{i % 3}")
            for i in range(1, 9)
        ]
        Simulation(platform, jobs, algorithm="fairshare").run()
        assert all(j.state is JobState.COMPLETED for j in jobs)
