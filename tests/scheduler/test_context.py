"""Validation tests for the SchedulerContext decision methods.

Algorithm bugs must surface at the decision call site with a clear
SchedulerError — never as corrupted simulator state.
"""

from repro.batch import Simulation
from repro.job import JobState, JobType
from repro.scheduler import Algorithm, SchedulerError

from tests.batch.conftest import make_job


class Scripted(Algorithm):
    """Runs a user lambda once, as soon as ``when`` holds."""

    name = "scripted"

    def __init__(self, script, when=None):
        self.script = script
        self.when = when or (lambda ctx: True)
        self.errors = []
        self.ran = False

    def schedule(self, ctx, invocation):
        if self.ran or not self.when(ctx):
            return
        self.ran = True
        try:
            self.script(ctx)
        except SchedulerError as exc:
            self.errors.append(exc)


def run_script(platform, jobs, script, when=None):
    algo = Scripted(script, when=when)
    sim = Simulation(platform, jobs, algorithm=algo)
    try:
        sim.run(until=1000.0)
    except Exception:
        pass
    return algo


class TestStartValidation:
    def test_start_with_busy_node_rejected(self, platform):
        jobs = [make_job(1, num_nodes=4), make_job(2, num_nodes=4)]

        def script(ctx):
            all_nodes = ctx.platform.nodes
            ctx.start_job(ctx.pending_jobs[0], all_nodes[:4])
            # Reuse an already-allocated node for job 2.
            ctx.start_job(ctx.pending_jobs[0], all_nodes[3:7])

        algo = run_script(
            platform, jobs, script, when=lambda ctx: len(ctx.pending_jobs) == 2
        )
        assert len(algo.errors) == 1
        assert "not free" in str(algo.errors[0])

    def test_start_duplicate_nodes_rejected(self, platform):
        jobs = [make_job(1, num_nodes=4)]

        def script(ctx):
            node = ctx.free_nodes()[0]
            ctx.start_job(ctx.pending_jobs[0], [node, node, node, node])

        algo = run_script(platform, jobs, script)
        assert "duplicate" in str(algo.errors[0])

    def test_start_wrong_size_rejected(self, platform):
        jobs = [make_job(1, num_nodes=4)]

        def script(ctx):
            ctx.start_job(ctx.pending_jobs[0], ctx.free_nodes()[:2])

        algo = run_script(platform, jobs, script)
        assert "outside" in str(algo.errors[0])

    def test_start_running_job_rejected(self, platform):
        jobs = [make_job(1, num_nodes=4)]

        def script(ctx):
            job = ctx.pending_jobs[0]
            ctx.start_job(job, ctx.free_nodes()[:4])
            ctx.start_job(job, ctx.free_nodes()[:4])

        algo = run_script(platform, jobs, script)
        assert "not pending" in str(algo.errors[0])


class TestReconfigureValidation:
    def test_reconfigure_rigid_rejected(self, platform):
        jobs = [make_job(1, num_nodes=4)]

        def script(ctx):
            job = ctx.pending_jobs[0]
            ctx.start_job(job, ctx.free_nodes()[:4])
            ctx.reconfigure_job(job, ctx.platform.nodes[:2])

        algo = run_script(platform, jobs, script)
        assert "only malleable/evolving" in str(algo.errors[0])

    def test_reconfigure_pending_job_rejected(self, platform):
        jobs = [
            make_job(1, job_type=JobType.MALLEABLE, num_nodes=4, min_nodes=2)
        ]

        def script(ctx):
            ctx.reconfigure_job(ctx.pending_jobs[0], ctx.free_nodes()[:2])

        algo = run_script(platform, jobs, script)
        assert "not running" in str(algo.errors[0])

    def test_double_order_rejected(self, platform):
        jobs = [
            make_job(
                1, job_type=JobType.MALLEABLE, num_nodes=4, min_nodes=2, max_nodes=8
            )
        ]

        def script(ctx):
            job = ctx.pending_jobs[0]
            ctx.start_job(job, ctx.free_nodes()[:4])
            ctx.reconfigure_job(job, job.assigned_nodes[:2])
            ctx.reconfigure_job(job, job.assigned_nodes[:3])

        algo = run_script(platform, jobs, script)
        assert "pending order" in str(algo.errors[0])

    def test_target_with_foreign_busy_node_rejected(self, platform):
        jobs = [
            make_job(
                1, job_type=JobType.MALLEABLE, num_nodes=2, min_nodes=1, max_nodes=8
            ),
            make_job(2, num_nodes=2),
        ]

        def script(ctx):
            j1, j2 = ctx.pending_jobs
            ctx.start_job(j1, ctx.free_nodes()[:2])
            ctx.start_job(j2, ctx.free_nodes()[:2])
            # Try to steal one of j2's nodes for j1.
            ctx.reconfigure_job(j1, list(j1.assigned_nodes) + [j2.assigned_nodes[0]])

        algo = run_script(
            platform, jobs, script, when=lambda ctx: len(ctx.pending_jobs) == 2
        )
        assert "neither free" in str(algo.errors[0])

    def test_target_outside_bounds_rejected(self, platform):
        jobs = [
            make_job(
                1, job_type=JobType.MALLEABLE, num_nodes=4, min_nodes=2, max_nodes=4
            )
        ]

        def script(ctx):
            job = ctx.pending_jobs[0]
            ctx.start_job(job, ctx.free_nodes()[:4])
            ctx.reconfigure_job(job, ctx.platform.nodes[:8])

        algo = run_script(platform, jobs, script)
        assert "outside" in str(algo.errors[0])


class TestKillValidation:
    def test_kill_pending_job(self, platform):
        jobs = [make_job(1, num_nodes=4), make_job(2, num_nodes=4)]

        def script(ctx):
            ctx.kill_job(ctx.pending_jobs[1], reason="policy")
            ctx.start_job(ctx.pending_jobs[0], ctx.free_nodes()[:4])

        run_script(
            platform, jobs, script, when=lambda ctx: len(ctx.pending_jobs) == 2
        )
        assert jobs[1].state is JobState.KILLED
        assert jobs[1].kill_reason == "policy"
        assert jobs[0].state is JobState.COMPLETED

    def test_kill_running_job(self, platform):
        jobs = [make_job(1, num_nodes=4, total_flops=800e9)]

        class KillLater(Algorithm):
            name = "kill-later"

            def schedule(self, ctx, invocation):
                for job in ctx.pending_jobs:
                    ctx.start_job(job, ctx.free_nodes()[:4])
                for job in ctx.running_jobs:
                    if ctx.now >= 0:
                        ctx.kill_job(job, reason="admin")

        sim = Simulation(platform, jobs, algorithm=KillLater())
        sim.run()
        assert jobs[0].state is JobState.KILLED
        assert platform.num_free_nodes() == 8

    def test_kill_finished_job_rejected(self, platform):
        jobs = [make_job(1, num_nodes=4)]
        caught = []

        class KillAfter(Algorithm):
            name = "kill-after"

            def schedule(self, ctx, invocation):
                for job in ctx.pending_jobs:
                    ctx.start_job(job, ctx.free_nodes()[:4])
                if invocation.type.value == "job_completion":
                    try:
                        ctx.kill_job(invocation.job)
                    except SchedulerError as exc:
                        caught.append(exc)

        Simulation(platform, jobs, algorithm=KillAfter()).run()
        assert caught and "finished" in str(caught[0])
