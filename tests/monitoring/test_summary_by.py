"""Tests for grouped summaries (per type / per user)."""

import pytest

from repro.batch import Simulation
from repro.job import JobType

from tests.batch.conftest import make_job


class TestSummaryBy:
    def test_summary_by_type_buckets(self, platform):
        jobs = [
            make_job(1, total_flops=4e9, num_nodes=4),
            make_job(
                2,
                total_flops=4e9,
                job_type=JobType.MALLEABLE,
                num_nodes=4,
                min_nodes=2,
                max_nodes=4,
            ),
        ]
        monitor = Simulation(platform, jobs, algorithm="easy").run()
        by_type = monitor.summary_by_type()
        assert set(by_type) == {"rigid", "malleable"}
        assert by_type["rigid"].completed_jobs == 1
        assert by_type["malleable"].completed_jobs == 1

    def test_summary_by_user_waits_differ(self, platform):
        # alice's job runs first; bob's 8-node job waits behind it.
        jobs = [
            make_job(1, total_flops=16e9, num_nodes=8, user="alice"),
            make_job(2, total_flops=8e9, num_nodes=8, submit_time=0.1, user="bob"),
        ]
        monitor = Simulation(platform, jobs, algorithm="fcfs").run()
        by_user = monitor.summary_by_user()
        assert by_user["alice"].mean_wait == pytest.approx(0.0)
        assert by_user["bob"].mean_wait > 1.0

    def test_summary_by_class_splits_batch_and_ondemand(self, platform):
        from repro.job import JobClass

        jobs = [
            make_job(1, total_flops=16e9, num_nodes=8),
            make_job(
                2,
                total_flops=8e9,
                num_nodes=4,
                submit_time=1.0,
                job_class=JobClass.ON_DEMAND,
            ),
        ]
        monitor = Simulation(
            platform, jobs, algorithm="hybrid-corridor", checkpoint_restart=True
        ).run()
        by_class = monitor.summary_by_class()
        assert set(by_class) == {"batch", "on-demand"}
        # Admitted by preemption at its submit instant: zero wait.
        assert by_class["on-demand"].mean_wait == pytest.approx(0.0)

    def test_group_makespan_is_group_local(self, platform):
        jobs = [
            make_job(1, total_flops=8e9, num_nodes=8, user="early"),  # ends t=1
            make_job(2, total_flops=8e9, num_nodes=8, submit_time=0.1, user="late"),
        ]
        monitor = Simulation(platform, jobs, algorithm="fcfs").run()
        by_user = monitor.summary_by_user()
        assert by_user["early"].makespan == pytest.approx(1.0)
        assert by_user["late"].makespan == pytest.approx(2.0)

    def test_user_none_groups_under_sentinel(self, platform):
        # Regression: a job with user=None (e.g. anonymised trace imports)
        # used to blow up sorted() with a None-vs-str TypeError.
        jobs = [
            make_job(1, total_flops=4e9, num_nodes=4, user="alice"),
            make_job(2, total_flops=4e9, num_nodes=4),
        ]
        jobs[1].user = None
        monitor = Simulation(platform, jobs, algorithm="easy").run()
        by_user = monitor.summary_by_user()
        assert set(by_user) == {"alice", "<none>"}
        assert by_user["<none>"].completed_jobs == 1

    def test_custom_key_returning_none(self, platform):
        jobs = [make_job(i, total_flops=4e9, num_nodes=4) for i in (1, 2)]
        monitor = Simulation(platform, jobs, algorithm="easy").run()
        by_none = monitor.summary_by(lambda j: None)
        assert set(by_none) == {"<none>"}
        assert by_none["<none>"].completed_jobs == 2

    def test_custom_key(self, platform):
        jobs = [make_job(i, total_flops=4e9, num_nodes=4) for i in (1, 2, 3, 4)]
        monitor = Simulation(platform, jobs, algorithm="easy").run()
        by_parity = monitor.summary_by(lambda j: "even" if j.jid % 2 == 0 else "odd")
        assert by_parity["even"].completed_jobs == 2
        assert by_parity["odd"].completed_jobs == 2


class TestCliExtensions:
    def test_algorithms_listing(self, capsys):
        from repro.cli import main

        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ("fcfs", "easy", "sjf", "fairshare", "malleable"):
            assert name in out

    def test_run_with_failures(self, tmp_path, capsys):
        import json

        from repro.cli import main

        platform_file = tmp_path / "p.json"
        platform_file.write_text(
            json.dumps(
                {
                    "nodes": {"count": 16, "flops": 1e12},
                    "network": {"topology": "star", "bandwidth": 1e10},
                }
            )
        )
        workload_file = tmp_path / "w.json"
        main(
            [
                "generate",
                "--output",
                str(workload_file),
                "--num-jobs",
                "5",
                "--max-request",
                "16",
            ]
        )
        code = main(
            [
                "run",
                "--platform",
                str(platform_file),
                "--workload",
                str(workload_file),
                "--mtbf",
                "500",
                "--mean-repair",
                "50",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "injecting" in out

    def test_run_reports_energy_on_powered_platform(self, tmp_path, capsys):
        import json

        from repro.cli import main

        platform_file = tmp_path / "p.json"
        platform_file.write_text(
            json.dumps(
                {
                    "nodes": {"count": 8, "flops": 1e12},
                    "network": {"topology": "star", "bandwidth": 1e10},
                    "power": {
                        "idle_watts": 100.0,
                        "peak_watts": 300.0,
                        "corridor_watts": 2000.0,
                    },
                }
            )
        )
        workload_file = tmp_path / "w.json"
        main(["generate", "--output", str(workload_file), "--num-jobs", "3"])
        capsys.readouterr()
        assert (
            main(
                [
                    "run",
                    "--platform",
                    str(platform_file),
                    "--workload",
                    str(workload_file),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "total_energy_joules" in out
        assert "max_power_watts" in out
        assert "corridor_watts" in out

    def test_run_omits_energy_on_powerless_platform(self, tmp_path, capsys):
        import json

        from repro.cli import main

        platform_file = tmp_path / "p.json"
        platform_file.write_text(
            json.dumps(
                {
                    "nodes": {"count": 8, "flops": 1e12},
                    "network": {"topology": "star", "bandwidth": 1e10},
                }
            )
        )
        workload_file = tmp_path / "w.json"
        main(["generate", "--output", str(workload_file), "--num-jobs", "3"])
        capsys.readouterr()
        main(["run", "--platform", str(platform_file), "--workload", str(workload_file)])
        out = capsys.readouterr().out
        assert "total_energy_joules" not in out


class TestNodeUtilization:
    def test_busy_seconds_per_node(self, platform):
        from repro.batch import Simulation

        # One 4-node job for 2 s on nodes 0..3; nodes 4..7 idle.
        jobs = [make_job(1, total_flops=8e9, num_nodes=4)]
        monitor = Simulation(platform, jobs, algorithm="fcfs").run()
        busy = monitor.node_busy_seconds()
        assert busy == {0: 2.0, 1: 2.0, 2: 2.0, 3: 2.0}

    def test_node_utilizations_fractions(self, platform):
        from repro.batch import Simulation

        jobs = [
            make_job(1, total_flops=8e9, num_nodes=4),            # 2 s on 0-3
            make_job(2, total_flops=4e9, num_nodes=4, submit_time=2.0),
        ]
        monitor = Simulation(platform, jobs, algorithm="fcfs").run()
        # Job 2 submits at the same instant job 1 completes; the submit
        # invocation runs first, so job 2 lands on the still-free nodes
        # 4..7.  Makespan 3 s: nodes 0-3 busy 2/3, nodes 4-7 busy 1/3.
        utils = monitor.node_utilizations()
        assert utils[0] == pytest.approx(2 / 3)
        assert utils[4] == pytest.approx(1 / 3)

    def test_empty_monitor(self):
        from repro.des import Environment
        from repro.monitoring import Monitor

        monitor = Monitor(Environment(), num_nodes=4)
        assert monitor.node_utilizations() == {}
        assert monitor.node_busy_seconds() == {}
