"""Power metering: exact energy integration, conservation, and scaling.

The meter's contract (docs/HYBRID.md): per-node energy is the exact
piecewise-constant integral of the node's draw — 0 W failed, peak
allocated, idle otherwise — accumulated in ``Fraction`` arithmetic, so
the reported joules are reproducible bit-for-bit and the conservation
property below holds with *equality*, not a tolerance.
"""

import json
import tempfile
from fractions import Fraction
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import Simulation
from repro.fuzz.generate import FuzzBudget, generate_scenario
from repro.fuzz.oracles import SCALE_FACTOR, run_scenario_record, scale_scenario
from repro.tracing import read_jsonl

POWERED_PLATFORM = {
    "nodes": {"count": 2, "flops": 1e9},
    "network": {"topology": "star", "bandwidth": 1e10},
    "power": {"idle_watts": 100.0, "peak_watts": 300.0},
}

ONE_NODE_5S_JOB = {
    "id": 1,
    "type": "rigid",
    "num_nodes": 1,
    "submit_time": 0.0,
    "application": {"phases": [{"tasks": [{"type": "cpu", "flops": 5e9}]}]},
}


def _run(spec):
    sim = Simulation.from_spec(json.loads(json.dumps(spec)))
    monitor = sim.run()
    return monitor.run_record()


class TestEnergyRecord:
    def test_exact_integration_single_job(self):
        record = _run(
            {
                "platform": POWERED_PLATFORM,
                "workload": {"inline": {"jobs": [ONE_NODE_5S_JOB]}},
                "algorithm": "fcfs",
            }
        )
        energy = record["energy"]
        # node 0 busy for all 5 s at 300 W, node 1 idle at 100 W.
        assert energy["node_joules"] == [1500.0, 500.0]
        assert energy["total_joules"] == 2000.0
        assert energy["max_power_watts"] == 400.0
        assert energy["corridor_watts"] is None

    def test_energy_absent_without_power_block(self):
        platform = {k: v for k, v in POWERED_PLATFORM.items() if k != "power"}
        record = _run(
            {
                "platform": platform,
                "workload": {"inline": {"jobs": [ONE_NODE_5S_JOB]}},
                "algorithm": "fcfs",
            }
        )
        assert "energy" not in record


#: Every scenario declares power; half also mix in on-demand jobs, so the
#: properties below cover preemption-driven transitions too.
POWERED_BUDGET = FuzzBudget(power_probability=1.0, ondemand_probability=0.5)


def _trace_integral(records, platform_spec):
    """Re-integrate per-node energy from the flight-recorder trace.

    Same draw model as the meter (0 W failed, peak owned, idle
    otherwise), same Fraction arithmetic over the same float timestamps —
    so the result must equal the reported ``node_joules`` exactly.
    """
    count = platform_spec["nodes"]["count"]
    idle = platform_spec["power"]["idle_watts"]
    peak = platform_spec["power"]["peak_watts"]
    owned, failed = set(), set()

    def watts(index):
        if index in failed:
            return 0.0
        return peak if index in owned else idle

    energy = [Fraction(0)] * count
    last = [0.0] * count
    end_time = 0.0
    for record in records:
        index = record.args.get("node")
        if record.kind == "node.alloc":
            after = owned.add
        elif record.kind == "node.release":
            after = owned.discard
        elif record.kind == "node.fail":
            after = failed.add
        elif record.kind == "node.repair":
            after = failed.discard
        else:
            if record.kind == "sim.end":
                end_time = record.end
            continue
        if record.end > last[index]:
            energy[index] += Fraction(watts(index)) * (
                Fraction(record.end) - Fraction(last[index])
            )
            last[index] = record.end
        after(index)
    for index in range(count):
        energy[index] += Fraction(watts(index)) * (
            Fraction(end_time) - Fraction(last[index])
        )
    return energy


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_energy_equals_trace_integral(seed):
    scenario = generate_scenario(seed, budget=POWERED_BUDGET)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.trace.jsonl"
        sim = Simulation.from_spec(json.loads(json.dumps(scenario)))
        monitor = sim.run(trace=path)
        records = read_jsonl(path)
    energy = monitor.run_record()["energy"]
    integral = _trace_integral(records, scenario["platform"])
    assert energy["node_joules"] == [float(e) for e in integral]
    assert energy["total_joules"] == float(sum(integral, Fraction(0)))


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_energy_scales_exactly_with_time(seed):
    scenario = generate_scenario(seed, budget=POWERED_BUDGET)
    base = run_scenario_record(scenario)["energy"]
    scaled = run_scenario_record(scale_scenario(scenario, SCALE_FACTOR))["energy"]
    # Stretching time by a power of two scales every joule bit-exactly
    # and leaves the wattage statistics untouched.
    assert scaled["total_joules"] == base["total_joules"] * SCALE_FACTOR
    assert scaled["node_joules"] == [e * SCALE_FACTOR for e in base["node_joules"]]
    assert scaled["max_power_watts"] == base["max_power_watts"]
    assert scaled["corridor_watts"] == base["corridor_watts"]
