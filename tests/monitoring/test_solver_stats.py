"""Tests for the solver perf-counter snapshot (SolverStats)."""

import pytest

from repro.des import Environment
from repro.monitoring import SolverStats
from repro.sharing import Activity, FairShareModel, SharedResource


def _run_model():
    env = Environment()
    model = FairShareModel(env)
    resources = [SharedResource(f"r{i}", 10.0) for i in range(3)]
    for res in resources:
        model.execute(Activity(100.0, {res: 1.0}))
    env.run()
    return model


def test_from_model_snapshots_counters():
    model = _run_model()
    stats = SolverStats.from_model(model)
    assert stats.resolves == model.resolves
    assert stats.solve_events == model.solve_events
    assert stats.solved_activities == model.solved_activities
    assert stats.peak_components == 3
    assert stats.component_count == 0  # everything finished
    assert stats.mean_solve_scope == pytest.approx(
        model.solved_activities / model.resolves
    )
    assert stats.solver_time >= 0.0


def test_as_dict_is_json_shaped():
    stats = SolverStats.from_model(_run_model())
    payload = stats.as_dict()
    assert payload["resolves"] == stats.resolves
    assert payload["mean_solve_scope"] == stats.mean_solve_scope
    assert isinstance(payload["size_histogram"], dict)


def test_mean_solve_scope_zero_when_no_resolves():
    assert SolverStats().mean_solve_scope == 0.0


def test_simulation_attaches_solver_stats():
    from repro import Simulation
    from benchmarks.common import evaluation_workload, reference_platform

    platform = reference_platform(num_nodes=8)
    jobs = evaluation_workload(
        num_jobs=4, seed=1, num_nodes=8, max_request=4, mean_interarrival=5.0
    )
    monitor = Simulation(platform, jobs, algorithm="easy").run()
    assert monitor.solver is not None
    assert monitor.solver.resolves > 0
    assert monitor.solver.solved_activities >= monitor.solver.resolves
