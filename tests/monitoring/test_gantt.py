"""Tests for the ASCII Gantt renderer."""

import pytest

from repro import Simulation, platform_from_dict
from repro.monitoring import render_gantt
from repro.workload import WorkloadSpec, generate_workload


@pytest.fixture()
def run_monitor():
    platform = platform_from_dict(
        {
            "nodes": {"count": 16, "flops": 1e12},
            "network": {"topology": "star", "bandwidth": 1e10},
        }
    )
    jobs = generate_workload(
        WorkloadSpec(
            num_jobs=6,
            mean_interarrival=100.0,
            max_request=16,
            mean_runtime=200.0,
            malleable_fraction=0.5,
        ),
        seed=3,
    )
    return Simulation(platform, jobs, algorithm="malleable").run()


class TestRenderGantt:
    def test_one_row_per_job_plus_frame(self, run_monitor):
        text = render_gantt(run_monitor)
        lines = text.splitlines()
        assert len(lines) == 6 + 2  # header + jobs + time axis

    def test_rows_have_requested_width(self, run_monitor):
        text = render_gantt(run_monitor, width=40)
        for line in text.splitlines()[1:-1]:
            inner = line.split("|")[1]
            assert len(inner) == 40

    def test_job_names_present(self, run_monitor):
        text = render_gantt(run_monitor)
        for jid in range(1, 7):
            assert f"job{jid}" in text

    def test_running_glyphs_exist(self, run_monitor):
        text = render_gantt(run_monitor)
        assert any(g in text for g in "▁▂▃▄▅▆▇█")

    def test_max_jobs_truncates(self, run_monitor):
        text = render_gantt(run_monitor, max_jobs=2)
        assert "job2" in text and "job3" not in text

    def test_empty_monitor(self):
        from repro.des import Environment
        from repro.monitoring import Monitor

        monitor = Monitor(Environment(), num_nodes=4)
        assert render_gantt(monitor) == "(nothing ran)"

    @pytest.mark.parametrize("width", [1, 2, 5, 7, 8, 9])
    def test_small_widths_render(self, run_monitor, width):
        # Regression: the footer ruler used ``'-' * (width - 8)``, which is
        # negative below 8 columns; the chart must still come out intact.
        text = render_gantt(run_monitor, width=width)
        lines = text.splitlines()
        assert len(lines) == 6 + 2
        for line in lines[1:-1]:
            inner = line.split("|")[1]
            assert len(inner) == width
        assert lines[-1].rstrip().endswith("s")

    def test_width_zero_rejected(self, run_monitor):
        with pytest.raises(ValueError, match="width"):
            render_gantt(run_monitor, width=0)

    def test_running_job_marker(self):
        platform = platform_from_dict(
            {
                "nodes": {"count": 8, "flops": 1e9},
                "network": {"topology": "star", "bandwidth": 1e10},
            }
        )
        jobs = generate_workload(
            WorkloadSpec(
                num_jobs=1,
                mean_interarrival=0.0,
                min_request=8,
                max_request=8,
                mean_runtime=100.0,
                runtime_sigma=0.0,
            ),
            seed=1,
        )
        sim = Simulation(platform, jobs, algorithm="fcfs")
        monitor = sim.run(until=5.0)
        text = render_gantt(monitor, horizon=5.0, width=6)
        assert "…" in text  # running marker survives narrow widths

    def test_queued_marker_for_waiting_jobs(self):
        # Two 16-node jobs: the second queues behind the first.
        platform = platform_from_dict(
            {
                "nodes": {"count": 16, "flops": 1e12},
                "network": {"topology": "star", "bandwidth": 1e10},
            }
        )
        jobs = generate_workload(
            WorkloadSpec(
                num_jobs=3,
                mean_interarrival=0.0,
                min_request=16,
                max_request=16,
                mean_runtime=100.0,
                runtime_sigma=0.0,
            ),
            seed=0,
        )
        monitor = Simulation(platform, jobs, algorithm="fcfs").run()
        text = render_gantt(monitor, width=30)
        assert "·" in text  # queue time rendered
