"""Tests for the Monitor: series, summaries, exports."""

import csv
import json
import math

import pytest

from repro.application import ApplicationModel, CpuTask, Phase
from repro.des import Environment
from repro.job import Job
from repro.monitoring import Monitor


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def monitor(env):
    return Monitor(env, num_nodes=8)


class FakeNode:
    def __init__(self, index):
        self.index = index


def make_job(jid, submit=0.0, num_nodes=2):
    from repro.job import JobType

    app = ApplicationModel([Phase([CpuTask(1)])])
    # Moldable so tests can start it on any node count.
    return Job(
        jid,
        app,
        job_type=JobType.MOLDABLE,
        num_nodes=num_nodes,
        min_nodes=1,
        max_nodes=8,
        submit_time=submit,
    )


def run_job_through(env, monitor, job, start, end, nodes=2):
    """Drive the monitor hooks the way the batch system would."""

    def proc(env):
        if env.now < job.submit_time:
            yield env.timeout(job.submit_time - env.now)
        monitor.on_submit(job)
        yield env.timeout(start - env.now)
        job.mark_started([FakeNode(i) for i in range(nodes)], env.now)
        monitor.on_start(job)
        monitor.set_allocated(nodes)
        yield env.timeout(end - env.now)
        job.mark_completed(env.now)
        monitor.on_end(job)
        monitor.set_allocated(0)

    env.process(proc(env))


class TestSeries:
    def test_allocation_series_steps(self, env, monitor):
        job = make_job(1)
        run_job_through(env, monitor, job, start=2.0, end=5.0)
        env.run()
        monitor.finalize()
        assert (2.0, 2) in monitor.allocation_series
        assert (5.0, 0) in monitor.allocation_series

    def test_set_allocated_dedupes(self, env, monitor):
        monitor.set_allocated(0)  # no change from initial 0
        assert monitor.allocation_series == [(0.0, 0)]

    def test_queue_series(self, env, monitor):
        job = make_job(1)
        run_job_through(env, monitor, job, start=3.0, end=4.0)
        env.run()
        # Queued at t=0, dequeued at start.
        assert (0.0, 1) in monitor.queue_series
        assert (3.0, 0) in monitor.queue_series

    def test_utilization_timeline_fractions(self, env, monitor):
        job = make_job(1)
        run_job_through(env, monitor, job, start=0.0, end=4.0, nodes=4)
        env.run()
        monitor.finalize()
        timeline = monitor.utilization_timeline()
        assert (0.0, 0.5) in timeline  # 4 of 8 nodes


class TestUtilization:
    def test_integral_full_span(self, env, monitor):
        job = make_job(1)
        run_job_through(env, monitor, job, start=0.0, end=10.0, nodes=4)
        env.run()
        monitor.finalize()
        assert monitor.utilization_integral() == pytest.approx(40.0)
        assert monitor.mean_utilization() == pytest.approx(0.5)

    def test_integral_with_idle_prefix(self, env, monitor):
        job = make_job(1)
        run_job_through(env, monitor, job, start=5.0, end=10.0, nodes=8)
        env.run()
        monitor.finalize()
        # 8 nodes x 5 s over a 10 s horizon → mean 0.5.
        assert monitor.mean_utilization() == pytest.approx(0.5)

    def test_zero_horizon(self, monitor):
        assert monitor.mean_utilization() == 0.0
        assert monitor.utilization_integral() == 0.0

    def test_explicit_horizon(self, env, monitor):
        job = make_job(1)
        run_job_through(env, monitor, job, start=0.0, end=4.0, nodes=8)
        env.run()
        monitor.finalize()
        assert monitor.mean_utilization(until=8.0) == pytest.approx(0.5)


class TestSummary:
    def test_empty_monitor_summary(self, monitor):
        summary = monitor.summary()
        assert summary.completed_jobs == 0
        assert math.isnan(summary.mean_wait)

    def test_single_job_summary(self, env, monitor):
        job = make_job(1)
        run_job_through(env, monitor, job, start=2.0, end=6.0)
        env.run()
        monitor.finalize()
        summary = monitor.summary()
        assert summary.completed_jobs == 1
        assert summary.mean_wait == pytest.approx(2.0)
        assert summary.mean_turnaround == pytest.approx(6.0)
        assert summary.makespan == pytest.approx(6.0)

    def test_as_dict_keys(self, monitor):
        d = monitor.summary().as_dict()
        assert "makespan" in d and "mean_utilization" in d


class TestExports:
    def test_job_csv(self, env, monitor, tmp_path):
        job = make_job(1)
        run_job_through(env, monitor, job, start=1.0, end=2.0)
        env.run()
        path = tmp_path / "jobs.csv"
        monitor.write_job_csv(path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 1
        assert rows[0]["jid"] == "1"
        assert float(rows[0]["wait_time"]) == 1.0

    def test_empty_csv(self, monitor, tmp_path):
        path = tmp_path / "empty.csv"
        monitor.write_job_csv(path)
        assert path.read_text() == ""

    def test_summary_json(self, env, monitor, tmp_path):
        job = make_job(1)
        run_job_through(env, monitor, job, start=0.0, end=1.0)
        env.run()
        monitor.finalize()
        path = tmp_path / "summary.json"
        monitor.write_summary_json(path)
        data = json.loads(path.read_text())
        assert data["completed_jobs"] == 1


class TestSegments:
    def test_segment_lifecycle(self, env, monitor):
        job = make_job(1)
        run_job_through(env, monitor, job, start=1.0, end=3.0, nodes=2)
        env.run()
        segments = monitor.segments(1)
        assert len(segments) == 1
        assert segments[0].start == 1.0
        assert segments[0].end == 3.0
        assert segments[0].node_indices == (0, 1)

    def test_unknown_job_empty(self, monitor):
        assert monitor.segments(99) == []
