"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


PLATFORM = {
    "name": "cli-test",
    "nodes": {"count": 16, "flops": 1e12},
    "network": {"topology": "star", "bandwidth": 1e10, "pfs_bandwidth": 1e11},
    "pfs": {"read_bw": 1e11, "write_bw": 1e11},
}


@pytest.fixture()
def platform_file(tmp_path):
    path = tmp_path / "platform.json"
    path.write_text(json.dumps(PLATFORM))
    return path


@pytest.fixture()
def workload_file(tmp_path):
    # Generate through the CLI itself so the round-trip is covered.
    path = tmp_path / "workload.json"
    code = main(
        [
            "generate",
            "--output",
            str(path),
            "--num-jobs",
            "5",
            "--seed",
            "1",
            "--max-request",
            "16",
            "--malleable-fraction",
            "0.4",
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_generate_writes_valid_workload(self, workload_file):
        spec = json.loads(workload_file.read_text())
        assert len(spec["jobs"]) == 5
        types = {j["type"] for j in spec["jobs"]}
        assert "malleable" in types

    def test_generated_workload_loads(self, workload_file):
        from repro.workload import load_workload

        jobs = load_workload(workload_file)
        assert len(jobs) == 5


class TestValidate:
    def test_validate_platform_and_workload(self, platform_file, workload_file, capsys):
        assert main(
            ["validate", "--platform", str(platform_file), "--workload", str(workload_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "platform OK" in out
        assert "workload OK" in out

    def test_validate_nothing_is_error(self, capsys):
        assert main(["validate"]) == 2

    def test_validate_bad_platform(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["validate", "--platform", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestRun:
    def test_run_prints_summary(self, platform_file, workload_file, capsys):
        code = main(
            [
                "run",
                "--platform",
                str(platform_file),
                "--workload",
                str(workload_file),
                "--algorithm",
                "malleable",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "completed_jobs" in out

    def test_run_writes_outputs(self, platform_file, workload_file, tmp_path, capsys):
        outdir = tmp_path / "results"
        code = main(
            [
                "run",
                "--platform",
                str(platform_file),
                "--workload",
                str(workload_file),
                "--output-dir",
                str(outdir),
            ]
        )
        assert code == 0
        assert (outdir / "jobs.csv").exists()
        assert (outdir / "summary.json").exists()
        assert (outdir / "utilization.json").exists()
        summary = json.loads((outdir / "summary.json").read_text())
        assert summary["completed_jobs"] + summary["killed_jobs"] == 5

    def test_run_unknown_algorithm_fails_cleanly(
        self, platform_file, workload_file, capsys
    ):
        code = main(
            [
                "run",
                "--platform",
                str(platform_file),
                "--workload",
                str(workload_file),
                "--algorithm",
                "wishful",
            ]
        )
        assert code == 1
        assert "Unknown algorithm" in capsys.readouterr().err

    def test_run_missing_file_fails_cleanly(self, platform_file, capsys):
        code = main(
            ["run", "--platform", str(platform_file), "--workload", "ghost.json"]
        )
        assert code == 1


class TestRoundTrip:
    def test_workload_roundtrip_preserves_jobs(self, tmp_path):
        from repro.workload import (
            WorkloadSpec,
            generate_workload,
            load_workload,
            workload_to_dict,
        )

        jobs = generate_workload(
            WorkloadSpec(num_jobs=8, malleable_fraction=0.5, data_per_node=1e9),
            seed=5,
        )
        path = tmp_path / "wl.json"
        path.write_text(json.dumps(workload_to_dict(jobs)))
        loaded = load_workload(path)
        assert [j.jid for j in loaded] == [j.jid for j in jobs]
        assert [j.type for j in loaded] == [j.type for j in jobs]
        assert [j.num_nodes for j in loaded] == [j.num_nodes for j in jobs]
        assert [j.walltime for j in loaded] == pytest.approx(
            [j.walltime for j in jobs]
        )

    def test_application_roundtrip(self):
        from repro.application import application_from_dict, application_to_dict
        from repro.workload import iterative_application

        app = iterative_application(
            total_flops=1e12,
            iterations=7,
            comm_bytes_per_msg=1e6,
            input_bytes=1e9,
            output_bytes=2e9,
            checkpoint_bytes=5e8,
            checkpoint_every=3,
            data_per_node=2e9,
        )
        spec = application_to_dict(app)
        clone = application_from_dict(spec)
        assert len(clone.phases) == len(app.phases)
        assert clone.phases[1].num_iterations({}) == 7
        # Checkpoint expression survives the round trip.
        ckpt_a = app.phases[1].tasks[-1]
        ckpt_b = clone.phases[1].tasks[-1]
        for it in range(7):
            assert ckpt_a.bytes_per_node({"iteration": it}, 1) == ckpt_b.bytes_per_node(
                {"iteration": it}, 1
            )
