"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import (
    EXIT_ALGORITHM,
    EXIT_INPUT,
    EXIT_OK,
    EXIT_RUNTIME,
    EXIT_USAGE,
    main,
)


PLATFORM = {
    "name": "cli-test",
    "nodes": {"count": 16, "flops": 1e12},
    "network": {"topology": "star", "bandwidth": 1e10, "pfs_bandwidth": 1e11},
    "pfs": {"read_bw": 1e11, "write_bw": 1e11},
}


@pytest.fixture()
def platform_file(tmp_path):
    path = tmp_path / "platform.json"
    path.write_text(json.dumps(PLATFORM))
    return path


@pytest.fixture()
def workload_file(tmp_path):
    # Generate through the CLI itself so the round-trip is covered.
    path = tmp_path / "workload.json"
    code = main(
        [
            "generate",
            "--output",
            str(path),
            "--num-jobs",
            "5",
            "--seed",
            "1",
            "--max-request",
            "16",
            "--malleable-fraction",
            "0.4",
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_generate_writes_valid_workload(self, workload_file):
        spec = json.loads(workload_file.read_text())
        assert len(spec["jobs"]) == 5
        types = {j["type"] for j in spec["jobs"]}
        assert "malleable" in types

    def test_generated_workload_loads(self, workload_file):
        from repro.workload import load_workload

        jobs = load_workload(workload_file)
        assert len(jobs) == 5


class TestValidate:
    def test_validate_platform_and_workload(self, platform_file, workload_file, capsys):
        assert main(
            ["validate", "--platform", str(platform_file), "--workload", str(workload_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "platform OK" in out
        assert "workload OK" in out

    def test_validate_nothing_is_error(self, capsys):
        assert main(["validate"]) == EXIT_USAGE

    def test_validate_bad_platform(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["validate", "--platform", str(bad)]) == EXIT_INPUT
        assert "error:" in capsys.readouterr().err

    def test_validate_unparseable_platform(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["validate", "--platform", str(bad)]) == EXIT_INPUT
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_validate_bad_workload(self, tmp_path, capsys):
        bad = tmp_path / "wl.json"
        bad.write_text(json.dumps({"jobs": [{"this": "is not a job"}]}))
        assert main(["validate", "--workload", str(bad)]) == EXIT_INPUT
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err


class TestRun:
    def test_run_prints_summary(self, platform_file, workload_file, capsys):
        code = main(
            [
                "run",
                "--platform",
                str(platform_file),
                "--workload",
                str(workload_file),
                "--algorithm",
                "malleable",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "completed_jobs" in out

    def test_run_writes_outputs(self, platform_file, workload_file, tmp_path, capsys):
        outdir = tmp_path / "results"
        code = main(
            [
                "run",
                "--platform",
                str(platform_file),
                "--workload",
                str(workload_file),
                "--output-dir",
                str(outdir),
            ]
        )
        assert code == 0
        assert (outdir / "jobs.csv").exists()
        assert (outdir / "summary.json").exists()
        assert (outdir / "utilization.json").exists()
        summary = json.loads((outdir / "summary.json").read_text())
        assert summary["completed_jobs"] + summary["killed_jobs"] == 5

    def test_run_unknown_algorithm_fails_cleanly(
        self, platform_file, workload_file, capsys
    ):
        code = main(
            [
                "run",
                "--platform",
                str(platform_file),
                "--workload",
                str(workload_file),
                "--algorithm",
                "wishful",
            ]
        )
        assert code == EXIT_ALGORITHM
        err = capsys.readouterr().err
        assert "Unknown algorithm" in err
        assert "Traceback" not in err

    def test_run_missing_file_fails_cleanly(self, platform_file, capsys):
        code = main(
            ["run", "--platform", str(platform_file), "--workload", "ghost.json"]
        )
        assert code == EXIT_INPUT
        assert "error:" in capsys.readouterr().err

    def test_run_stalled_workload_is_runtime_error(
        self, platform_file, tmp_path, capsys
    ):
        # A job wanting more nodes than the platform has is a BatchError.
        wl = tmp_path / "big.json"
        wl.write_text(
            json.dumps(
                {
                    "jobs": [
                        {
                            "id": 1,
                            "type": "rigid",
                            "submit_time": 0,
                            "num_nodes": 1024,
                            "application": {
                                "phases": [{"tasks": [{"type": "cpu", "flops": 1e9}]}]
                            },
                        }
                    ]
                }
            )
        )
        code = main(["run", "--platform", str(platform_file), "--workload", str(wl)])
        assert code == EXIT_RUNTIME
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err


CAMPAIGN = {
    "name": "cli-campaign",
    "platform": {
        "nodes": {"count": 8, "flops": 1e12},
        "network": {"topology": "star", "bandwidth": 1e10},
    },
    "workload": {"generate": {"num_jobs": 4, "max_request": 4}},
    "algorithms": ["fcfs", "easy"],
    "seeds": [0],
}


class TestCampaign:
    @pytest.fixture()
    def campaign_file(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(CAMPAIGN))
        return path

    def test_campaign_run_writes_reports(self, campaign_file, tmp_path, capsys):
        outdir = tmp_path / "out"
        code = main(
            [
                "campaign",
                "run",
                "--spec",
                str(campaign_file),
                "--output-dir",
                str(outdir),
                "--cache-dir",
                str(tmp_path / "cache"),
                "--workers",
                "1",
            ]
        )
        assert code == EXIT_OK
        aggregate = json.loads((outdir / "campaign.json").read_text())
        assert aggregate["campaign"]["scenarios"] == 2
        assert aggregate["campaign"]["failed"] == 0
        lines = (outdir / "scenarios.jsonl").read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["status"] == "ok" for line in lines)
        out = capsys.readouterr().out
        assert "2/2 scenarios ok" in out

    def test_campaign_run_missing_spec(self, tmp_path, capsys):
        code = main(["campaign", "run", "--spec", str(tmp_path / "ghost.json")])
        assert code == EXIT_INPUT
        assert "error:" in capsys.readouterr().err

    def test_campaign_run_bad_spec(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"workload": {"generate": {}}}))
        code = main(["campaign", "run", "--spec", str(bad)])
        assert code == EXIT_INPUT
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_campaign_failed_scenario_is_runtime_exit(self, tmp_path, capsys):
        spec = dict(CAMPAIGN, algorithms=["easy", "wishful-thinking"])
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(spec))
        code = main(
            [
                "campaign",
                "run",
                "--spec",
                str(path),
                "--output-dir",
                str(tmp_path / "out"),
                "--no-cache",
                "--workers",
                "1",
            ]
        )
        assert code == EXIT_RUNTIME
        err = capsys.readouterr().err
        assert "wishful-thinking" in err
        # The good half of the campaign still ran to completion.
        aggregate = json.loads((tmp_path / "out" / "campaign.json").read_text())
        assert aggregate["campaign"]["failed"] == 1
        assert aggregate["campaign"]["scenarios"] == 2

    def test_campaign_compare_clean_and_regressed(self, tmp_path, capsys):
        baseline = {
            "header": ["scenario", "makespan", "mean_utilization"],
            "rows": [{"scenario": "a", "makespan": 100.0, "mean_utilization": 0.8}],
        }
        current_ok = {
            "header": ["scenario", "makespan", "mean_utilization"],
            "rows": [{"scenario": "a", "makespan": 101.0, "mean_utilization": 0.8}],
        }
        current_bad = {
            "header": ["scenario", "makespan", "mean_utilization"],
            "rows": [{"scenario": "a", "makespan": 150.0, "mean_utilization": 0.8}],
        }
        base = tmp_path / "base.json"
        base.write_text(json.dumps(baseline))
        good = tmp_path / "good.json"
        good.write_text(json.dumps(current_ok))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(current_bad))

        assert main(["campaign", "compare", str(good), str(base)]) == EXIT_OK
        assert main(["campaign", "compare", str(bad), str(base)]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        # Soft mode downgrades the failure; missing baselines can be waived.
        assert main(["campaign", "compare", str(bad), str(base), "--soft"]) == EXIT_OK
        assert (
            main(
                [
                    "campaign",
                    "compare",
                    str(bad),
                    str(tmp_path / "ghost.json"),
                    "--missing-baseline-ok",
                ]
            )
            == EXIT_OK
        )


class TestCampaignReport:
    @staticmethod
    def record(workload, algorithm, makespan):
        return {
            "name": f"{algorithm}/{workload}/seed=0",
            "params": {"workload": workload},
            "status": "ok",
            "result": {
                "summary": {
                    "makespan": makespan,
                    "mean_utilization": 0.8,
                    "completed_jobs": 4,
                }
            },
            "scenario": {"algorithm": algorithm, "seed": 0},
        }

    @pytest.fixture()
    def shards(self, tmp_path):
        path = tmp_path / "scenarios.jsonl"
        records = [
            self.record("mix-a", "easy", 100.0),
            self.record("mix-a", "malleable", 80.0),
            self.record("mix-b", "easy", 120.0),
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return path

    def test_campaign_report_renders_and_writes(self, shards, tmp_path, capsys):
        outdir = tmp_path / "report"
        code = main(
            [
                "campaign",
                "report",
                str(shards),
                "--group-by",
                "workload,algorithm",
                "--title",
                "CLI study",
                "--output-dir",
                str(outdir),
            ]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "# CLI study" in out
        assert "workload=mix-a/algorithm=malleable" in out
        payload = json.loads((outdir / "report.json").read_text())
        assert len(payload["rows"]) == 3
        assert (outdir / "report.md").read_text().startswith("# CLI study")

    def test_campaign_report_metric_selection(self, shards, capsys):
        code = main(
            ["campaign", "report", str(shards), "--metric", "makespan"]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "makespan_mean" in out
        assert "mean_utilization_mean" not in out

    def test_campaign_report_missing_file_is_input_error(self, tmp_path, capsys):
        code = main(["campaign", "report", str(tmp_path / "ghost.jsonl")])
        assert code == EXIT_INPUT
        assert "error:" in capsys.readouterr().err

    def test_campaign_report_empty_dir_is_usage_error(self, tmp_path, capsys):
        code = main(["campaign", "report", str(tmp_path)])
        assert code == EXIT_USAGE
        assert "nothing to report" in capsys.readouterr().err


class TestCampaignExecutors:
    @pytest.fixture()
    def campaign_file(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(CAMPAIGN))
        return path

    def run_with(self, campaign_file, tmp_path, label, *extra):
        code = main(
            [
                "campaign",
                "run",
                "--spec",
                str(campaign_file),
                "--output-dir",
                str(tmp_path / f"out-{label}"),
                "--no-cache",
                "--workers",
                "1",
                "--fingerprints",
                str(tmp_path / f"{label}.json"),
                *extra,
            ]
        )
        assert code == EXIT_OK
        return (tmp_path / f"{label}.json").read_bytes()

    def test_executor_flag_and_fingerprint_identity(
        self, campaign_file, tmp_path, capsys
    ):
        serial = self.run_with(campaign_file, tmp_path, "serial")
        in_process = self.run_with(
            campaign_file, tmp_path, "inproc", "--executor", "in-process"
        )
        # The contract the CI matrix fan-in enforces: byte-identical files.
        assert in_process == serial
        assert "(in-process)" in capsys.readouterr().out
        names = set(json.loads(serial))
        assert names == {"fcfs/seed=0", "easy/seed=0"}

    def test_spec_executor_is_validated_early(self, tmp_path, capsys):
        spec = dict(CAMPAIGN, executor="carrier-pigeon")
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(spec))
        assert main(["campaign", "run", "--spec", str(path)]) == EXIT_INPUT
        assert "unknown executor" in capsys.readouterr().err

    def test_spec_scenario_timeout_is_validated_early(self, tmp_path, capsys):
        spec = dict(CAMPAIGN, scenario_timeout=-5)
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(spec))
        assert main(["campaign", "run", "--spec", str(path)]) == EXIT_INPUT
        assert "scenario_timeout" in capsys.readouterr().err

    def test_worker_against_missing_queue(self, tmp_path, capsys):
        code = main(
            [
                "campaign",
                "worker",
                "--queue-dir",
                str(tmp_path / "ghost"),
                "--wait-for-queue",
                "0",
                "--quiet",
            ]
        )
        assert code == EXIT_INPUT
        assert "error:" in capsys.readouterr().err

    def test_aggregate_folds_shards(self, tmp_path, capsys):
        shard_dir = tmp_path / "shards"
        shard_dir.mkdir()
        record = {
            "status": "ok",
            "wall_s": 0.25,
            "result": {"summary": {"makespan": 100.0}},
        }
        (shard_dir / "w1.jsonl").write_text(json.dumps(record) + "\n")
        (shard_dir / "w2.jsonl").write_text(
            json.dumps(dict(record, result={"summary": {"makespan": 200.0}}))
            + "\n"
            + json.dumps({"status": "failed", "error_kind": "timeout"})
            + "\n"
        )
        out = tmp_path / "aggregate.json"
        code = main(
            ["campaign", "aggregate", str(shard_dir), "--output", str(out)]
        )
        assert code == EXIT_OK
        stdout = capsys.readouterr().out
        assert "failed=1" in stdout and "ok=2" in stdout
        payload = json.loads(out.read_text())
        assert payload["scenarios"] == 3
        assert payload["error_kinds"] == {"timeout": 1}
        assert payload["metrics"]["makespan"]["mean"] == pytest.approx(150.0)

    def test_aggregate_without_shards(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["campaign", "aggregate", str(empty)]) == EXIT_USAGE
        assert "nothing to aggregate" in capsys.readouterr().err


class TestRoundTrip:
    def test_workload_roundtrip_preserves_jobs(self, tmp_path):
        from repro.workload import (
            WorkloadSpec,
            generate_workload,
            load_workload,
            workload_to_dict,
        )

        jobs = generate_workload(
            WorkloadSpec(num_jobs=8, malleable_fraction=0.5, data_per_node=1e9),
            seed=5,
        )
        path = tmp_path / "wl.json"
        path.write_text(json.dumps(workload_to_dict(jobs)))
        loaded = load_workload(path)
        assert [j.jid for j in loaded] == [j.jid for j in jobs]
        assert [j.type for j in loaded] == [j.type for j in jobs]
        assert [j.num_nodes for j in loaded] == [j.num_nodes for j in jobs]
        assert [j.walltime for j in loaded] == pytest.approx(
            [j.walltime for j in jobs]
        )

    def test_application_roundtrip(self):
        from repro.application import application_from_dict, application_to_dict
        from repro.workload import iterative_application

        app = iterative_application(
            total_flops=1e12,
            iterations=7,
            comm_bytes_per_msg=1e6,
            input_bytes=1e9,
            output_bytes=2e9,
            checkpoint_bytes=5e8,
            checkpoint_every=3,
            data_per_node=2e9,
        )
        spec = application_to_dict(app)
        clone = application_from_dict(spec)
        assert len(clone.phases) == len(app.phases)
        assert clone.phases[1].num_iterations({}) == 7
        # Checkpoint expression survives the round trip.
        ckpt_a = app.phases[1].tasks[-1]
        ckpt_b = clone.phases[1].tasks[-1]
        for it in range(7):
            assert ckpt_a.bytes_per_node({"iteration": it}, 1) == ckpt_b.bytes_per_node(
                {"iteration": it}, 1
            )


class TestTraceCommands:
    def test_record_check_convert_round_trip(
        self, platform_file, workload_file, tmp_path, capsys
    ):
        jsonl = tmp_path / "run.trace.jsonl"
        code = main(
            [
                "trace",
                "record",
                "--platform",
                str(platform_file),
                "--workload",
                str(workload_file),
                "--algorithm",
                "malleable",
                "--output",
                str(jsonl),
                "--check",
            ]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "invariants OK" in out
        assert jsonl.exists()

        assert main(["trace", "check", str(jsonl), "--nodes", "16"]) == EXIT_OK

        chrome = tmp_path / "run.trace.json"
        assert main(["trace", "convert", str(jsonl), str(chrome)]) == EXIT_OK
        from repro.tracing import validate_chrome_trace

        validate_chrome_trace(json.loads(chrome.read_text()))

    def test_record_chrome_output_directly(
        self, platform_file, workload_file, tmp_path
    ):
        chrome = tmp_path / "direct.json"
        code = main(
            [
                "trace",
                "record",
                "--platform",
                str(platform_file),
                "--workload",
                str(workload_file),
                "--output",
                str(chrome),
            ]
        )
        assert code == EXIT_OK
        payload = json.loads(chrome.read_text())
        assert payload["otherData"]["schema"] == "elastisim-trace"

    def test_check_flags_violations_with_exit_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        records = [
            {"schema": "elastisim-trace", "version": 1},
            {
                "time": 0.0,
                "kind": "node.alloc",
                "ph": "I",
                "track": "node:0",
                "name": "a",
                "args": {"node": 0, "jid": 1},
            },
            {
                "time": 1.0,
                "kind": "node.alloc",
                "ph": "I",
                "track": "node:0",
                "name": "b",
                "args": {"node": 0, "jid": 2},
            },
        ]
        bad.write_text("\n".join(json.dumps(r) for r in records))
        assert main(["trace", "check", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "node-double-alloc" in err

    def test_check_missing_trace_is_input_error(self, tmp_path, capsys):
        code = main(["trace", "check", str(tmp_path / "ghost.jsonl")])
        assert code == EXIT_INPUT
        assert "not found" in capsys.readouterr().err

    def test_run_with_trace_and_invariants(
        self, platform_file, workload_file, tmp_path, capsys
    ):
        trace = tmp_path / "run.json"
        code = main(
            [
                "run",
                "--platform",
                str(platform_file),
                "--workload",
                str(workload_file),
                "--trace",
                str(trace),
                "--check-invariants",
            ]
        )
        assert code == EXIT_OK
        assert trace.exists()
        assert "trace written" in capsys.readouterr().out


class TestProfile:
    def test_profile_smoke_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        code = main(
            [
                "profile",
                "--jobs",
                "20",
                "--nodes",
                "8",
                "--seed",
                "2",
                "--output",
                str(out),
            ]
        )
        assert code == EXIT_OK
        assert "kernel/other" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["schema"] == "elastisim-profile/2"
        sections = payload["sections"]
        total = sum(sections.values())
        # Sections partition the wall clock (other_s absorbs the remainder).
        assert total == pytest.approx(payload["wall_s"], rel=1e-6)
        assert payload["events"] > 0
        assert payload["counters"]["solver"]["resolves"] > 0
        assert payload["counters"]["expressions"]["evaluations"] > 0
        assert payload["memory"]["peak_rss_mb"] > 0
        assert payload["memory"]["tracemalloc"] is None

    def test_profile_tracemalloc_section(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        code = main(
            [
                "profile",
                "--jobs",
                "5",
                "--nodes",
                "4",
                "--tracemalloc",
                "--output",
                str(out),
            ]
        )
        assert code == EXIT_OK
        assert "traced peak" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        malloc_stats = payload["memory"]["tracemalloc"]
        assert malloc_stats["peak_mb"] > 0
        assert malloc_stats["top_allocations"]
        for row in malloc_stats["top_allocations"]:
            assert row["size_mb"] >= 0 and row["blocks"] >= 1 and row["location"]

    def test_profile_cprofile_top_functions(self, capsys):
        code = main(
            ["profile", "--jobs", "5", "--nodes", "4", "--cprofile", "--top", "3"]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "calls" in out
