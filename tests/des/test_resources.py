"""Unit tests for Resource / PriorityResource / Container / Store."""

import pytest

from repro.des import Container, Environment, PriorityResource, Resource, Store


class TestResource:
    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grant_up_to_capacity(self):
        env = Environment()
        res = Resource(env, capacity=2)
        r1, r2, r3 = res.request(), res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert not r3.triggered
        assert res.count == 2

    def test_release_grants_next_in_fifo_order(self):
        env = Environment()
        res = Resource(env, capacity=1)
        r1 = res.request()
        r2 = res.request()
        r3 = res.request()
        res.release(r1)
        assert r2.triggered and not r3.triggered
        res.release(r2)
        assert r3.triggered

    def test_context_manager_releases(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def user(env, res, log, tag):
            with res.request() as req:
                yield req
                log.append((tag, env.now, "got"))
                yield env.timeout(5)
            log.append((tag, env.now, "released"))

        log = []
        env.process(user(env, res, log, "a"))
        env.process(user(env, res, log, "b"))
        env.run()
        assert ("a", 0, "got") in log
        assert ("b", 5, "got") in log

    def test_cancel_queued_request(self):
        env = Environment()
        res = Resource(env, capacity=1)
        res.request()
        r2 = res.request()
        r3 = res.request()
        r2.cancel()
        res.release(res.users[0])
        assert r3.triggered
        assert not r2.triggered

    def test_release_queued_request_removes_it(self):
        env = Environment()
        res = Resource(env, capacity=1)
        res.request()
        r2 = res.request()
        res.release(r2)  # r2 never granted; acts as cancel
        assert r2 not in res.queue


class TestPriorityResource:
    def test_lower_priority_value_served_first(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        held = res.request(priority=0)
        low = res.request(priority=10)
        high = res.request(priority=1)
        res.release(held)
        assert high.triggered and not low.triggered

    def test_fifo_within_same_priority(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        held = res.request(priority=0)
        first = res.request(priority=5)
        second = res.request(priority=5)
        res.release(held)
        assert first.triggered and not second.triggered

    def test_mixed_interleaved_priorities_grant_in_sorted_order(self):
        # Regression for the insort-based queue: a long interleaved mix of
        # priorities (inserted out of order, with a cancellation in the
        # middle) must still grant strictly by (priority, arrival order).
        env = Environment()
        res = PriorityResource(env, capacity=1)
        held = res.request(priority=0)
        priorities = [7, 2, 9, 2, 0, 5, 0, 9, 2, 1]
        pending = [res.request(priority=p) for p in priorities]
        cancelled = pending.pop(3)  # one of the priority-2 requests
        cancelled.cancel()
        expected = sorted(pending, key=lambda r: (r.priority, r._order))
        granted = []
        res.release(held)
        for _ in expected:
            current = next(r for r in pending if r.triggered and r not in granted)
            granted.append(current)
            res.release(current)
        assert granted == expected
        assert not res.queue


class TestContainer:
    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Container(env, capacity=0)
        with pytest.raises(ValueError):
            Container(env, capacity=10, init=20)

    def test_put_and_get_levels(self):
        env = Environment()
        c = Container(env, capacity=100, init=10)
        c.put(30)
        assert c.level == 40
        c.get(15)
        assert c.level == 25

    def test_get_blocks_until_level_sufficient(self):
        env = Environment()
        c = Container(env, capacity=100, init=0)
        g = c.get(50)
        assert not g.triggered
        c.put(49)
        assert not g.triggered
        c.put(1)
        assert g.triggered

    def test_put_blocks_when_over_capacity(self):
        env = Environment()
        c = Container(env, capacity=10, init=8)
        p = c.put(5)
        assert not p.triggered
        c.get(3)
        assert p.triggered
        assert c.level == 10

    def test_negative_amounts_rejected(self):
        env = Environment()
        c = Container(env, capacity=10)
        with pytest.raises(ValueError):
            c.put(-1)
        with pytest.raises(ValueError):
            c.get(-1)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        s = Store(env)
        s.put("item")
        g = s.get()
        assert g.triggered
        assert g.value == "item"

    def test_get_blocks_until_put(self):
        env = Environment()
        s = Store(env)
        g = s.get()
        assert not g.triggered
        s.put(7)
        assert g.triggered and g.value == 7

    def test_fifo_order(self):
        env = Environment()
        s = Store(env)
        for i in range(5):
            s.put(i)
        got = [s.get().value for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_filtered_get(self):
        env = Environment()
        s = Store(env)
        s.put({"kind": "a"})
        s.put({"kind": "b"})
        g = s.get(filter=lambda item: item["kind"] == "b")
        assert g.triggered
        assert g.value == {"kind": "b"}
        assert len(s) == 1

    def test_filtered_get_blocks_head_of_line(self):
        env = Environment()
        s = Store(env)
        g = s.get(filter=lambda item: item == "wanted")
        s.put("other")
        assert not g.triggered
        s.put("wanted")
        assert g.triggered
        assert list(s.items) == ["other"]

    def test_len(self):
        env = Environment()
        s = Store(env)
        assert len(s) == 0
        s.put(1)
        s.put(2)
        assert len(s) == 2
