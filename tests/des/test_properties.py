"""Property-based tests for the DES kernel (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.des import Environment


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=200, deadline=None)
def test_property_timeouts_fire_in_time_order(delays):
    env = Environment()
    fired = []

    def proc(env, delay, idx):
        yield env.timeout(delay)
        fired.append((env.now, idx))

    for idx, delay in enumerate(delays):
        env.process(proc(env, delay, idx))
    env.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=200, deadline=None)
def test_property_equal_delays_fire_in_submission_order(delays):
    """Ties broken by insertion id: same-delay processes run FIFO."""
    env = Environment()
    fired = []
    same = delays[0]

    def proc(env, idx):
        yield env.timeout(same)
        fired.append(idx)

    n = min(len(delays), 20)
    for idx in range(n):
        env.process(proc(env, idx))
    env.run()
    assert fired == list(range(n))


@given(
    st.lists(
        st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=5),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=100, deadline=None)
def test_property_sequential_delays_accumulate(chains):
    """Each process's clock equals the sum of its yielded delays."""
    env = Environment()
    results = {}

    def proc(env, idx, delays):
        for d in delays:
            yield env.timeout(d)
        results[idx] = env.now

    for idx, chain in enumerate(chains):
        env.process(proc(env, idx, chain))
    env.run()
    for idx, chain in enumerate(chains):
        assert results[idx] == sum(chain) or abs(results[idx] - sum(chain)) < 1e-9


@given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=2, max_size=20))
@settings(max_examples=100, deadline=None)
def test_property_all_of_fires_at_max_any_of_at_min(delays):
    env = Environment()
    outcome = {}

    def waiter(env):
        timeouts_all = [env.timeout(d) for d in delays]
        timeouts_any = [env.timeout(d) for d in delays]
        t_any = env.any_of(timeouts_any)
        t_all = env.all_of(timeouts_all)
        yield t_any
        outcome["any"] = env.now
        yield t_all
        outcome["all"] = env.now

    env.process(waiter(env))
    env.run()
    assert outcome["any"] == min(delays)
    assert outcome["all"] == max(delays)


@given(
    st.integers(min_value=1, max_value=20),
    st.floats(min_value=0.1, max_value=10.0),
)
@settings(max_examples=100, deadline=None)
def test_property_ping_pong_processes_alternate(rounds, delay):
    """Two processes passing a token alternate deterministically."""
    env = Environment()
    log = []

    def player(env, name, my_turn, other_turn):
        for _ in range(rounds):
            yield my_turn[0]
            log.append((name, env.now))
            my_turn[0] = env.event()
            nxt = env.timeout(delay)
            turn = other_turn[0]

            def relay(event, turn=turn):
                if not turn.triggered:
                    turn.succeed()

            nxt.callbacks.append(relay)

    a_turn = [env.event()]
    b_turn = [env.event()]
    env.process(player(env, "a", a_turn, b_turn))
    env.process(player(env, "b", b_turn, a_turn))
    a_turn[0].succeed()
    env.run(until=delay * rounds * 4 + 1)
    names = [n for n, _ in log]
    # Strict alternation while both are alive.
    for x, y in zip(names, names[1:]):
        assert x != y


@given(st.integers(min_value=0, max_value=100))
@settings(max_examples=50, deadline=None)
def test_property_event_count_is_deterministic(n):
    def build():
        env = Environment()

        def proc(env, k):
            yield env.timeout(k % 7)
            yield env.timeout(1)

        for k in range(n):
            env.process(proc(env, k))
        env.run()
        return env.processed_events

    assert build() == build()
