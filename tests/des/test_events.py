"""Unit tests for events, conditions, and failure propagation."""

import pytest

from repro.des import AllOf, Environment, SimulationError



def test_event_initially_pending():
    env = Environment()
    ev = env.event()
    assert not ev.triggered
    assert not ev.processed


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_succeed_sets_value():
    env = Environment()
    ev = env.event()
    ev.succeed(123)
    assert ev.triggered
    assert ev.ok
    assert ev.value == 123


def test_double_succeed_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_fail_then_succeed_raises():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("x"))
    with pytest.raises(SimulationError):
        ev.succeed()


def test_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_unhandled_failure_crashes_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_defused_failure_does_not_crash():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("boom"))
    ev.defuse()
    env.run()  # no raise


def test_timeout_carries_value():
    env = Environment()

    def proc(env):
        got = yield env.timeout(1, value="payload")
        return got

    p = env.process(proc(env))
    env.run()
    assert p.value == "payload"


class TestConditions:
    def test_all_of_waits_for_everything(self):
        env = Environment()

        def proc(env):
            t1 = env.timeout(1, value="a")
            t2 = env.timeout(5, value="b")
            result = yield env.all_of([t1, t2])
            return (env.now, list(result.values()))

        p = env.process(proc(env))
        env.run()
        assert p.value == (5, ["a", "b"])

    def test_any_of_returns_on_first(self):
        env = Environment()

        def proc(env):
            t1 = env.timeout(1, value="fast")
            t2 = env.timeout(5, value="slow")
            result = yield env.any_of([t1, t2])
            return (env.now, list(result.values()))

        p = env.process(proc(env))
        env.run()
        assert p.value == (1, ["fast"])

    def test_empty_all_of_fires_immediately(self):
        env = Environment()

        def proc(env):
            yield env.all_of([])
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 0

    def test_empty_any_of_fires_immediately(self):
        env = Environment()

        def proc(env):
            yield env.any_of([])
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 0

    def test_and_operator(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1) & env.timeout(2)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 2

    def test_or_operator(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1) | env.timeout(2)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 1

    def test_condition_value_contains_simultaneous_events(self):
        env = Environment()

        def proc(env):
            t1 = env.timeout(3, value=1)
            t2 = env.timeout(3, value=2)
            result = yield env.any_of([t1, t2])
            return list(result.values())

        p = env.process(proc(env))
        env.run()
        # Both fire at t=3; the condition should report both.
        assert p.value == [1, 2]

    def test_failing_member_fails_condition(self):
        env = Environment()

        def failer(env):
            yield env.timeout(1)
            raise ValueError("inner")

        def waiter(env):
            f = env.process(failer(env))
            t = env.timeout(10)
            try:
                yield env.all_of([f, t])
            except ValueError as exc:
                return f"caught {exc}"

        p = env.process(waiter(env))
        env.run()
        assert p.value == "caught inner"

    def test_mixed_environment_rejected(self):
        env1, env2 = Environment(), Environment()
        with pytest.raises(ValueError):
            AllOf(env1, [env1.event(), env2.event()])

    def test_nested_conditions_flatten_values(self):
        env = Environment()

        def proc(env):
            t1 = env.timeout(1, value="x")
            t2 = env.timeout(2, value="y")
            t3 = env.timeout(3, value="z")
            result = yield (t1 & t2) & t3
            return list(result.values())

        p = env.process(proc(env))
        env.run()
        assert p.value == ["x", "y", "z"]

    def test_condition_value_mapping_interface(self):
        env = Environment()

        def proc(env):
            t1 = env.timeout(1, value="v")
            result = yield env.all_of([t1])
            assert t1 in result
            assert result[t1] == "v"
            assert dict(result.items())[t1] == "v"
            assert result.todict() == {t1: "v"}
            return True

        p = env.process(proc(env))
        env.run()
        assert p.value is True
