"""Unit tests for process semantics: waiting, returning, interrupting."""

import pytest

from repro.des import Environment, Interrupt, SimulationError


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return {"answer": 42}

    p = env.process(proc(env))
    env.run()
    assert p.value == {"answer": 42}


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(10)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_process_waiting_on_process():
    env = Environment()

    def child(env):
        yield env.timeout(3)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        return (env.now, result)

    p = env.process(parent(env))
    env.run()
    assert p.value == (3, "child-result")


def test_process_crash_propagates_to_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise RuntimeError("crash")

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="crash"):
        env.run()


def test_child_crash_propagates_to_waiting_parent():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise ValueError("child died")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            return f"handled: {exc}"

    p = env.process(parent(env))
    env.run()
    assert p.value == "handled: child died"


def test_yield_non_event_crashes_process():
    env = Environment()

    def proc(env):
        yield 42  # type: ignore[misc]

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            return (env.now, intr.cause)

    def interrupter(env, victim_proc):
        yield env.timeout(5)
        victim_proc.interrupt(cause="stop now")

    v = env.process(victim(env))
    env.process(interrupter(env, v))
    env.run()
    assert v.value == (5, "stop now")


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_self_interrupt_raises():
    env = Environment()

    def proc(env):
        with pytest.raises(SimulationError):
            env.active_process.interrupt()
        yield env.timeout(0)

    env.process(proc(env))
    env.run()


def test_interrupted_process_can_continue_waiting():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(10)
        return env.now

    def interrupter(env, v):
        yield env.timeout(5)
        v.interrupt()

    v = env.process(victim(env))
    env.process(interrupter(env, v))
    env.run()
    assert v.value == 15


def test_unhandled_interrupt_crashes_process():
    env = Environment()

    def victim(env):
        yield env.timeout(100)

    def interrupter(env, v):
        yield env.timeout(1)
        v.interrupt("die")

    v = env.process(victim(env))
    env.process(interrupter(env, v))
    with pytest.raises(Interrupt):
        env.run()


def test_target_cleared_after_interrupt():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            return "interrupted"

    def interrupter(env, v):
        yield env.timeout(1)
        target = v.target
        assert target is not None
        v.interrupt()
        # The old target no longer holds a callback for the victim.
        assert v._resume not in (target.callbacks or [])

    v = env.process(victim(env))
    env.process(interrupter(env, v))
    env.run()
    assert v.value == "interrupted"


def test_process_name_defaults_to_generator_name():
    env = Environment()

    def my_process(env):
        yield env.timeout(0)

    p = env.process(my_process(env))
    assert p.name == "my_process"
    env.run()


def test_immediate_return_process():
    env = Environment()

    def proc(env):
        return "instant"
        yield  # pragma: no cover - makes it a generator

    p = env.process(proc(env))
    env.run()
    assert p.value == "instant"


def test_active_process_visible_inside():
    env = Environment()
    seen = []

    def proc(env):
        seen.append(env.active_process)
        yield env.timeout(0)

    p = env.process(proc(env))
    env.run()
    assert seen == [p]
    assert env.active_process is None


def test_base_exception_aborts_run_even_with_handling_parent():
    """Async control-flow interrupts (KeyboardInterrupt, scenario
    deadlines) raised inside a process must abort the whole run, not be
    converted into a process-failure event a parent could defuse —
    defusing would silently swallow a one-shot SIGALRM deadline and let
    the simulation run unbounded."""
    env = Environment()

    class Deadline(BaseException):
        pass

    def child(env):
        yield env.timeout(1)
        raise Deadline()

    def parent(env):
        try:
            yield env.process(child(env))
        except BaseException:  # noqa: B036 - would defuse the failure
            pass
        return "absorbed"

    env.process(parent(env))
    with pytest.raises(Deadline):
        env.run()
    assert env.active_process is None
