"""Unit tests for the DES environment and event loop."""

import math

import pytest

from repro.des import Environment, EmptySchedule, SimulationError


def test_initial_time_defaults_to_zero():
    assert Environment().now == 0.0


def test_initial_time_can_be_set():
    assert Environment(initial_time=42.0).now == 42.0


def test_run_empty_environment_returns_none():
    env = Environment()
    assert env.run() is None


def test_run_until_time_advances_clock_exactly():
    env = Environment()
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_past_time_raises():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_peek_empty_queue_is_inf():
    assert Environment().peek() == math.inf


def test_peek_returns_next_event_time():
    env = Environment()
    env.timeout(7.5)
    assert env.peek() == 7.5


def test_step_empty_raises():
    with pytest.raises(EmptySchedule):
        Environment().step()


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(3.0)
    env.run()
    assert env.now == 3.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_negative_schedule_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.schedule(env.event(), delay=-0.5)


def test_events_processed_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, 3, "c"))
    env.process(proc(env, 1, "a"))
    env.process(proc(env, 2, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_by_insertion():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(5)
        order.append(tag)

    for tag in "abcde":
        env.process(proc(env, tag))
    env.run()
    assert order == list("abcde")


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"
    assert env.now == 2


def test_run_until_event_already_processed():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 99

    p = env.process(proc(env))
    env.run()
    assert env.run(until=p) == 99


def test_run_until_untriggered_event_with_empty_queue_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_run_until_stops_exactly_at_boundary():
    env = Environment()
    hits = []

    def proc(env):
        while True:
            yield env.timeout(1)
            hits.append(env.now)

    env.process(proc(env))
    env.run(until=3.0)
    # The stop event at t=3 has URGENT priority, so the t=3 user event
    # must not have run yet.
    assert hits == [1, 2]
    assert env.now == 3.0


def test_processed_events_counter_increases():
    env = Environment()
    env.timeout(1)
    env.timeout(2)
    env.run()
    assert env.processed_events >= 2


def test_processed_events_counts_event_with_raising_callback():
    # The count increments before callbacks run, so a raising callback
    # cannot desync the E5 event count.
    env = Environment()
    event = env.event()
    event.succeed()
    event.defuse()
    event.callbacks.append(lambda _e: (_ for _ in ()).throw(RuntimeError("boom")))
    with pytest.raises(RuntimeError):
        env.run()
    assert env.processed_events == 1


def test_run_until_time_counts_the_stop_event():
    env = Environment()
    env.timeout(1)
    env.run(until=2.0)
    assert env.processed_events == 2  # the timeout and the stop event


def test_schedule_at_fires_at_exact_absolute_time():
    env = Environment()
    seen = []
    event = env.event()
    event._ok = True
    event._value = None
    event.callbacks.append(lambda _e: seen.append(env.now))
    # A time that now + (t - now) would not round-trip exactly through
    # delay-based scheduling.
    target = 0.1 + 0.2
    env.schedule_at(event, target)
    env.run()
    assert seen == [target]


def test_schedule_at_past_time_clamps_to_now():
    env = Environment(initial_time=5.0)
    seen = []
    event = env.event()
    event._ok = True
    event._value = None
    event.callbacks.append(lambda _e: seen.append(env.now))
    env.schedule_at(event, 1.0)
    env.run()
    assert seen == [5.0]


def test_schedule_at_rejects_nan():
    env = Environment()
    with pytest.raises(ValueError):
        env.schedule_at(env.event(), math.nan)


def test_schedule_at_orders_with_priority():
    from repro.des.events import NORMAL, URGENT

    env = Environment()
    order = []
    for label, priority in [("normal", NORMAL), ("urgent", URGENT)]:
        event = env.event()
        event._ok = True
        event._value = None
        event.callbacks.append(lambda _e, label=label: order.append(label))
        env.schedule_at(event, 3.0, priority=priority)
    env.run()
    assert order == ["urgent", "normal"]


def test_clock_never_goes_backwards():
    env = Environment()
    stamps = []

    def proc(env, delays):
        for d in delays:
            yield env.timeout(d)
            stamps.append(env.now)

    env.process(proc(env, [5, 0, 3]))
    env.process(proc(env, [1, 1, 1]))
    env.run()
    assert stamps == sorted(stamps)
