"""Unit tests for the DES environment and event loop."""

import math

import pytest

from repro.des import Environment, EmptySchedule, SimulationError


def test_initial_time_defaults_to_zero():
    assert Environment().now == 0.0


def test_initial_time_can_be_set():
    assert Environment(initial_time=42.0).now == 42.0


def test_run_empty_environment_returns_none():
    env = Environment()
    assert env.run() is None


def test_run_until_time_advances_clock_exactly():
    env = Environment()
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_past_time_raises():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_peek_empty_queue_is_inf():
    assert Environment().peek() == math.inf


def test_peek_returns_next_event_time():
    env = Environment()
    env.timeout(7.5)
    assert env.peek() == 7.5


def test_step_empty_raises():
    with pytest.raises(EmptySchedule):
        Environment().step()


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(3.0)
    env.run()
    assert env.now == 3.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_negative_schedule_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.schedule(env.event(), delay=-0.5)


def test_events_processed_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, 3, "c"))
    env.process(proc(env, 1, "a"))
    env.process(proc(env, 2, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_by_insertion():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(5)
        order.append(tag)

    for tag in "abcde":
        env.process(proc(env, tag))
    env.run()
    assert order == list("abcde")


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"
    assert env.now == 2


def test_run_until_event_already_processed():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 99

    p = env.process(proc(env))
    env.run()
    assert env.run(until=p) == 99


def test_run_until_untriggered_event_with_empty_queue_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_run_until_stops_exactly_at_boundary():
    env = Environment()
    hits = []

    def proc(env):
        while True:
            yield env.timeout(1)
            hits.append(env.now)

    env.process(proc(env))
    env.run(until=3.0)
    # The stop event at t=3 has URGENT priority, so the t=3 user event
    # must not have run yet.
    assert hits == [1, 2]
    assert env.now == 3.0


def test_processed_events_counter_increases():
    env = Environment()
    env.timeout(1)
    env.timeout(2)
    env.run()
    assert env.processed_events >= 2


def test_clock_never_goes_backwards():
    env = Environment()
    stamps = []

    def proc(env, delays):
        for d in delays:
            yield env.timeout(d)
            stamps.append(env.now)

    env.process(proc(env, [5, 0, 3]))
    env.process(proc(env, [1, 1, 1]))
    env.run()
    assert stamps == sorted(stamps)
