"""Bounded, deterministic fuzz sweep that runs as part of tier-1.

This is the every-commit slice of the fuzzer: a fixed window of seeds
through the full oracle stack, plus a shipped-algorithm sweep on the
cheap oracles.  The nightly CI job runs the same machinery with a much
larger budget; anything it catches gets shrunk and promoted into
tests/fuzz/corpus/ so tier-1 keeps paying attention to it.
"""

from repro.fuzz import fuzz_run
from repro.fuzz.generate import SHIPPED_ALGORITHMS

SMOKE_SEED = 0


def test_mixed_pool_full_oracle_stack():
    report = fuzz_run(SMOKE_SEED, 20)
    assert report.ok, "\n".join(
        f"seed={f.seed} algorithm={f.algorithm}: "
        + "; ".join(str(x) for x in f.failures)
        for f in report.failures
    )
    assert report.cases == 20


def test_shipped_algorithms_differential_and_invariant():
    report = fuzz_run(
        SMOKE_SEED, 6,
        algorithms=SHIPPED_ALGORITHMS,
        oracles=["differential", "invariant"],
    )
    assert report.ok, "\n".join(
        f"seed={f.seed} algorithm={f.algorithm}: "
        + "; ".join(str(x) for x in f.failures)
        for f in report.failures
    )
    assert report.cases == 6 * len(SHIPPED_ALGORITHMS)
