"""Acceptance: the fuzzer catches a deliberately injected solver bug.

The mutation loosens the max-min kernel's saturation *tie* tolerance from
1e-12 (relative, i.e. "equal up to float drift") to 1e-2: resources that
are merely *near* the limiting ratio get frozen together with it, robbing
their users of their last slice of bandwidth.  This is the classic class
of tie-breaking bug the differential oracle exists for — the scalar
kernel still resolves such near-ties exactly, so the two engines diverge
on any scenario where a second resource sits within 1% of saturation at
a freeze round.

The test requires the whole kill chain to work: a bounded seed search
finds a triggering scenario, the differential oracle reports it, and the
shrinker reduces it to a minimal reproducer (<= 3 jobs on <= 8 nodes)
that still fails under the mutant and passes on the clean engine.
"""

import inspect

import pytest

import repro.sharing.model as sharing_model
from repro.fuzz import check_scenario, generate_scenario, shrink_failure
from repro.fuzz.runner import FuzzFailure

#: The exact source line being mutated; if the kernel changes shape, this
#: assertion failing is the signal to re-derive the mutation, not to
#: delete the test.
TIE_TOLERANCE_LINE = "sat_tol = np.maximum(1e-12, 1e-12 * caps_arr)"
MUTATED_LINE = "sat_tol = np.maximum(1e-12, 1e-1 * caps_arr)"

SEED_SEARCH_BOUND = 50


@pytest.fixture()
def mutated_vector_kernel(monkeypatch):
    source = inspect.getsource(sharing_model._solve_vector)
    assert TIE_TOLERANCE_LINE in source, (
        "max-min kernel changed; update the injected mutation"
    )
    namespace = dict(vars(sharing_model))
    exec(  # noqa: S102 - building the mutant from audited source
        compile(source.replace(TIE_TOLERANCE_LINE, MUTATED_LINE),
                "<mutant>", "exec"),
        namespace,
    )
    monkeypatch.setattr(
        sharing_model, "_solve_vector", namespace["_solve_vector"]
    )


def _find_caught_case():
    for seed in range(SEED_SEARCH_BOUND):
        scenario = generate_scenario(seed)
        failures = check_scenario(scenario, ["differential"])
        if failures:
            return scenario, failures
    return None, None


def test_differential_oracle_catches_and_shrinks_mutant(mutated_vector_kernel):
    scenario, failures = _find_caught_case()
    assert scenario is not None, (
        f"mutant survived {SEED_SEARCH_BOUND} fuzz seeds — the differential "
        "oracle lost its teeth"
    )
    assert failures[0].oracle == "differential"

    small, evals = shrink_failure(
        FuzzFailure(
            seed=scenario["seed"],
            algorithm=scenario["algorithm"],
            scenario=scenario,
            failures=failures,
        )
    )
    jobs = small["workload"]["inline"]["jobs"]
    assert len(jobs) <= 3, f"reproducer kept {len(jobs)} jobs"
    assert small["platform"]["nodes"]["count"] <= 8, (
        f"reproducer kept {small['platform']['nodes']['count']} nodes"
    )
    # Still a reproducer under the mutant...
    assert any(
        f.oracle == "differential"
        for f in check_scenario(small, ["differential"])
    )


def test_clean_engine_passes_what_the_mutant_fails():
    # The same search space is oracle-clean without the mutation (the
    # smoke sweep covers breadth; this pins the specific seeds the
    # mutation test leans on).
    for seed in range(10):
        assert check_scenario(generate_scenario(seed), ["differential"]) == []
