"""Replay every committed reproducer in tests/fuzz/corpus/.

Corpus records are shrunk scenarios that once exposed a bug (or pin a
behaviour class worth watching, like the adversarial random scheduler).
A fixed engine must keep each one green through the oracles recorded in
the file.  Promote new entries with::

    elastisim fuzz shrink failure.json --output-dir tests/fuzz/corpus
"""

import json
from pathlib import Path

import pytest

from repro.fuzz import replay_scenario

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    assert CORPUS, f"no corpus records under {CORPUS_DIR}"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_record_replays_clean(path):
    failures = replay_scenario(path)
    assert failures == [], "; ".join(str(f) for f in failures)


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_record_is_well_formed(path):
    record = json.loads(path.read_text())
    assert "scenario" in record and "oracles" in record
    assert record["provenance"]  # every entry says why it exists
