"""The `elastisim fuzz` command group: exit codes and artifacts."""

import json
from pathlib import Path

from repro.cli import EXIT_OK, EXIT_REGRESSION, EXIT_USAGE, main
from repro.fuzz import generate_scenario

CORPUS_DIR = Path(__file__).parent / "corpus"


class TestFuzzRun:
    def test_clean_sweep_exits_ok(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main([
            "fuzz", "run", "--seed", "0", "--count", "4",
            "--oracles", "invariant", "--report", str(report_path),
        ])
        assert code == EXIT_OK
        report = json.loads(report_path.read_text())
        assert report["ok"] is True
        assert report["cases"] == 4
        assert "4 case(s)" in capsys.readouterr().out

    def test_pinned_algorithms_and_budget(self, capsys):
        code = main([
            "fuzz", "run", "--seed", "1", "--count", "2",
            "--algorithms", "fcfs,easy", "--oracles", "invariant",
            "--max-nodes", "6", "--max-jobs", "3",
        ])
        assert code == EXIT_OK
        assert "4 case(s)" in capsys.readouterr().out

    def test_failures_yield_regression_exit_and_artifacts(
        self, tmp_path, monkeypatch, capsys
    ):
        import repro.fuzz as fuzz_pkg
        import repro.fuzz.runner as runner_mod
        from repro.fuzz import OracleFailure

        real_check = runner_mod.check_scenario

        def fails_once(scenario, oracles):
            if scenario["seed"] == failing_seed:
                return [OracleFailure("invariant", "synthetic regression")]
            return real_check(scenario, oracles)

        from repro.campaign import derive_seed

        failing_seed = derive_seed(0, "fuzz", 1)
        monkeypatch.setattr(runner_mod, "check_scenario", fails_once)
        # Shrinking re-checks candidates through cli's shrink_failure;
        # keep that cheap and deterministic too.
        monkeypatch.setattr(
            fuzz_pkg, "shrink_failure",
            lambda failure, max_evals=400: (failure.scenario, 0),
        )
        code = main([
            "fuzz", "run", "--seed", "0", "--count", "3",
            "--oracles", "invariant", "--output-dir", str(tmp_path),
        ])
        assert code == EXIT_REGRESSION
        assert "synthetic regression" in capsys.readouterr().err
        records = list(tmp_path.glob("fuzz-*.json"))
        assert records, "no reproducer artifacts written"
        tests = list(tmp_path.glob("fuzz-*_test.py"))
        assert tests and "check_scenario" in tests[0].read_text()


class TestFuzzReplay:
    def test_replays_corpus_records_clean(self, capsys):
        paths = sorted(str(p) for p in CORPUS_DIR.glob("*.json"))[:2]
        assert paths
        code = main(["fuzz", "replay", *paths])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert out.count("OK") == len(paths)

    def test_failing_replay_exits_regression(self, tmp_path):
        scenario = generate_scenario(2)
        # Rigid job wider than the machine: construction fails -> crash.
        scenario["workload"]["inline"]["jobs"][0].pop("min_nodes", None)
        scenario["workload"]["inline"]["jobs"][0].pop("max_nodes", None)
        scenario["workload"]["inline"]["jobs"][0]["type"] = "rigid"
        scenario["workload"]["inline"]["jobs"][0]["num_nodes"] = 999
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(scenario))
        assert main(["fuzz", "replay", str(path)]) == EXIT_REGRESSION

    def test_missing_file_is_input_error(self, tmp_path):
        from repro.cli import EXIT_INPUT

        code = main(["fuzz", "replay", str(tmp_path / "nope.json")])
        assert code == EXIT_INPUT


class TestFuzzShrink:
    def test_shrinking_a_clean_scenario_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "clean.json"
        path.write_text(json.dumps(generate_scenario(1)))
        code = main(["fuzz", "shrink", str(path), "--output-dir", str(tmp_path)])
        assert code == EXIT_USAGE
        assert "nothing to shrink" in capsys.readouterr().err

    def test_shrinks_failing_scenario_to_artifacts(self, tmp_path, capsys):
        scenario = generate_scenario(3)
        scenario["workload"]["inline"]["jobs"][0].pop("min_nodes", None)
        scenario["workload"]["inline"]["jobs"][0].pop("max_nodes", None)
        scenario["workload"]["inline"]["jobs"][0]["type"] = "rigid"
        scenario["workload"]["inline"]["jobs"][0]["num_nodes"] = 999
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(scenario))
        out_dir = tmp_path / "shrunk"
        code = main([
            "fuzz", "shrink", str(path),
            "--output-dir", str(out_dir), "--max-evals", "60",
        ])
        assert code == EXIT_REGRESSION
        assert "shrunk to" in capsys.readouterr().out
        record_files = list(out_dir.glob("*.json"))
        assert record_files
        # The shrunk scenario must still crash (oversized rigid job kept).
        record = json.loads(
            next(p for p in record_files if not p.name.endswith("campaign.json"))
            .read_text()
        )
        assert record["failures"][0]["oracle"] == "crash"
