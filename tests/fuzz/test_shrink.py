"""Shrinker behaviour on synthetic predicates (no engine involvement).

Using structural predicates ("still contains a comm task") keeps these
tests fast and makes the expected fixpoint exactly computable; the
engine-coupled shrink path is covered by test_solver_mutation.py.
"""

import json

from repro.fuzz import generate_scenario, shrink_scenario
from repro.fuzz.generate import validate_scenario


def has_task(scenario, kind):
    return any(
        task["type"] == kind
        for job in scenario["workload"]["inline"]["jobs"]
        for phase in job["application"]["phases"]
        for task in phase["tasks"]
    )


def find_seed_with(kind, jobs_min=2):
    for seed in range(200):
        scenario = generate_scenario(seed)
        if (
            has_task(scenario, kind)
            and len(scenario["workload"]["inline"]["jobs"]) >= jobs_min
        ):
            return scenario
    raise AssertionError(f"no seed produced a {kind} task")  # pragma: no cover


class TestShrink:
    def test_reduces_to_single_job_single_task(self):
        scenario = find_seed_with("comm")
        small, evals = shrink_scenario(
            scenario, lambda s: has_task(s, "comm")
        )
        assert has_task(small, "comm")
        jobs = small["workload"]["inline"]["jobs"]
        assert len(jobs) == 1
        phases = jobs[0]["application"]["phases"]
        assert len(phases) == 1
        assert len(phases[0]["tasks"]) == 1
        assert phases[0]["tasks"][0]["type"] == "comm"
        assert evals > 0

    def test_result_is_valid_scenario(self):
        scenario = find_seed_with("cpu")
        small, _ = shrink_scenario(scenario, lambda s: has_task(s, "cpu"))
        validate_scenario(small)

    def test_node_counts_shrink(self):
        scenario = find_seed_with("cpu")
        small, _ = shrink_scenario(scenario, lambda s: has_task(s, "cpu"))
        # Nothing in the predicate needs nodes: both the platform and the
        # surviving job should bottom out.
        assert small["platform"]["nodes"]["count"] <= 2
        assert small["workload"]["inline"]["jobs"][0]["num_nodes"] == 1

    def test_expressions_simplify_to_literals(self):
        for seed in range(200):
            scenario = generate_scenario(seed)
            text = json.dumps(scenario)
            if '" / num_nodes' in text or "iteration" in text:
                break
        small, _ = shrink_scenario(scenario, lambda s: True)
        for job in small["workload"]["inline"]["jobs"]:
            for phase in job["application"]["phases"]:
                for task in phase["tasks"]:
                    for field in ("flops", "bytes", "seconds"):
                        assert not isinstance(task.get(field), str)

    def test_failure_traces_get_dropped(self):
        for seed in range(200):
            scenario = generate_scenario(seed)
            if scenario["sim"].get("failures"):
                break
        assert scenario["sim"]["failures"]["trace"]
        small, _ = shrink_scenario(scenario, lambda s: True)
        assert "failures" not in small.get("sim", {})

    def test_eval_budget_is_respected(self):
        scenario = find_seed_with("cpu")
        calls = []

        def predicate(candidate):
            calls.append(1)
            return True

        _, evals = shrink_scenario(scenario, predicate, max_evals=5)
        assert evals == 5
        assert len(calls) == 5

    def test_rejects_candidates_that_stop_failing(self):
        scenario = find_seed_with("comm", jobs_min=2)
        original_jobs = len(scenario["workload"]["inline"]["jobs"])

        # Predicate pins the exact job count: every drop-a-job candidate
        # must be rejected, so the count survives shrinking.
        small, _ = shrink_scenario(
            scenario,
            lambda s: len(s["workload"]["inline"]["jobs"]) == original_jobs,
        )
        assert len(small["workload"]["inline"]["jobs"]) == original_jobs

    def test_original_scenario_is_not_mutated(self):
        scenario = find_seed_with("cpu")
        snapshot = json.dumps(scenario, sort_keys=True)
        shrink_scenario(scenario, lambda s: True)
        assert json.dumps(scenario, sort_keys=True) == snapshot
