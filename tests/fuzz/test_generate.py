"""Scenario generator: determinism, validity, and budget compliance."""

import json

import pytest

from repro.fuzz import FuzzBudget, generate_scenario
from repro.fuzz.generate import ALGORITHM_POOL, validate_scenario

SEEDS = range(25)


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        for seed in (0, 7, 123456):
            a = json.dumps(generate_scenario(seed), sort_keys=True)
            b = json.dumps(generate_scenario(seed), sort_keys=True)
            assert a == b

    def test_different_seeds_differ(self):
        records = {json.dumps(generate_scenario(s), sort_keys=True) for s in SEEDS}
        assert len(records) == len(SEEDS)

    def test_pinning_algorithm_keeps_rest_of_scenario(self):
        free = generate_scenario(3)
        pinned = generate_scenario(3, algorithm="fcfs")
        assert pinned["algorithm"] == "fcfs"
        assert pinned["platform"] == free["platform"]
        assert pinned["workload"] == free["workload"]
        assert pinned["sim"] == free["sim"]


class TestValidity:
    def test_scenarios_survive_their_own_validator(self):
        for seed in SEEDS:
            validate_scenario(generate_scenario(seed))

    def test_scenarios_are_canonical_campaign_data(self):
        from repro.campaign.spec import canonicalize

        for seed in SEEDS:
            canonicalize(generate_scenario(seed))

    def test_evolving_requests_are_never_blocking(self):
        # A blocking request under a scheduler that never answers it
        # suspends the job forever; the generator must not produce them.
        for seed in SEEDS:
            for job in generate_scenario(seed)["workload"]["inline"]["jobs"]:
                for phase in job["application"]["phases"]:
                    for task in phase["tasks"]:
                        if task["type"] == "evolving_request":
                            assert not task.get("blocking", False)

    def test_expressions_never_reference_job_id(self):
        # job_id in a magnitude would break the permute-jids oracle by
        # construction.
        for seed in SEEDS:
            text = json.dumps(generate_scenario(seed))
            assert "job_id" not in text


class TestBudget:
    def test_budget_caps_respected(self):
        budget = FuzzBudget(max_nodes=4, max_jobs=2, max_phases=1,
                            max_tasks_per_phase=1, max_iterations=1)
        for seed in SEEDS:
            scenario = generate_scenario(seed, budget=budget)
            assert scenario["platform"]["nodes"]["count"] <= 4
            jobs = scenario["workload"]["inline"]["jobs"]
            assert len(jobs) <= 2
            for job in jobs:
                phases = job["application"]["phases"]
                assert len(phases) <= 1
                for phase in phases:
                    assert len(phase["tasks"]) <= 1
                    assert phase.get("iterations", 1) <= 1

    def test_algorithm_pool_resolves(self):
        from repro.scheduler import get_algorithm

        for name in ALGORITHM_POOL + ["random:5"]:
            assert get_algorithm(name) is not None


def test_validator_rejects_oversubscribed_job():
    scenario = generate_scenario(0)
    scenario["workload"]["inline"]["jobs"][0].pop("min_nodes", None)
    scenario["workload"]["inline"]["jobs"][0].pop("max_nodes", None)
    scenario["workload"]["inline"]["jobs"][0]["type"] = "rigid"
    scenario["workload"]["inline"]["jobs"][0]["num_nodes"] = (
        scenario["platform"]["nodes"]["count"] + 5
    )
    with pytest.raises(ValueError):
        validate_scenario(scenario)


def test_validator_rejects_failure_outside_machine():
    scenario = generate_scenario(0)
    scenario.setdefault("sim", {})["failures"] = {
        "trace": [{"time": 1.0, "node": 999, "downtime": 5.0}]
    }
    with pytest.raises(ValueError):
        validate_scenario(scenario)
