"""Oracle stack unit tests: transforms, verdicts, and sensitivity.

The solver-mutation acceptance test lives in test_solver_mutation.py;
here each oracle is exercised on small hand-built scenarios, including
checks that the oracles *can* fail (a vacuously-green oracle is worse
than none).
"""

import json

import pytest

import repro.sharing.model as sharing_model
from repro.fuzz import OracleFailure, check_scenario, run_scenario_record
from repro.fuzz.oracles import (
    MODES,
    ORACLES,
    _first_diff,
    differential_oracle,
    invariant_oracle,
    permute_jids_oracle,
    rigid_as_malleable_oracle,
    scale_scenario,
    scale_time_oracle,
    spare_nodes_oracle,
)


def scenario_dict(algorithm="easy", **sim):
    return {
        "name": "unit",
        "algorithm": algorithm,
        "seed": 0,
        "sim": dict(sim),
        "platform": {
            "nodes": {"count": 4, "flops": 1e11},
            "network": {"topology": "star", "bandwidth": 1e10,
                        "pfs_bandwidth": 1e10, "latency": 1e-6},
            "pfs": {"read_bw": 1e10, "write_bw": 5e9},
        },
        "workload": {"inline": {"jobs": [
            {"id": 1, "type": "rigid", "submit_time": 0.0, "num_nodes": 2,
             "walltime": 500.0,
             "application": {"phases": [
                 {"tasks": [{"type": "cpu", "flops": "1e11 / num_nodes"}],
                  "iterations": 2},
                 {"tasks": [{"type": "pfs_read", "bytes": 1e8},
                            {"type": "comm", "bytes": 1e6,
                             "pattern": "alltoall"}]},
             ]}},
            {"id": 2, "type": "malleable", "submit_time": 1.5, "num_nodes": 2,
             "min_nodes": 1, "max_nodes": 4,
             "application": {"phases": [
                 {"tasks": [{"type": "cpu", "flops": 5e10,
                             "distribution": "per_node"}],
                  "iterations": 3},
             ]}},
        ]}},
    }


class TestRunScenarioRecord:
    def test_all_modes_produce_a_record(self):
        scenario = scenario_dict()
        for compiled, vectorize, array in MODES:
            record = run_scenario_record(
                scenario, compiled=compiled, vectorize=vectorize, array=array
            )
            assert record["num_jobs"] == 2
            assert record["summary"]["completed_jobs"] == 2

    def test_engine_toggles_are_restored(self):
        from repro.expressions import compiled_enabled
        from repro.sharing import array_engine_enabled

        before_array = array_engine_enabled()
        run_scenario_record(
            scenario_dict(), compiled=False, vectorize=True, array=not before_array
        )
        assert sharing_model.DEFAULT_VECTORIZE is None
        assert compiled_enabled() is True
        assert array_engine_enabled() is before_array

    def test_prefail_keeps_nodes_out_of_service(self):
        scenario = scenario_dict()
        scenario["platform"]["nodes"]["count"] = 6
        base = run_scenario_record(scenario_dict())
        wide = run_scenario_record(scenario, prefail=2)
        assert base["summary"]["makespan"] == wide["summary"]["makespan"]


class TestDifferentialOracle:
    def test_clean_engine_passes(self):
        assert differential_oracle(scenario_dict()) is None

    def test_detects_kernel_divergence(self, monkeypatch):
        # Sabotage the vector kernel outright: the oracle must notice.
        orig = sharing_model._solve_vector

        def broken(acts):
            orig(acts)
            for act in acts:
                if act.rate not in (0.0, float("inf")):
                    act.rate *= 0.5

        monkeypatch.setattr(sharing_model, "_solve_vector", broken)
        failure = differential_oracle(scenario_dict())
        assert failure is not None
        assert failure.oracle == "differential"
        assert "vectorize=True" in failure.detail


class TestInvariantOracle:
    def test_clean_run_passes(self):
        assert invariant_oracle(scenario_dict()) is None

    def test_with_failure_trace(self):
        scenario = scenario_dict(
            failures={"trace": [{"time": 2.0, "node": 0, "downtime": 10.0}]},
            requeue_on_failure=True,
            max_requeues=1,
        )
        assert invariant_oracle(scenario) is None


class TestPermuteJidsOracle:
    def test_clean_engine_passes(self):
        assert permute_jids_oracle(scenario_dict()) is None

    def test_skips_random_scheduler(self):
        assert permute_jids_oracle(scenario_dict(algorithm="random:1")) is None


class TestScaleTime:
    def test_transform_scales_time_dimensioned_fields_only(self):
        scenario = scenario_dict(
            invocation_interval=10.0,
            failures={"trace": [{"time": 2.0, "node": 1, "downtime": 8.0}]},
        )
        scaled = scale_scenario(scenario, 4)
        jobs = scaled["workload"]["inline"]["jobs"]
        assert jobs[0]["walltime"] == 2000.0
        assert jobs[1]["submit_time"] == 6.0
        assert jobs[1]["min_nodes"] == 1  # counts untouched
        cpu = jobs[0]["application"]["phases"][0]["tasks"][0]
        assert cpu["flops"] == "(1e11 / num_nodes) * 4"
        assert scaled["platform"]["network"]["latency"] == 4e-6
        assert scaled["sim"]["invocation_interval"] == 40.0
        assert scaled["sim"]["failures"]["trace"][0] == {
            "time": 8.0, "node": 1, "downtime": 32.0
        }

    def test_clean_engine_passes(self):
        assert scale_time_oracle(scenario_dict()) is None

    def test_detects_unscaled_behaviour(self, monkeypatch):
        # Emulate an engine whose walltime enforcement ignores scaling:
        # pin the scaled run's walltime below its (x4) runtime, so the
        # job gets killed there but not in the base run.
        scenario = scenario_dict()
        import repro.fuzz.oracles as oracles_mod

        def sabotaged(sc, k=4):
            scaled = scale_scenario(sc, k)
            scaled["workload"]["inline"]["jobs"][0]["walltime"] = 2.0
            return scaled

        monkeypatch.setattr(oracles_mod, "scale_scenario", sabotaged)
        failure = oracles_mod.scale_time_oracle(scenario)
        assert failure is not None and failure.oracle == "scale-time"


class TestSpareNodesOracle:
    def test_clean_engine_passes(self):
        assert spare_nodes_oracle(scenario_dict()) is None

    def test_skips_machine_size_sensitive_policies(self):
        assert spare_nodes_oracle(scenario_dict(algorithm="malleable")) is None
        assert spare_nodes_oracle(scenario_dict(algorithm="random:0")) is None


class TestRigidAsMalleableOracle:
    @pytest.mark.parametrize(
        "algorithm",
        ["fcfs", "easy", "sjf", "fairshare", "conservative", "moldable",
         "adaptive-moldable", "malleable"],
    )
    def test_clean_engine_passes(self, algorithm):
        assert rigid_as_malleable_oracle(scenario_dict(algorithm)) is None

    def test_skips_scenarios_without_rigid_jobs(self):
        scenario = scenario_dict()
        for job in scenario["workload"]["inline"]["jobs"]:
            if job["type"] == "rigid":
                job["type"] = "moldable"
                job["min_nodes"] = job["max_nodes"] = job["num_nodes"]
        assert rigid_as_malleable_oracle(scenario) is None


class TestCheckScenario:
    def test_clean_scenario_runs_all_oracles(self):
        assert check_scenario(scenario_dict()) == []

    def test_crash_short_circuits(self):
        scenario = scenario_dict()
        # Unresolvable workload: rigid job larger than the machine is
        # rejected at construction -> a "crash" verdict, reported once.
        scenario["workload"]["inline"]["jobs"][0]["num_nodes"] = 64
        failures = check_scenario(scenario)
        assert len(failures) == 1
        assert failures[0].oracle == "crash"

    def test_oracle_subset_is_honoured(self, monkeypatch):
        calls = []
        monkeypatch.setitem(
            ORACLES, "differential", lambda s: calls.append("d") or None
        )
        monkeypatch.setitem(
            ORACLES, "invariant", lambda s: calls.append("i") or None
        )
        check_scenario(scenario_dict(), ["invariant"])
        assert calls == ["i"]

    def test_oracle_crash_becomes_failure(self, monkeypatch):
        def boom(scenario):
            raise RuntimeError("oracle exploded")

        monkeypatch.setitem(ORACLES, "differential", boom)
        failures = check_scenario(scenario_dict(), ["differential"])
        assert failures == [
            OracleFailure("differential", "RuntimeError: oracle exploded")
        ]


def test_first_diff_points_at_divergence():
    a = {"summary": {"makespan": 1.0, "mean_wait": 0.5}, "events": 7}
    b = {"summary": {"makespan": 1.0, "mean_wait": 0.75}, "events": 7}
    assert _first_diff(a, b) == ".summary.mean_wait: 0.5 != 0.75"


def test_oracle_failure_round_trips_through_json():
    failure = OracleFailure("differential", "detail text")
    blob = json.dumps({"oracle": failure.oracle, "detail": failure.detail})
    assert json.loads(blob)["oracle"] == "differential"
