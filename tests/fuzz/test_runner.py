"""Fuzz driver: report shape, seed derivation, and reproducer artifacts."""

import json

import pytest

from repro.campaign import derive_seed, expand_campaign
from repro.fuzz import (
    FuzzFailure,
    OracleFailure,
    fuzz_run,
    replay_scenario,
    generate_scenario,
    write_reproducer,
)
from repro.fuzz.runner import FuzzReport


class TestFuzzRun:
    def test_clean_sweep_reports_ok(self):
        report = fuzz_run(0, 3, oracles=["invariant"])
        assert report.ok
        assert report.cases == 3
        assert report.as_dict()["failures"] == []

    def test_pinned_algorithms_multiply_cases(self):
        report = fuzz_run(0, 2, algorithms=["fcfs", "easy"],
                          oracles=["invariant"])
        assert report.cases == 4
        assert report.algorithms == ["fcfs", "easy"]

    def test_case_seeds_are_derived_not_sequential(self):
        # Replaying one case must not require replaying the sweep.
        report = fuzz_run(0, 2, oracles=["invariant"])
        assert report.ok
        assert derive_seed(0, "fuzz", 0) != 0

    def test_failures_are_collected_with_scenario(self, monkeypatch):
        import repro.fuzz.runner as runner_mod

        def always_fails(scenario, oracles):
            return [OracleFailure("invariant", "synthetic")]

        monkeypatch.setattr(runner_mod, "check_scenario", always_fails)
        report = fuzz_run(0, 2, oracles=["invariant"])
        assert not report.ok
        assert len(report.failures) == 2
        failure = report.failures[0]
        assert failure.scenario["workload"]["inline"]["jobs"]
        assert failure.failures[0].detail == "synthetic"
        blob = json.dumps(report.as_dict(), sort_keys=True)
        assert "synthetic" in blob

    def test_max_failures_stops_early(self, monkeypatch):
        import repro.fuzz.runner as runner_mod

        checked = []

        def always_fails(scenario, oracles):
            checked.append(scenario["seed"])
            return [OracleFailure("invariant", "synthetic")]

        monkeypatch.setattr(runner_mod, "check_scenario", always_fails)
        report = fuzz_run(0, 50, max_failures=2, oracles=["invariant"])
        assert len(report.failures) == 2
        assert len(checked) == 2

    def test_progress_callback(self):
        seen = []
        fuzz_run(
            0, 2, oracles=["invariant"],
            progress=lambda done, total, rep: seen.append((done, total)),
        )
        assert seen == [(1, 2), (2, 2)]


class TestReplay:
    def test_replays_raw_scenario_dict(self):
        assert replay_scenario(generate_scenario(1), oracles=["invariant"]) == []

    def test_replays_record_with_its_own_oracles(self, tmp_path, monkeypatch):
        calls = []
        import repro.fuzz.runner as runner_mod

        monkeypatch.setattr(
            runner_mod, "check_scenario",
            lambda scenario, oracles: calls.append(list(oracles or [])) or [],
        )
        record = {"scenario": generate_scenario(1), "oracles": ["invariant"]}
        path = tmp_path / "rec.json"
        path.write_text(json.dumps(record))
        assert replay_scenario(path) == []
        assert calls == [["invariant"]]


class TestWriteReproducer:
    @pytest.fixture()
    def written(self, tmp_path):
        scenario = generate_scenario(5, algorithm="easy")
        failures = [OracleFailure("differential", "details here")]
        return scenario, write_reproducer(scenario, failures, tmp_path)

    def test_record_is_replayable(self, written):
        scenario, paths = written
        record = json.loads(paths["record"].read_text())
        assert record["scenario"] == scenario
        assert record["oracles"] == ["differential"]
        assert replay_scenario(paths["record"]) == []

    def test_campaign_spec_expands(self, written):
        scenario, paths = written
        campaign = json.loads(paths["campaign"].read_text())
        specs = expand_campaign(campaign)
        assert len(specs) == 1
        assert specs[0].algorithm == "easy"

    def test_pytest_snippet_compiles_and_embeds_scenario(self, written):
        scenario, paths = written
        source = paths["test"].read_text()
        compile(source, str(paths["test"]), "exec")
        assert json.dumps(scenario, indent=2, sort_keys=True) in source
        assert "check_scenario" in source

    def test_crash_failures_fall_back_to_full_oracle_stack(self, tmp_path):
        scenario = generate_scenario(5)
        paths = write_reproducer(
            scenario, [OracleFailure("crash", "boom")], tmp_path
        )
        source = paths["test"].read_text()
        assert "differential" in source  # replays real oracles, not "crash"


def test_fuzz_failure_as_dict_round_trips():
    failure = FuzzFailure(
        seed=9, algorithm="fcfs", scenario={"name": "x"},
        failures=[OracleFailure("invariant", "d")],
    )
    data = json.loads(json.dumps(failure.as_dict()))
    assert data["seed"] == 9
    assert data["failures"][0]["oracle"] == "invariant"


def test_report_as_dict_shape():
    report = FuzzReport(base_seed=1, count=2, algorithms=None,
                        oracles=["invariant"])
    data = report.as_dict()
    assert data == {
        "base_seed": 1, "count": 2, "algorithms": None,
        "oracles": ["invariant"], "cases": 0, "ok": True, "failures": [],
    }
