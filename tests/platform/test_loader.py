"""Tests for the JSON platform loader and the Platform aggregate."""

import json

import pytest

from repro.platform import Platform, PlatformError, load_platform, platform_from_dict
from repro.platform import Node, StarTopology


BASE_SPEC = {
    "name": "test-cluster",
    "nodes": {"count": 8, "flops": 1e12, "cores": 4},
    "network": {"topology": "star", "bandwidth": 10e9, "latency": 1e-6},
    "pfs": {"read_bw": 50e9, "write_bw": 40e9},
}


class TestPlatformFromDict:
    def test_basic_star_platform(self):
        p = platform_from_dict(BASE_SPEC)
        assert p.name == "test-cluster"
        assert p.num_nodes == 8
        assert p.total_flops == 8e12
        assert p.pfs is not None
        assert p.pfs.read.capacity == 50e9

    def test_burst_buffers_per_node(self):
        spec = dict(BASE_SPEC)
        spec["burst_buffer"] = {"read_bw": 5e9, "write_bw": 2e9, "capacity": 1e12}
        p = platform_from_dict(spec)
        assert all(n.bb is not None for n in p.nodes)
        assert p.nodes[0].bb.capacity == 1e12
        assert p.nodes[0].bb is not p.nodes[1].bb

    def test_pfs_optional(self):
        spec = {k: v for k, v in BASE_SPEC.items() if k != "pfs"}
        p = platform_from_dict(spec)
        assert p.pfs is None
        with pytest.raises(PlatformError, match="no PFS"):
            p.route_to_pfs(0)

    def test_missing_nodes_key(self):
        with pytest.raises(PlatformError, match="nodes"):
            platform_from_dict({"network": BASE_SPEC["network"]})

    def test_bad_count(self):
        spec = dict(BASE_SPEC)
        spec["nodes"] = {"count": 0, "flops": 1e12}
        with pytest.raises(PlatformError, match="count"):
            platform_from_dict(spec)

    def test_bad_flops(self):
        spec = dict(BASE_SPEC)
        spec["nodes"] = {"count": 4, "flops": -1}
        with pytest.raises(PlatformError, match="flops"):
            platform_from_dict(spec)

    def test_unknown_topology(self):
        spec = dict(BASE_SPEC)
        spec["network"] = {"topology": "hypercube", "bandwidth": 1e9}
        with pytest.raises(PlatformError, match="Unknown topology"):
            platform_from_dict(spec)

    def test_fat_tree_topology(self):
        spec = dict(BASE_SPEC)
        spec["network"] = {"topology": "fat_tree", "bandwidth": 1e9, "arity": 4}
        p = platform_from_dict(spec)
        assert p.route(0, 5).resources

    def test_torus_dims_must_match_count(self):
        spec = dict(BASE_SPEC)
        spec["network"] = {"topology": "torus", "bandwidth": 1e9, "dims": [3, 3]}
        with pytest.raises(PlatformError, match="torus dims"):
            platform_from_dict(spec)

    def test_torus_valid(self):
        spec = dict(BASE_SPEC)
        spec["network"] = {"topology": "torus", "bandwidth": 1e9, "dims": [2, 4]}
        p = platform_from_dict(spec)
        assert p.num_nodes == 8

    def test_dragonfly_shape_mismatch(self):
        spec = dict(BASE_SPEC)
        spec["network"] = {
            "topology": "dragonfly",
            "bandwidth": 1e9,
            "groups": 2,
            "routers_per_group": 2,
            "nodes_per_router": 3,
        }
        with pytest.raises(PlatformError, match="dragonfly shape"):
            platform_from_dict(spec)

    def test_non_dict_spec(self):
        with pytest.raises(PlatformError):
            platform_from_dict([1, 2, 3])  # type: ignore[arg-type]


class TestLoadPlatform:
    def test_load_from_file(self, tmp_path):
        path = tmp_path / "platform.json"
        path.write_text(json.dumps(BASE_SPEC))
        p = load_platform(path)
        assert p.num_nodes == 8

    def test_missing_file(self, tmp_path):
        with pytest.raises(PlatformError, match="not found"):
            load_platform(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(PlatformError, match="Invalid JSON"):
            load_platform(path)


class TestPlatformAggregate:
    def test_dense_indices_enforced(self):
        topo = StarTopology(2, bandwidth=1e9)
        nodes = [Node(0, 1e9), Node(5, 1e9)]
        with pytest.raises(PlatformError, match="dense"):
            Platform(nodes, topo)

    def test_empty_platform_rejected(self):
        topo = StarTopology(1, bandwidth=1e9)
        with pytest.raises(PlatformError):
            Platform([], topo)

    def test_free_nodes_and_utilization(self):
        p = platform_from_dict(BASE_SPEC)
        assert p.num_free_nodes() == 8
        assert p.utilization() == 0.0
        p.nodes[0].allocate("job")
        p.nodes[1].allocate("job")
        assert p.num_free_nodes() == 6
        assert p.utilization() == pytest.approx(0.25)
        assert [n.index for n in p.free_nodes()] == [2, 3, 4, 5, 6, 7]
