"""Tests for nodes, burst buffers, and the PFS."""

import pytest

from repro.platform import BurstBuffer, Node, Pfs, PlatformError


class TestNode:
    def test_defaults(self):
        n = Node(3, 1e12)
        assert n.name == "node0003"
        assert n.free
        assert n.cpu.capacity == 1e12

    def test_validation(self):
        with pytest.raises(PlatformError):
            Node(0, 0)
        with pytest.raises(PlatformError):
            Node(0, 1e9, cores=0)

    def test_allocate_deallocate_cycle(self):
        n = Node(0, 1e9)
        n.allocate("job-a")
        assert not n.free
        assert n.assigned_job == "job-a"
        n.deallocate()
        assert n.free
        assert n.assigned_job is None

    def test_double_allocation_raises(self):
        n = Node(0, 1e9)
        n.allocate("job-a")
        with pytest.raises(PlatformError, match="already allocated"):
            n.allocate("job-b")

    def test_deallocate_free_node_raises(self):
        n = Node(0, 1e9)
        with pytest.raises(PlatformError):
            n.deallocate()


class TestBurstBuffer:
    def test_validation(self):
        with pytest.raises(PlatformError):
            BurstBuffer("bb", read_bw=0, write_bw=1)
        with pytest.raises(PlatformError):
            BurstBuffer("bb", read_bw=1, write_bw=1, capacity=0)

    def test_charge_and_release(self):
        bb = BurstBuffer("bb", read_bw=1e9, write_bw=1e9, capacity=100.0)
        bb.charge(60)
        assert bb.used == 60
        assert bb.available == 40
        bb.release(20)
        assert bb.used == 40

    def test_overflow_raises(self):
        bb = BurstBuffer("bb", read_bw=1e9, write_bw=1e9, capacity=100.0)
        bb.charge(80)
        with pytest.raises(PlatformError, match="overflow"):
            bb.charge(30)

    def test_release_clamps_at_zero(self):
        bb = BurstBuffer("bb", read_bw=1e9, write_bw=1e9, capacity=100.0)
        bb.charge(10)
        bb.release(50)
        assert bb.used == 0

    def test_negative_amounts_rejected(self):
        bb = BurstBuffer("bb", read_bw=1e9, write_bw=1e9)
        with pytest.raises(PlatformError):
            bb.charge(-1)
        with pytest.raises(PlatformError):
            bb.release(-1)


class TestPfs:
    def test_resources_named_and_sized(self):
        pfs = Pfs(read_bw=100e9, write_bw=80e9)
        assert pfs.read.capacity == 100e9
        assert pfs.write.capacity == 80e9

    def test_validation(self):
        with pytest.raises(PlatformError):
            Pfs(read_bw=0, write_bw=1)
