"""Property tests for topology routing."""

from hypothesis import given, settings, strategies as st

from repro.platform import StarTopology, build_dragonfly, build_fat_tree, build_torus
from repro.platform.topology import PFS


@given(
    st.integers(min_value=1, max_value=64),
    st.floats(min_value=1e6, max_value=1e12),
)
@settings(max_examples=50, deadline=None)
def test_property_star_all_pairs_routable(num_nodes, bandwidth):
    topo = StarTopology(num_nodes, bandwidth=bandwidth)
    for src in range(0, num_nodes, max(1, num_nodes // 5)):
        for dst in range(0, num_nodes, max(1, num_nodes // 5)):
            route = topo.route(src, dst)
            if src == dst:
                assert route.resources == ()
            else:
                assert len(route.resources) == 2
        assert topo.route(src, PFS).resources


@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_property_fat_tree_all_pairs_routable(num_nodes, arity):
    topo = build_fat_tree(num_nodes, arity=arity, leaf_bandwidth=1e9)
    step = max(1, num_nodes // 4)
    for src in range(0, num_nodes, step):
        for dst in range(0, num_nodes, step):
            route = topo.route(src, dst)
            if src != dst:
                assert route.resources
                # Node-leaf(-spine-leaf)-node: 2 or 4 hops.
                assert len(route.resources) in (2, 4)
        assert topo.route(src, PFS).resources


@given(
    st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=3),
)
@settings(max_examples=50, deadline=None)
def test_property_torus_symmetric_hop_counts(dims):
    topo = build_torus(tuple(dims), bandwidth=1e9)
    n = 1
    for d in dims:
        n *= d
    for src in range(0, n, max(1, n // 4)):
        for dst in range(0, n, max(1, n // 4)):
            fwd = topo.route(src, dst)
            rev = topo.route(dst, src)
            assert len(fwd.resources) == len(rev.resources)


@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=30, deadline=None)
def test_property_dragonfly_all_reachable(groups, routers, per_router):
    topo = build_dragonfly(groups, routers, per_router, node_bandwidth=1e9)
    n = groups * routers * per_router
    for src in range(n):
        assert topo.route(src, PFS).resources
        route = topo.route(src, (src + 1) % n)
        if n > 1:
            assert route.resources
