"""The platform's incremental free/allocated indices vs a brute-force scan.

``Platform.free_nodes()`` used to scan all nodes per call; it now maintains
sorted indices updated from node state transitions.  These tests drive
random allocate/deallocate/fail/repair sequences and assert the indices
always match what a full scan would report.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.platform import Node, Platform, PlatformError
from repro.platform.topology import StarTopology


def _platform(num_nodes: int) -> Platform:
    nodes = [Node(i, 1e12) for i in range(num_nodes)]
    return Platform(nodes, StarTopology(num_nodes, bandwidth=1e10, latency=1e-6))


def _check_consistency(platform: Platform) -> None:
    scan_free = [n for n in platform.nodes if n.free]
    assert platform.free_nodes() == scan_free
    assert platform.num_free_nodes() == len(scan_free)
    assert platform.num_allocated_nodes() == sum(
        1 for n in platform.nodes if n.assigned_job is not None
    )


def test_initial_pool_is_all_nodes():
    platform = _platform(8)
    _check_consistency(platform)
    assert platform.num_free_nodes() == 8


def test_allocate_and_fail_interact():
    platform = _platform(4)
    job = object()
    node = platform.nodes[1]
    node.allocate(job)
    _check_consistency(platform)
    # Failing an allocated node: stays allocated, stays out of free pool.
    node.fail()
    _check_consistency(platform)
    node.deallocate()
    _check_consistency(platform)
    assert node.index not in [n.index for n in platform.free_nodes()]
    node.repair()
    _check_consistency(platform)
    assert node.index in [n.index for n in platform.free_nodes()]


def test_double_allocate_keeps_indices_exact():
    platform = _platform(2)
    platform.nodes[0].allocate(object())
    with pytest.raises(PlatformError):
        platform.nodes[0].allocate(object())
    _check_consistency(platform)


@settings(max_examples=80, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["allocate", "deallocate", "fail", "repair"]),
            st.integers(min_value=0, max_value=9),
        ),
        max_size=60,
    )
)
def test_random_transitions_match_brute_force(ops):
    platform = _platform(10)
    job = object()
    for op, index in ops:
        node = platform.nodes[index]
        if op == "allocate" and node.state.value == "free":
            node.allocate(job)
        elif op == "deallocate" and node.state.value == "allocated":
            node.deallocate()
        elif op == "fail":
            node.fail()
        elif op == "repair":
            node.repair()
        _check_consistency(platform)
