"""Tests for routing over star, fat-tree, torus, and dragonfly topologies."""

import pytest

from repro.platform import (
    GraphTopology,
    Link,
    Node,
    PlatformError,
    StarTopology,
    build_dragonfly,
    build_fat_tree,
    build_torus,
)
from repro.platform.topology import PFS


class TestLink:
    def test_validation(self):
        with pytest.raises(PlatformError):
            Link("l", bandwidth=0)
        with pytest.raises(PlatformError):
            Link("l", bandwidth=1, latency=-1)

    def test_bandwidth_property(self):
        assert Link("l", bandwidth=5e9).bandwidth == 5e9


class TestStarTopology:
    def test_node_to_node_route_crosses_two_links(self):
        topo = StarTopology(4, bandwidth=1e9, latency=1e-6)
        route = topo.route(0, 3)
        assert len(route.resources) == 2
        assert route.latency == pytest.approx(2e-6)
        names = [r.name for r in route.resources]
        assert names == ["node0000.up", "node0003.down"]

    def test_loopback_route_is_empty(self):
        topo = StarTopology(4, bandwidth=1e9)
        route = topo.route(2, 2)
        assert route.resources == ()
        assert route.latency == 0.0

    def test_pfs_routes(self):
        topo = StarTopology(4, bandwidth=1e9, pfs_bandwidth=10e9)
        to_pfs = topo.route(1, PFS)
        from_pfs = topo.route(PFS, 1)
        assert [r.name for r in to_pfs.resources] == ["node0001.up", "pfs.link.in"]
        assert [r.name for r in from_pfs.resources] == ["pfs.link.out", "node0001.down"]
        assert to_pfs.resources[1].capacity == 10e9

    def test_out_of_range_raises(self):
        topo = StarTopology(4, bandwidth=1e9)
        with pytest.raises(PlatformError):
            topo.route(0, 7)

    def test_attach_nodes_sets_nics(self):
        topo = StarTopology(2, bandwidth=1e9)
        nodes = [Node(0, 1e9), Node(1, 1e9)]
        topo.attach_nodes(nodes)
        assert nodes[0].up.name == "node0000.up"
        assert nodes[1].down.name == "node0001.down"

    def test_attach_wrong_count_raises(self):
        topo = StarTopology(2, bandwidth=1e9)
        with pytest.raises(PlatformError):
            topo.attach_nodes([Node(0, 1e9)])


class TestFatTree:
    def test_same_leaf_route_avoids_spine(self):
        topo = build_fat_tree(16, arity=4, leaf_bandwidth=1e9)
        route = topo.route(0, 1)  # both under leaf 0
        names = [r.name for r in route.resources]
        assert len(names) == 2
        assert all("spine" not in n for n in names)

    def test_cross_leaf_route_crosses_spine(self):
        topo = build_fat_tree(16, arity=4, leaf_bandwidth=1e9)
        route = topo.route(0, 5)  # leaf 0 → leaf 1
        names = [r.name for r in route.resources]
        assert len(names) == 4
        assert any("spine" in n for n in names)

    def test_pfs_reachable(self):
        topo = build_fat_tree(8, arity=4, leaf_bandwidth=1e9)
        route = topo.route(3, PFS)
        assert route.resources  # non-empty

    def test_route_caching_returns_same_object(self):
        topo = build_fat_tree(8, arity=4, leaf_bandwidth=1e9)
        assert topo.route(0, 5) is topo.route(0, 5)

    def test_default_spine_is_full_bisection(self):
        topo = build_fat_tree(8, arity=4, leaf_bandwidth=1e9)
        route = topo.route(0, 5)
        spine_links = [r for r in route.resources if "spine" in r.name]
        assert all(r.capacity == 4e9 for r in spine_links)


class TestTorus:
    def test_ring_neighbours_one_hop(self):
        topo = build_torus((4,), bandwidth=1e9)
        assert len(topo.route(0, 1).resources) == 1

    def test_ring_wraparound(self):
        topo = build_torus((4,), bandwidth=1e9)
        assert len(topo.route(0, 3).resources) == 1  # wrap link

    def test_2d_torus_diagonal(self):
        topo = build_torus((3, 3), bandwidth=1e9)
        assert len(topo.route(0, 4).resources) == 2  # (0,0) → (1,1)

    def test_invalid_dims(self):
        with pytest.raises(PlatformError):
            build_torus((), bandwidth=1e9)
        with pytest.raises(PlatformError):
            build_torus((0, 2), bandwidth=1e9)

    def test_pfs_attached(self):
        topo = build_torus((2, 2), bandwidth=1e9)
        assert topo.route(3, PFS).resources


class TestDragonfly:
    def test_shape_and_local_route(self):
        topo = build_dragonfly(2, 2, 2, node_bandwidth=1e9)
        assert topo.num_nodes == 8
        # Same router: node0, node1 → 2 hops (node-router, router-node).
        assert len(topo.route(0, 1).resources) == 2

    def test_cross_group_route_uses_global_link(self):
        topo = build_dragonfly(2, 2, 2, node_bandwidth=1e9)
        route = topo.route(0, 7)
        names = [r.name for r in route.resources]
        assert any(n.startswith("global") for n in names)

    def test_invalid_parameters(self):
        with pytest.raises(PlatformError):
            build_dragonfly(0, 1, 1, node_bandwidth=1e9)


class TestGraphTopologyValidation:
    def test_edge_without_link_rejected(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(("node", 0), "spine")
        with pytest.raises(PlatformError, match="lacks a Link"):
            GraphTopology(g, 1)

    def test_missing_node_vertex_rejected(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(("node", 0), "x", link=Link("l", 1e9))
        with pytest.raises(PlatformError, match="lacks vertex"):
            GraphTopology(g, 2)

    def test_no_pfs_vertex(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(("node", 0), ("node", 1), link=Link("l", 1e9))
        topo = GraphTopology(g, 2)
        with pytest.raises(PlatformError, match="no 'pfs'"):
            topo.route(0, PFS)

    def test_disconnected_raises(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(("node", 0), "s1", link=Link("a", 1e9))
        g.add_node(("node", 1))
        topo = GraphTopology(g, 2)
        with pytest.raises(PlatformError, match="No route"):
            topo.route(0, 1)
