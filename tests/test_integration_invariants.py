"""System-level invariants over heavy mixed workloads.

These tests run substantial simulations (all job types, I/O, comm,
walltime kills, reconfigurations) and then audit the recorded history for
properties that must hold regardless of policy:

* a node is never committed to two jobs at once,
* allocation counts never exceed the machine or go negative,
* every job reaches a terminal state exactly once, timestamps are sane,
* malleable allocations always stay within [min_nodes, max_nodes].
"""

import pytest

from repro import Simulation, platform_from_dict
from repro.job import JobState, JobType
from repro.workload import WorkloadSpec, generate_workload


def heavy_platform():
    return platform_from_dict(
        {
            "name": "invariant-test",
            "nodes": {"count": 48, "flops": 1e12},
            "network": {
                "topology": "star",
                "bandwidth": 10e9,
                "latency": 1e-6,
                "pfs_bandwidth": 1e11,
            },
            "pfs": {"read_bw": 5e10, "write_bw": 4e10},
        }
    )


def heavy_workload(seed):
    return generate_workload(
        WorkloadSpec(
            num_jobs=40,
            mean_interarrival=8.0,
            max_request=32,
            mean_runtime=60.0,
            runtime_sigma=0.7,
            malleable_fraction=0.4,
            moldable_fraction=0.2,
            evolving_fraction=0.1,
            comm_bytes=5e6,
            input_bytes_per_flop=5e-5,
            output_bytes_per_flop=5e-5,
            data_per_node=5e8,
            walltime_slack=4.0,
        ),
        seed=seed,
    )


@pytest.fixture(scope="module", params=["easy", "malleable", "moldable"])
def completed_run(request):
    platform = heavy_platform()
    jobs = heavy_workload(seed=17)
    monitor = Simulation(platform, jobs, algorithm=request.param).run()
    return platform, jobs, monitor


class TestNodeExclusivity:
    def test_no_node_held_by_two_jobs_at_once(self, completed_run):
        platform, jobs, monitor = completed_run
        per_node = {}
        for job in jobs:
            for seg in monitor.segments(job.jid):
                end = seg.end if seg.end is not None else monitor.makespan()
                for idx in seg.node_indices:
                    per_node.setdefault(idx, []).append((seg.start, end, job.jid))
        for idx, intervals in per_node.items():
            intervals.sort()
            for (s1, e1, j1), (s2, e2, j2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-9, (
                    f"node {idx}: jobs {j1} and {j2} overlap "
                    f"([{s1},{e1}] vs [{s2},{e2}])"
                )

    def test_all_nodes_free_at_end(self, completed_run):
        platform, _, _ = completed_run
        assert platform.num_free_nodes() == platform.num_nodes


class TestAllocationSeries:
    def test_series_within_machine_bounds(self, completed_run):
        platform, _, monitor = completed_run
        for _, count in monitor.allocation_series:
            assert 0 <= count <= platform.num_nodes

    def test_series_time_monotone(self, completed_run):
        _, _, monitor = completed_run
        times = [t for t, _ in monitor.allocation_series]
        assert times == sorted(times)

    def test_utilization_never_exceeds_one(self, completed_run):
        _, _, monitor = completed_run
        for _, frac in monitor.utilization_timeline():
            assert 0.0 <= frac <= 1.0 + 1e-9


class TestJobLifecycles:
    def test_every_job_terminal(self, completed_run):
        _, jobs, _ = completed_run
        for job in jobs:
            assert job.state in (JobState.COMPLETED, JobState.KILLED)
            assert job.end_time is not None

    def test_timestamps_ordered(self, completed_run):
        _, jobs, _ = completed_run
        for job in jobs:
            if job.start_time is None:
                continue  # killed while queued
            assert job.submit_time <= job.start_time <= job.end_time

    def test_allocations_within_bounds(self, completed_run):
        _, jobs, monitor = completed_run
        for job in jobs:
            for seg in monitor.segments(job.jid):
                assert job.min_nodes <= len(seg.node_indices) <= job.max_nodes

    def test_rigid_jobs_never_resized(self, completed_run):
        _, jobs, monitor = completed_run
        for job in jobs:
            if job.type is not JobType.RIGID:
                continue
            sizes = {len(s.node_indices) for s in monitor.segments(job.jid)}
            assert sizes <= {job.num_nodes}
            assert job.reconfigurations_applied == 0

    def test_killed_jobs_respected_walltime(self, completed_run):
        _, jobs, _ = completed_run
        for job in jobs:
            if job.state is JobState.KILLED and job.kill_reason == "walltime":
                assert job.runtime == pytest.approx(job.walltime, rel=1e-6)

    def test_event_log_consistent_with_states(self, completed_run):
        _, jobs, monitor = completed_run
        kinds_by_job = {}
        for _, kind, jid, _ in monitor.events:
            kinds_by_job.setdefault(jid, []).append(kind)
        for job in jobs:
            kinds = kinds_by_job[job.jid]
            assert kinds[0] == "submit"
            terminal = "complete" if job.state is JobState.COMPLETED else "kill"
            assert kinds[-1] == terminal


class TestCrossPolicyConsistency:
    def test_total_work_independent_of_policy(self):
        """Completed jobs' summed compute time x width is policy-invariant
        modulo malleability (sanity: no policy loses or duplicates jobs)."""
        counts = {}
        for algorithm in ("fcfs", "easy", "malleable"):
            platform = heavy_platform()
            jobs = heavy_workload(seed=23)
            Simulation(platform, jobs, algorithm=algorithm).run()
            counts[algorithm] = sum(1 for j in jobs if j.state is JobState.COMPLETED)
        # All policies run the same workload; completion counts may differ
        # slightly via walltime kills but every job must be accounted for.
        assert all(0 < c <= 40 for c in counts.values())
