"""Smoke tests: the fast examples must run end to end.

The two heavyweight examples (malleable_vs_rigid, swf_replay) are exercised
by the benchmark suite's equivalent experiments instead — keeping the unit
suite quick.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "io_checkpointing.py",
    "custom_algorithm.py",
    "evolving_jobs.py",
    "hybrid_corridor.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # produced a report


def test_quickstart_reports_all_jobs(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "makespan" in out
    assert "job20" in out


def test_hybrid_corridor_reports_headline(capsys):
    runpy.run_path(str(EXAMPLES / "hybrid_corridor.py"), run_name="__main__")
    out = capsys.readouterr().out
    # The script itself asserts the <= 25% response-time headline; the
    # smoke checks both policies and the corridor verdicts made it out.
    assert "hybrid-corridor" in out
    assert "EXCEEDED" in out  # fcfs ignores the corridor...
    assert "held" in out      # ...hybrid-corridor never crosses it


def test_custom_algorithm_compares_three_policies(capsys):
    runpy.run_path(str(EXAMPLES / "custom_algorithm.py"), run_name="__main__")
    out = capsys.readouterr().out
    for name in ("fcfs", "easy", "smallest-first"):
        assert name in out


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 6
    for script in scripts:
        text = script.read_text()
        assert text.startswith("#!/usr/bin/env python"), script.name
        assert '"""' in text.split("\n", 2)[1], f"{script.name} lacks a docstring"
