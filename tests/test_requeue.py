"""Tests for automatic requeue of failure-killed jobs."""

import pytest

from repro import Simulation
from repro.failures import Failure
from repro.job import JobState

from tests.batch.conftest import make_job


class TestRequeue:
    def test_failure_killed_job_is_resubmitted_and_completes(self, platform):
        job = make_job(1, total_flops=80e9, num_nodes=8)  # 10 s
        sim = Simulation(
            platform,
            [job],
            algorithm="fcfs",
            failures=[Failure(time=3.0, node_index=0, downtime=2.0)],
            requeue_on_failure=True,
        )
        sim.run()
        assert job.state is JobState.KILLED
        clones = [j for j in sim.batch.jobs if j.origin_jid == 1]
        assert len(clones) == 1
        clone = clones[0]
        assert clone.state is JobState.COMPLETED
        assert clone.attempt == 2
        assert clone.name == "job1.r2"
        # Resubmitted at the kill instant, started after the repair (t=5).
        assert clone.submit_time == pytest.approx(3.0)
        assert clone.start_time == pytest.approx(5.0)

    def test_walltime_kill_not_requeued(self, platform):
        job = make_job(1, total_flops=80e9, num_nodes=8, walltime=1.0)
        sim = Simulation(
            platform, [job], algorithm="fcfs", requeue_on_failure=True
        )
        sim.run()
        assert job.state is JobState.KILLED
        assert job.kill_reason == "walltime"
        assert len(sim.batch.jobs) == 1  # no clone

    def test_requeue_disabled_by_default(self, platform):
        job = make_job(1, total_flops=80e9, num_nodes=8)
        sim = Simulation(
            platform,
            [job],
            algorithm="fcfs",
            failures=[Failure(time=3.0, node_index=0, downtime=2.0)],
        )
        sim.run()
        assert len(sim.batch.jobs) == 1

    def test_max_requeues_bounds_retries(self, platform):
        # Node 0 fails every 2 s forever: the job can never finish its
        # 10 s runtime, and retries must stop at max_requeues.
        failures = [
            Failure(time=2.0 + 3.0 * k, node_index=0, downtime=1.0)
            for k in range(20)
        ]
        job = make_job(1, total_flops=80e9, num_nodes=8)
        sim = Simulation(
            platform,
            [job],
            algorithm="fcfs",
            failures=failures,
            requeue_on_failure=True,
            max_requeues=2,
        )
        sim.run()
        attempts = sorted(j.attempt for j in sim.batch.jobs)
        assert attempts == [1, 2, 3]  # original + 2 retries
        assert all(j.state is JobState.KILLED for j in sim.batch.jobs)

    def test_retry_succeeds_after_node_returns(self, platform):
        # Single failure: retry runs cleanly to completion; total
        # completed work is preserved.
        jobs = [
            make_job(1, total_flops=16e9, num_nodes=8),  # dies at t=1
            make_job(2, total_flops=8e9, num_nodes=4, submit_time=10.0),
        ]
        sim = Simulation(
            platform,
            jobs,
            algorithm="easy",
            failures=[Failure(time=1.0, node_index=3, downtime=1.0)],
            requeue_on_failure=True,
        )
        sim.run()
        states = {j.name: j.state for j in sim.batch.jobs}
        assert states["job1"] is JobState.KILLED
        assert states["job1.r2"] is JobState.COMPLETED
        assert states["job2"] is JobState.COMPLETED

    def test_monitor_counts_clone_as_separate_job(self, platform):
        job = make_job(1, total_flops=80e9, num_nodes=8)
        sim = Simulation(
            platform,
            [job],
            algorithm="fcfs",
            failures=[Failure(time=3.0, node_index=0, downtime=2.0)],
            requeue_on_failure=True,
        )
        monitor = sim.run()
        records = monitor.job_records()
        assert len(records) == 2
        summary = monitor.summary()
        assert summary.completed_jobs == 1
        assert summary.killed_jobs == 1
