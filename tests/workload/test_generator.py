"""Tests for the synthetic workload generator."""

import pytest

from repro.application import CommTask, CpuTask, PfsReadTask, PfsWriteTask
from repro.job import JobType
from repro.workload import WorkloadSpec, generate_workload, iterative_application


class TestIterativeApplication:
    def test_minimal_compute_only(self):
        app = iterative_application(total_flops=1e12, iterations=5)
        assert len(app.phases) == 1
        assert app.phases[0].num_iterations({}) == 5
        assert isinstance(app.phases[0].tasks[0], CpuTask)

    def test_io_phases_added_when_requested(self):
        app = iterative_application(
            total_flops=1e12,
            input_bytes=1e9,
            output_bytes=2e9,
        )
        assert [p.name for p in app.phases] == ["input", "solve", "output"]
        assert isinstance(app.phases[0].tasks[0], PfsReadTask)
        assert isinstance(app.phases[2].tasks[0], PfsWriteTask)

    def test_comm_task_included(self):
        app = iterative_application(total_flops=1e12, comm_bytes_per_msg=1e6)
        kinds = [type(t) for t in app.phases[0].tasks]
        assert CommTask in kinds

    def test_checkpoint_expression_periodic(self):
        app = iterative_application(
            total_flops=1e12,
            iterations=10,
            checkpoint_bytes=1e9,
            checkpoint_every=5,
        )
        ckpt = app.phases[0].tasks[-1]
        # Fires on iterations 4 and 9 (0-based, every 5th).
        assert ckpt.bytes_per_node({"iteration": 4}, 1) == 1e9
        assert ckpt.bytes_per_node({"iteration": 3}, 1) == 0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            iterative_application(total_flops=0)
        with pytest.raises(ValueError):
            iterative_application(total_flops=1, iterations=0)

    def test_io_phases_are_not_scheduling_points(self):
        app = iterative_application(
            total_flops=1e12, input_bytes=1e9, output_bytes=1e9
        )
        assert app.phases[0].scheduling_point is False
        assert app.phases[1].scheduling_point is True
        assert app.phases[2].scheduling_point is False


class TestGenerateWorkload:
    def test_reproducible_for_same_seed(self):
        spec = WorkloadSpec(num_jobs=20)
        a = generate_workload(spec, seed=7)
        b = generate_workload(spec, seed=7)
        assert [j.submit_time for j in a] == [j.submit_time for j in b]
        assert [j.num_nodes for j in a] == [j.num_nodes for j in b]
        assert [j.type for j in a] == [j.type for j in b]

    def test_different_seeds_differ(self):
        spec = WorkloadSpec(num_jobs=20)
        a = generate_workload(spec, seed=1)
        b = generate_workload(spec, seed=2)
        assert [j.submit_time for j in a] != [j.submit_time for j in b]

    def test_job_count_and_ids(self):
        jobs = generate_workload(WorkloadSpec(num_jobs=15), seed=0)
        assert len(jobs) == 15
        assert [j.jid for j in jobs] == list(range(1, 16))

    def test_first_arrival_at_zero_and_sorted(self):
        jobs = generate_workload(WorkloadSpec(num_jobs=30), seed=3)
        times = [j.submit_time for j in jobs]
        assert times[0] == 0.0
        assert times == sorted(times)

    def test_requests_are_powers_of_two_in_bounds(self):
        spec = WorkloadSpec(num_jobs=50, min_request=2, max_request=16)
        jobs = generate_workload(spec, seed=0)
        for job in jobs:
            assert 2 <= job.num_nodes <= 16
            assert job.num_nodes & (job.num_nodes - 1) == 0

    def test_type_mix_exact_fractions(self):
        spec = WorkloadSpec(
            num_jobs=40,
            malleable_fraction=0.5,
            moldable_fraction=0.25,
            evolving_fraction=0.25,
        )
        jobs = generate_workload(spec, seed=0)
        counts = {t: sum(1 for j in jobs if j.type is t) for t in JobType}
        assert counts[JobType.MALLEABLE] == 20
        assert counts[JobType.MOLDABLE] == 10
        assert counts[JobType.EVOLVING] == 10
        assert counts[JobType.RIGID] == 0

    def test_all_rigid_by_default(self):
        jobs = generate_workload(WorkloadSpec(num_jobs=10), seed=0)
        assert all(j.type is JobType.RIGID for j in jobs)

    def test_ondemand_fraction_exact_and_independent_of_type_mix(self):
        from repro.job import JobClass

        spec = WorkloadSpec(
            num_jobs=40, malleable_fraction=0.5, ondemand_fraction=0.25
        )
        jobs = generate_workload(spec, seed=0)
        ondemand = [j for j in jobs if j.job_class is JobClass.ON_DEMAND]
        assert len(ondemand) == 10
        # Class cuts across the type mix rather than tracking it.
        assert {j.type for j in jobs if j.job_class is JobClass.ON_DEMAND} >= {
            JobType.RIGID,
            JobType.MALLEABLE,
        }

    def test_ondemand_draw_leaves_legacy_stream_untouched(self):
        baseline = generate_workload(WorkloadSpec(num_jobs=20), seed=7)
        classed = generate_workload(
            WorkloadSpec(num_jobs=20, ondemand_fraction=0.5), seed=7
        )
        assert [j.submit_time for j in baseline] == [
            j.submit_time for j in classed
        ]
        assert [j.user for j in baseline] == [j.user for j in classed]

    def test_checkpoint_bytes_applied_to_every_job(self):
        jobs = generate_workload(
            WorkloadSpec(num_jobs=5, checkpoint_bytes=2e9), seed=0
        )
        assert all(j.checkpoint_bytes == 2e9 for j in jobs)

    def test_class_spec_validation(self):
        import pytest

        with pytest.raises(ValueError, match="ondemand_fraction"):
            WorkloadSpec(num_jobs=5, ondemand_fraction=1.5).validate()
        with pytest.raises(ValueError, match="checkpoint_bytes"):
            WorkloadSpec(num_jobs=5, checkpoint_bytes=-1.0).validate()

    def test_type_counts_never_oversubscribe(self):
        # Regression: independent int(round(...)) per class turned 3 jobs
        # at 0.5/0.5 into 2 malleable + 2 moldable, silently truncating
        # whichever class was assigned last.  Largest-remainder counts
        # must cover every job exactly once.
        spec = WorkloadSpec(num_jobs=3, malleable_fraction=0.5, moldable_fraction=0.5)
        jobs = generate_workload(spec, seed=0)
        counts = {t: sum(1 for j in jobs if j.type is t) for t in JobType}
        assert len(jobs) == 3
        assert counts[JobType.RIGID] == 0
        assert sorted([counts[JobType.MALLEABLE], counts[JobType.MOLDABLE]]) == [1, 2]

    def test_type_counts_within_one_of_exact_share(self):
        spec = WorkloadSpec(
            num_jobs=7,
            malleable_fraction=0.3,
            moldable_fraction=0.3,
            evolving_fraction=0.3,
        )
        jobs = generate_workload(spec, seed=1)
        counts = {t: sum(1 for j in jobs if j.type is t) for t in JobType}
        assert sum(counts.values()) == 7
        for job_type in (JobType.MALLEABLE, JobType.MOLDABLE, JobType.EVOLVING):
            assert 0.3 * 7 - 1 < counts[job_type] < 0.3 * 7 + 1

    def test_flexible_bounds_derived_from_request(self):
        spec = WorkloadSpec(
            num_jobs=20,
            malleable_fraction=1.0,
            min_request=4,
            max_request=32,
            shrink_factor=4,
            grow_factor=2,
        )
        jobs = generate_workload(spec, seed=0)
        for job in jobs:
            assert job.min_nodes == max(1, job.num_nodes // 4)
            assert job.max_nodes == min(32, job.num_nodes * 2)

    def test_walltime_scales_with_work_and_slack(self):
        spec = WorkloadSpec(num_jobs=10, walltime_slack=5.0, node_flops=1e12)
        jobs = generate_workload(spec, seed=0)
        for job in jobs:
            cpu = job.application.phases[0].tasks[0]
            iterations = job.application.phases[0].num_iterations({})
            total_flops = cpu.flops.evaluate({}) * iterations
            est = total_flops / (job.num_nodes * 1e12)
            assert job.walltime == pytest.approx(5.0 * max(est, 1.0))

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            generate_workload(WorkloadSpec(num_jobs=0))
        with pytest.raises(ValueError):
            generate_workload(WorkloadSpec(malleable_fraction=0.8, moldable_fraction=0.5))
        with pytest.raises(ValueError):
            generate_workload(WorkloadSpec(min_request=8, max_request=4))
        with pytest.raises(ValueError):
            generate_workload(WorkloadSpec(walltime_slack=0))

    def test_zero_interarrival_means_batch_arrival(self):
        jobs = generate_workload(
            WorkloadSpec(num_jobs=5, mean_interarrival=0.0), seed=0
        )
        assert all(j.submit_time == 0.0 for j in jobs)

    def test_workload_runs_end_to_end(self):
        """Generated workloads must actually simulate."""
        from repro import Simulation, platform_from_dict

        platform = platform_from_dict(
            {
                "nodes": {"count": 32, "flops": 1e12},
                "network": {"topology": "star", "bandwidth": 1e10,
                            "pfs_bandwidth": 1e11},
                "pfs": {"read_bw": 1e11, "write_bw": 1e11},
            }
        )
        spec = WorkloadSpec(num_jobs=10, max_request=32, malleable_fraction=0.5)
        jobs = generate_workload(spec, seed=11)
        monitor = Simulation(platform, jobs, algorithm="malleable").run()
        summary = monitor.summary()
        assert summary.completed_jobs + summary.killed_jobs == 10
