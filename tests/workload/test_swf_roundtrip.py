"""Property test: render_swf is the exact inverse of parse_swf.

The writer's contract (docstring of render_swf) is that
``parse_swf(render_swf(records)) == records`` for any finite records —
including awkward floats whose naive ``%.2f`` formatting would lose
precision.  Hypothesis hunts that whole space instead of a few
hand-picked examples.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.swf import SwfRecord, parse_swf, render_swf

finite_times = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1.0, max_value=1e18
)
ids = st.integers(min_value=-1, max_value=2**31 - 1)

statuses = st.one_of(st.sampled_from([-1, 0, 1, 5]), st.integers(-10, 10))

records = st.builds(
    SwfRecord,
    job_id=ids,
    submit_time=finite_times,
    run_time=finite_times,
    allocated_procs=ids,
    requested_procs=ids,
    requested_time=finite_times,
    user_id=ids,
    status=statuses,
)


@settings(deadline=None, max_examples=200)
@given(st.lists(records, max_size=20))
def test_parse_render_round_trip(recs):
    assert parse_swf(render_swf(recs)) == recs


@settings(deadline=None, max_examples=50)
@given(st.lists(records, min_size=1, max_size=5))
def test_round_trip_without_header(recs):
    assert parse_swf(render_swf(recs, header=False)) == recs


@given(records)
@settings(deadline=None, max_examples=100)
def test_rendered_line_survives_comment_and_blank_noise(rec):
    noisy = "; a comment\n\n" + render_swf([rec], header=False) + "\n; trailing\n"
    assert parse_swf(noisy) == [rec]


def test_large_submit_time_keeps_full_precision():
    # The classic %.2f writer bug: 86400.000001 collapses to 86400.00.
    rec = SwfRecord(1, 86400.000001, 10.0, 4, 4, 100.0, 7)
    assert parse_swf(render_swf([rec]))[0].submit_time == 86400.000001


@settings(deadline=None, max_examples=100)
@given(statuses)
def test_status_survives_round_trip(status):
    # The regression: render_swf used to emit -1 for every status, so a
    # parse-render cycle silently forgot which jobs actually completed.
    rec = SwfRecord(1, 0.0, 10.0, 4, 4, 100.0, 7, status=status)
    assert parse_swf(render_swf([rec]))[0].status == status
