"""Tests for workload profiling."""

import pytest

from repro.workload import (
    WorkloadSpec,
    format_profile,
    generate_workload,
    profile_workload,
)
from repro.workload.generator import iterative_application
from repro.job import Job, JobType


class TestProfileWorkload:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            profile_workload([])

    def test_counts_and_histogram(self):
        app = iterative_application(total_flops=1e12, iterations=2)
        jobs = [
            Job(1, app, num_nodes=4),
            Job(2, app, num_nodes=4, submit_time=10),
            Job(
                3,
                app,
                job_type=JobType.MALLEABLE,
                num_nodes=8,
                min_nodes=2,
                submit_time=20,
            ),
        ]
        profile = profile_workload(jobs)
        assert profile.num_jobs == 3
        assert profile.span_seconds == 20
        assert profile.type_counts == {"rigid": 2, "malleable": 1}
        assert profile.request_histogram == {4: 2, 8: 1}
        assert profile.mean_request == pytest.approx(16 / 3)

    def test_total_flops_counts_iterations(self):
        app = iterative_application(total_flops=1e12, iterations=5)
        jobs = [Job(1, app, num_nodes=4)]
        profile = profile_workload(jobs)
        assert profile.total_flops == pytest.approx(1e12)

    def test_total_flops_even_distribution(self):
        # EVEN: flops_per_node is the task total split (serial overhead
        # included), so machine work = per-node x nodes = the task total.
        from repro.application import ApplicationModel, CpuTask, Phase

        app = ApplicationModel([Phase([CpuTask(8e12)], name="solve")])
        profile = profile_workload([Job(1, app, num_nodes=4)])
        assert profile.total_flops == pytest.approx(8e12)

    def test_total_flops_per_node_distribution(self):
        # PER_NODE (weak scaling): every node does the full amount, so
        # machine work = per-node x nodes — the two branches of the old
        # dead-code conditional must genuinely agree on this accounting.
        from repro.application import ApplicationModel, CpuTask, Distribution, Phase

        app = ApplicationModel(
            [Phase([CpuTask(2e12, distribution=Distribution.PER_NODE)], name="solve")]
        )
        profile = profile_workload([Job(1, app, num_nodes=4)])
        assert profile.total_flops == pytest.approx(8e12)

    def test_runtime_estimates(self):
        app = iterative_application(total_flops=4e12, iterations=1)
        jobs = [Job(1, app, num_nodes=4, submit_time=0)]
        profile = profile_workload(jobs, node_flops=1e12)
        # 4e12 over 4 x 1e12 nodes → 1 s.
        assert profile.mean_runtime_estimate == pytest.approx(1.0)

    def test_offered_load_formula(self):
        app = iterative_application(total_flops=1e14, iterations=1)
        jobs = [Job(1, app, num_nodes=4), Job(2, app, num_nodes=4, submit_time=100)]
        profile = profile_workload(jobs)
        # 2e14 flops over 100 s on 10 x 1e12 = 0.2.
        assert profile.offered_load(10, 1e12) == pytest.approx(0.2)

    def test_zero_span_gives_inf_load(self):
        app = iterative_application(total_flops=1e12)
        jobs = [Job(1, app, num_nodes=2), Job(2, app, num_nodes=2)]
        profile = profile_workload(jobs)
        assert profile.offered_load(4, 1e12) == float("inf")

    def test_generated_workload_hits_target_load(self):
        """The E-series sizing math: generated offered load ≈ requested."""
        import numpy as np

        max_request = 64
        exps = np.arange(0, int(np.log2(max_request)) + 1)
        mean_request = float(np.mean(2.0**exps))
        target = 0.9
        mean_runtime = target * 20.0 * 128 / mean_request
        jobs = generate_workload(
            WorkloadSpec(
                num_jobs=400,
                mean_interarrival=20.0,
                max_request=max_request,
                mean_runtime=mean_runtime,
                comm_bytes=0.0,
            ),
            seed=5,
        )
        profile = profile_workload(jobs, node_flops=1e12)
        load = profile.offered_load(128, 1e12)
        assert load == pytest.approx(target, rel=0.25)

    def test_format_profile_mentions_key_figures(self):
        app = iterative_application(total_flops=1e12)
        jobs = [Job(1, app, num_nodes=4, user="alice")]
        text = format_profile(profile_workload(jobs), 8, 1e12)
        assert "offered load" in text
        assert "request histogram" in text
        assert "users" in text
