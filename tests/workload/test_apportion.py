"""Largest-remainder apportionment: the exact-count contract.

The workload generator and the SWF mix converter both turn fractional
type shares into whole-job counts through :func:`largest_remainder`; the
property under test is the one independent rounding cannot give you —
the counts always sum to exactly ``total`` and each stays within one job
of its exact quota.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import largest_remainder

weights = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=8
).filter(lambda ws: sum(ws) > 1e-6)


@st.composite
def fraction_vectors(draw):
    ws = draw(weights)
    total = sum(ws)
    return [w / total for w in ws]


@settings(deadline=None, max_examples=300)
@given(fractions=fraction_vectors(), total=st.integers(min_value=0, max_value=10_000))
def test_counts_sum_exactly_and_respect_quota(fractions, total):
    counts = largest_remainder(fractions, total)
    assert sum(counts) == total
    for fraction, count in zip(fractions, counts):
        quota = fraction * total
        # Hamilton's method satisfies the quota property: each count is
        # the floor or the ceiling of its exact share.
        assert quota - 1 < count < quota + 1
        assert count >= 0


@settings(deadline=None, max_examples=100)
@given(fractions=fraction_vectors(), total=st.integers(min_value=0, max_value=1000))
def test_deterministic(fractions, total):
    assert largest_remainder(fractions, total) == largest_remainder(fractions, total)


def test_exact_shares_untouched():
    assert largest_remainder((0.5, 0.25, 0.25), 8) == [4, 2, 2]


def test_remainder_goes_to_largest_fraction():
    # 3 x 1/3 over 4: one share gets the leftover, ties break low-index.
    third = 1.0 / 3.0
    assert largest_remainder((third, third, third), 4) == [2, 1, 1]


def test_three_jobs_half_half():
    # The regression case: round(1.5) + round(1.5) would give 4 jobs.
    counts = largest_remainder((0.5, 0.5), 3)
    assert sum(counts) == 3
    assert counts == [2, 1]


def test_validation():
    with pytest.raises(ValueError):
        largest_remainder((0.5, 0.6), 10)  # does not sum to 1
    with pytest.raises(ValueError):
        largest_remainder((1.5, -0.5), 10)  # negative share
    with pytest.raises(ValueError):
        largest_remainder((0.5, 0.5), -1)  # negative total
    with pytest.raises(ValueError):
        largest_remainder((), 10)  # empty
