"""Tests for the SWF → rigid/moldable/malleable mix converter."""

import hashlib

import pytest

from repro.job import JobType
from repro.workload import TypeMix, convert_trace, jobs_from_swf_block
from repro.workload.swf import SwfError, SwfRecord


def make_records(n, *, procs=4, run_time=100.0, status=1):
    return [
        SwfRecord(
            job_id=i + 1,
            submit_time=10.0 * i,
            run_time=run_time,
            allocated_procs=procs,
            requested_procs=procs,
            requested_time=2 * run_time,
            user_id=7,
            status=status,
        )
        for i in range(n)
    ]


class TestTypeMix:
    def test_parse_percent_vector(self):
        mix = TypeMix.parse("100,0,0")
        assert (mix.rigid, mix.moldable, mix.malleable) == (1.0, 0.0, 0.0)

    def test_parse_fraction_vector(self):
        mix = TypeMix.parse([0.5, 0.25, 0.25])
        assert mix.moldable == 0.25

    def test_label(self):
        assert TypeMix.parse("50,25,25").label == "50-25-25"

    def test_rejects_bad_vectors(self):
        with pytest.raises(SwfError):
            TypeMix.parse("1,2")  # not three shares
        with pytest.raises(SwfError):
            TypeMix.parse("60,30,30")  # percent vector not summing to 100
        with pytest.raises(SwfError):
            TypeMix.parse("x,y,z")


class TestConvertTrace:
    def test_exact_apportionment(self):
        jobs = convert_trace(make_records(10), "50,30,20", node_flops=1e9)
        counts = {t: sum(1 for j in jobs if j.type is t) for t in JobType}
        assert len(jobs) == 10
        assert counts[JobType.RIGID] == 5
        assert counts[JobType.MOLDABLE] == 3
        assert counts[JobType.MALLEABLE] == 2

    def test_apportionment_never_oversubscribes(self):
        # 3 jobs at 0/50/50 must convert all 3, not 2+2.
        jobs = convert_trace(make_records(3), "0,50,50", node_flops=1e9)
        assert len(jobs) == 3
        counts = {t: sum(1 for j in jobs if j.type is t) for t in JobType}
        assert sorted([counts[JobType.MOLDABLE], counts[JobType.MALLEABLE]]) == [1, 2]

    def test_status_filter_drops_failed_and_cancelled(self):
        records = (
            make_records(4, status=1)
            + make_records(2, status=0)
            + make_records(3, status=5)
        )
        jobs = convert_trace(records, "100,0,0", node_flops=1e9)
        assert len(jobs) == 4

    def test_amdahl_sizing_reproduces_trace_runtime(self):
        # At the traced allocation, compute time must equal the recorded
        # runtime regardless of the drawn parallel fraction.
        node_flops = 1e9
        for parallel in (1.0, 0.99, 0.95):
            (job,) = convert_trace(
                make_records(1, procs=4, run_time=300.0),
                "100,0,0",
                node_flops=node_flops,
                parallel_fractions=[parallel],
            )
            phase = job.application.phases[0]
            iterations = phase.num_iterations({})
            per_node = phase.tasks[0].flops_per_node({}, job.num_nodes)
            assert iterations * per_node / node_flops == pytest.approx(300.0)

    def test_flexible_jobs_get_bounds_around_preference(self):
        (job,) = convert_trace(
            make_records(1, procs=8), "0,0,100", node_flops=1e9, max_nodes=12
        )
        assert job.type is JobType.MALLEABLE
        assert job.num_nodes == 8
        assert job.min_nodes == 4
        assert job.max_nodes == 12  # doubled preference clamped to the machine

    def test_deterministic_for_seed(self):
        records = make_records(20)
        a = convert_trace(records, "40,30,30", node_flops=1e9, seed=5)
        b = convert_trace(records, "40,30,30", node_flops=1e9, seed=5)
        assert [j.type for j in a] == [j.type for j in b]
        c = convert_trace(records, "40,30,30", node_flops=1e9, seed=6)
        assert [j.type for j in a] != [j.type for j in c]

    def test_submit_times_normalized_and_sorted(self):
        records = make_records(3)
        for rec in records:
            object.__setattr__(rec, "submit_time", rec.submit_time + 5000.0)
        jobs = convert_trace(records, "100,0,0", node_flops=1e9)
        assert jobs[0].submit_time == 0.0
        assert [j.submit_time for j in jobs] == sorted(j.submit_time for j in jobs)

    def test_max_jobs_truncates(self):
        jobs = convert_trace(make_records(10), "100,0,0", node_flops=1e9, max_jobs=4)
        assert len(jobs) == 4

    def test_validation(self):
        records = make_records(2)
        with pytest.raises(SwfError):
            convert_trace(records, "100,0,0", node_flops=0)
        with pytest.raises(SwfError):
            convert_trace(records, "100,0,0", node_flops=1e9, parallel_fractions=[])
        with pytest.raises(SwfError):
            convert_trace(records, "100,0,0", node_flops=1e9, parallel_fractions=[1.5])
        with pytest.raises(SwfError):
            convert_trace([], "100,0,0", node_flops=1e9)


class TestJobsFromSwfBlock:
    def write_trace(self, tmp_path):
        from repro.workload.swf import render_swf

        path = tmp_path / "trace.swf"
        path.write_text(render_swf(make_records(6)))
        return path

    def test_materialises_block(self, tmp_path):
        path = self.write_trace(tmp_path)
        jobs = jobs_from_swf_block(
            {"file": str(path), "type_mix": "0,0,100", "node_flops": 1e9}
        )
        assert len(jobs) == 6
        assert all(j.type is JobType.MALLEABLE for j in jobs)

    def test_sha256_pin_verified(self, tmp_path):
        path = self.write_trace(tmp_path)
        good = hashlib.sha256(path.read_bytes()).hexdigest()
        jobs = jobs_from_swf_block(
            {"file": str(path), "type_mix": "100,0,0", "node_flops": 1e9,
             "sha256": good}
        )
        assert len(jobs) == 6
        with pytest.raises(SwfError, match="hash"):
            jobs_from_swf_block(
                {"file": str(path), "type_mix": "100,0,0", "node_flops": 1e9,
                 "sha256": "0" * 64}
            )

    def test_unknown_keys_rejected(self, tmp_path):
        path = self.write_trace(tmp_path)
        with pytest.raises(SwfError, match="unknown"):
            jobs_from_swf_block(
                {"file": str(path), "type_mix": "100,0,0", "node_flops": 1e9,
                 "typo_key": 1}
            )

    def test_missing_required_key(self):
        with pytest.raises(SwfError):
            jobs_from_swf_block({"type_mix": "100,0,0", "node_flops": 1e9})

    def test_relative_path_resolved_against_base(self, tmp_path):
        path = self.write_trace(tmp_path)
        jobs = jobs_from_swf_block(
            {"file": path.name, "type_mix": "100,0,0", "node_flops": 1e9},
            base=tmp_path,
        )
        assert len(jobs) == 6
