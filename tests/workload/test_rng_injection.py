"""Injected-RNG determinism for the workload and failure generators.

Both generators accept either a seed (convenience) or an explicit
``numpy`` Generator (callers fanning one master seed over several
generation steps, e.g. the fuzz harness).  The contract: an injected
``rng`` seeded with ``s`` behaves byte-for-byte like ``seed=s``, and the
two draw paths never mix with any module-global randomness.
"""

import json

import numpy as np

from repro.failures.model import generate_failures
from repro.workload.generator import WorkloadSpec, generate_workload

SPEC = WorkloadSpec(
    num_jobs=30,
    mean_interarrival=10.0,
    malleable_fraction=0.3,
    moldable_fraction=0.2,
    num_users=4,
)


def _workload_fingerprint(jobs):
    return json.dumps(
        [
            [j.jid, j.type.value, j.submit_time, j.num_nodes,
             j.min_nodes, j.max_nodes, j.walltime, j.user]
            for j in jobs
        ],
        sort_keys=True,
    )


def _failures_fingerprint(failures):
    return [(f.time, f.node_index, f.downtime) for f in failures]


class TestWorkloadGenerator:
    def test_injected_rng_matches_seed_path(self):
        by_seed = generate_workload(SPEC, seed=42)
        by_rng = generate_workload(SPEC, rng=np.random.default_rng(42))
        assert _workload_fingerprint(by_seed) == _workload_fingerprint(by_rng)

    def test_injected_rng_is_the_only_randomness(self):
        # Same rng state -> same workload, regardless of global seeding.
        np.random.seed(0)
        a = generate_workload(SPEC, rng=np.random.default_rng(7))
        np.random.seed(12345)
        b = generate_workload(SPEC, rng=np.random.default_rng(7))
        assert _workload_fingerprint(a) == _workload_fingerprint(b)

    def test_shared_rng_advances_between_calls(self):
        rng = np.random.default_rng(7)
        first = generate_workload(SPEC, rng=rng)
        second = generate_workload(SPEC, rng=rng)
        assert _workload_fingerprint(first) != _workload_fingerprint(second)


class TestFailureGenerator:
    KW = dict(num_nodes=8, horizon=5000.0, mtbf=800.0, mean_repair=60.0)

    def test_injected_rng_matches_seed_path(self):
        by_seed = generate_failures(seed=42, **self.KW)
        by_rng = generate_failures(rng=np.random.default_rng(42), **self.KW)
        assert _failures_fingerprint(by_seed) == _failures_fingerprint(by_rng)

    def test_injected_rng_is_the_only_randomness(self):
        np.random.seed(0)
        a = generate_failures(rng=np.random.default_rng(3), **self.KW)
        np.random.seed(999)
        b = generate_failures(rng=np.random.default_rng(3), **self.KW)
        assert _failures_fingerprint(a) == _failures_fingerprint(b)

    def test_distinct_seeds_differ(self):
        a = generate_failures(seed=1, **self.KW)
        b = generate_failures(seed=2, **self.KW)
        assert _failures_fingerprint(a) != _failures_fingerprint(b)
