"""Tests for the JSON workload loader and the SWF parser."""

import json
from math import inf

import pytest

from repro.job import JobType
from repro.workload import (
    WorkloadError,
    jobs_from_swf,
    load_workload,
    parse_swf,
    workload_from_dict,
)
from repro.workload.swf import SwfError


APP = {
    "phases": [
        {"tasks": [{"type": "cpu", "flops": "1e12 / num_nodes"}], "iterations": 2}
    ]
}

WORKLOAD = {
    "applications": {"solver": APP},
    "jobs": [
        {
            "id": 1,
            "type": "malleable",
            "submit_time": 0.0,
            "num_nodes": 8,
            "min_nodes": 2,
            "max_nodes": 16,
            "walltime": 3600,
            "application": "solver",
            "arguments": {"num_steps": 100},
        },
        {"id": 2, "submit_time": 5.0, "num_nodes": 4, "application": APP},
    ],
}


class TestJsonLoader:
    def test_valid_workload(self):
        jobs = workload_from_dict(WORKLOAD)
        assert len(jobs) == 2
        assert jobs[0].type is JobType.MALLEABLE
        assert jobs[0].min_nodes == 2
        assert jobs[0].arguments == {"num_steps": 100}
        assert jobs[1].type is JobType.RIGID
        assert jobs[1].walltime == inf

    def test_shared_application_is_same_object(self):
        spec = {
            "applications": {"a": APP},
            "jobs": [
                {"id": 1, "application": "a"},
                {"id": 2, "application": "a"},
            ],
        }
        jobs = workload_from_dict(spec)
        assert jobs[0].application is jobs[1].application

    def test_unknown_application_reference(self):
        spec = {"jobs": [{"id": 1, "application": "ghost"}]}
        with pytest.raises(WorkloadError, match="unknown application"):
            workload_from_dict(spec)

    def test_missing_application(self):
        with pytest.raises(WorkloadError, match="missing 'application'"):
            workload_from_dict({"jobs": [{"id": 1}]})

    def test_unknown_type(self):
        spec = {"jobs": [{"id": 1, "type": "elastic", "application": APP}]}
        with pytest.raises(WorkloadError, match="unknown type"):
            workload_from_dict(spec)

    def test_duplicate_ids(self):
        spec = {
            "jobs": [
                {"id": 1, "application": APP},
                {"id": 1, "application": APP},
            ]
        }
        with pytest.raises(WorkloadError, match="duplicate"):
            workload_from_dict(spec)

    def test_empty_jobs(self):
        with pytest.raises(WorkloadError, match="non-empty"):
            workload_from_dict({"jobs": []})

    def test_invalid_job_params_wrapped(self):
        spec = {"jobs": [{"id": 1, "application": APP, "num_nodes": -1}]}
        with pytest.raises(WorkloadError, match="job 1"):
            workload_from_dict(spec)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps(WORKLOAD))
        jobs = load_workload(path)
        assert len(jobs) == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError, match="not found"):
            load_workload(tmp_path / "nope.json")

    def test_swf_block_workload_file(self, tmp_path):
        # `elastisim run --workload` must accept the same `{"swf": ...}`
        # block campaign specs do, with the trace path resolved relative
        # to the workload file itself.
        from repro.workload.swf import SwfRecord, render_swf

        records = [
            SwfRecord(
                job_id=i + 1,
                submit_time=10.0 * i,
                run_time=100.0,
                allocated_procs=4,
                requested_procs=4,
                requested_time=200.0,
                user_id=1,
                status=1,
            )
            for i in range(5)
        ]
        (tmp_path / "trace.swf").write_text(render_swf(records))
        wl = tmp_path / "wl.json"
        wl.write_text(
            json.dumps(
                {
                    "swf": {
                        "file": "trace.swf",
                        "type_mix": "0,0,100",
                        "node_flops": 1e9,
                    }
                }
            )
        )
        jobs = load_workload(wl)
        assert len(jobs) == 5
        assert all(j.type is JobType.MALLEABLE for j in jobs)

    def test_swf_block_rejects_sibling_keys(self):
        with pytest.raises(WorkloadError, match="cannot be combined"):
            workload_from_dict({"swf": {}, "jobs": []})

    def test_swf_block_errors_wrapped(self):
        with pytest.raises(WorkloadError, match="workload:"):
            workload_from_dict({"swf": {"type_mix": "100,0,0"}})


SWF_TEXT = """\
; Sample SWF trace
; Computer: Test cluster
1 0 0 120 16 -1 -1 16 300 -1 1 1 1 1 1 -1 -1 -1
2 60 5 600 32 -1 -1 32 900 -1 1 2 1 1 1 -1 -1 -1
3 120 0 -1 8 -1 -1 8 100 -1 0 3 1 1 1 -1 -1 -1
"""


class TestSwf:
    def test_parse_skips_comments_and_reads_fields(self):
        records = parse_swf(SWF_TEXT)
        assert len(records) == 3
        assert records[0].job_id == 1
        assert records[0].run_time == 120
        assert records[1].requested_procs == 32
        assert records[1].submit_time == 60

    def test_malformed_line_raises_with_lineno(self):
        with pytest.raises(SwfError, match="line 1"):
            parse_swf("1 2 3")

    def test_non_numeric_field(self):
        with pytest.raises(SwfError, match="line 1"):
            parse_swf("a b c d e f g h i j k")

    def test_jobs_from_swf_translates_runtime_to_flops(self):
        jobs = jobs_from_swf(SWF_TEXT, node_flops=1e12)
        # Job 3 has run_time -1 → skipped.
        assert len(jobs) == 2
        job = jobs[0]
        assert job.num_nodes == 16
        cpu = job.application.phases[0].tasks[0]
        # 120 s x 16 nodes x 1e12 flops/s.
        assert cpu.flops.evaluate({}) == pytest.approx(120 * 16 * 1e12)

    def test_walltime_from_requested_time(self):
        jobs = jobs_from_swf(SWF_TEXT, node_flops=1e12, walltime_slack=2.0)
        assert jobs[0].walltime == pytest.approx(600.0)  # 2 x 300

    def test_procs_per_node_division(self):
        jobs = jobs_from_swf(SWF_TEXT, node_flops=1e12, procs_per_node=8)
        assert jobs[0].num_nodes == 2  # ceil(16/8)

    def test_max_nodes_clamp(self):
        jobs = jobs_from_swf(SWF_TEXT, node_flops=1e12, max_nodes=8)
        assert all(j.num_nodes <= 8 for j in jobs)

    def test_malleable_conversion(self):
        jobs = jobs_from_swf(
            SWF_TEXT, node_flops=1e12, job_type=JobType.MALLEABLE
        )
        assert all(j.type is JobType.MALLEABLE for j in jobs)
        assert jobs[0].min_nodes == 8
        assert jobs[0].max_nodes == 32

    def test_swf_roundtrip_simulates(self):
        from repro import Simulation, platform_from_dict

        platform = platform_from_dict(
            {
                "nodes": {"count": 32, "flops": 1e12},
                "network": {"topology": "star", "bandwidth": 1e10},
            }
        )
        jobs = jobs_from_swf(SWF_TEXT, node_flops=1e12)
        Simulation(platform, jobs, algorithm="easy").run()
        # Runtimes should match the trace exactly (compute-only model).
        assert jobs[0].runtime == pytest.approx(120.0)
        assert jobs[1].runtime == pytest.approx(600.0)

    def test_empty_trace_raises(self):
        with pytest.raises(SwfError, match="no simulable jobs"):
            jobs_from_swf("; nothing here\n", node_flops=1e12)

    def test_bad_node_flops(self):
        with pytest.raises(SwfError):
            jobs_from_swf(SWF_TEXT, node_flops=0)

    def test_parse_from_file(self, tmp_path):
        path = tmp_path / "trace.swf"
        path.write_text(SWF_TEXT)
        assert len(parse_swf(path)) == 3

    def test_missing_file(self, tmp_path):
        with pytest.raises(SwfError, match="not found"):
            parse_swf(tmp_path / "ghost.swf")

    def test_path_like_string_without_swf_suffix(self):
        # Regression: "trace.txt" / "trace.swf.gz" used to be parsed as
        # (empty) inline content because only the ".swf" suffix was treated
        # as a path.  A whitespace-free string is path-like: report the
        # missing file instead of silently returning zero records.
        for name in ("trace.txt", "runs/trace.swf.gz", "ghost"):
            with pytest.raises(SwfError, match="not found"):
                parse_swf(name)

    def test_existing_file_any_suffix_is_read(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text(SWF_TEXT)
        assert len(parse_swf(str(path))) == 3

    def test_inline_single_line_still_content(self):
        # One whitespace-separated SWF line (no trailing newline) must
        # stay inline content, not be mistaken for a file name.
        line = "1 0 0 120 16 -1 -1 16 300 -1 1 1 1 1 1 -1 -1 -1"
        records = parse_swf(line)
        assert len(records) == 1
        assert records[0].job_id == 1


class TestSwfIterations:
    def test_iterations_split_preserves_total_work(self):
        jobs_1 = jobs_from_swf(SWF_TEXT, node_flops=1e12, iterations=1)
        jobs_20 = jobs_from_swf(SWF_TEXT, node_flops=1e12, iterations=20)
        for a, b in zip(jobs_1, jobs_20):
            phase_a, phase_b = a.application.phases[0], b.application.phases[0]
            total_a = phase_a.tasks[0].flops.evaluate({}) * phase_a.num_iterations({})
            total_b = phase_b.tasks[0].flops.evaluate({}) * phase_b.num_iterations({})
            assert total_a == pytest.approx(total_b)

    def test_iterations_create_scheduling_points(self):
        from repro import Simulation, platform_from_dict

        platform = platform_from_dict(
            {
                "nodes": {"count": 32, "flops": 1e12},
                "network": {"topology": "star", "bandwidth": 1e10},
            }
        )
        jobs = jobs_from_swf(SWF_TEXT, node_flops=1e12, iterations=5)
        Simulation(platform, jobs, algorithm="easy").run()
        assert all(j.scheduling_points_seen == 5 for j in jobs)
        # Runtime unchanged by the split (pure compute).
        assert jobs[0].runtime == pytest.approx(120.0)

    def test_invalid_iterations(self):
        with pytest.raises(SwfError):
            jobs_from_swf(SWF_TEXT, node_flops=1e12, iterations=0)

    def test_bundled_sample_trace_loads(self):
        from pathlib import Path

        sample = Path(__file__).resolve().parents[2] / "data" / "sample.swf"
        jobs = jobs_from_swf(sample, node_flops=1e12, max_nodes=64)
        assert len(jobs) == 60
        assert len({j.user for j in jobs}) > 1
