"""Integration tests: batch system + engine + schedulers end to end."""

import pytest

from repro.batch import BatchError, Simulation
from repro.job import JobState
from repro.scheduler import SchedulerError

from tests.batch.conftest import make_job


class TestBasicLifecycle:
    def test_single_job_runs_to_completion(self, platform):
        # 8e9 flops on 4 nodes x 1e9 → 2 s.
        job = make_job(1)
        monitor = Simulation(platform, [job], algorithm="fcfs").run()
        assert job.state is JobState.COMPLETED
        assert job.start_time == 0.0
        assert job.end_time == pytest.approx(2.0)
        assert monitor.makespan() == pytest.approx(2.0)

    def test_two_jobs_fit_together(self, platform):
        jobs = [make_job(1), make_job(2)]  # 4 + 4 = 8 nodes
        monitor = Simulation(platform, jobs, algorithm="fcfs").run()
        assert all(j.start_time == 0.0 for j in jobs)
        assert monitor.makespan() == pytest.approx(2.0)

    def test_queueing_when_machine_full(self, platform):
        jobs = [make_job(1, num_nodes=8), make_job(2, num_nodes=8)]
        Simulation(platform, jobs, algorithm="fcfs").run()
        # Job 1: 8e9 over 8 nodes → 1 s; job 2 starts at 1 s.
        assert jobs[0].end_time == pytest.approx(1.0)
        assert jobs[1].start_time == pytest.approx(1.0)
        assert jobs[1].wait_time == pytest.approx(1.0)

    def test_submit_times_respected(self, platform):
        jobs = [make_job(1, submit_time=5.0)]
        Simulation(platform, jobs, algorithm="fcfs").run()
        assert jobs[0].start_time == pytest.approx(5.0)
        assert jobs[0].wait_time == 0.0

    def test_nodes_freed_after_completion(self, platform):
        job = make_job(1, num_nodes=8)
        Simulation(platform, [job], algorithm="fcfs").run()
        assert platform.num_free_nodes() == 8

    def test_all_jobs_in_records(self, platform):
        jobs = [make_job(i) for i in range(1, 6)]
        monitor = Simulation(platform, jobs, algorithm="fcfs").run()
        records = monitor.job_records()
        assert len(records) == 5
        assert all(r["state"] == "completed" for r in records)


class TestWalltime:
    def test_job_killed_at_walltime(self, platform):
        # Needs 2 s but walltime is 1 s.
        job = make_job(1, walltime=1.0)
        Simulation(platform, [job], algorithm="fcfs").run()
        assert job.state is JobState.KILLED
        assert job.kill_reason == "walltime"
        assert job.end_time == pytest.approx(1.0)

    def test_job_finishing_before_walltime_not_killed(self, platform):
        job = make_job(1, walltime=100.0)
        Simulation(platform, [job], algorithm="fcfs").run()
        assert job.state is JobState.COMPLETED

    def test_killed_job_frees_nodes_for_queue(self, platform):
        jobs = [
            make_job(1, num_nodes=8, walltime=1.0),  # killed at t=1
            make_job(2, num_nodes=8),
        ]
        Simulation(platform, jobs, algorithm="fcfs").run()
        assert jobs[0].state is JobState.KILLED
        assert jobs[1].start_time == pytest.approx(1.0)
        assert jobs[1].state is JobState.COMPLETED


class TestValidationErrors:
    def test_empty_workload_rejected(self, platform):
        with pytest.raises(BatchError, match="No jobs"):
            Simulation(platform, [], algorithm="fcfs")

    def test_duplicate_ids_rejected(self, platform):
        with pytest.raises(BatchError, match="Duplicate"):
            Simulation(platform, [make_job(1), make_job(1)], algorithm="fcfs")

    def test_oversized_job_rejected_at_setup(self, platform):
        with pytest.raises(BatchError, match="at least"):
            Simulation(platform, [make_job(1, num_nodes=16)], algorithm="fcfs")

    def test_unknown_algorithm_name(self, platform):
        with pytest.raises(SchedulerError, match="Unknown algorithm"):
            Simulation(platform, [make_job(1)], algorithm="quantum")

    def test_bad_invocation_interval(self, platform):
        with pytest.raises(BatchError, match="invocation_interval"):
            Simulation(
                platform, [make_job(1)], algorithm="fcfs", invocation_interval=0
            )


class TestMonitorIntegration:
    def test_utilization_during_run(self, platform):
        # One 8-node job for 1 s on an 8-node machine → 100% utilization.
        job = make_job(1, num_nodes=8)
        monitor = Simulation(platform, [job], algorithm="fcfs").run()
        assert monitor.mean_utilization() == pytest.approx(1.0)

    def test_half_utilization(self, platform):
        job = make_job(1, num_nodes=4, total_flops=4e9)  # 1 s on 4 of 8 nodes
        monitor = Simulation(platform, [job], algorithm="fcfs").run()
        assert monitor.mean_utilization() == pytest.approx(0.5)

    def test_summary_counts(self, platform):
        jobs = [make_job(1), make_job(2, walltime=0.5)]
        monitor = Simulation(platform, jobs, algorithm="fcfs").run()
        summary = monitor.summary()
        assert summary.completed_jobs == 1
        assert summary.killed_jobs == 1

    def test_allocation_segments_recorded(self, platform):
        job = make_job(1)
        monitor = Simulation(platform, [job], algorithm="fcfs").run()
        segments = monitor.segments(1)
        assert len(segments) == 1
        assert segments[0].start == 0.0
        assert segments[0].end == pytest.approx(2.0)
        assert len(segments[0].node_indices) == 4

    def test_event_log_order(self, platform):
        jobs = [make_job(1, num_nodes=8), make_job(2, num_nodes=8)]
        monitor = Simulation(platform, jobs, algorithm="fcfs").run()
        kinds = [(kind, jid) for _, kind, jid, _ in monitor.events]
        # Job 1 starts inside its own submit invocation, before job 2's
        # submitter process runs at the same instant.
        assert kinds == [
            ("submit", 1),
            ("start", 1),
            ("submit", 2),
            ("complete", 1),
            ("start", 2),
            ("complete", 2),
        ]


class TestPeriodicInvocation:
    def test_periodic_invocations_happen(self, platform):
        sim = Simulation(
            platform,
            [make_job(1, total_flops=80e9, num_nodes=8)],  # 10 s
            algorithm="fcfs",
            invocation_interval=1.0,
        )
        sim.run()
        # ~10 periodic + submit + completion.
        assert sim.batch.invocations >= 10

    def test_event_driven_only_has_few_invocations(self, platform):
        sim = Simulation(
            platform,
            [make_job(1, total_flops=80e9, num_nodes=8)],
            algorithm="fcfs",
        )
        sim.run()
        # submit + end-of-phase scheduling point + completion.
        assert sim.batch.invocations == 3


class TestStuckDetection:
    def test_stalled_workload_raises_with_diagnostics(self, platform):
        # A scheduler that never starts anything.
        from repro.scheduler import Algorithm

        class DoNothing(Algorithm):
            name = "noop"

        with pytest.raises(BatchError, match="stalled"):
            Simulation(platform, [make_job(1)], algorithm=DoNothing()).run()

    def test_run_until_returns_partial_state(self, platform):
        job = make_job(1, total_flops=80e9, num_nodes=8)  # 10 s
        sim = Simulation(platform, [job], algorithm="fcfs")
        monitor = sim.run(until=5.0)
        assert job.state is JobState.RUNNING
        assert monitor.makespan() == 0.0  # nothing finished yet


class TestWatchdogCleanup:
    """Regression: finishing a job must defuse its walltime timer.

    The watchdog used to leave its Timeout live in the event heap after
    ``done`` fired, so running the environment to exhaustion dragged
    ``env.now`` out to the (never-enforced) walltime expiry and counted
    the stale timer as a processed event.
    """

    def test_clock_stops_at_last_job_end(self, platform):
        # 2 s of work, but a 1-hour walltime: the stale timer would sit
        # at t=3600 without the cancel.
        jobs = [make_job(1, walltime=3600.0), make_job(2, walltime=7200.0)]
        sim = Simulation(platform, jobs, algorithm="fcfs")
        sim.run()
        last_end = max(j.end_time for j in jobs)
        # Drain the heap: besides same-instant leftovers queued behind the
        # all_done stop, only cancelled timers remain — and those must not
        # advance the clock to their 3600/7200 s expiries.
        sim.env.run()
        assert sim.env.now == pytest.approx(last_end)

    def test_walltime_kill_still_enforced(self, platform):
        # The cancel path must not defuse timers of jobs that do overrun.
        job = make_job(1, walltime=1.0)  # needs 2 s
        sim = Simulation(platform, [job], algorithm="fcfs")
        sim.run()
        assert job.state is JobState.KILLED
        assert job.kill_reason == "walltime"
        assert job.end_time == pytest.approx(1.0)

    def test_cancel_rejects_subscribed_event(self, platform):
        from repro.des import Environment
        from repro.des.exceptions import SimulationError

        env = Environment()
        timer = env.timeout(5.0)

        def waiter():
            yield timer

        env.process(waiter())
        env.run(until=1.0)
        with pytest.raises(SimulationError, match="subscriber"):
            timer.cancel()
