"""Shared fixtures for batch-system tests."""

import pytest

from repro.application import ApplicationModel, CpuTask, Phase
from repro.job import Job, JobType
from repro.platform import platform_from_dict


@pytest.fixture()
def platform():
    """8 nodes x 1e9 flops, fast network, modest PFS."""
    return platform_from_dict(
        {
            "name": "batch-test",
            "nodes": {"count": 8, "flops": 1e9},
            "network": {
                "topology": "star",
                "bandwidth": 1e10,
                "latency": 0.0,
                "pfs_bandwidth": 1e11,
            },
            "pfs": {"read_bw": 1e10, "write_bw": 1e10},
        }
    )


def compute_app(total_flops, *, phases=1, data_per_node=0):
    """An app of `phases` equal compute phases totalling `total_flops`."""
    per_phase = total_flops / phases
    return ApplicationModel(
        [Phase([CpuTask(per_phase)], name=f"p{i}") for i in range(phases)],
        data_per_node=data_per_node,
    )


def make_job(jid, total_flops=8e9, *, phases=1, data_per_node=0, **kwargs):
    """Helper: a job around a pure-compute app.

    Default 8e9 flops: 1 s on all 8 test nodes, 2 s on 4, etc.
    """
    app = compute_app(total_flops, phases=phases, data_per_node=data_per_node)
    defaults = dict(job_type=JobType.RIGID, num_nodes=4)
    defaults.update(kwargs)
    return Job(jid, app, **defaults)
