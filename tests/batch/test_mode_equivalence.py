"""Engine fast paths must not change simulation results.

The compiled-expression pipeline, the vectorized max-min kernel, and the
struct-of-arrays slot engine are pure performance features: a run's
``Monitor.run_record()`` — the payload campaign fingerprints and the CI
regression gate key on — must serialise byte-identically whichever
combination of (compiled | interpreted expressions) x (scalar |
vectorized | auto solver) x (array | object engine) is active, across
rigid, malleable, and evolving jobs, with the invariant checker on.
"""

import json

import pytest

import repro.sharing.model as sharing_model
from repro import Simulation, platform_from_dict
from repro.expressions import set_compiled_enabled
from repro.sharing import array_engine_enabled, set_array_engine_enabled
from repro.workload import WorkloadSpec, generate_workload

PLATFORM_SPEC = {
    "nodes": {"count": 32, "flops": 1e12},
    "network": {"topology": "star", "bandwidth": 10e9, "pfs_bandwidth": 1e11},
    "pfs": {"read_bw": 1e11, "write_bw": 8e10},
}

#: (compiled expressions?, DEFAULT_VECTORIZE, array engine?) — None is
#: the shipped auto-dispatch; the first entry is the reference
#: configuration (everything on/default).
MODES = [
    (True, None, True),
    (True, None, False),
    (True, False, True),
    (True, True, False),
    (False, False, False),
]


def _run_record(compiled: bool, vectorize, array: bool, algorithm: str) -> str:
    platform = platform_from_dict(PLATFORM_SPEC)
    jobs = generate_workload(
        WorkloadSpec(
            num_jobs=20,
            mean_interarrival=10.0,
            max_request=32,
            mean_runtime=60.0,
            malleable_fraction=0.4,
            evolving_fraction=0.2,
            comm_bytes=1e6,  # multi-activity components: exercises the vector kernel
            input_bytes_per_flop=1e-5,
            output_bytes_per_flop=1e-5,
            data_per_node=1e8,
        ),
        seed=11,
    )
    set_compiled_enabled(compiled)
    old_vectorize = sharing_model.DEFAULT_VECTORIZE
    sharing_model.DEFAULT_VECTORIZE = vectorize
    old_array = array_engine_enabled()
    set_array_engine_enabled(array)
    try:
        monitor = Simulation(platform, jobs, algorithm=algorithm).run(
            check_invariants=True
        )
    finally:
        set_compiled_enabled(True)
        sharing_model.DEFAULT_VECTORIZE = old_vectorize
        set_array_engine_enabled(old_array)
    return json.dumps(monitor.run_record(), sort_keys=True)


@pytest.mark.parametrize("algorithm", ["easy", "malleable"])
def test_run_record_byte_identical_across_engine_modes(algorithm):
    reference = _run_record(*MODES[0], algorithm)
    for compiled, vectorize, array in MODES[1:]:
        assert _run_record(compiled, vectorize, array, algorithm) == reference, (
            f"run_record diverged for compiled={compiled} "
            f"vectorize={vectorize} array={array} algorithm={algorithm}"
        )


def test_hybrid_preemption_and_energy_byte_identical_across_modes():
    # On-demand preemption, restart I/O, and the Fraction-integrated
    # energy block must survive every engine mode byte-for-byte.
    from repro.fuzz.oracles import run_scenario_record

    from tests.scheduler.test_hybrid import HYBRID_SPEC

    reference = run_scenario_record(
        HYBRID_SPEC,
        compiled=MODES[0][0],
        vectorize=MODES[0][1],
        array=MODES[0][2],
        check_invariants=True,
    )
    assert "energy" in reference
    reference_bytes = json.dumps(reference, sort_keys=True)
    for compiled, vectorize, array in MODES[1:]:
        record = run_scenario_record(
            HYBRID_SPEC,
            compiled=compiled,
            vectorize=vectorize,
            array=array,
            check_invariants=True,
        )
        assert json.dumps(record, sort_keys=True) == reference_bytes, (
            f"hybrid run_record diverged for compiled={compiled} "
            f"vectorize={vectorize} array={array}"
        )
