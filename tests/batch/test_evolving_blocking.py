"""Tests for blocking evolving requests and reconfiguration regressions."""

import pytest

from repro.application import (
    ApplicationModel,
    CpuTask,
    EvolvingRequest,
    Phase,
)
from repro.batch import BatchError, Simulation
from repro.job import Job, JobState, JobType
from repro.scheduler import Algorithm

from tests.batch.conftest import make_job


def blocking_app(desired="8"):
    """Compute 2 s on 4 nodes, then BLOCK until `desired` nodes granted."""
    return ApplicationModel(
        [
            Phase(
                [
                    CpuTask("8e9"),
                    EvolvingRequest(desired, blocking=True),
                    CpuTask("8e9"),
                ],
                scheduling_point=False,
            )
        ]
    )


def evolving_job(jid=1, **kwargs):
    defaults = dict(
        job_type=JobType.EVOLVING, num_nodes=4, min_nodes=4, max_nodes=8
    )
    defaults.update(kwargs)
    return Job(jid, blocking_app(), **defaults)


class TestBlockingGranted:
    def test_fair_share_start_makes_request_a_noop(self, platform):
        # Alone on the machine the malleable policy starts the job at its
        # max (8), so the blocking request for 8 is a no-op: no suspension.
        job = evolving_job()
        Simulation(platform, [job], algorithm="malleable").run()
        assert job.state is JobState.COMPLETED
        assert len(job.assigned_nodes) == 8
        assert job.reconfigurations_applied == 0
        assert job.end_time == pytest.approx(2.0)  # 2 x 8e9 / 8e9

    def test_blocks_until_nodes_free_then_granted(self, platform):
        # A rigid blocker holds the upper 4 nodes for 5 s; the evolving job
        # must actually WAIT at its request instead of continuing on 4.
        blocker = make_job(1, total_flops=20e9, num_nodes=4, walltime=100)
        job = evolving_job(jid=2)
        Simulation(platform, [blocker, job], algorithm="malleable").run()
        assert job.state is JobState.COMPLETED
        assert len(job.assigned_nodes) == 8
        # Request at t=2, blocker ends at t=5 (20e9 / 4e9), grant, then 1 s.
        assert job.end_time == pytest.approx(6.0)

    def test_nonblocking_continues_ungranted(self, platform):
        # Same scenario but blocking=False: the job continues on 4 nodes.
        app = ApplicationModel(
            [
                Phase(
                    [
                        CpuTask("8e9"),
                        EvolvingRequest("8", blocking=False),
                        CpuTask("8e9"),
                    ],
                    scheduling_point=False,
                )
            ]
        )
        blocker = make_job(1, total_flops=20e9, num_nodes=4, walltime=100)
        job = Job(
            2, app, job_type=JobType.EVOLVING, num_nodes=4, min_nodes=4, max_nodes=8
        )
        Simulation(platform, [blocker, job], algorithm="malleable").run()
        # Second compute on 4 nodes: 2 + 2 = 4 s.
        assert job.end_time == pytest.approx(4.0)
        assert len(job.assigned_nodes) == 4


class TestBlockingDenied:
    def test_explicit_denial_unblocks_immediately(self, platform):
        class Denier(Algorithm):
            name = "denier"

            def schedule(self, ctx, invocation):
                for job in ctx.pending_jobs:
                    ctx.start_job(job, ctx.free_nodes()[: job.num_nodes])
                if invocation.type.value == "evolving_request":
                    ctx.deny_evolving_request(invocation.job)

        job = evolving_job()
        Simulation(platform, [job], algorithm=Denier()).run()
        assert job.state is JobState.COMPLETED
        # Denied: both compute tasks on 4 nodes → 4 s.
        assert job.end_time == pytest.approx(4.0)

    def test_never_granted_stalls_with_diagnostic(self, platform):
        class Ignorer(Algorithm):
            name = "ignorer"

            def schedule(self, ctx, invocation):
                for job in ctx.pending_jobs:
                    ctx.start_job(job, ctx.free_nodes()[: job.num_nodes])

        job = evolving_job()
        with pytest.raises(BatchError, match="stalled"):
            Simulation(platform, [job], algorithm=Ignorer()).run()

    def test_walltime_kill_while_blocked(self, platform):
        class Ignorer(Algorithm):
            name = "ignorer"

            def schedule(self, ctx, invocation):
                for job in ctx.pending_jobs:
                    ctx.start_job(job, ctx.free_nodes()[: job.num_nodes])

        job = evolving_job(walltime=3.0)
        Simulation(platform, [job], algorithm=Ignorer()).run()
        assert job.state is JobState.KILLED
        assert job.end_time == pytest.approx(3.0)
        assert platform.num_free_nodes() == 8


class TestReconfigurationRegressions:
    def test_no_second_order_during_redistribution(self, platform):
        """Regression: the scheduler must see the order as pending through
        the whole (possibly long) redistribution, not just until pop."""
        from repro.scheduler import SchedulerError

        rejected = []

        class DoubleOrderer(Algorithm):
            name = "double-orderer"

            def schedule(self, ctx, invocation):
                for job in ctx.pending_jobs:
                    size = min(len(ctx.free_nodes()), job.max_nodes)
                    if size >= job.min_nodes:
                        ctx.start_job(job, ctx.free_nodes()[:size])
                for job in ctx.running_jobs:
                    if job.is_adaptive and len(job.assigned_nodes) > job.min_nodes:
                        try:
                            ctx.reconfigure_job(
                                job, job.assigned_nodes[: job.min_nodes]
                            )
                        except SchedulerError as exc:
                            rejected.append(str(exc))

        # Huge data_per_node → redistribution takes many seconds, during
        # which completions of other jobs re-invoke the scheduler.
        app = ApplicationModel(
            [
                Phase([CpuTask("8e9")], name="a"),
                Phase([CpuTask("8e9")], name="b"),
            ],
            data_per_node="50e9",  # 5+ s over 1e10 B/s links
        )
        malleable = Job(
            1, app, job_type=JobType.MALLEABLE, num_nodes=6, min_nodes=2, max_nodes=6
        )
        ticker = make_job(2, total_flops=1e9, num_nodes=1, submit_time=2.5)
        Simulation(platform, [malleable, ticker], algorithm=DoubleOrderer()).run()
        assert malleable.state is JobState.COMPLETED
        assert malleable.reconfigurations_applied == 1
        # The mid-redistribution attempt was rejected, not silently applied.
        assert any("pending order" in r for r in rejected)
        assert platform.num_free_nodes() == 8

    def test_kill_during_redistribution_frees_everything(self, platform):
        """Regression: a walltime kill mid-redistribution must release both
        the old allocation and the reserved target nodes."""

        class ExpandOnce(Algorithm):
            name = "expand-once"

            def schedule(self, ctx, invocation):
                for job in ctx.pending_jobs:
                    ctx.start_job(job, ctx.free_nodes()[: job.num_nodes])
                if invocation.type.value == "scheduling_point":
                    job = invocation.job
                    if (
                        job.pending_reconfiguration is None
                        and job.reconfigurations_applied == 0
                    ):
                        target = list(job.assigned_nodes) + ctx.free_nodes()[:4]
                        ctx.reconfigure_job(job, target)

        app = ApplicationModel(
            [
                Phase([CpuTask("8e9")], name="a"),
                Phase([CpuTask("8e9")], name="b", scheduling_point=False),
            ],
            data_per_node="1e12",  # redistribution would take ~100 s
        )
        job = Job(
            1,
            app,
            job_type=JobType.MALLEABLE,
            num_nodes=4,
            min_nodes=2,
            max_nodes=8,
            walltime=5.0,  # killed mid-redistribution (starts at t=2)
        )
        Simulation(platform, [job], algorithm=ExpandOnce()).run()
        assert job.state is JobState.KILLED
        assert platform.num_free_nodes() == 8  # nothing leaked
