#!/usr/bin/env python
"""Replaying a Standard Workload Format trace — and asking "what if?".

Loads the bundled ``data/sample.swf`` trace (Parallel Workloads Archive
format), replays it rigidly under EASY backfilling, then asks the question
malleable-workload research exists for: *what if these same jobs had been
malleable?*  The trace-to-simulation substitution (runtimes → compute-only
application models) is documented in ``repro.workload.swf``.

Run with::

    python examples/swf_replay.py
"""

from pathlib import Path

from repro import Simulation, platform_from_dict
from repro.job import JobType
from repro.workload import jobs_from_swf, profile_workload, format_profile

TRACE = Path(__file__).resolve().parent.parent / "data" / "sample.swf"
NODE_FLOPS = 1e12
NUM_NODES = 64


def build_platform():
    return platform_from_dict(
        {
            "name": "swf-replay",
            "nodes": {"count": NUM_NODES, "flops": NODE_FLOPS},
            "network": {"topology": "star", "bandwidth": 10e9},
        }
    )


def replay(job_type: JobType, algorithm: str):
    jobs = jobs_from_swf(
        TRACE,
        node_flops=NODE_FLOPS,
        max_nodes=NUM_NODES,
        walltime_slack=1.5,
        job_type=job_type,
        # 20 compute chunks per job = 20 scheduling points: without them a
        # malleable what-if cannot reshape anything (see repro.workload.swf).
        iterations=20,
    )
    monitor = Simulation(build_platform(), jobs, algorithm=algorithm).run()
    return monitor.summary()


def main() -> None:
    jobs = jobs_from_swf(TRACE, node_flops=NODE_FLOPS, max_nodes=NUM_NODES)
    print("trace profile")
    print("-" * 40)
    print(format_profile(profile_workload(jobs, NODE_FLOPS), NUM_NODES, NODE_FLOPS))
    print()

    rigid = replay(JobType.RIGID, "easy")
    what_if = replay(JobType.MALLEABLE, "malleable")

    print(f"{'metric':26} {'rigid replay':>14} {'what-if malleable':>18}")
    print("-" * 60)
    rows = [
        ("makespan [s]", rigid.makespan, what_if.makespan),
        ("mean wait [s]", rigid.mean_wait, what_if.mean_wait),
        ("max wait [s]", rigid.max_wait, what_if.max_wait),
        ("mean bounded slowdown", rigid.mean_bounded_slowdown,
         what_if.mean_bounded_slowdown),
        ("mean utilization", rigid.mean_utilization, what_if.mean_utilization),
        ("reconfigurations", rigid.total_reconfigurations,
         what_if.total_reconfigurations),
    ]
    for label, a, b in rows:
        print(f"{label:26} {a:14.2f} {b:18.2f}")


if __name__ == "__main__":
    main()
