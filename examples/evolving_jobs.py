#!/usr/bin/env python
"""Evolving jobs: applications that request resources mid-run.

An adaptive-mesh-refinement-style application runs a steady phase on 4
nodes, detects refinement (modelled here as a known burst), requests 16
nodes for the expensive middle phase, and releases them afterwards.  The
example contrasts a scheduler that grants evolving requests with one that
ignores them.

Run with::

    python examples/evolving_jobs.py
"""

from repro import Simulation, platform_from_dict
from repro.application import ApplicationModel, CpuTask, EvolvingRequest, Phase
from repro.job import Job, JobType


def amr_like_app() -> ApplicationModel:
    return ApplicationModel(
        [
            Phase([CpuTask(8e12, name="coarse")], name="coarse",
                  scheduling_point=False),
            Phase(
                [
                    EvolvingRequest("16", name="refine"),
                    CpuTask(64e12, name="refined-solve"),
                    EvolvingRequest("4", name="coarsen"),
                ],
                name="refined",
                scheduling_point=False,
            ),
            Phase([CpuTask(8e12, name="final")], name="final",
                  scheduling_point=False),
        ],
        name="amr-like",
    )


def run(algorithm: str):
    platform = platform_from_dict(
        {
            "name": "evolving-demo",
            "nodes": {"count": 32, "flops": 1e12},
            "network": {"topology": "star", "bandwidth": 10e9},
        }
    )
    jobs = [
        Job(
            i + 1,
            amr_like_app(),
            job_type=JobType.EVOLVING,
            num_nodes=4,
            min_nodes=4,
            max_nodes=16,
            submit_time=10.0 * i,
            name=f"amr{i + 1}",
        )
        for i in range(4)
    ]
    Simulation(platform, jobs, algorithm=algorithm).run()
    return jobs


def main() -> None:
    ignored = run("easy")        # EASY never grants evolving requests
    granted = run("malleable")   # the malleable policy does

    print("4 AMR-like evolving jobs; refined phase wants 16 of 32 nodes")
    print()
    print(f"{'job':>6} {'turnaround ignored':>19} {'turnaround granted':>19} "
          f"{'grants':>7}")
    for a, b in zip(ignored, granted):
        print(
            f"{a.name:>6} {a.turnaround:19.1f} {b.turnaround:19.1f} "
            f"{b.reconfigurations_applied:>7}"
        )
    mean_a = sum(j.turnaround for j in ignored) / len(ignored)
    mean_b = sum(j.turnaround for j in granted) / len(granted)
    print()
    print(f"granting evolving requests cuts mean turnaround from "
          f"{mean_a:.1f} s to {mean_b:.1f} s ({mean_a / mean_b:.2f}x)")


if __name__ == "__main__":
    main()
