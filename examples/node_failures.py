#!/usr/bin/env python
"""Failure injection: how a workload weathers unreliable hardware.

Generates a Poisson node-failure trace (MTBF sweep), runs the same
workload against each reliability level, and reports how many jobs die to
hardware faults and what that does to the makespan.  Finishes with an
ASCII Gantt of the least reliable run, where killed jobs show as ✗.

Run with::

    python examples/node_failures.py
"""

from repro import Simulation, platform_from_dict
from repro.failures import generate_failures
from repro.job import JobState
from repro.monitoring import render_gantt
from repro.workload import WorkloadSpec, generate_workload


def build_platform():
    return platform_from_dict(
        {
            "name": "flaky-cluster",
            "nodes": {"count": 32, "flops": 1e12},
            "network": {"topology": "star", "bandwidth": 10e9},
        }
    )


def run(mtbf):
    platform = build_platform()
    jobs = generate_workload(
        WorkloadSpec(
            num_jobs=20,
            mean_interarrival=30.0,
            max_request=16,
            mean_runtime=120.0,
            walltime_slack=5.0,
        ),
        seed=8,
    )
    failures = (
        generate_failures(
            num_nodes=32, horizon=2000.0, mtbf=mtbf, mean_repair=60.0, seed=4
        )
        if mtbf is not None
        else []
    )
    monitor = Simulation(platform, jobs, algorithm="easy", failures=failures).run()
    return jobs, monitor, len(failures)


def main() -> None:
    print(f"{'MTBF/node':>12} {'faults':>7} {'killed':>7} {'completed':>10} "
          f"{'makespan_s':>11}")
    print("-" * 52)
    last = None
    for mtbf in (None, 3000.0, 1000.0, 300.0):
        jobs, monitor, n_faults = run(mtbf)
        killed = sum(1 for j in jobs if j.state is JobState.KILLED)
        completed = sum(1 for j in jobs if j.state is JobState.COMPLETED)
        label = "∞ (none)" if mtbf is None else f"{mtbf:.0f} s"
        print(
            f"{label:>12} {n_faults:>7} {killed:>7} {completed:>10} "
            f"{monitor.makespan():>11.1f}"
        )
        last = monitor

    print()
    print("Gantt of the least reliable run (✗ = killed by node failure):")
    print(render_gantt(last, width=64))


if __name__ == "__main__":
    main()
