#!/usr/bin/env python
"""I/O contention study: PFS checkpoints vs node-local burst buffers.

Eight identical jobs checkpoint 10 GB every iteration.  Against a shared
parallel file system they contend for write bandwidth; with node-local
burst buffers every job writes at full speed.  This example shows how to
author application models directly (without the generator) and how to read
per-job results.

Run with::

    python examples/io_checkpointing.py
"""

from repro import Simulation, platform_from_dict
from repro.application import (
    ApplicationModel,
    BbWriteTask,
    CpuTask,
    Phase,
    PfsWriteTask,
)
from repro.job import Job


def checkpointing_app(use_burst_buffer: bool) -> ApplicationModel:
    """10 iterations of [1 s compute, 10 GB checkpoint]."""
    if use_burst_buffer:
        checkpoint = BbWriteTask(10e9, charge=False, name="bb-checkpoint")
    else:
        checkpoint = PfsWriteTask(10e9, name="pfs-checkpoint")
    return ApplicationModel(
        [Phase([CpuTask(4e12, name="compute"), checkpoint], iterations=10)],
        name="checkpointer",
    )


def run(use_burst_buffer: bool):
    platform = platform_from_dict(
        {
            "name": "io-demo",
            "nodes": {"count": 32, "flops": 1e12},
            "network": {
                "topology": "star",
                "bandwidth": 10e9,
                "pfs_bandwidth": 400e9,
            },
            # Deliberately modest PFS: 8 jobs x 4 nodes want 320 GB/s.
            "pfs": {"read_bw": 80e9, "write_bw": 80e9},
            "burst_buffer": {"read_bw": 10e9, "write_bw": 5e9, "capacity": 1e12},
        }
    )
    jobs = [
        Job(i + 1, checkpointing_app(use_burst_buffer), num_nodes=4)
        for i in range(8)
    ]
    Simulation(platform, jobs, algorithm="fcfs").run()
    return jobs


def main() -> None:
    pfs_jobs = run(use_burst_buffer=False)
    bb_jobs = run(use_burst_buffer=True)

    print("8 concurrent jobs, 10 GB checkpoint per iteration, 10 iterations")
    print()
    print(f"{'job':>5} {'pfs_runtime_s':>14} {'bb_runtime_s':>14}")
    for pfs_job, bb_job in zip(pfs_jobs, bb_jobs):
        print(f"{pfs_job.jid:>5} {pfs_job.runtime:14.1f} {bb_job.runtime:14.1f}")

    mean_pfs = sum(j.runtime for j in pfs_jobs) / len(pfs_jobs)
    mean_bb = sum(j.runtime for j in bb_jobs) / len(bb_jobs)
    print()
    print(f"mean runtime against shared PFS : {mean_pfs:8.1f} s")
    print(f"mean runtime with burst buffers : {mean_bb:8.1f} s")
    print(f"contention penalty              : {mean_pfs / mean_bb:8.2f}x")


if __name__ == "__main__":
    main()
