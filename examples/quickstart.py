#!/usr/bin/env python
"""Quickstart: simulate a synthetic workload on a 32-node cluster.

Builds a platform from an inline JSON description, generates a
reproducible 20-job workload (half of it malleable), runs it under the
malleable-aware scheduler, and prints the summary plus a per-job table.

Run with::

    python examples/quickstart.py
"""

from repro import Simulation, platform_from_dict
from repro.workload import WorkloadSpec, generate_workload


def main() -> None:
    platform = platform_from_dict(
        {
            "name": "quickstart-cluster",
            "nodes": {"count": 32, "flops": 1e12},
            "network": {
                "topology": "star",
                "bandwidth": 10e9,
                "latency": 1e-6,
                "pfs_bandwidth": 200e9,
            },
            "pfs": {"read_bw": 100e9, "write_bw": 80e9},
        }
    )

    spec = WorkloadSpec(
        num_jobs=20,
        mean_interarrival=60.0,
        max_request=32,
        mean_runtime=300.0,
        malleable_fraction=0.5,
    )
    jobs = generate_workload(spec, seed=2022)

    sim = Simulation(platform, jobs, algorithm="malleable")
    monitor = sim.run()

    summary = monitor.summary()
    print(f"simulated {len(jobs)} jobs on {platform.num_nodes} nodes")
    print(f"makespan            : {summary.makespan:10.1f} s")
    print(f"mean wait           : {summary.mean_wait:10.1f} s")
    print(f"mean utilization    : {summary.mean_utilization:10.2%}")
    print(f"reconfigurations    : {summary.total_reconfigurations:7d}")
    print()
    print(f"{'job':>6} {'type':>10} {'nodes':>6} {'wait_s':>8} {'runtime_s':>10}")
    for record in monitor.job_records():
        print(
            f"{record['name']:>6} {record['type']:>10} {record['nodes']:>6} "
            f"{record['wait_time']:8.1f} {record['runtime']:10.1f}"
        )


if __name__ == "__main__":
    main()
