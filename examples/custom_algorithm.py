#!/usr/bin/env python
"""Writing your own scheduling algorithm.

This is the simulator's core use case: plug a custom policy into the
invocation interface and compare it against the built-ins.  The example
implements *smallest-job-first with malleable expansion* in ~40 lines and
races it against FCFS and EASY on the same workload.

Run with::

    python examples/custom_algorithm.py
"""

from repro import Simulation, platform_from_dict
from repro.job import JobType
from repro.scheduler import Algorithm, Invocation, SchedulerContext
from repro.workload import WorkloadSpec, generate_workload


class SmallestFirstExpander(Algorithm):
    """Start the smallest queued job first; expand malleable jobs with
    whatever is left over.

    Demonstrates the three context decision methods: ``start_job``,
    ``reconfigure_job`` (and, not used here, ``kill_job``).
    """

    name = "smallest-first"

    def schedule(self, ctx: SchedulerContext, invocation: Invocation) -> None:
        # 1. Starts: smallest request first (note: deliberately unfair to
        #    big jobs — this is what the comparison below will expose).
        for job in sorted(ctx.pending_jobs, key=lambda j: j.num_nodes):
            free = ctx.free_nodes()
            need = job.num_nodes if job.is_rigid else job.min_nodes
            if need > len(free):
                continue
            size = need if job.is_rigid else min(len(free), job.max_nodes)
            ctx.start_job(job, free[:size])

        # 2. Expansion: hand idle nodes to running malleable jobs.
        if ctx.pending_jobs:
            return  # queued jobs get priority over expansion
        for job in ctx.running_jobs:
            if job.type is not JobType.MALLEABLE:
                continue
            if job.pending_reconfiguration is not None:
                continue
            free = ctx.free_nodes()
            grow = min(len(free), job.max_nodes - len(job.assigned_nodes))
            if grow > 0:
                ctx.reconfigure_job(job, list(job.assigned_nodes) + free[:grow])


def main() -> None:
    platform_spec = {
        "name": "custom-demo",
        "nodes": {"count": 64, "flops": 1e12},
        "network": {"topology": "star", "bandwidth": 10e9, "pfs_bandwidth": 200e9},
        "pfs": {"read_bw": 100e9, "write_bw": 100e9},
    }
    spec = WorkloadSpec(
        num_jobs=40,
        mean_interarrival=15.0,
        max_request=32,
        mean_runtime=120.0,
        malleable_fraction=0.5,
    )

    print(f"{'algorithm':>16} {'makespan_s':>11} {'mean_wait_s':>12} "
          f"{'max_wait_s':>11} {'util':>6}")
    print("-" * 62)
    for algorithm in ["fcfs", "easy", SmallestFirstExpander()]:
        platform = platform_from_dict(platform_spec)
        jobs = generate_workload(spec, seed=99)
        monitor = Simulation(platform, jobs, algorithm=algorithm).run()
        s = monitor.summary()
        name = algorithm if isinstance(algorithm, str) else algorithm.name
        print(
            f"{name:>16} {s.makespan:11.1f} {s.mean_wait:12.1f} "
            f"{s.max_wait:11.1f} {s.mean_utilization:6.2f}"
        )
    print()
    print("smallest-first trades worst-case wait (big jobs starve) for")
    print("throughput — exactly the kind of policy question the simulator")
    print("exists to answer before touching a production scheduler.")


if __name__ == "__main__":
    main()
