#!/usr/bin/env python
"""The real-workload malleability study, end to end.

Reproduces the methodology of the malleable-workload evaluation on a
Parallel Workloads Archive trace: the bundled ``data/study_trace.swf``
fixture is converted into rigid/moldable/malleable job mixes
(``type_probabilities`` sweeping 100/0/0 → 0/0/100, Amdahl-shaped
compute drawn from the ``parallel_fractions`` grid), replayed under the
three ported scheduling strategies, and folded into one per-mix /
per-strategy comparison table.

This script drives the committed campaign file
``examples/malleability_study.json`` through :mod:`repro.campaign` —
the same sweep runs on any executor backend::

    python examples/malleability_study.py
    python examples/malleability_study.py --executor process-pool --workers 8
    python examples/malleability_study.py --max-jobs 300   # quick pass

Equivalent CLI pipeline (see docs/STUDY.md for the full walkthrough)::

    elastisim campaign run --spec examples/malleability_study.json \
        --output-dir out
    elastisim campaign report out/scenarios.jsonl \
        --group-by workload,algorithm --output-dir out

Substitute a real archive trace via ``--trace`` for published-quality
numbers; the fixture is a synthetic stand-in with archive-like shape
(see ``data/make_study_trace.py``).
"""

import argparse
from pathlib import Path

from repro.campaign import (
    CampaignRunner,
    CampaignStudyReport,
    campaign_name,
    expand_campaign,
    load_campaign_spec,
)
from repro.campaign.spec import _pin_workload_file

SPEC = Path(__file__).resolve().parent / "malleability_study.json"


def load_scenarios(spec_path: Path, trace: str, max_jobs: int, seeds: str):
    spec = load_campaign_spec(spec_path)
    for workload in spec["workloads"]:
        block = workload["swf"]
        if trace:
            block["file"] = trace
        if max_jobs:
            block["max_jobs"] = max_jobs
    if seeds:
        spec["seeds"] = [int(s) for s in seeds.split(",")]
    scenarios = expand_campaign(spec)
    for scenario in scenarios:
        _pin_workload_file(scenario, spec_path.parent)
    return campaign_name(spec), scenarios


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--spec", type=Path, default=SPEC)
    parser.add_argument("--trace", default="", help="replace the bundled fixture trace")
    parser.add_argument("--max-jobs", type=int, default=0,
                        help="truncate the trace (0 = replay everything)")
    parser.add_argument("--seeds", default="", help="override seeds, e.g. 0,1,2")
    parser.add_argument("--executor", default=None,
                        help="campaign executor backend (default: serial)")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--output-dir", type=Path, default=None,
                        help="write scenarios.jsonl + report.json/report.md here")
    args = parser.parse_args()

    name, scenarios = load_scenarios(args.spec, args.trace, args.max_jobs, args.seeds)
    print(f"{name}: {len(scenarios)} scenarios "
          f"({args.executor or 'serial'} executor, {args.workers} workers)")

    runner = CampaignRunner(
        scenarios, name=name, workers=args.workers, executor=args.executor
    )
    campaign = runner.run()
    print(f"ran {campaign.executed} scenarios in {campaign.wall_s:.1f}s "
          f"({len(campaign.failed)} failed)")

    report = CampaignStudyReport(group_by=("workload", "algorithm"))
    report.fold_records(campaign.records)
    print()
    print(report.to_markdown(title=f"Malleability study: {name}"))

    if args.output_dir is not None:
        campaign.write(args.output_dir)
        paths = report.write(args.output_dir,
                             title=f"Malleability study: {name}")
        print(f"artifacts in {args.output_dir} "
              f"(report: {paths['json'].name}, {paths['markdown'].name})")


if __name__ == "__main__":
    main()
