#!/usr/bin/env python
"""Hybrid batch/on-demand scheduling under a power corridor.

A 32-node machine declares per-node draw (100 W idle, 300 W busy) and a
system power corridor of 8 kW — enough for 24 busy nodes, not all 32.
A quarter of the workload is on-demand; every job checkpoints 2 GB of
state.  The example races plain FCFS (class-blind, corridor-blind)
against the shipped ``hybrid-corridor`` policy, which

* admits on-demand jobs immediately by preempting the cheapest batch
  victims (they requeue and resume from their checkpoint, paying the
  restart read),
* refuses starts that would push the settled draw past the corridor.

Both runs execute with the flight-recorder invariant checker enabled, so
the corridor claim is audited, not just reported.  Expected outcome: the
on-demand class waits ~500 s under FCFS and ~0 s under hybrid-corridor,
while the hybrid run's peak draw sits exactly at the corridor.

Run with::

    python examples/hybrid_corridor.py
"""

from repro import Simulation, platform_from_dict
from repro.workload import WorkloadSpec, generate_workload

PLATFORM = {
    "name": "hybrid-demo",
    "nodes": {"count": 32, "flops": 1e9},
    "network": {"topology": "star", "bandwidth": 1e10, "pfs_bandwidth": 1e10},
    "pfs": {"read_bw": 1e10, "write_bw": 1e10},
    # 32 idle nodes draw 3.2 kW; the corridor admits 24 busy nodes.
    "power": {"idle_watts": 100.0, "peak_watts": 300.0, "corridor_watts": 8000.0},
}

WORKLOAD = WorkloadSpec(
    num_jobs=40,
    mean_interarrival=30.0,
    max_request=16,
    mean_runtime=300.0,
    node_flops=1e9,
    ondemand_fraction=0.25,
    checkpoint_bytes=2e9,
)


def run(algorithm: str):
    platform = platform_from_dict(PLATFORM)
    jobs = generate_workload(WORKLOAD, seed=0)
    monitor = Simulation(
        platform, jobs, algorithm=algorithm, checkpoint_restart=True
    ).run(check_invariants=True)
    return monitor


def main() -> None:
    print(
        f"{'algorithm':>16} {'class':>10} {'mean_wait_s':>12} "
        f"{'mean_turn_s':>12} {'jobs':>5}   {'peak_W':>7} {'energy_MJ':>10}"
    )
    print("-" * 80)
    waits = {}
    for algorithm in ("fcfs", "hybrid-corridor"):
        monitor = run(algorithm)
        energy = monitor.power.energy_record()
        by_class = monitor.summary_by_class()
        for job_class in sorted(by_class):
            stats = by_class[job_class]
            print(
                f"{algorithm:>16} {job_class:>10} {stats.mean_wait:12.1f} "
                f"{stats.mean_turnaround:12.1f} {stats.completed_jobs:5d}   "
                f"{float(energy['max_power_watts']):7.0f} "
                f"{float(energy['total_joules']) / 1e6:10.2f}"
            )
        waits[algorithm] = by_class["on-demand"].mean_wait
        corridor = energy["corridor_watts"]
        held = float(energy["max_power_watts"]) <= float(corridor)
        print(
            f"{'':>16} corridor {float(corridor):.0f} W "
            f"{'held' if held else 'EXCEEDED'} "
            f"(invariant-checked: {algorithm == 'hybrid-corridor'})"
        )

    # The headline: preemptive admission cuts on-demand response to a
    # fraction of what class-blind FCFS delivers on the same trace.
    assert waits["hybrid-corridor"] <= 0.25 * waits["fcfs"], waits
    print(
        f"\non-demand mean wait: fcfs {waits['fcfs']:.1f} s -> "
        f"hybrid-corridor {waits['hybrid-corridor']:.1f} s"
    )


if __name__ == "__main__":
    main()
