#!/usr/bin/env python
"""The paper's headline experiment, as a runnable example.

Simulates the *same* job mix twice — once all-rigid under EASY
backfilling, once all-malleable under the fair-share malleable scheduler —
and renders the two cluster-utilization timelines side by side as ASCII
sparklines, followed by the metric comparison.

Run with::

    python examples/malleable_vs_rigid.py
"""

from repro import Simulation, platform_from_dict
from repro.workload import WorkloadSpec, generate_workload

BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(timeline, horizon, width=72):
    """Render a (time, fraction) step series as a fixed-width bar string."""
    samples = []
    idx = 0
    for column in range(width):
        t = horizon * column / width
        while idx + 1 < len(timeline) and timeline[idx + 1][0] <= t:
            idx += 1
        samples.append(timeline[idx][1])
    return "".join(BLOCKS[min(8, int(round(s * 8)))] for s in samples)


def build_platform():
    return platform_from_dict(
        {
            "name": "demo-128",
            "nodes": {"count": 128, "flops": 1e12},
            "network": {
                "topology": "star",
                "bandwidth": 10e9,
                "latency": 1e-6,
                "pfs_bandwidth": 400e9,
            },
            "pfs": {"read_bw": 100e9, "write_bw": 80e9},
        }
    )


def run(malleable: bool):
    spec = WorkloadSpec(
        num_jobs=60,
        mean_interarrival=20.0,
        max_request=64,
        mean_runtime=120.0,
        malleable_fraction=1.0 if malleable else 0.0,
    )
    jobs = generate_workload(spec, seed=42)
    algorithm = "malleable" if malleable else "easy"
    monitor = Simulation(build_platform(), jobs, algorithm=algorithm).run()
    return monitor


def main() -> None:
    rigid = run(malleable=False)
    flexible = run(malleable=True)
    horizon = max(rigid.makespan(), flexible.makespan())

    print("cluster utilization over time (same 60-job mix, seed 42)")
    print()
    print(f"rigid/EASY  |{sparkline(rigid.utilization_timeline(), horizon)}|")
    print(f"malleable   |{sparkline(flexible.utilization_timeline(), horizon)}|")
    print(f"             0 {'-' * 56} {horizon:.0f} s")
    print()

    r, m = rigid.summary(), flexible.summary()
    print(f"{'metric':24} {'rigid/easy':>12} {'malleable':>12}")
    print("-" * 50)
    rows = [
        ("makespan [s]", r.makespan, m.makespan),
        ("mean wait [s]", r.mean_wait, m.mean_wait),
        ("mean bounded slowdown", r.mean_bounded_slowdown, m.mean_bounded_slowdown),
        ("mean utilization", r.mean_utilization, m.mean_utilization),
        ("reconfigurations", r.total_reconfigurations, m.total_reconfigurations),
    ]
    for label, a, b in rows:
        print(f"{label:24} {a:12.2f} {b:12.2f}")
    print()
    speedup = r.makespan / m.makespan
    print(f"malleability shortens the campaign by {speedup:.2f}x on this mix")


if __name__ == "__main__":
    main()
