#!/usr/bin/env python
"""Scripting your own experiment: a malleable-share x load sweep.

Shows the intended research workflow since the campaign subsystem
landed: declare the parameter grid, hand it to :class:`CampaignRunner`,
and read the tidy per-scenario records back.  The runner fans scenarios
out over all cores and memoises results in a content-addressed cache —
re-running this script is near-instant, and editing any parameter only
recomputes the scenarios it touches.  This is a miniature of the E2
experiment from EXPERIMENTS.md with a second axis.

Run with::

    python examples/parameter_sweep.py

(Equivalent declarative form: ``elastisim campaign run --spec
docs/examples/sweep.json`` — see docs/CAMPAIGNS.md.)
"""

import numpy as np

from repro.campaign import CampaignRunner, ResultCache, ScenarioSpec, scenarios_from_grid

NUM_NODES = 64
NODE_FLOPS = 1e12
NUM_JOBS = 30
SEED = 1234

PLATFORM = {
    "nodes": {"count": NUM_NODES, "flops": NODE_FLOPS},
    "network": {"topology": "star", "bandwidth": 10e9},
}


def build_scenario(load: float, share: float) -> ScenarioSpec:
    mean_interarrival = 20.0
    exps = np.arange(0, int(np.log2(32)) + 1)
    mean_request = float(np.mean(2.0**exps))
    mean_runtime = load * mean_interarrival * NUM_NODES / mean_request
    return ScenarioSpec(
        platform=PLATFORM,
        workload={
            "generate": {
                "num_jobs": NUM_JOBS,
                "mean_interarrival": mean_interarrival,
                "max_request": 32,
                "mean_runtime": mean_runtime,
                "malleable_fraction": share,
                "walltime_slack": 10.0,
                "node_flops": NODE_FLOPS,
            }
        },
        algorithm="malleable" if share > 0 else "easy",
        seed=SEED,
        params={"load": load, "share": share},
    )


def main() -> None:
    scenarios = scenarios_from_grid(
        {"load": [0.5, 0.9, 1.3], "share": [0.0, 0.5, 1.0]}, build_scenario
    )
    report = CampaignRunner(
        scenarios, name="parameter-sweep", cache=ResultCache()
    ).run()
    print(
        f"{len(report.ok)}/{len(report.records)} scenarios "
        f"({report.cache_hits} cached) in {report.wall_s:.2f}s "
        f"on {report.workers} workers\n"
    )

    print(f"{'load':>6} {'malleable_%':>12} {'makespan_s':>11} "
          f"{'mean_wait_s':>12} {'mean_util':>10}")
    print("-" * 56)
    last_load = None
    for record in report.records:
        load, share = record["params"]["load"], record["params"]["share"]
        if last_load is not None and load != last_load:
            print()
        last_load = load
        s = record["result"]["summary"]
        print(
            f"{load:>6.1f} {int(share * 100):>12} {s['makespan']:>11.1f} "
            f"{s['mean_wait']:>12.1f} {s['mean_utilization']:>10.2f}"
        )
    print()
    print("reading guide: malleability matters most when the machine is")
    print("oversubscribed (load > 1) — at low load every policy looks fine.")


if __name__ == "__main__":
    main()
