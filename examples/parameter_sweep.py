#!/usr/bin/env python
"""Scripting your own experiment: a malleable-share x load sweep.

Shows the intended research workflow: build a parameter grid, run one
simulation per point (fresh platform each run — platforms carry node
state), and collect a tidy results table you can feed to any plotting
tool.  This is a miniature of the E2 experiment from EXPERIMENTS.md with
a second axis.

Run with::

    python examples/parameter_sweep.py
"""

import numpy as np

from repro import Simulation, platform_from_dict
from repro.workload import WorkloadSpec, generate_workload

NUM_NODES = 64
NODE_FLOPS = 1e12
NUM_JOBS = 30
SEED = 1234


def build_platform():
    return platform_from_dict(
        {
            "nodes": {"count": NUM_NODES, "flops": NODE_FLOPS},
            "network": {"topology": "star", "bandwidth": 10e9},
        }
    )


def build_jobs(malleable_share: float, load: float):
    mean_interarrival = 20.0
    exps = np.arange(0, int(np.log2(32)) + 1)
    mean_request = float(np.mean(2.0**exps))
    mean_runtime = load * mean_interarrival * NUM_NODES / mean_request
    spec = WorkloadSpec(
        num_jobs=NUM_JOBS,
        mean_interarrival=mean_interarrival,
        max_request=32,
        mean_runtime=mean_runtime,
        malleable_fraction=malleable_share,
        walltime_slack=10.0,
        node_flops=NODE_FLOPS,
    )
    return generate_workload(spec, seed=SEED)


def main() -> None:
    shares = [0.0, 0.5, 1.0]
    loads = [0.5, 0.9, 1.3]

    print(f"{'load':>6} {'malleable_%':>12} {'makespan_s':>11} "
          f"{'mean_wait_s':>12} {'mean_util':>10}")
    print("-" * 56)
    for load in loads:
        for share in shares:
            jobs = build_jobs(share, load)
            algorithm = "malleable" if share > 0 else "easy"
            monitor = Simulation(build_platform(), jobs, algorithm=algorithm).run()
            s = monitor.summary()
            print(
                f"{load:>6.1f} {int(share * 100):>12} {s.makespan:>11.1f} "
                f"{s.mean_wait:>12.1f} {s.mean_utilization:>10.2f}"
            )
        print()
    print("reading guide: malleability matters most when the machine is")
    print("oversubscribed (load > 1) — at low load every policy looks fine.")


if __name__ == "__main__":
    main()
