"""Byte-identity harness for snapshot/resume (developer tool).

Cold-runs scenarios with periodic snapshots, resumes every snapshot,
and asserts the resumed ``run_record`` and ``processed_events`` are
byte-identical to the cold run.  Also cross-checks that taking
snapshots does not perturb the run itself.

Usage: PYTHONPATH=src python tools/replay_harness.py [seeds...]
"""

from __future__ import annotations

import json
import sys

from repro.batch import Simulation
from repro.fuzz.generate import generate_scenario
from repro.replay import Snapshot


def record_of(monitor) -> str:
    return json.dumps(monitor.run_record(), sort_keys=True)


def check_scenario(spec, snapshot_every=40, roundtrip=True) -> list:
    """Returns a list of failure strings (empty = byte-identical)."""
    fails = []

    plain = Simulation.from_spec(spec)
    plain_rec = record_of(plain.run())
    plain_pe = plain.env.processed_events

    sim = Simulation.from_spec(spec)
    cold_rec = record_of(sim.run(snapshot_every=snapshot_every))
    cold_pe = sim.env.processed_events
    if cold_rec != plain_rec or cold_pe != plain_pe:
        fails.append(
            f"snapshotting perturbed the run: events {plain_pe} -> {cold_pe}"
        )

    for i, snap in enumerate(sim.snapshots):
        if roundtrip:
            snap = Snapshot.from_dict(json.loads(json.dumps(snap.to_dict())))
        try:
            rsim = Simulation.resume(snap)
            rrec = record_of(rsim.run())
        except Exception as exc:  # noqa: BLE001 - harness reports all failures
            fails.append(
                f"snap[{i}] t={snap.time:g} ev={snap.processed_events}: "
                f"{type(exc).__name__}: {exc}"
            )
            continue
        if rrec != cold_rec:
            fails.append(
                f"snap[{i}] t={snap.time:g} ev={snap.processed_events}: "
                "record diverged"
            )
        elif rsim.env.processed_events != cold_pe:
            fails.append(
                f"snap[{i}] t={snap.time:g} ev={snap.processed_events}: "
                f"processed {rsim.env.processed_events} != {cold_pe}"
            )
    return fails


def main(argv) -> int:
    seeds = [int(s) for s in argv] or list(range(20))
    bad = 0
    for seed in seeds:
        spec = generate_scenario(seed)
        try:
            fails = check_scenario(spec)
        except Exception as exc:  # noqa: BLE001
            print(f"seed {seed}: HARNESS ERROR {type(exc).__name__}: {exc}")
            bad += 1
            continue
        if fails:
            bad += 1
            print(f"seed {seed} ({spec['algorithm']}): {len(fails)} failures")
            for f in fails[:4]:
                print(f"  {f}")
        else:
            print(f"seed {seed} ({spec['algorithm']}): ok")
    print(f"{len(seeds) - bad}/{len(seeds)} scenarios byte-identical")
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
