"""Execution engine: runs application models on node allocations.

The :class:`JobExecutor` turns a job's :class:`~repro.application.ApplicationModel`
into DES processes and fair-share activities:

* **cpu** tasks become one compute activity per allocated node;
* **comm** tasks become one flow per pattern edge over the platform routes;
* **pfs_read / pfs_write** tasks become flows through the node↔PFS routes
  plus the PFS's shared read/write service resources (the E4 contention
  point);
* **bb_read / bb_write** tasks run against the node-local burst buffer;
* **delay** tasks are plain timeouts;
* **evolving_request** tasks call back into the batch system.

At every *scheduling point* (iteration/phase boundary with
``scheduling_point=True``) the executor notifies the batch system, then
applies any pending :class:`~repro.job.ReconfigurationOrder`: it simulates
the data redistribution over the network (cost model documented in
DESIGN.md §5) and commits the new allocation.

Kills (walltime, scheduler) arrive as process interrupts; the executor
cancels its in-flight activities and exits cleanly.
"""

from repro.engine.executor import EngineError, JobExecutor, transfer

__all__ = ["EngineError", "JobExecutor", "transfer"]
