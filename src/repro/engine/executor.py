"""The per-job executor."""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Protocol, Sequence

from repro.application import (
    BbReadTask,
    BbWriteTask,
    CommTask,
    CpuTask,
    DelayTask,
    EvolvingRequest,
    GpuTask,
    PfsReadTask,
    PfsWriteTask,
    Phase,
    Task,
)
from repro.des import Environment, Event, Interrupt
from repro.job import Job
from repro.platform import Node, Platform, Route
from repro.sharing import Activity, FairShareModel


class EngineError(Exception):
    """Raised when a job's model cannot run on the given platform."""


class BatchCallbacks(Protocol):
    """What the executor needs from the batch system.

    Methods are synchronous: they are invoked at the current simulation
    instant and may set ``job.pending_reconfiguration`` before returning.
    """

    def on_scheduling_point(self, job: Job) -> None:  # pragma: no cover - protocol
        ...

    def on_evolving_request(self, job: Job, desired_nodes: int) -> None:  # pragma: no cover
        ...

    def commit_reconfiguration(  # pragma: no cover
        self, job: Job, new_nodes: Sequence[Node]
    ) -> None:
        ...


def transfer(
    env: Environment,
    model: FairShareModel,
    route: Route,
    nbytes: float,
    *,
    extra_usages: Optional[dict] = None,
    payload: Any = None,
) -> Activity:
    """Create (and start) a flow activity along ``route``.

    Route latency is charged by *inflating the work* with an equivalent
    byte count at the route's bottleneck bandwidth — the standard trick to
    keep latency inside a single fluid activity.  For batch workloads
    (latencies ~1 µs, transfers ~GB) the effect is negligible but non-zero,
    matching SimGrid's ``latency + size/bandwidth`` shape.
    """
    usages = {res: 1.0 for res in route.resources}
    if extra_usages:
        for res, factor in extra_usages.items():
            usages[res] = max(usages.get(res, 0.0), factor)
    work = float(nbytes)
    if route.latency > 0 and usages:
        bottleneck = min(res.capacity for res in usages)
        work += route.latency * bottleneck
    activity = Activity(work, usages, payload=payload)
    model.execute(activity)
    return activity


class JobExecutor:
    """Executes one job's application model; one instance per job start.

    Parameters
    ----------
    env, platform, model:
        The simulation substrate.
    job:
        Must already be in RUNNING state with its allocation assigned.
    batch:
        Callback sink (the batch system, or a stub in tests).
    """

    def __init__(
        self,
        env: Environment,
        platform: Platform,
        model: FairShareModel,
        job: Job,
        batch: BatchCallbacks,
    ) -> None:
        self.env = env
        self.platform = platform
        self.model = model
        self.job = job
        self.batch = batch
        #: Flight recorder shared with the batch system (None when tracing
        #: is off — every emission site guards on that, and test stubs
        #: without the attribute read as disabled).
        self.tracer = getattr(batch, "tracer", None)
        self._outstanding: List[Activity] = []
        self._current_wait: Optional[Event] = None
        self._parallel_branches: List = []

    # -- top level ---------------------------------------------------------

    def run(self) -> Generator[Event, Any, str]:
        """Process body: returns "completed" or "killed".

        The caller (batch system) interrupts this process to kill the job;
        the executor cancels its in-flight activities before re-raising is
        *not* needed — it swallows the interrupt and reports "killed".
        """
        job = self.job
        try:
            for phase_idx, phase in enumerate(job.application.phases):
                iterations = phase.num_iterations(job.expression_variables())
                for iteration in range(iterations):
                    yield from self._run_iteration(phase, iteration)
                    if phase.scheduling_point:
                        # Scheduling points are the checkpoint locations:
                        # record progress for checkpoint/restart requeues.
                        job.checkpoint_marker = (phase_idx, iteration + 1, iterations)
                        yield from self._scheduling_point()
            return "completed"
        except Interrupt as intr:
            self._cancel_outstanding()
            job.kill_reason = str(intr.cause) if intr.cause is not None else "killed"
            return "killed"

    # -- phases and tasks -------------------------------------------------------

    def _run_iteration(
        self, phase: Phase, iteration: int
    ) -> Generator[Event, Any, None]:
        if phase.parallel:
            yield from self._run_parallel_tasks(phase, iteration)
            return
        for task in phase.tasks:
            yield from self._run_task(task, iteration)

    def _run_parallel_tasks(
        self, phase: Phase, iteration: int
    ) -> Generator[Event, Any, None]:
        """Run all of a parallel phase's tasks concurrently.

        Each task executes in its own branch process with its own activity
        tracking (a fresh executor sharing this one's substrate), so a kill
        of the main process can cancel every branch cleanly.
        """
        branches = []
        for task in phase.tasks:
            branch_exec = JobExecutor(
                self.env, self.platform, self.model, self.job, self.batch
            )
            proc = self.env.process(
                self._branch(branch_exec, task, iteration),
                name=f"{self.job.name}/{phase.name}/{task.name}",
            )
            branches.append(proc)
        self._parallel_branches = branches
        condition = self.env.all_of(branches)
        self._current_wait = condition
        yield condition
        self._current_wait = None
        self._parallel_branches = []

    @staticmethod
    def _branch(executor: "JobExecutor", task: Task, iteration: int):
        try:
            yield from executor._run_task(task, iteration)
        except Interrupt:
            executor._cancel_outstanding()

    def _run_task(self, task: Task, iteration: int) -> Generator[Event, Any, None]:
        tracer = self.tracer
        if tracer is None:
            yield from self._execute_task(task, iteration)
            return
        # Traced: record one span per node the task occupied.  The node
        # set is sampled at task start; compute/IO/comm tasks never change
        # it mid-flight (an EvolvingRequest task that reconfigures is
        # attributed to the allocation it was issued from).
        start = self.env.now
        node_indices = [node.index for node in self.job.assigned_nodes]
        yield from self._execute_task(task, iteration)
        end = self.env.now
        if end > start:
            for index in node_indices:
                tracer.span(
                    "task.run",
                    f"node:{index}",
                    task.name,
                    start,
                    end,
                    jid=self.job.jid,
                    task=type(task).__name__,
                    iteration=iteration,
                )

    def _execute_task(self, task: Task, iteration: int) -> Generator[Event, Any, None]:
        nodes = self.job.assigned_nodes
        n = len(nodes)
        variables = self.job.expression_variables(
            iteration=iteration,
            gpus_per_node=nodes[0].gpus if nodes else 0,
        )

        if isinstance(task, CpuTask):
            flops = task.flops_per_node(variables, n)
            if flops <= 0:
                return
            payload = (self.job.jid, task.name)
            activities = [
                Activity.unchecked(flops, {node.cpu: 1.0}, payload=payload)
                for node in nodes
            ]
            yield from self._wait_all(activities)
            return

        if isinstance(task, GpuTask):
            flops = task.flops_per_node(variables, n)
            if flops <= 0:
                return
            payload = (self.job.jid, task.name)
            activities = []
            for node in nodes:
                if node.gpu is None:
                    raise EngineError(
                        f"Job {self.job.name}: task {task.name!r} needs GPUs, "
                        f"but node {node.name} has none"
                    )
                activities.append(
                    Activity.unchecked(flops, {node.gpu: 1.0}, payload=payload)
                )
            yield from self._wait_all(activities)
            return

        if isinstance(task, CommTask):
            nbytes = task.message_size(variables)
            if nbytes <= 0 or n <= 1:
                return
            activities = []
            for src_rank, dst_rank in task.flows(n):
                route = self.platform.route(nodes[src_rank].index, nodes[dst_rank].index)
                if not route.resources and route.latency == 0:
                    continue  # same-node "transfer" is free
                activities.append(
                    transfer(
                        self.env,
                        self.model,
                        route,
                        nbytes,
                        payload=(self.job.jid, task.name, src_rank, dst_rank),
                    )
                )
            yield from self._wait_started(activities)
            return

        if isinstance(task, PfsReadTask):
            yield from self._run_pfs_io(task, variables, read=True)
            return

        if isinstance(task, PfsWriteTask):
            yield from self._run_pfs_io(task, variables, read=False)
            return

        if isinstance(task, BbReadTask):
            yield from self._run_bb_io(task, variables, read=True)
            return

        if isinstance(task, BbWriteTask):
            yield from self._run_bb_io(task, variables, read=False)
            return

        if isinstance(task, DelayTask):
            duration = task.duration(variables)
            if duration > 0:
                yield self.env.timeout(duration)
            return

        if isinstance(task, EvolvingRequest):
            desired = task.desired_nodes(variables)
            if desired != n:
                self.job.evolving_request = desired
                self.job.evolving_denied = False
                self.batch.on_evolving_request(self.job, desired)
                if (
                    task.blocking
                    and self.job.pending_reconfiguration is None
                    and not self.job.evolving_denied
                ):
                    # Blocking semantics: suspend until the scheduler grants
                    # (issues an order) or explicitly denies the request.
                    wait = Event(self.env)
                    self.job.evolving_wait_event = wait
                    self._current_wait = wait
                    yield wait
                    self._current_wait = None
                    self.job.evolving_wait_event = None
                # An evolving request is itself a scheduling point: apply
                # whatever the scheduler granted right away.
                yield from self._apply_pending_reconfiguration()
                self.job.evolving_request = None
                self.job.evolving_denied = False
            return

        raise EngineError(f"Unknown task type {type(task).__name__}")

    def _run_pfs_io(self, task, variables, *, read: bool) -> Generator[Event, Any, None]:
        pfs = self.platform.pfs
        if pfs is None:
            raise EngineError(
                f"Job {self.job.name}: task {task.name!r} needs a PFS, "
                f"but platform {self.platform.name!r} has none"
            )
        nodes = self.job.assigned_nodes
        nbytes = task.bytes_per_node(variables, len(nodes))
        if nbytes <= 0:
            return
        service = pfs.read if read else pfs.write
        activities = []
        for node in nodes:
            route = (
                self.platform.route_from_pfs(node.index)
                if read
                else self.platform.route_to_pfs(node.index)
            )
            activities.append(
                transfer(
                    self.env,
                    self.model,
                    route,
                    nbytes,
                    extra_usages={service: 1.0},
                    payload=(self.job.jid, task.name, node.index),
                )
            )
        yield from self._wait_started(activities)

    def _run_bb_io(self, task, variables, *, read: bool) -> Generator[Event, Any, None]:
        nodes = self.job.assigned_nodes
        nbytes = task.bytes_per_node(variables, len(nodes))
        if nbytes <= 0:
            return
        activities = []
        for node in nodes:
            if node.bb is None:
                raise EngineError(
                    f"Job {self.job.name}: task {task.name!r} needs burst "
                    f"buffers, but node {node.name} has none"
                )
            resource = node.bb.read if read else node.bb.write
            activities.append(
                Activity(
                    nbytes,
                    {resource: 1.0},
                    payload=(self.job.jid, task.name, node.index),
                )
            )
        yield from self._wait_all(activities)
        if not read and getattr(task, "charge", False):
            for node in nodes:
                node.bb.charge(nbytes)

    # -- scheduling points and reconfiguration ------------------------------

    def _scheduling_point(self) -> Generator[Event, Any, None]:
        self.job.scheduling_points_seen += 1
        self.batch.on_scheduling_point(self.job)
        yield from self._apply_pending_reconfiguration()

    def _apply_pending_reconfiguration(self) -> Generator[Event, Any, None]:
        order = self.job.pending_reconfiguration
        if order is None:
            return
        old_nodes = list(self.job.assigned_nodes)
        new_nodes = list(order.target)
        if {n.index for n in old_nodes} == {n.index for n in new_nodes}:
            self.job.pending_reconfiguration = None
            return  # no-op order

        # The order stays set until the commit: the scheduler-context guard
        # ("job already has a pending order") must hold through the whole
        # redistribution, or a second order issued mid-flight would be
        # computed from a stale allocation.  It also lets a kill during
        # redistribution release the reserved target nodes.
        yield from self._redistribute(old_nodes, new_nodes)

        self.batch.commit_reconfiguration(self.job, new_nodes)
        self.job.pending_reconfiguration = None
        self.job.reconfigurations_applied += 1

    def _redistribute(
        self, old_nodes: List[Node], new_nodes: List[Node]
    ) -> Generator[Event, Any, None]:
        """Simulate data movement from the old to the new allocation.

        Cost model: the application holds ``data_per_node`` bytes on each of
        the ``|A|`` old nodes (total ``D``).  After reconfiguration each of
        the ``|B|`` new nodes must hold ``D / |B|``.  Every *leaving* node
        ships its full ``data_per_node``; every *joining* node receives its
        new share ``D / |B|``.  Transfers run as parallel network flows
        paired round-robin with the surviving nodes.
        """
        job = self.job
        per_node = job.application.redistribution_bytes_per_node(
            job.expression_variables()
        )
        if per_node <= 0:
            return
        old_set = {n.index for n in old_nodes}
        new_set = {n.index for n in new_nodes}
        leaving = [n for n in old_nodes if n.index not in new_set]
        joining = [n for n in new_nodes if n.index not in old_set]
        staying = [n for n in old_nodes if n.index in new_set]

        total = per_node * len(old_nodes)
        new_share = total / len(new_nodes)

        activities = []
        moved = 0.0
        # Leaving nodes push their state to a surviving or joining node.
        sinks = staying or joining
        for k, node in enumerate(leaving):
            dst = sinks[k % len(sinks)]
            route = self.platform.route(node.index, dst.index)
            if route.resources or route.latency > 0:
                activities.append(
                    transfer(self.env, self.model, route, per_node,
                             payload=(job.jid, "redistribute-out"))
                )
            moved += per_node
        # Joining nodes pull their share from surviving (or leaving) nodes.
        sources = staying or leaving
        for k, node in enumerate(joining):
            src = sources[k % len(sources)]
            route = self.platform.route(src.index, node.index)
            if route.resources or route.latency > 0:
                activities.append(
                    transfer(self.env, self.model, route, new_share,
                             payload=(job.jid, "redistribute-in"))
                )
            moved += new_share

        job.redistribution_bytes_moved += moved
        start = self.env.now
        yield from self._wait_started(activities)
        tracer = self.tracer
        if tracer is not None and self.env.now > start:
            tracer.span(
                "reconf.redistribute",
                "batch",
                job.name,
                start,
                self.env.now,
                jid=job.jid,
                bytes=moved,
                leaving=len(leaving),
                joining=len(joining),
            )

    # -- waiting helpers ----------------------------------------------------

    def _wait_all(self, activities: List[Activity]) -> Generator[Event, Any, None]:
        """Start ``activities`` and wait for all; cancellable via interrupt."""
        self.model.execute_many(activities)
        yield from self._wait_started(activities)

    def _wait_started(self, activities: List[Activity]) -> Generator[Event, Any, None]:
        """Wait for already-started activities; cancellable via interrupt."""
        if not activities:
            return
        self._outstanding = activities
        condition = self.env.all_of([act.done for act in activities])
        self._current_wait = condition
        # No try/finally: on an interrupt the state must survive so that
        # run()'s handler can cancel the in-flight activities.
        yield condition
        self._current_wait = None
        self._outstanding = []

    def _cancel_outstanding(self) -> None:
        """Abort in-flight activities (and parallel branches) after an
        interrupt."""
        for act in self._outstanding:
            self.model.cancel(act)
        for proc in self._parallel_branches:
            if proc.is_alive:
                proc.interrupt("parent-killed")
        if self._current_wait is not None:
            # The condition will fail when the cancelled activities fail;
            # nobody waits for it anymore, so mark the failure as handled.
            self._current_wait.defuse()
        self._outstanding = []
        self._parallel_branches = []
        self._current_wait = None
