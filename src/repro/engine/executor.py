"""The per-job executor."""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Protocol, Sequence

from repro.application import (
    BbReadTask,
    BbWriteTask,
    CommTask,
    CpuTask,
    DelayTask,
    EvolvingRequest,
    GpuTask,
    PfsReadTask,
    PfsWriteTask,
    Phase,
    Task,
)
from repro.des import Environment, Event, Interrupt
from repro.job import Job
from repro.platform import Node, Platform, Route
from repro.sharing import Activity, FairShareModel


class EngineError(Exception):
    """Raised when a job's model cannot run on the given platform."""


class BatchCallbacks(Protocol):
    """What the executor needs from the batch system.

    Methods are synchronous: they are invoked at the current simulation
    instant and may set ``job.pending_reconfiguration`` before returning.
    """

    def on_scheduling_point(self, job: Job) -> None:  # pragma: no cover - protocol
        ...

    def on_evolving_request(self, job: Job, desired_nodes: int) -> None:  # pragma: no cover
        ...

    def commit_reconfiguration(  # pragma: no cover
        self, job: Job, new_nodes: Sequence[Node]
    ) -> None:
        ...

    def place_tasks(self, job: Job, task: Task) -> Optional[List[Node]]:  # pragma: no cover
        """Application-level placement: the subset of the job's allocation
        the task should occupy, or None for the whole allocation."""
        ...


def transfer(
    env: Environment,
    model: FairShareModel,
    route: Route,
    nbytes: float,
    *,
    extra_usages: Optional[dict] = None,
    payload: Any = None,
) -> Activity:
    """Create (and start) a flow activity along ``route``.

    Route latency is charged by *inflating the work* with an equivalent
    byte count at the route's bottleneck bandwidth — the standard trick to
    keep latency inside a single fluid activity.  For batch workloads
    (latencies ~1 µs, transfers ~GB) the effect is negligible but non-zero,
    matching SimGrid's ``latency + size/bandwidth`` shape.
    """
    usages = {res: 1.0 for res in route.resources}
    if extra_usages:
        for res, factor in extra_usages.items():
            usages[res] = max(usages.get(res, 0.0), factor)
    work = float(nbytes)
    if route.latency > 0 and usages:
        bottleneck = min(res.capacity for res in usages)
        work += route.latency * bottleneck
    activity = Activity(work, usages, payload=payload)
    model.execute(activity)
    return activity


class JobExecutor:
    """Executes one job's application model; one instance per job start.

    Parameters
    ----------
    env, platform, model:
        The simulation substrate.
    job:
        Must already be in RUNNING state with its allocation assigned.
    batch:
        Callback sink (the batch system, or a stub in tests).
    """

    def __init__(
        self,
        env: Environment,
        platform: Platform,
        model: FairShareModel,
        job: Job,
        batch: BatchCallbacks,
    ) -> None:
        self.env = env
        self.platform = platform
        self.model = model
        self.job = job
        self.batch = batch
        #: Flight recorder shared with the batch system (None when tracing
        #: is off — every emission site guards on that, and test stubs
        #: without the attribute read as disabled).
        self.tracer = getattr(batch, "tracer", None)
        self._outstanding: List[Activity] = []
        self._current_wait: Optional[Event] = None
        self._parallel_branches: List = []
        #: (branch event, branch executor) per task of an in-flight parallel
        #: phase, in task order.  Unlike ``_parallel_branches`` (live procs
        #: only, for cancellation) this keeps finished branches too, so a
        #: snapshot can record each branch slot as done or mid-wait.
        self._branch_slots: List = []
        # -- resume cursor ---------------------------------------------------
        # Where the generator currently is, updated at every step so a
        # snapshot can rebuild an equivalent generator by deterministic
        # re-entry (see capture_state / resume_run).
        self._phase_idx: int = 0
        self._iteration: int = 0
        #: ``phase.num_iterations(...)`` is evaluated once per phase with
        #: the then-current allocation, so the evaluated count is state.
        self._iterations_total: Optional[int] = None
        self._task_idx: int = 0
        #: What the generator is suspended on: "acts" | "delay" |
        #: "evolving" | "parallel", or None while running.
        self._wait_kind: Optional[str] = None
        #: For "acts" waits: "task" (inside _execute_task) or "reconfig"
        #: (inside _redistribute).
        self._wait_ctx: str = "task"
        #: Who triggered the in-flight reconfiguration: "sched"
        #: (scheduling point) or "evolving" (blocking/non-blocking request).
        self._reconfig_origin: Optional[str] = None

    # -- top level ---------------------------------------------------------

    def run(self) -> Generator[Event, Any, str]:
        """Process body: returns "completed" or "killed".

        The caller (batch system) interrupts this process to kill the job;
        the executor cancels its in-flight activities before re-raising is
        *not* needed — it swallows the interrupt and reports "killed".
        """
        job = self.job
        try:
            yield from self._drive(0, 0, None, 0, None)
            return "completed"
        except Interrupt as intr:
            self._cancel_outstanding()
            job.kill_reason = str(intr.cause) if intr.cause is not None else "killed"
            return "killed"

    def _drive(
        self,
        start_phase: int,
        start_iter: int,
        start_total: Optional[int],
        task_start: int,
        resume_point: Optional[str],
    ) -> Generator[Event, Any, None]:
        """Run the application from a given position to completion.

        A cold run enters at ``(0, 0, None, 0, None)``; a snapshot resume
        enters at the captured cursor with ``resume_point`` naming what is
        already done at that position: ``"mid-iteration"`` (tasks before
        ``task_start`` are done), ``"post-iteration"`` (the whole iteration
        body is done, its scheduling point is not), or
        ``"post-scheduling-point"`` (both are done).  ``start_total``
        carries the captured ``num_iterations`` evaluation for the start
        phase — it must not be re-evaluated, the allocation may have
        changed since the phase began.
        """
        job = self.job
        phases = job.application.phases
        for p_idx in range(start_phase, len(phases)):
            phase = phases[p_idx]
            self._phase_idx = p_idx
            if p_idx == start_phase and start_total is not None:
                iterations = start_total
            else:
                iterations = phase.num_iterations(job.expression_variables())
            self._iterations_total = iterations
            first_iter = start_iter if p_idx == start_phase else 0
            for iteration in range(first_iter, iterations):
                self._iteration = iteration
                point = (
                    resume_point
                    if p_idx == start_phase and iteration == start_iter
                    else None
                )
                if point == "post-scheduling-point":
                    continue
                if point == "mid-iteration":
                    for t_idx in range(task_start, len(phase.tasks)):
                        self._task_idx = t_idx
                        yield from self._run_task(phase.tasks[t_idx], iteration)
                elif point != "post-iteration":
                    yield from self._run_iteration(phase, iteration)
                if phase.scheduling_point:
                    # Scheduling points are the checkpoint locations:
                    # record progress for checkpoint/restart requeues.
                    job.checkpoint_marker = (p_idx, iteration + 1, iterations)
                    yield from self._scheduling_point()

    # -- phases and tasks -------------------------------------------------------

    def _run_iteration(
        self, phase: Phase, iteration: int
    ) -> Generator[Event, Any, None]:
        if phase.parallel:
            yield from self._run_parallel_tasks(phase, iteration)
            return
        for task_idx, task in enumerate(phase.tasks):
            self._task_idx = task_idx
            yield from self._run_task(task, iteration)

    def _run_parallel_tasks(
        self, phase: Phase, iteration: int
    ) -> Generator[Event, Any, None]:
        """Run all of a parallel phase's tasks concurrently.

        Each task executes in its own branch process with its own activity
        tracking (a fresh executor sharing this one's substrate), so a kill
        of the main process can cancel every branch cleanly.
        """
        branches = []
        slots = []
        for task_idx, task in enumerate(phase.tasks):
            branch_exec = JobExecutor(
                self.env, self.platform, self.model, self.job, self.batch
            )
            branch_exec._phase_idx = self._phase_idx
            branch_exec._iteration = iteration
            branch_exec._iterations_total = self._iterations_total
            branch_exec._task_idx = task_idx
            proc = self.env.process(
                self._branch(branch_exec, task, iteration),
                name=f"{self.job.name}/{phase.name}/{task.name}",
            )
            branches.append(proc)
            slots.append((proc, branch_exec))
        self._parallel_branches = branches
        self._branch_slots = slots
        condition = self.env.all_of(branches)
        self._current_wait = condition
        self._wait_kind = "parallel"
        yield condition
        self._wait_kind = None
        self._current_wait = None
        self._parallel_branches = []
        self._branch_slots = []

    @staticmethod
    def _branch(executor: "JobExecutor", task: Task, iteration: int):
        try:
            yield from executor._run_task(task, iteration)
        except Interrupt:
            executor._cancel_outstanding()

    def _run_task(self, task: Task, iteration: int) -> Generator[Event, Any, None]:
        tracer = self.tracer
        if tracer is None:
            yield from self._execute_task(task, iteration)
            return
        # Traced: record one span per node the task occupied.  The node
        # set is sampled at task start; compute/IO/comm tasks never change
        # it mid-flight (an EvolvingRequest task that reconfigures is
        # attributed to the allocation it was issued from).
        start = self.env.now
        node_indices = [node.index for node in self._task_nodes(task)]
        yield from self._execute_task(task, iteration)
        end = self.env.now
        if end > start:
            for index in node_indices:
                tracer.span(
                    "task.run",
                    f"node:{index}",
                    task.name,
                    start,
                    end,
                    jid=self.job.jid,
                    task=type(task).__name__,
                    iteration=iteration,
                )

    def _task_nodes(self, task: Task) -> List[Node]:
        """The nodes a task occupies: its placement, or the full allocation.

        Application-level (two-level) scheduling: the batch system asks the
        algorithm's :meth:`~repro.scheduler.base.Algorithm.place_tasks` hook
        which subset of the allocation the task should run on.  The hook
        must be pure — this is re-evaluated wherever the task's node set is
        needed (trace spans, resume tails) and must always agree.  Delay
        and evolving-request tasks occupy no resources, so placement never
        applies to them; test stubs without the callback get the classic
        single-level behaviour.
        """
        if isinstance(task, (DelayTask, EvolvingRequest)):
            return self.job.assigned_nodes
        place = getattr(self.batch, "place_tasks", None)
        if place is None:
            return self.job.assigned_nodes
        chosen = place(self.job, task)
        if chosen is None:
            return self.job.assigned_nodes
        return chosen

    def _execute_task(self, task: Task, iteration: int) -> Generator[Event, Any, None]:
        nodes = self._task_nodes(task)
        n = len(nodes)
        variables = self.job.expression_variables(
            iteration=iteration,
            gpus_per_node=nodes[0].gpus if nodes else 0,
        )

        if isinstance(task, CpuTask):
            flops = task.flops_per_node(variables, n)
            if flops <= 0:
                return
            payload = (self.job.jid, task.name)
            activities = [
                Activity.unchecked(flops, {node.cpu: 1.0}, payload=payload)
                for node in nodes
            ]
            yield from self._wait_all(activities)
            return

        if isinstance(task, GpuTask):
            flops = task.flops_per_node(variables, n)
            if flops <= 0:
                return
            payload = (self.job.jid, task.name)
            activities = []
            for node in nodes:
                if node.gpu is None:
                    raise EngineError(
                        f"Job {self.job.name}: task {task.name!r} needs GPUs, "
                        f"but node {node.name} has none"
                    )
                activities.append(
                    Activity.unchecked(flops, {node.gpu: 1.0}, payload=payload)
                )
            yield from self._wait_all(activities)
            return

        if isinstance(task, CommTask):
            nbytes = task.message_size(variables)
            if nbytes <= 0 or n <= 1:
                return
            activities = []
            for src_rank, dst_rank in task.flows(n):
                route = self.platform.route(nodes[src_rank].index, nodes[dst_rank].index)
                if not route.resources and route.latency == 0:
                    continue  # same-node "transfer" is free
                activities.append(
                    transfer(
                        self.env,
                        self.model,
                        route,
                        nbytes,
                        payload=(self.job.jid, task.name, src_rank, dst_rank),
                    )
                )
            yield from self._wait_started(activities)
            return

        if isinstance(task, PfsReadTask):
            yield from self._run_pfs_io(task, variables, read=True)
            return

        if isinstance(task, PfsWriteTask):
            yield from self._run_pfs_io(task, variables, read=False)
            return

        if isinstance(task, BbReadTask):
            yield from self._run_bb_io(task, variables, read=True)
            return

        if isinstance(task, BbWriteTask):
            yield from self._run_bb_io(task, variables, read=False)
            return

        if isinstance(task, DelayTask):
            duration = task.duration(variables)
            if duration > 0:
                timer = self.env.timeout(duration)
                self._current_wait = timer
                self._wait_kind = "delay"
                yield timer
                self._wait_kind = None
                self._current_wait = None
            return

        if isinstance(task, EvolvingRequest):
            desired = task.desired_nodes(variables)
            if desired != n:
                self.job.evolving_request = desired
                self.job.evolving_denied = False
                self.batch.on_evolving_request(self.job, desired)
                if (
                    task.blocking
                    and self.job.pending_reconfiguration is None
                    and not self.job.evolving_denied
                ):
                    # Blocking semantics: suspend until the scheduler grants
                    # (issues an order) or explicitly denies the request.
                    wait = Event(self.env)
                    self.job.evolving_wait_event = wait
                    self._current_wait = wait
                    self._wait_kind = "evolving"
                    yield wait
                    self._wait_kind = None
                    self._current_wait = None
                    self.job.evolving_wait_event = None
                # An evolving request is itself a scheduling point: apply
                # whatever the scheduler granted right away.
                self._reconfig_origin = "evolving"
                yield from self._apply_pending_reconfiguration()
                self._reconfig_origin = None
                self.job.evolving_request = None
                self.job.evolving_denied = False
            return

        raise EngineError(f"Unknown task type {type(task).__name__}")

    def _run_pfs_io(self, task, variables, *, read: bool) -> Generator[Event, Any, None]:
        pfs = self.platform.pfs
        if pfs is None:
            raise EngineError(
                f"Job {self.job.name}: task {task.name!r} needs a PFS, "
                f"but platform {self.platform.name!r} has none"
            )
        nodes = self._task_nodes(task)
        nbytes = task.bytes_per_node(variables, len(nodes))
        if nbytes <= 0:
            return
        service = pfs.read if read else pfs.write
        activities = []
        for node in nodes:
            route = (
                self.platform.route_from_pfs(node.index)
                if read
                else self.platform.route_to_pfs(node.index)
            )
            activities.append(
                transfer(
                    self.env,
                    self.model,
                    route,
                    nbytes,
                    extra_usages={service: 1.0},
                    payload=(self.job.jid, task.name, node.index),
                )
            )
        yield from self._wait_started(activities)

    def _run_bb_io(self, task, variables, *, read: bool) -> Generator[Event, Any, None]:
        nodes = self._task_nodes(task)
        nbytes = task.bytes_per_node(variables, len(nodes))
        if nbytes <= 0:
            return
        activities = []
        for node in nodes:
            if node.bb is None:
                raise EngineError(
                    f"Job {self.job.name}: task {task.name!r} needs burst "
                    f"buffers, but node {node.name} has none"
                )
            resource = node.bb.read if read else node.bb.write
            activities.append(
                Activity(
                    nbytes,
                    {resource: 1.0},
                    payload=(self.job.jid, task.name, node.index),
                )
            )
        yield from self._wait_all(activities)
        if not read and getattr(task, "charge", False):
            for node in nodes:
                node.bb.charge(nbytes)

    # -- scheduling points and reconfiguration ------------------------------

    def _scheduling_point(self) -> Generator[Event, Any, None]:
        self.job.scheduling_points_seen += 1
        self.batch.on_scheduling_point(self.job)
        self._reconfig_origin = "sched"
        yield from self._apply_pending_reconfiguration()
        self._reconfig_origin = None

    def _apply_pending_reconfiguration(self) -> Generator[Event, Any, None]:
        order = self.job.pending_reconfiguration
        if order is None:
            return
        old_nodes = list(self.job.assigned_nodes)
        new_nodes = list(order.target)
        if {n.index for n in old_nodes} == {n.index for n in new_nodes}:
            self.job.pending_reconfiguration = None
            return  # no-op order

        # The order stays set until the commit: the scheduler-context guard
        # ("job already has a pending order") must hold through the whole
        # redistribution, or a second order issued mid-flight would be
        # computed from a stale allocation.  It also lets a kill during
        # redistribution release the reserved target nodes.
        self._wait_ctx = "reconfig"
        yield from self._redistribute(old_nodes, new_nodes)
        self._wait_ctx = "task"

        self.batch.commit_reconfiguration(self.job, new_nodes)
        self.job.pending_reconfiguration = None
        self.job.reconfigurations_applied += 1

    def _redistribute(
        self, old_nodes: List[Node], new_nodes: List[Node]
    ) -> Generator[Event, Any, None]:
        """Simulate data movement from the old to the new allocation.

        Cost model: the application holds ``data_per_node`` bytes on each of
        the ``|A|`` old nodes (total ``D``).  After reconfiguration each of
        the ``|B|`` new nodes must hold ``D / |B|``.  Every *leaving* node
        ships its full ``data_per_node``; every *joining* node receives its
        new share ``D / |B|``.  Transfers run as parallel network flows
        paired round-robin with the surviving nodes.
        """
        job = self.job
        per_node = job.application.redistribution_bytes_per_node(
            job.expression_variables()
        )
        if per_node <= 0:
            return
        old_set = {n.index for n in old_nodes}
        new_set = {n.index for n in new_nodes}
        leaving = [n for n in old_nodes if n.index not in new_set]
        joining = [n for n in new_nodes if n.index not in old_set]
        staying = [n for n in old_nodes if n.index in new_set]

        total = per_node * len(old_nodes)
        new_share = total / len(new_nodes)

        activities = []
        moved = 0.0
        # Leaving nodes push their state to a surviving or joining node.
        sinks = staying or joining
        for k, node in enumerate(leaving):
            dst = sinks[k % len(sinks)]
            route = self.platform.route(node.index, dst.index)
            if route.resources or route.latency > 0:
                activities.append(
                    transfer(self.env, self.model, route, per_node,
                             payload=(job.jid, "redistribute-out"))
                )
            moved += per_node
        # Joining nodes pull their share from surviving (or leaving) nodes.
        sources = staying or leaving
        for k, node in enumerate(joining):
            src = sources[k % len(sources)]
            route = self.platform.route(src.index, node.index)
            if route.resources or route.latency > 0:
                activities.append(
                    transfer(self.env, self.model, route, new_share,
                             payload=(job.jid, "redistribute-in"))
                )
            moved += new_share

        job.redistribution_bytes_moved += moved
        start = self.env.now
        yield from self._wait_started(activities)
        tracer = self.tracer
        if tracer is not None and self.env.now > start:
            tracer.span(
                "reconf.redistribute",
                "batch",
                job.name,
                start,
                self.env.now,
                jid=job.jid,
                bytes=moved,
                leaving=len(leaving),
                joining=len(joining),
            )

    # -- waiting helpers ----------------------------------------------------

    def _wait_all(self, activities: List[Activity]) -> Generator[Event, Any, None]:
        """Start ``activities`` and wait for all; cancellable via interrupt."""
        self.model.execute_many(activities)
        yield from self._wait_started(activities)

    def _wait_started(self, activities: List[Activity]) -> Generator[Event, Any, None]:
        """Wait for already-started activities; cancellable via interrupt."""
        if not activities:
            return
        self._outstanding = activities
        condition = self.env.all_of([act.done for act in activities])
        self._current_wait = condition
        self._wait_kind = "acts"
        # No try/finally: on an interrupt the state must survive so that
        # run()'s handler can cancel the in-flight activities.
        yield condition
        self._wait_kind = None
        self._current_wait = None
        self._outstanding = []

    def _cancel_outstanding(self) -> None:
        """Abort in-flight activities (and parallel branches) after an
        interrupt."""
        for act in self._outstanding:
            self.model.cancel(act)
        for proc in self._parallel_branches:
            if proc.is_alive:
                proc.interrupt("parent-killed")
        if self._current_wait is not None:
            # The condition will fail when the cancelled activities fail;
            # nobody waits for it anymore, so mark the failure as handled.
            self._current_wait.defuse()
        self._outstanding = []
        self._parallel_branches = []
        self._branch_slots = []
        self._current_wait = None
        self._wait_kind = None

    # -- snapshot / resume --------------------------------------------------
    #
    # A suspended executor generator cannot be serialized, but its position
    # is fully determined by the resume cursor maintained above plus the
    # wait it is suspended on.  capture_state() records both; resume_run()
    # rebuilds an equivalent generator that re-creates the wait, yields it,
    # runs the current task's tail, and hands the rest of the application
    # to _drive() — producing the exact event sequence the original
    # generator would have produced.

    def capture_state(self, registry, prefix: str) -> dict:
        """Record the resume cursor and the current wait as JSON-safe state.

        ``registry`` is the snapshot's sid registry: running activities were
        already claimed by the fair-share model's capture (``act.<seq>``);
        a pending delay timeout is claimed here under ``<prefix>.delay``.
        Must only be called at a quiet boundary while the executor's
        process is suspended on a wait.
        """
        if self._wait_kind is None:
            raise RuntimeError(
                f"executor for job {self.job.jid} is not suspended on a wait"
            )
        state = {
            "phase_idx": self._phase_idx,
            "iteration": self._iteration,
            "iterations_total": self._iterations_total,
            "task_idx": self._task_idx,
            "wait_kind": self._wait_kind,
            "wait_ctx": self._wait_ctx,
            "reconfig_origin": self._reconfig_origin,
        }
        if self._wait_kind == "acts":
            outstanding = []
            for act in self._outstanding:
                if act._model is not None:
                    outstanding.append({"ref": registry.sid_of(act)})
                else:
                    # Already finished: its done event is processed, but the
                    # AllOf still references it.  Record enough to rebuild a
                    # behaviorally-equivalent placeholder.
                    outstanding.append(
                        {
                            "done": {
                                "work": act.work,
                                "payload": (
                                    list(act.payload)
                                    if isinstance(act.payload, tuple)
                                    else act.payload
                                ),
                                "seq": act._seq,
                                "started_at": act.started_at,
                                "finished_at": act.finished_at,
                            }
                        }
                    )
            state["outstanding"] = outstanding
        elif self._wait_kind == "delay":
            sid = f"{prefix}.delay"
            registry.claim(sid, self._current_wait)
            state["delay"] = {
                "sid": sid,
                "delay": self._current_wait.delay,
            }
        elif self._wait_kind == "parallel":
            branches = []
            for k, (event, branch_exec) in enumerate(self._branch_slots):
                alive = event.callbacks is not None
                branches.append(
                    {
                        "alive": alive,
                        "state": (
                            branch_exec.capture_state(registry, f"{prefix}.b{k}")
                            if alive
                            else None
                        ),
                    }
                )
            state["branches"] = branches
        # "evolving" needs nothing beyond the cursor: the wait event is
        # pending (not queued) and is recreated fresh on resume.
        return state

    def resume_run(self, cursor: dict, resolved: dict) -> Generator[Event, Any, str]:
        """Replacement for :meth:`run` when resuming from a snapshot.

        ``resolved`` carries the live objects the restore layer rebuilt for
        the captured wait (activities, a raw timeout, or branch events).
        """
        job = self.job
        try:
            yield from self._resume_wait(cursor, resolved)
            yield from self._drive(
                cursor["phase_idx"],
                cursor["iteration"],
                cursor["iterations_total"],
                cursor["task_idx"] + 1,
                self._resume_point(cursor),
            )
            return "completed"
        except Interrupt as intr:
            self._cancel_outstanding()
            job.kill_reason = str(intr.cause) if intr.cause is not None else "killed"
            return "killed"

    def resume_branch(self, cursor: dict, resolved: dict) -> Generator[Event, Any, None]:
        """Replacement for :meth:`_branch` when resuming a parallel branch."""
        try:
            yield from self._resume_wait(cursor, resolved)
        except Interrupt:
            self._cancel_outstanding()

    @staticmethod
    def _resume_point(cursor: dict) -> str:
        """Where _drive() should pick up once the captured wait completes."""
        if cursor["wait_kind"] == "parallel":
            # The parallel wait IS the iteration body; its scheduling point
            # has not run yet.
            return "post-iteration"
        if cursor["wait_ctx"] == "reconfig" and cursor["reconfig_origin"] == "sched":
            # Suspended inside the scheduling point's redistribution: the
            # iteration and the point's bookkeeping are both done.
            return "post-scheduling-point"
        return "mid-iteration"

    def _resume_wait(self, cursor: dict, resolved: dict) -> Generator[Event, Any, None]:
        """Rebuild the captured wait, complete it, and run the task tail."""
        job = self.job
        kind = cursor["wait_kind"]
        self._phase_idx = cursor["phase_idx"]
        self._iteration = cursor["iteration"]
        self._iterations_total = cursor["iterations_total"]
        self._task_idx = cursor["task_idx"]
        self._wait_ctx = cursor["wait_ctx"]
        self._reconfig_origin = cursor["reconfig_origin"]
        phase = job.application.phases[self._phase_idx]
        iteration = self._iteration

        if kind == "acts":
            activities = resolved["acts"]
            self._outstanding = activities
            condition = self.env.all_of([act.done for act in activities])
            self._current_wait = condition
            self._wait_kind = "acts"
            yield condition
            self._wait_kind = None
            self._current_wait = None
            self._outstanding = []
            if cursor["wait_ctx"] == "reconfig":
                yield from self._finish_reconfiguration(cursor)
            else:
                yield from self._task_tail(phase.tasks[self._task_idx], iteration)
            return

        if kind == "delay":
            timer = resolved["timer"]
            self._current_wait = timer
            self._wait_kind = "delay"
            yield timer
            self._wait_kind = None
            self._current_wait = None
            return  # DelayTask has no tail

        if kind == "evolving":
            wait = Event(self.env)
            job.evolving_wait_event = wait
            self._current_wait = wait
            self._wait_kind = "evolving"
            yield wait
            self._wait_kind = None
            self._current_wait = None
            job.evolving_wait_event = None
            self._reconfig_origin = "evolving"
            yield from self._apply_pending_reconfiguration()
            self._reconfig_origin = None
            job.evolving_request = None
            job.evolving_denied = False
            return

        if kind == "parallel":
            self._parallel_branches = resolved["branch_procs"]
            self._branch_slots = resolved["branch_slots"]
            condition = self.env.all_of(resolved["branch_events"])
            self._current_wait = condition
            self._wait_kind = "parallel"
            yield condition
            self._wait_kind = None
            self._current_wait = None
            self._parallel_branches = []
            self._branch_slots = []
            return

        raise RuntimeError(f"unknown wait kind {kind!r} in snapshot cursor")

    def _finish_reconfiguration(self, cursor: dict) -> Generator[Event, Any, None]:
        """Tail of _apply_pending_reconfiguration after the redistribution
        wait: commit the still-pending order, then (for evolving-origin
        reconfigurations) clear the request like _execute_task does."""
        job = self.job
        self._wait_ctx = "task"
        order = job.pending_reconfiguration
        new_nodes = list(order.target)
        self.batch.commit_reconfiguration(job, new_nodes)
        job.pending_reconfiguration = None
        job.reconfigurations_applied += 1
        if cursor["reconfig_origin"] == "evolving":
            self._reconfig_origin = None
            job.evolving_request = None
            job.evolving_denied = False
        return
        yield  # pragma: no cover - makes this a generator for uniformity

    def _task_tail(self, task: Task, iteration: int) -> Generator[Event, Any, None]:
        """Post-wait remainder of _execute_task for the captured task.

        Only burst-buffer writes have one: the capacity charge after the
        transfer completes.  The byte count is recomputed from the same
        variables the cold run used — the allocation cannot change
        mid-task, so the evaluation is identical.
        """
        if isinstance(task, BbWriteTask) and getattr(task, "charge", False):
            nodes = self._task_nodes(task)
            variables = self.job.expression_variables(
                iteration=iteration,
                gpus_per_node=nodes[0].gpus if nodes else 0,
            )
            nbytes = task.bytes_per_node(variables, len(nodes))
            if nbytes > 0:
                for node in nodes:
                    node.bb.charge(nbytes)
        return
        yield  # pragma: no cover - makes this a generator for uniformity
