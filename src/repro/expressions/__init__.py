"""Arithmetic expression language for task magnitudes.

ElastiSim application models specify task sizes as strings evaluated against
the job's *current* allocation — e.g. ``"1e12 / num_nodes"`` for weak-scaled
compute or ``"8e6 * (num_nodes - 1)"`` for halo exchanges.  This package
provides a small, safe (no ``eval``) expression language:

* numbers (int/float/scientific), identifiers, ``+ - * / // % ^``
* parentheses, unary minus
* functions: ``min max ceil floor round abs sqrt log log2 exp pow``
* comparison and ternary-style helpers: ``if(cond, a, b)``, ``< <= > >= == !=``

Expressions compile once (at model load) into an AST evaluated per task
instantiation with the variable bindings of the moment (``num_nodes``,
user-provided job arguments, phase iteration counters).  The hot path goes
one step further: :func:`compiled_expression` lowers the AST into a plain
Python function with constant folding and a binding-keyed memo (see
:mod:`repro.expressions.compiler`), bit-identical to the interpreter.
"""

from repro.expressions.ast import (
    BinaryOp,
    Call,
    Expression,
    ExpressionError,
    Number,
    UnaryOp,
    Variable,
)
from repro.expressions.compiler import (
    STATS,
    CompiledExpression,
    ExpressionStats,
    compiled_enabled,
    compiled_expression,
    set_compiled_enabled,
)
from repro.expressions.parser import compile_expression, parse

__all__ = [
    "BinaryOp",
    "Call",
    "CompiledExpression",
    "Expression",
    "ExpressionError",
    "ExpressionStats",
    "Number",
    "STATS",
    "UnaryOp",
    "Variable",
    "compile_expression",
    "compiled_enabled",
    "compiled_expression",
    "parse",
    "set_compiled_enabled",
]
