"""Compilation of expression ASTs into plain Python functions.

The tree-walking interpreter in :mod:`repro.expressions.ast` is the
semantic reference, but it pays a Python-level dispatch per AST node per
evaluation — and the engine evaluates the same task magnitudes once per
phase iteration.  This module removes both costs:

* :class:`CompiledExpression` wraps a parsed AST in a ``compile()``-built
  Python function (one code object per expression, built once at load
  time) that reproduces the interpreter's results *and* its
  ``ExpressionError`` messages exactly — division/modulo by zero, unknown
  variables, non-finite ``pow`` — by routing every operator and function
  application through the same callables the interpreter uses.
* Literal-only expressions are constant-folded at construction, so a
  ``"1e12"`` flops magnitude costs an attribute read per evaluation.
* Each compiled expression memoizes results keyed by the values of its
  *free variables only* (binding-keyed memo).  An expression that does not
  mention ``iteration`` hits the memo even though the executor passes a
  fresh ``iteration`` binding every loop.  Errors are never cached: the
  unknown-variable message embeds the full binding set, which may differ
  between calls that share a key.

Determinism: a compiled function executes the same float operations in the
same order as the interpreter, so results are bit-identical — asserted by
the property tests in ``tests/expressions/test_compiler.py``.  The module
switch :func:`set_compiled_enabled` routes ``evaluate`` back through the
interpreter for A/B comparisons.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Union

from repro.expressions.ast import (
    _BINARY_OPS,
    _FUNCTIONS,
    BinaryOp,
    Call,
    Expression,
    ExpressionError,
    Number,
    Numeric,
    UnaryOp,
    Variable,
)
from repro.expressions.parser import compile_expression

__all__ = [
    "CompiledExpression",
    "ExpressionStats",
    "STATS",
    "compiled_expression",
    "set_compiled_enabled",
    "compiled_enabled",
]


class ExpressionStats:
    """Engine-level counters for the compiled-expression pipeline.

    A single module-level instance (:data:`STATS`) accumulates across every
    expression in the process; ``Simulation.run`` snapshots it before and
    after a run and attaches the delta to the monitor (these counters differ
    between the compiled and interpreted modes, so they deliberately stay
    out of ``Monitor.run_record()`` to keep campaign fingerprints
    mode-independent).
    """

    __slots__ = ("compiles", "evaluations", "memo_hits", "constant_hits")

    def __init__(
        self,
        compiles: int = 0,
        evaluations: int = 0,
        memo_hits: int = 0,
        constant_hits: int = 0,
    ) -> None:
        self.compiles = compiles
        self.evaluations = evaluations
        self.memo_hits = memo_hits
        self.constant_hits = constant_hits

    def snapshot(self) -> "ExpressionStats":
        return ExpressionStats(
            self.compiles, self.evaluations, self.memo_hits, self.constant_hits
        )

    def since(self, start: "ExpressionStats") -> "ExpressionStats":
        """Delta between this snapshot and an earlier one."""
        return ExpressionStats(
            self.compiles - start.compiles,
            self.evaluations - start.evaluations,
            self.memo_hits - start.memo_hits,
            self.constant_hits - start.constant_hits,
        )

    @property
    def hit_rate(self) -> float:
        """Fraction of evaluations served from the memo or a folded constant."""
        if not self.evaluations:
            return 0.0
        return (self.memo_hits + self.constant_hits) / self.evaluations

    def as_dict(self) -> dict:
        return {
            "compiles": self.compiles,
            "evaluations": self.evaluations,
            "memo_hits": self.memo_hits,
            "constant_hits": self.constant_hits,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"<ExpressionStats compiles={self.compiles} "
            f"evaluations={self.evaluations} memo_hits={self.memo_hits} "
            f"constant_hits={self.constant_hits}>"
        )


#: Process-wide counters; see :class:`ExpressionStats`.
STATS = ExpressionStats()

#: When False, ``CompiledExpression.evaluate`` delegates to the interpreted
#: AST — the reference path for equivalence tests and A/B profiling.
_ENABLED = True


def set_compiled_enabled(enabled: bool) -> None:
    """Globally enable/disable the compiled fast path (A/B switch)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def compiled_enabled() -> bool:
    """Whether the compiled fast path is active (see set_compiled_enabled)."""
    return _ENABLED


def _bin_apply(fn, op, left, right):
    """Apply a binary operator with the interpreter's overflow wrapping."""
    try:
        return fn(left, right)
    except OverflowError as exc:
        raise ExpressionError(
            f"Overflow evaluating {left!r} {op} {right!r}"
        ) from exc


def _call_apply(fn, name, *values):
    """Apply a built-in function with the interpreter's error wrapping."""
    try:
        return fn(*values)
    except (ValueError, OverflowError) as exc:
        raise ExpressionError(f"{name}({list(values)}) failed: {exc}") from exc


def _unknown_var(name, variables):
    """Build the interpreter's exact unknown-variable error."""
    return ExpressionError(
        f"Unknown variable {name!r}; available: {sorted(variables)}"
    )


def _codegen(ast: Expression) -> Callable[[Mapping[str, Numeric]], Numeric]:
    """Translate an AST into one Python function via ``compile()``.

    Every operator/function application routes through the same callables
    the interpreter dispatches to (via closure constants), so results and
    error messages are bit-identical.  Only ``_v[name]`` lookups can raise
    ``KeyError``, which the wrapper converts into the interpreter's
    unknown-variable ``ExpressionError``.
    """
    ns: dict = {
        "_bin": _bin_apply,
        "_call": _call_apply,
        "_unk": _unknown_var,
        # Generated code needs nothing from builtins except the KeyError
        # type in its except clause.
        "__builtins__": {"KeyError": KeyError},
    }

    def emit(node: Expression) -> str:
        if isinstance(node, CompiledExpression):
            node = node.ast
        if isinstance(node, Number):
            name = f"_k{len(ns)}"
            ns[name] = node.value
            return name
        if isinstance(node, Variable):
            return f"_v[{node.name!r}]"
        if isinstance(node, UnaryOp):
            inner = emit(node.operand)
            return f"(-{inner})" if node.op == "-" else f"({inner})"
        if isinstance(node, BinaryOp):
            name = f"_k{len(ns)}"
            ns[name] = _BINARY_OPS[node.op]
            left = emit(node.left)
            right = emit(node.right)
            return f"_bin({name}, {node.op!r}, {left}, {right})"
        if isinstance(node, Call):
            name = f"_k{len(ns)}"
            ns[name] = _FUNCTIONS[node.name][0]
            args = ", ".join(emit(arg) for arg in node.args)
            return f"_call({name}, {node.name!r}, {args})"
        raise ExpressionError(f"Cannot compile expression node {node!r}")

    body = emit(ast)
    source = (
        "def _expr(_v):\n"
        "    try:\n"
        f"        return {body}\n"
        "    except KeyError as _key:\n"
        "        raise _unk(_key.args[0], _v) from None\n"
    )
    code = compile(source, "<expression-compiler>", "exec")
    exec(code, ns)
    return ns["_expr"]


_MISSING = object()

#: Per-expression memo size cap; bindings beyond it evaluate uncached.
_MEMO_CAP = 4096


class CompiledExpression(Expression):
    """An ``Expression`` backed by a compiled function with a result memo.

    Subclasses :class:`Expression`, so it is a drop-in anywhere the parsed
    AST flows today (``isinstance`` checks, ``variables()``, ``__call__``).
    The original AST stays on ``.ast`` for serialization and for the
    interpreted reference path.
    """

    __slots__ = ("ast", "names", "_fn", "_memo", "_const_value", "_const_error")

    def __init__(self, ast: Expression) -> None:
        if isinstance(ast, CompiledExpression):
            ast = ast.ast
        self.ast = ast
        #: Free variable names, sorted — the memo key schema.
        self.names = tuple(sorted(ast.variables()))
        self._memo: dict = {}
        self._const_value: Optional[Numeric] = None
        self._const_error: Optional[ExpressionError] = None
        self._fn: Optional[Callable[[Mapping[str, Numeric]], Numeric]] = None
        STATS.compiles += 1
        if not self.names:
            # Constant fold.  A literal-only expression that *fails* (e.g.
            # "1/0") must keep failing at evaluation time, not at load
            # time, so the error is captured and re-raised per evaluate.
            try:
                self._const_value = ast.evaluate({})
            except ExpressionError as exc:
                self._const_error = exc
            return
        try:
            self._fn = _codegen(ast)
        except (ExpressionError, RecursionError, SyntaxError, MemoryError):
            # Exotic/oversized ASTs fall back to the interpreter; the memo
            # still applies on top.
            self._fn = ast.evaluate

    def evaluate(self, variables: Mapping[str, Numeric]) -> Numeric:
        if not _ENABLED:
            return self.ast.evaluate(variables)
        stats = STATS
        stats.evaluations += 1
        fn = self._fn
        if fn is None:
            stats.constant_hits += 1
            err = self._const_error
            if err is not None:
                raise ExpressionError(*err.args)
            return self._const_value  # type: ignore[return-value]
        try:
            key = tuple(map(variables.__getitem__, self.names))
            cached = self._memo.get(key, _MISSING)
        except (KeyError, TypeError):
            # Missing variable (proper error raised by fn) or unhashable
            # binding values: evaluate uncached.
            return fn(variables)
        if cached is not _MISSING:
            stats.memo_hits += 1
            return cached
        value = fn(variables)
        memo = self._memo
        if len(memo) < _MEMO_CAP:
            memo[key] = value
        return value

    def variables(self) -> set[str]:
        return self.ast.variables()

    def __repr__(self) -> str:
        return f"CompiledExpression({self.ast!r})"


#: Source-string intern cache: identical sources across tasks/jobs share one
#: compiled function *and* one memo, multiplying hit rates across a workload.
_SOURCE_CACHE: dict[str, CompiledExpression] = {}
_SOURCE_CACHE_CAP = 4096

ExprLike = Union[str, int, float, Expression]


def compiled_expression(value: ExprLike) -> CompiledExpression:
    """Parse-and-compile ``value`` (str, number, or parsed Expression).

    The compiled counterpart of :func:`repro.expressions.compile_expression`;
    accepts the same inputs and raises the same parse errors.  String
    sources are interned so equal sources share a compiled function and
    memo.
    """
    if isinstance(value, CompiledExpression):
        return value
    if isinstance(value, str):
        cached = _SOURCE_CACHE.get(value)
        if cached is not None:
            return cached
        compiled = CompiledExpression(compile_expression(value))
        if len(_SOURCE_CACHE) < _SOURCE_CACHE_CAP:
            _SOURCE_CACHE[value] = compiled
        return compiled
    return CompiledExpression(compile_expression(value))
