"""Tokenizer and Pratt parser for the expression language."""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple, Union

from repro.expressions.ast import (
    BinaryOp,
    Call,
    Expression,
    ExpressionError,
    Number,
    UnaryOp,
    Variable,
)


class Token(NamedTuple):
    kind: str  # NUMBER | NAME | OP | LPAREN | RPAREN | COMMA | END
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<NUMBER>(\d+\.\d*|\.\d+|\d+)([eE][-+]?\d+)?)
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<OP><=|>=|==|!=|//|[-+*/%^<>])
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<WS>\s+)
    """,
    re.VERBOSE,
)


def tokenize(source: str) -> Iterator[Token]:
    """Yield tokens; raises ExpressionError on unexpected characters."""
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ExpressionError(
                f"Unexpected character {source[pos]!r} at position {pos} in {source!r}"
            )
        kind = match.lastgroup
        text = match.group()
        pos = match.end()
        if kind == "WS":
            continue
        yield Token(kind, text, match.start())
    yield Token("END", "", len(source))


# Binding powers: higher binds tighter.  '^' is right-associative.
_BINDING_POWER = {
    "<": 5, "<=": 5, ">": 5, ">=": 5, "==": 5, "!=": 5,
    "+": 10, "-": 10,
    "*": 20, "/": 20, "//": 20, "%": 20,
    "^": 30,
}
_RIGHT_ASSOC = {"^"}
_UNARY_POWER = 25  # binds tighter than * but looser than ^


class _Parser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = list(tokenize(source))
        self.index = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str) -> Token:
        if self.current.kind != kind:
            raise ExpressionError(
                f"Expected {kind} at position {self.current.position} "
                f"in {self.source!r}, found {self.current.text!r}"
            )
        return self.advance()

    def parse(self) -> Expression:
        expr = self.parse_expression(0)
        if self.current.kind != "END":
            raise ExpressionError(
                f"Trailing input at position {self.current.position} "
                f"in {self.source!r}: {self.current.text!r}"
            )
        return expr

    def parse_expression(self, min_power: int) -> Expression:
        left = self.parse_prefix()
        while True:
            token = self.current
            if token.kind != "OP" or token.text not in _BINDING_POWER:
                break
            power = _BINDING_POWER[token.text]
            if power < min_power:
                break
            self.advance()
            next_min = power if token.text in _RIGHT_ASSOC else power + 1
            right = self.parse_expression(next_min)
            left = BinaryOp(token.text, left, right)
        return left

    def parse_prefix(self) -> Expression:
        token = self.advance()
        if token.kind == "NUMBER":
            text = token.text
            if any(c in text for c in ".eE"):
                return Number(float(text))
            return Number(int(text))
        if token.kind == "NAME":
            if self.current.kind == "LPAREN":
                self.advance()
                args = self.parse_arguments()
                self.expect("RPAREN")
                return Call(token.text, args)
            return Variable(token.text)
        if token.kind == "LPAREN":
            expr = self.parse_expression(0)
            self.expect("RPAREN")
            return expr
        if token.kind == "OP" and token.text in ("-", "+"):
            operand = self.parse_expression(_UNARY_POWER)
            return UnaryOp(token.text, operand)
        raise ExpressionError(
            f"Unexpected token {token.text!r} at position {token.position} "
            f"in {self.source!r}"
        )

    def parse_arguments(self) -> list[Expression]:
        if self.current.kind == "RPAREN":
            return []
        args = [self.parse_expression(0)]
        while self.current.kind == "COMMA":
            self.advance()
            args.append(self.parse_expression(0))
        return args


def parse(source: str) -> Expression:
    """Parse ``source`` into an :class:`Expression` AST."""
    if not isinstance(source, str):
        raise ExpressionError(f"Expected a string, got {type(source).__name__}")
    if not source.strip():
        raise ExpressionError("Empty expression")
    return _Parser(source).parse()


def compile_expression(value: Union[str, int, float, Expression]) -> Expression:
    """Coerce a JSON scalar or string into a compiled expression.

    Application-model JSON allows plain numbers (``1e12``) wherever an
    expression string is accepted; both compile to the same AST type.
    """
    if isinstance(value, Expression):
        return value
    if isinstance(value, bool):
        raise ExpressionError("Booleans are not valid task magnitudes")
    if isinstance(value, (int, float)):
        return Number(value)
    return parse(value)
