"""AST node types and evaluation for the expression language."""

from __future__ import annotations

import math
from typing import Callable, Mapping, Sequence, Union

Numeric = Union[int, float]


class ExpressionError(Exception):
    """Raised on parse errors or evaluation failures (e.g. unknown names)."""


class Expression:
    """Base class of all AST nodes."""

    __slots__ = ()

    def evaluate(self, variables: Mapping[str, Numeric]) -> Numeric:
        """Evaluate against variable bindings; raises ExpressionError."""
        raise NotImplementedError

    def variables(self) -> set[str]:
        """The set of free variable names referenced by the expression."""
        raise NotImplementedError

    def __call__(self, **variables: Numeric) -> Numeric:
        return self.evaluate(variables)


class Number(Expression):
    """A literal number."""

    __slots__ = ("value",)

    def __init__(self, value: Numeric) -> None:
        self.value = value

    def evaluate(self, variables: Mapping[str, Numeric]) -> Numeric:
        return self.value

    def variables(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return f"Number({self.value!r})"


class Variable(Expression):
    """A named variable resolved at evaluation time."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, variables: Mapping[str, Numeric]) -> Numeric:
        try:
            return variables[self.name]
        except KeyError:
            raise ExpressionError(
                f"Unknown variable {self.name!r}; available: {sorted(variables)}"
            ) from None

    def variables(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


def _safe_div(a: Numeric, b: Numeric) -> Numeric:
    if b == 0:
        raise ExpressionError("Division by zero")
    return a / b


def _safe_floordiv(a: Numeric, b: Numeric) -> Numeric:
    if b == 0:
        raise ExpressionError("Division by zero")
    return a // b


def _safe_mod(a: Numeric, b: Numeric) -> Numeric:
    if b == 0:
        raise ExpressionError("Modulo by zero")
    return a % b


def _safe_pow(a: Numeric, b: Numeric) -> Numeric:
    """Exponentiation in float space.

    Task magnitudes are physical quantities (flops, bytes, seconds), so the
    tiny precision loss of float ``**`` is irrelevant — while integer ``**``
    can materialize million-digit numbers that stall the simulator.
    """
    try:
        result = float(a) ** float(b)
    except (OverflowError, ZeroDivisionError, TypeError) as exc:
        raise ExpressionError(f"pow({a!r}, {b!r}) failed: {exc}") from exc
    if isinstance(result, complex):
        # Negative base with fractional exponent: Python's ** goes complex.
        raise ExpressionError(f"pow({a!r}, {b!r}) is not a real number")
    if result != result or result in (float("inf"), float("-inf")):
        raise ExpressionError(f"pow({a!r}, {b!r}) is not finite")
    return result


_BINARY_OPS: dict[str, Callable[[Numeric, Numeric], Numeric]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _safe_div,
    "//": _safe_floordiv,
    "%": _safe_mod,
    "^": _safe_pow,
    "<": lambda a, b: float(a < b),
    "<=": lambda a, b: float(a <= b),
    ">": lambda a, b: float(a > b),
    ">=": lambda a, b: float(a >= b),
    "==": lambda a, b: float(a == b),
    "!=": lambda a, b: float(a != b),
}


class BinaryOp(Expression):
    """A binary arithmetic or comparison operation."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _BINARY_OPS:
            raise ExpressionError(f"Unknown operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, variables: Mapping[str, Numeric]) -> Numeric:
        left = self.left.evaluate(variables)
        right = self.right.evaluate(variables)
        try:
            return _BINARY_OPS[self.op](left, right)
        except OverflowError as exc:
            raise ExpressionError(
                f"Overflow evaluating {left!r} {self.op} {right!r}"
            ) from exc

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"BinaryOp({self.op!r}, {self.left!r}, {self.right!r})"


class UnaryOp(Expression):
    """Unary minus/plus."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expression) -> None:
        if op not in ("-", "+"):
            raise ExpressionError(f"Unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def evaluate(self, variables: Mapping[str, Numeric]) -> Numeric:
        value = self.operand.evaluate(variables)
        return -value if self.op == "-" else value

    def variables(self) -> set[str]:
        return self.operand.variables()

    def __repr__(self) -> str:
        return f"UnaryOp({self.op!r}, {self.operand!r})"


def _fn_if(cond: Numeric, then: Numeric, otherwise: Numeric) -> Numeric:
    return then if cond else otherwise


def _safe_sqrt(x: Numeric) -> float:
    if x < 0:
        raise ExpressionError(f"sqrt of negative value {x}")
    return math.sqrt(x)


def _safe_log(x: Numeric) -> float:
    if x <= 0:
        raise ExpressionError(f"log of non-positive value {x}")
    return math.log(x)


def _safe_log2(x: Numeric) -> float:
    if x <= 0:
        raise ExpressionError(f"log2 of non-positive value {x}")
    return math.log2(x)


_FUNCTIONS: dict[str, tuple[Callable[..., Numeric], int]] = {
    # name -> (callable, arity); arity -1 means variadic (>= 1)
    "min": (min, -1),
    "max": (max, -1),
    "ceil": (math.ceil, 1),
    "floor": (math.floor, 1),
    "round": (round, 1),
    "abs": (abs, 1),
    "sqrt": (_safe_sqrt, 1),
    "log": (_safe_log, 1),
    "log2": (_safe_log2, 1),
    "exp": (math.exp, 1),
    "pow": (_safe_pow, 2),
    "if": (_fn_if, 3),
}


class Call(Expression):
    """A call to one of the built-in functions."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expression]) -> None:
        if name not in _FUNCTIONS:
            raise ExpressionError(
                f"Unknown function {name!r}; available: {sorted(_FUNCTIONS)}"
            )
        _, arity = _FUNCTIONS[name]
        if arity == -1:
            if not args:
                raise ExpressionError(f"{name}() needs at least one argument")
        elif len(args) != arity:
            raise ExpressionError(
                f"{name}() takes {arity} argument(s), got {len(args)}"
            )
        self.name = name
        self.args = list(args)

    def evaluate(self, variables: Mapping[str, Numeric]) -> Numeric:
        fn, _ = _FUNCTIONS[self.name]
        values = [arg.evaluate(variables) for arg in self.args]
        try:
            return fn(*values)
        except (ValueError, OverflowError) as exc:
            raise ExpressionError(f"{self.name}({values}) failed: {exc}") from exc

    def variables(self) -> set[str]:
        names: set[str] = set()
        for arg in self.args:
            names |= arg.variables()
        return names

    def __repr__(self) -> str:
        return f"Call({self.name!r}, {self.args!r})"
