"""Fuzz campaign driver: generate, check, shrink, and persist reproducers.

One fuzz *case* is (derived seed, algorithm) -> scenario -> oracle stack.
``fuzz_run`` sweeps ``count`` cases per algorithm, collecting
:class:`OracleFailure` verdicts; every case seed is derived from the base
seed with :func:`repro.campaign.derive_seed`, so a report names each
failure by a seed that regenerates its scenario exactly.

``write_reproducer`` turns a (preferably shrunk) failing scenario into
three self-contained artifacts: a replayable reproducer record (consumed
by ``elastisim fuzz replay`` and the committed ``tests/fuzz/corpus/``), a
ready-to-run campaign spec, and a pytest regression snippet.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from repro.campaign import derive_seed
from repro.fuzz.generate import DEFAULT_BUDGET, FuzzBudget, generate_scenario
from repro.fuzz.oracles import ORACLES, OracleFailure, check_scenario
from repro.fuzz.shrink import shrink_scenario


@dataclass(frozen=True)
class FuzzFailure:
    """One failing case: the scenario plus every oracle it upset."""

    seed: int
    algorithm: str
    scenario: Dict[str, Any]
    failures: List[OracleFailure]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "algorithm": self.algorithm,
            "failures": [
                {"oracle": f.oracle, "detail": f.detail} for f in self.failures
            ],
            "scenario": self.scenario,
        }


@dataclass
class FuzzReport:
    """Outcome of a fuzz sweep (JSON-safe via :meth:`as_dict`)."""

    base_seed: int
    count: int
    algorithms: Optional[List[str]]
    oracles: List[str]
    cases: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> Dict[str, Any]:
        return {
            "base_seed": self.base_seed,
            "count": self.count,
            "algorithms": self.algorithms,
            "oracles": self.oracles,
            "cases": self.cases,
            "ok": self.ok,
            "failures": [f.as_dict() for f in self.failures],
        }


def fuzz_run(
    seed: int,
    count: int,
    *,
    algorithms: Optional[Iterable[str]] = None,
    oracles: Optional[Iterable[str]] = None,
    budget: FuzzBudget = DEFAULT_BUDGET,
    max_failures: Optional[int] = None,
    progress: Optional[Callable[[int, int, FuzzReport], None]] = None,
) -> FuzzReport:
    """Fuzz ``count`` seeds (x each algorithm, if pinned) through the oracles.

    ``algorithms=None`` lets every scenario draw its own scheduler from
    the pool (including the adversarial random one); a list pins the
    sweep, replaying each generated scenario under every listed policy.
    ``max_failures`` stops early once that many cases failed (shrinking a
    handful of reproducers beats cataloguing hundreds).  ``progress`` is
    called after each case with (done, total, report-so-far).
    """
    algorithm_list = list(algorithms) if algorithms is not None else None
    oracle_list = list(oracles) if oracles is not None else list(ORACLES)
    report = FuzzReport(
        base_seed=seed,
        count=count,
        algorithms=algorithm_list,
        oracles=oracle_list,
    )
    per_seed: List[Optional[str]] = algorithm_list or [None]
    total = count * len(per_seed)
    done = 0
    for i in range(count):
        case_seed = derive_seed(seed, "fuzz", i)
        for algorithm in per_seed:
            scenario = generate_scenario(
                case_seed, algorithm=algorithm, budget=budget
            )
            failures = check_scenario(scenario, oracle_list)
            report.cases += 1
            done += 1
            if failures:
                report.failures.append(
                    FuzzFailure(
                        seed=case_seed,
                        algorithm=scenario["algorithm"],
                        scenario=scenario,
                        failures=failures,
                    )
                )
            if progress is not None:
                progress(done, total, report)
            if max_failures is not None and len(report.failures) >= max_failures:
                return report
    return report


def bisect_candidates(
    scenario: Dict[str, Any], *, snapshot_every: int = 400
) -> tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Checkpoint-bisect a crashing scenario to its shortest failing suffix.

    Re-runs the scenario with periodic snapshots up to the crash, then
    binary-searches for the *latest* snapshot whose resumed run still
    crashes with the same exception type — the failure lives entirely in
    the suffix after it.  Every job already finished at that boundary is
    provably uninvolved, so the derived head-start candidate drops them
    all in one step (the greedy shrinker would need one full eval per
    job to discover the same thing).

    Only meaningful for the crash oracle: snapshots cannot coexist with
    the flight recorder the other oracles rely on.  Returns
    ``(candidates, info)`` — candidates may be empty when the scenario
    does not crash, crashes before the first checkpoint, or had no
    finished jobs at the bisected boundary.
    """
    from repro.batch import Simulation

    info: Dict[str, Any] = {"snapshots": 0}
    snapshots: List[Any] = []
    try:
        sim = Simulation.from_spec(json.loads(json.dumps(scenario)))
        sim.run(snapshot_every=snapshot_every, snapshot_callback=snapshots.append)
    except Exception as exc:  # noqa: BLE001 - the crash is the point
        info["signature"] = type(exc).__name__
    else:
        info["signature"] = None
        return [], info  # no crash: nothing to bisect
    info["snapshots"] = len(snapshots)
    if not snapshots:
        return [], info

    def crashes(snap: Any) -> bool:
        try:
            Simulation.resume(snap).run()
        except Exception as exc:  # noqa: BLE001
            return type(exc).__name__ == info["signature"]
        return False

    lo, hi, best = 0, len(snapshots) - 1, -1
    while lo <= hi:
        mid = (lo + hi) // 2
        if crashes(snapshots[mid]):
            best, lo = mid, mid + 1
        else:
            hi = mid - 1
    if best < 0:
        return [], info
    snap = snapshots[best]
    batch_state = snap.state["batch"]
    alive = (
        set(batch_state["queue"])
        | set(batch_state["running"])
        | {rec["jid"] for rec in batch_state["submitters"]}
    )
    info.update(
        bisected_to=best, suffix_time=snap.time, suffix_events=snap.processed_events
    )
    jobs = scenario["workload"]["inline"]["jobs"]
    keep = [
        job
        for index, job in enumerate(jobs)
        if job.get("id", index + 1) in alive
    ]
    info["dropped_jobs"] = len(jobs) - len(keep)
    if not keep or len(keep) == len(jobs):
        return [], info
    candidate = json.loads(json.dumps(scenario))
    candidate["workload"]["inline"]["jobs"] = json.loads(json.dumps(keep))
    return [candidate], info


def shrink_failure(
    failure: FuzzFailure, *, max_evals: int = 400, bisect: bool = False
) -> tuple[Dict[str, Any], int]:
    """Shrink a failing case, preserving its *first* failing oracle.

    With ``bisect`` (crash failures only), checkpoint bisection first
    cuts the trace to its shortest failing suffix and bulk-drops every
    job that had already finished there, giving the greedy walk a much
    smaller starting point.
    """
    target = failure.failures[0].oracle
    oracle_names = list(ORACLES) if target == "crash" else [target]

    def still_fails(candidate: Dict[str, Any]) -> bool:
        return any(
            f.oracle == target for f in check_scenario(candidate, oracle_names)
        )

    initial: List[Dict[str, Any]] = []
    if bisect and target == "crash":
        initial, _info = bisect_candidates(failure.scenario)
    return shrink_scenario(
        failure.scenario,
        still_fails,
        max_evals=max_evals,
        initial_candidates=initial,
    )


def replay_scenario(
    source: Union[str, Path, Dict[str, Any]],
    *,
    oracles: Optional[Iterable[str]] = None,
) -> List[OracleFailure]:
    """Re-check a scenario or reproducer record; return oracle failures.

    Accepts a raw scenario dict, a reproducer record (``{"scenario": ...,
    "oracles": [...]}`` as written by :func:`write_reproducer`), or a path
    to a JSON file holding either.  Explicit ``oracles`` override the
    record's own list.
    """
    if isinstance(source, (str, Path)):
        data = json.loads(Path(source).read_text())
    else:
        data = source
    if "scenario" in data:
        scenario = data["scenario"]
        if oracles is None:
            oracles = data.get("oracles")
    else:
        scenario = data
    return check_scenario(scenario, oracles)


_TEST_TEMPLATE = '''"""Auto-generated fuzz regression test — do not edit by hand.

Scenario {name}: originally failed the {oracles} oracle(s).
Regenerate with `elastisim fuzz shrink` after an engine fix, or delete
once the scenario stops being interesting.
"""

import json

from repro.fuzz import check_scenario

SCENARIO = json.loads(r"""
{scenario_json}
""")


def test_{ident}():
    assert check_scenario(SCENARIO, oracles={oracles!r}) == []
'''


def write_reproducer(
    scenario: Dict[str, Any],
    failures: List[OracleFailure],
    directory: Union[str, Path],
    *,
    stem: Optional[str] = None,
) -> Dict[str, Path]:
    """Persist a failing scenario as replayable, runnable, testable files.

    Writes ``<stem>.json`` (reproducer record for ``fuzz replay`` /
    corpus promotion), ``<stem>.campaign.json`` (a campaign spec for
    ``elastisim campaign run``) and ``<stem>_test.py`` (a pytest snippet
    asserting the oracles pass — i.e. to commit *after* fixing the bug).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if stem is None:
        stem = scenario.get("name", "reproducer").replace(":", "-")
    oracle_names = sorted({f.oracle for f in failures})
    record = {
        "scenario": scenario,
        "oracles": oracle_names,
        "failures": [{"oracle": f.oracle, "detail": f.detail} for f in failures],
    }
    record_path = directory / f"{stem}.json"
    record_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    campaign = {
        key: scenario[key]
        for key in ("name", "platform", "workload", "algorithm", "sim")
        if key in scenario
    }
    if "seed" in scenario:
        campaign["seeds"] = [scenario["seed"]]
    campaign_path = directory / f"{stem}.campaign.json"
    campaign_path.write_text(json.dumps(campaign, indent=2, sort_keys=True) + "\n")

    ident = stem.replace("-", "_").replace(".", "_")
    # The regression test replays only oracles a fixed engine must satisfy
    # ("crash" is check_scenario's own verdict, not a replayable oracle).
    replay_oracles = [name for name in oracle_names if name in ORACLES] or list(
        ORACLES
    )
    test_path = directory / f"{stem}_test.py"
    test_path.write_text(
        _TEST_TEMPLATE.format(
            name=scenario.get("name", stem),
            oracles=replay_oracles,
            ident=ident,
            scenario_json=json.dumps(scenario, indent=2, sort_keys=True),
        )
    )
    return {"record": record_path, "campaign": campaign_path, "test": test_path}
