"""Scenario fuzzing: generative correctness testing for the simulator.

The paper's central claim is that the simulator handles rigid, moldable,
evolving, and malleable jobs *correctly under arbitrary scheduler
decisions* — and the engine carries several performance-motivated A/B
pairs (compiled vs. interpreted expressions, scalar vs. vectorized
max-min kernel) whose equivalence hand-written tests only spot-check.
This package turns those oracles into a generative harness:

* :func:`generate_scenario` — a random-but-valid scenario (platform,
  workload with random phase/task structure and expression-driven
  magnitudes, scheduler, failure trace) from a single seed, shaped as a
  ready-to-run campaign/:meth:`~repro.batch.Simulation.from_spec` dict;
* :mod:`repro.fuzz.oracles` — the pluggable oracle stack: *differential*
  (byte-identical ``run_record`` across all engine-mode combinations),
  *invariant* (``check_invariants=True`` streaming audit), and
  *metamorphic* (job-id relabelling, power-of-two time/work scaling,
  never-allocated spare nodes, rigid jobs as single-point malleables);
* :func:`shrink_scenario` — greedy reduction of a failing scenario (drop
  jobs, drop phases, shrink node counts, simplify expressions) to a
  minimal reproducer, serialisable as a campaign spec plus a pytest
  regression snippet (:func:`write_reproducer`);
* :func:`fuzz_run` — the campaign driver behind ``elastisim fuzz``.

See docs/TESTING.md for the workflow (running, shrinking, promoting
reproducers into ``tests/fuzz/corpus/``).
"""

from repro.fuzz.generate import FuzzBudget, generate_scenario
from repro.fuzz.oracles import (
    ORACLES,
    OracleFailure,
    check_scenario,
    run_scenario_record,
)
from repro.fuzz.runner import (
    FuzzFailure,
    bisect_candidates,
    FuzzReport,
    fuzz_run,
    replay_scenario,
    shrink_failure,
    write_reproducer,
)
from repro.fuzz.shrink import shrink_scenario

__all__ = [
    "FuzzBudget",
    "FuzzFailure",
    "FuzzReport",
    "ORACLES",
    "OracleFailure",
    "bisect_candidates",
    "check_scenario",
    "fuzz_run",
    "generate_scenario",
    "replay_scenario",
    "run_scenario_record",
    "shrink_failure",
    "shrink_scenario",
    "write_reproducer",
]
