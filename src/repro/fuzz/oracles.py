"""The pluggable oracle stack: what "correct" means without a reference run.

A fuzzer needs a verdict for workloads nobody hand-computed.  Three oracle
families provide one:

* **differential** — the engine's performance A/B pairs (compiled vs.
  interpreted expressions x scalar vs. vectorized vs. auto max-min
  kernel) are *specified* to be pure optimisations: ``run_record()`` must
  serialise byte-identically across all mode combinations.
* **invariant** — the streaming :class:`~repro.tracing.InvariantChecker`
  audits conservation laws (node accounting, queue accounting, monotone
  time) during a reference-mode run.
* **metamorphic** — known-answer *transformations*: relabelling job ids,
  scaling every time-dimensioned quantity by a power of two, adding spare
  nodes no policy will ever allocate, re-typing rigid jobs as
  single-point malleables, and relaxing the power corridor under the
  strict-FCFS hybrid policy must each change results in a precisely
  predictable way (usually: not at all).

Each oracle takes a scenario dict (see :mod:`repro.fuzz.generate`) and
returns ``None`` (pass / not applicable) or an :class:`OracleFailure`.
Crashes inside an oracle's runs are findings, not errors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional

#: Engine-mode matrix (compiled expressions?, DEFAULT_VECTORIZE, array
#: engine?).  The first entry is the reference configuration (everything
#: shipped/default); ``None`` is the vectorize auto-dispatch; the last
#: column flips the struct-of-arrays slot engine
#: (:func:`repro.sharing.set_array_engine_enabled`).
MODES = [
    (True, None, True),
    (True, None, False),
    (True, False, True),
    (True, True, False),
    (False, False, False),
]

#: Power-of-two factor used by the time-scaling oracle.  Must be a power
#: of two: multiplying IEEE doubles by 2**n is exact and commutes with
#: rounding, so a correctly-scaled simulation reproduces *bit-identical*
#: scaled times — any inexact factor would need sloppy tolerances.
SCALE_FACTOR = 4


@dataclass(frozen=True)
class OracleFailure:
    """One oracle's verdict that a scenario misbehaves."""

    oracle: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.oracle}] {self.detail}"


def run_scenario_record(
    scenario: Dict[str, Any],
    *,
    compiled: bool = True,
    vectorize: Optional[bool] = None,
    array: Optional[bool] = None,
    check_invariants: bool = False,
    prefail: int = 0,
) -> Dict[str, Any]:
    """Run a scenario under a given engine mode; return its run_record.

    ``array`` pins the struct-of-arrays slot engine on/off for the run
    (``None`` keeps the process default).  ``prefail`` marks the last N
    nodes failed before the run starts (the spare-nodes oracle's way of
    adding capacity that is provably never allocated without racing the
    t=0 scheduler invocation).
    """
    import repro.sharing.model as sharing_model
    from repro import Simulation
    from repro.expressions import set_compiled_enabled
    from repro.sharing import array_engine_enabled, set_array_engine_enabled

    set_compiled_enabled(compiled)
    old_vectorize = sharing_model.DEFAULT_VECTORIZE
    sharing_model.DEFAULT_VECTORIZE = vectorize
    old_array = array_engine_enabled()
    if array is not None:
        set_array_engine_enabled(array)
    try:
        sim = Simulation.from_spec(scenario)
        if prefail:
            for node in sim.batch.platform.nodes[-prefail:]:
                node.fail()
        monitor = sim.run(check_invariants=check_invariants)
    finally:
        set_compiled_enabled(True)
        sharing_model.DEFAULT_VECTORIZE = old_vectorize
        set_array_engine_enabled(old_array)
    return monitor.run_record()


def _canonical(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True)


def _first_diff(a: Any, b: Any, path: str = "") -> str:
    """Human-oriented pointer at the first divergence between two records."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                return f"{path}.{key}: only on one side"
            if a[key] != b[key]:
                return _first_diff(a[key], b[key], f"{path}.{key}")
        return f"{path}: records compare equal item-wise"
    return f"{path}: {a!r} != {b!r}"


def _deepcopy(scenario: Dict[str, Any]) -> Dict[str, Any]:
    # Scenarios are JSON-shaped by construction; a JSON round-trip is a
    # deep copy that also catches accidental non-JSON values early.
    return json.loads(json.dumps(scenario))


def _algorithm_base(scenario: Dict[str, Any]) -> str:
    return str(scenario.get("algorithm", "easy")).partition(":")[0]


def _inline_jobs(scenario: Dict[str, Any]) -> List[Dict[str, Any]]:
    return scenario["workload"]["inline"]["jobs"]


# -- differential -------------------------------------------------------------


def differential_oracle(scenario: Dict[str, Any]) -> Optional[OracleFailure]:
    """run_record must be byte-identical across all engine modes."""
    reference = run_scenario_record(
        scenario, compiled=MODES[0][0], vectorize=MODES[0][1], array=MODES[0][2]
    )
    reference_bytes = _canonical(reference)
    for compiled, vectorize, array in MODES[1:]:
        record = run_scenario_record(
            scenario, compiled=compiled, vectorize=vectorize, array=array
        )
        if _canonical(record) != reference_bytes:
            return OracleFailure(
                "differential",
                f"run_record diverged under compiled={compiled} "
                f"vectorize={vectorize} array={array}: "
                f"{_first_diff(reference, record)}",
            )
    return None


# -- invariant ----------------------------------------------------------------


def invariant_oracle(scenario: Dict[str, Any]) -> Optional[OracleFailure]:
    """The streaming invariant checker must stay silent."""
    from repro.tracing import InvariantViolation

    try:
        run_scenario_record(scenario, check_invariants=True)
    except InvariantViolation as exc:
        return OracleFailure("invariant", str(exc))
    return None


# -- metamorphic: job-id relabelling ------------------------------------------


def permute_jids_oracle(scenario: Dict[str, Any]) -> Optional[OracleFailure]:
    """Order-preserving job-id relabelling must not change anything.

    Job ids are names: schedulers may use them only for stable tie-breaks,
    which an order-preserving remap keeps intact.  Skipped for the random
    scheduler — its decision stream is seeded independently of ids but
    spending draws is part of its contract, not a correctness statement.
    """
    if _algorithm_base(scenario) == "random":
        return None
    relabelled = _deepcopy(scenario)
    for job in _inline_jobs(relabelled):
        job["id"] = job["id"] * 7 + 3
    base = run_scenario_record(scenario)
    perm = run_scenario_record(relabelled)
    if _canonical(base) != _canonical(perm):
        return OracleFailure(
            "permute-jids",
            f"relabelling job ids changed the run: {_first_diff(base, perm)}",
        )
    return None


# -- metamorphic: power-of-two time scaling -----------------------------------

_SCALED_SUMMARY_FIELDS = {
    "makespan",
    "mean_wait",
    "median_wait",
    "max_wait",
    "mean_turnaround",
    "p95_turnaround",
}

#: Bounded slowdown uses a fixed interactivity threshold (tau = 10s) that
#: deliberately does not scale with the workload.
_SCALE_IGNORED_FIELDS = {"mean_bounded_slowdown"}


def _scale_magnitude(value: Any, k: int) -> Any:
    if isinstance(value, str):
        return f"({value}) * {k}"
    return value * k


def _scale_task(task: Dict[str, Any], k: int) -> None:
    kind = task["type"]
    if kind in ("cpu", "gpu"):
        task["flops"] = _scale_magnitude(task["flops"], k)
    elif kind == "delay":
        task["seconds"] = _scale_magnitude(task["seconds"], k)
    elif kind == "evolving_request":
        pass  # node counts are not time-dimensioned
    else:  # comm / pfs_* / bb_*
        task["bytes"] = _scale_magnitude(task["bytes"], k)
        if "charge" in task:
            task["charge"] = _scale_magnitude(task["charge"], k)


def scale_scenario(scenario: Dict[str, Any], k: int = SCALE_FACTOR) -> Dict[str, Any]:
    """Scale every time-dimensioned quantity by ``k`` (capacities fixed).

    Work (flops, bytes) scales against unchanged node speeds and
    bandwidths, so every duration — and nothing else — multiplies by
    ``k``.  Counts, fractions, and iteration structure stay put.
    """
    scaled = _deepcopy(scenario)
    platform = scaled["platform"]
    if "latency" in platform.get("network", {}):
        platform["network"]["latency"] *= k
    for job in _inline_jobs(scaled):
        job["submit_time"] = job["submit_time"] * k
        if "walltime" in job:
            job["walltime"] = job["walltime"] * k
        if "checkpoint_bytes" in job:
            # Restart I/O is byte-dimensioned work against fixed bandwidth,
            # so it scales like every other transfer.
            job["checkpoint_bytes"] = job["checkpoint_bytes"] * k
        app = job.get("application", {})
        if "data_per_node" in app:
            app["data_per_node"] = _scale_magnitude(app["data_per_node"], k)
        for phase in app.get("phases", []):
            for task in phase["tasks"]:
                _scale_task(task, k)
    sim = scaled.get("sim", {})
    if "invocation_interval" in sim:
        sim["invocation_interval"] *= k
    for failure in sim.get("failures", {}).get("trace", []):
        failure["time"] *= k
        failure["downtime"] *= k
    return scaled


def scale_time_oracle(scenario: Dict[str, Any]) -> Optional[OracleFailure]:
    """x4 all work: every time statistic must scale bit-exactly by 4."""
    if _algorithm_base(scenario) == "random":
        return None
    k = SCALE_FACTOR
    base = run_scenario_record(scenario)
    scaled = run_scenario_record(scale_scenario(scenario, k))
    expected = _deepcopy(base)
    for field in _SCALED_SUMMARY_FIELDS:
        if expected["summary"][field] is not None:
            expected["summary"][field] *= k
    if "energy" in expected:
        # Durations stretch by k at unchanged wattage, so every energy
        # integral multiplies by k bit-exactly; the observed power maximum
        # and the corridor are wattages and must not move.
        expected["energy"]["total_joules"] *= k
        expected["energy"]["node_joules"] = [
            joules * k for joules in expected["energy"]["node_joules"]
        ]
    for record in (expected, scaled):
        for field in _SCALE_IGNORED_FIELDS:
            record["summary"].pop(field, None)
    if _canonical(expected) != _canonical(scaled):
        return OracleFailure(
            "scale-time",
            f"x{k} workload did not scale times x{k}: "
            f"{_first_diff(expected, scaled)}",
        )
    return None


# -- metamorphic: spare nodes -------------------------------------------------

#: Policies whose decisions read the *total* machine size (not just the
#: free pool): extra nodes legitimately change their behaviour.
_SPARE_SKIP_ALGORITHMS = {"malleable", "random"}

#: Topologies whose builders constrain the node count to a shape product;
#: appending nodes would change the shape, not just add capacity.
_SPARE_TOPOLOGIES = {"star", "fat_tree"}


def spare_nodes_oracle(scenario: Dict[str, Any]) -> Optional[OracleFailure]:
    """Capacity that is never schedulable must not change the schedule.

    Two extra nodes are appended and immediately failed (before t=0), so
    the free pool every policy sees is identical to the base run.  Only
    machine-size-normalised statistics (utilization) may change.
    """
    if _algorithm_base(scenario) in _SPARE_SKIP_ALGORITHMS:
        return None
    topology = scenario["platform"].get("network", {}).get("topology", "star")
    if topology not in _SPARE_TOPOLOGIES:
        return None
    spare = 2
    widened = _deepcopy(scenario)
    widened["platform"]["nodes"]["count"] += spare
    base = run_scenario_record(scenario)
    wide = run_scenario_record(widened, prefail=spare)
    for record in (base, wide):
        record["summary"].pop("mean_utilization", None)
    if "energy" in wide:
        # The spare nodes fail at t=0 before drawing anything, so their
        # energy entries must be exactly zero — anything else means a
        # failed node was billed — and the rest of the record (totals,
        # observed maximum) must match the base run byte for byte.
        extra = wide["energy"]["node_joules"][-spare:]
        if extra != [0.0] * spare:
            return OracleFailure(
                "spare-nodes",
                f"prefailed spare nodes accumulated energy: {extra}",
            )
        del wide["energy"]["node_joules"][-spare:]
    if _canonical(base) != _canonical(wide):
        return OracleFailure(
            "spare-nodes",
            f"{spare} never-allocated spare nodes changed the run: "
            f"{_first_diff(base, wide)}",
        )
    return None


# -- metamorphic: rigid jobs as single-point malleables -----------------------

#: Policies for which a malleable job with min == max == request is
#: semantically indistinguishable from the rigid original (verified
#: against each implementation: sizing uses ``num_nodes if rigid else``
#: bounds that all collapse to the same single point, and reconfiguration
#: targets clamp into [min, max] = {request} so no resize is ever legal).
#: priority-preempt is excluded (it may pick malleable victims to shrink),
#: as is the random scheduler (type changes its draw sequence).
_RIGID_AS_MALLEABLE_ALGORITHMS = {
    "fcfs",
    "easy",
    "sjf",
    "fairshare",
    "conservative",
    "moldable",
    "adaptive-moldable",
    "malleable",
}


def rigid_as_malleable_oracle(scenario: Dict[str, Any]) -> Optional[OracleFailure]:
    """Rigid == malleable-with-one-point-bounds, job for job.

    Compares summary statistics only: malleable jobs hit extra scheduler
    invocations at scheduling points, so raw event counts legitimately
    differ while every start/end time must not.
    """
    if _algorithm_base(scenario) not in _RIGID_AS_MALLEABLE_ALGORITHMS:
        return None
    if not any(job["type"] == "rigid" for job in _inline_jobs(scenario)):
        return None
    retyped = _deepcopy(scenario)
    for job in _inline_jobs(retyped):
        if job["type"] == "rigid":
            job["type"] = "malleable"
            job["min_nodes"] = job["num_nodes"]
            job["max_nodes"] = job["num_nodes"]
    base = run_scenario_record(scenario)["summary"]
    alt = run_scenario_record(retyped)["summary"]
    if _canonical(base) != _canonical(alt):
        return OracleFailure(
            "rigid-as-malleable",
            "re-typing rigid jobs as single-point malleables changed "
            f"summary statistics: {_first_diff(base, alt)}",
        )
    return None


# -- metamorphic: power-corridor relaxation -----------------------------------

#: Task types whose durations are independent of co-running jobs.  Shared
#: PFS / link / burst-buffer contention couples job runtimes, and Graham-
#: style anomalies then allow a *relaxed* constraint to lengthen the
#: schedule without any bug being present.
_CONTENTION_FREE_TASKS = {"cpu", "gpu", "delay"}


def corridor_relax_oracle(scenario: Dict[str, Any]) -> Optional[OracleFailure]:
    """Widening the power corridor must never increase the makespan.

    Monotonicity only holds for a policy that is anomaly-free by
    construction, so the oracle is gated on documented skip rules
    (``docs/HYBRID.md``):

    * ``hybrid-corridor`` only — its batch pass is strict FCFS with no
      backfilling, which is what makes extra headroom monotone; every
      other policy is corridor-oblivious anyway;
    * a corridor must be declared, or there is nothing to relax;
    * ``no-ondemand`` — on-demand admissions preempt batch jobs, and the
      preemption points (hence checkpoint/restart cost) legitimately move
      when the corridor does;
    * contention-free tasks only (cpu/gpu/delay) and no evolving jobs or
      tasks — runtimes must not depend on what else is running;
    * no failure injection — a repair racing a corridor-blocked head can
      reorder starts.
    """
    if _algorithm_base(scenario) != "hybrid-corridor":
        return None
    power = scenario["platform"].get("power") or {}
    corridor = power.get("corridor_watts")
    if corridor is None:
        return None
    jobs = _inline_jobs(scenario)
    if any(job.get("class") == "on-demand" for job in jobs):
        return None  # "no-ondemand"
    if any(job["type"] == "evolving" for job in jobs):
        return None
    for job in jobs:
        for phase in job["application"].get("phases", []):
            for task in phase["tasks"]:
                if task["type"] not in _CONTENTION_FREE_TASKS:
                    return None
    if scenario.get("sim", {}).get("failures"):
        return None
    relaxed = _deepcopy(scenario)
    relaxed["platform"]["power"]["corridor_watts"] = corridor * 2
    base = run_scenario_record(scenario)["summary"]["makespan"]
    wide = run_scenario_record(relaxed)["summary"]["makespan"]
    if wide > base * (1 + 1e-9):
        return OracleFailure(
            "corridor-relax",
            f"doubling the corridor increased makespan {base:g} -> {wide:g}",
        )
    return None


# -- registry -----------------------------------------------------------------

#: Name -> oracle, in the order :func:`check_scenario` applies them.
ORACLES: Dict[str, Callable[[Dict[str, Any]], Optional[OracleFailure]]] = {
    "differential": differential_oracle,
    "invariant": invariant_oracle,
    "permute-jids": permute_jids_oracle,
    "scale-time": scale_time_oracle,
    "spare-nodes": spare_nodes_oracle,
    "rigid-as-malleable": rigid_as_malleable_oracle,
    "corridor-relax": corridor_relax_oracle,
}


def check_scenario(
    scenario: Dict[str, Any],
    oracles: Optional[Iterable[str]] = None,
) -> List[OracleFailure]:
    """Run the oracle stack; return all failures (empty list = clean).

    A scenario that crashes outright under the reference engine mode
    short-circuits to a single ``crash`` failure — every oracle would
    just re-report it.  Oracles that crash internally (only *their*
    transformed run dies, say) report it as their own failure.
    """
    try:
        run_scenario_record(scenario)
    except Exception as exc:  # noqa: BLE001 - any crash is the finding
        return [OracleFailure("crash", f"{type(exc).__name__}: {exc}")]
    names = list(ORACLES) if oracles is None else list(oracles)
    failures: List[OracleFailure] = []
    for name in names:
        try:
            failure = ORACLES[name](scenario)
        except Exception as exc:  # noqa: BLE001
            failure = OracleFailure(name, f"{type(exc).__name__}: {exc}")
        if failure is not None:
            failures.append(failure)
    return failures
