"""Greedy scenario shrinking: from a failing fuzz case to a minimal repro.

``shrink_scenario`` takes a failing scenario and a predicate ("does this
still fail the same way?") and walks toward a local minimum: each round
proposes structurally smaller candidates — ordered by how much they
remove — and greedily restarts from the first candidate that is still a
valid scenario *and* still fails.  The result is the classic
delta-debugging fixpoint: no single remaining reduction can be applied
without losing the failure.

The predicate is opaque (the runner re-checks only the originally-failing
oracle), so the shrinker never needs to know *why* a scenario fails; a
candidate that stops failing — including by crashing differently — is
simply rejected.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Iterable, Iterator, List, Tuple

from repro.fuzz.generate import validate_scenario


def _deepcopy(scenario: Dict[str, Any]) -> Dict[str, Any]:
    return json.loads(json.dumps(scenario))


def _jobs(scenario: Dict[str, Any]) -> List[Dict[str, Any]]:
    return scenario["workload"]["inline"]["jobs"]


def _magnitude_default(kind: str, field: str) -> float:
    if field == "flops":
        return 1e11
    if field == "seconds":
        return 1.0
    return 1e6  # bytes / charge


def _candidates(scenario: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """Structurally smaller variants, biggest reductions first."""
    jobs = _jobs(scenario)

    # 1. Drop whole jobs.
    if len(jobs) > 1:
        for i in range(len(jobs)):
            cand = _deepcopy(scenario)
            del _jobs(cand)[i]
            yield cand

    # 2. Drop sim-level complexity: failure-trace entries, then options.
    sim = scenario.get("sim", {})
    trace = sim.get("failures", {}).get("trace", [])
    for i in range(len(trace)):
        cand = _deepcopy(scenario)
        cand_trace = cand["sim"]["failures"]["trace"]
        del cand_trace[i]
        if not cand_trace:
            del cand["sim"]["failures"]
        yield cand
    for key in ("checkpoint_restart", "requeue_on_failure", "max_requeues",
                "invocation_interval"):
        if key in sim:
            cand = _deepcopy(scenario)
            del cand["sim"][key]
            yield cand

    # 3. Simplify the platform: plain star topology, halved node count,
    #    and unused capability blocks.
    network = scenario["platform"].get("network", {})
    if network.get("topology", "star") != "star":
        cand = _deepcopy(scenario)
        net = cand["platform"]["network"]
        for key in list(net):
            if key not in ("topology", "bandwidth", "latency", "pfs_bandwidth"):
                del net[key]
        net["topology"] = "star"
        yield cand
    count = scenario["platform"]["nodes"]["count"]
    topology = network.get("topology", "star")
    if count > 1 and topology != "dragonfly":
        # Halve first (fast descent), then single steps (fine descent past
        # the point where halving overshoots the failure region).  Tori
        # shrink in steps of 2 with their dims kept consistent; dragonfly
        # shapes are only reduced via the topology->star candidate above.
        step = 2 if topology == "torus" else 1
        floor = step
        for new_count in (max(floor, count // 2 // step * step), count - step):
            if new_count >= count or new_count < floor:
                continue
            cand = _deepcopy(scenario)
            cand["platform"]["nodes"]["count"] = new_count
            if topology == "torus":
                cand["platform"]["network"]["dims"] = [2, new_count // 2]
            for job in _jobs(cand):
                job["num_nodes"] = min(job["num_nodes"], new_count)
                for key in ("min_nodes", "max_nodes"):
                    if key in job:
                        job[key] = min(job[key], new_count)
            for failure in cand.get("sim", {}).get("failures", {}).get("trace", []):
                failure["node"] = failure["node"] % new_count
            yield cand
    task_kinds = {
        task["type"]
        for job in jobs
        for phase in job.get("application", {}).get("phases", [])
        for task in phase["tasks"]
    }
    platform = scenario["platform"]
    if "burst_buffer" in platform and not task_kinds & {"bb_read", "bb_write"}:
        cand = _deepcopy(scenario)
        del cand["platform"]["burst_buffer"]
        yield cand
    if "pfs" in platform and not task_kinds & {"pfs_read", "pfs_write"}:
        cand = _deepcopy(scenario)
        del cand["platform"]["pfs"]
        cand["platform"]["network"].pop("pfs_bandwidth", None)
        yield cand
    if platform["nodes"].get("gpus") and "gpu" not in task_kinds:
        cand = _deepcopy(scenario)
        cand["platform"]["nodes"].pop("gpus", None)
        cand["platform"]["nodes"].pop("gpu_flops", None)
        yield cand

    # 4. Per-job structure: drop phases, then tasks, then iteration counts.
    for j, job in enumerate(jobs):
        phases = job.get("application", {}).get("phases", [])
        if len(phases) > 1:
            for p in range(len(phases)):
                cand = _deepcopy(scenario)
                del _jobs(cand)[j]["application"]["phases"][p]
                yield cand
        for p, phase in enumerate(phases):
            if len(phase["tasks"]) > 1:
                for t in range(len(phase["tasks"])):
                    cand = _deepcopy(scenario)
                    del _jobs(cand)[j]["application"]["phases"][p]["tasks"][t]
                    yield cand
            if phase.get("iterations", 1) > 1:
                cand = _deepcopy(scenario)
                del _jobs(cand)[j]["application"]["phases"][p]["iterations"]
                yield cand

    # 5. Shrink per-job node demands toward 1 (halve, then step).
    for j, job in enumerate(jobs):
        for smaller in (max(1, job["num_nodes"] // 2), job["num_nodes"] - 1):
            if smaller == job["num_nodes"] or smaller < 1:
                continue
            cand = _deepcopy(scenario)
            cjob = _jobs(cand)[j]
            cjob["num_nodes"] = smaller
            if "min_nodes" in cjob:
                cjob["min_nodes"] = min(cjob["min_nodes"], smaller)
            if "max_nodes" in cjob:
                cjob["max_nodes"] = max(smaller, cjob["max_nodes"] // 2)
            yield cand

    # 6. Simplify expressions to literals; drop optional job fields.
    for j, job in enumerate(jobs):
        for p, phase in enumerate(job.get("application", {}).get("phases", [])):
            for t, task in enumerate(phase["tasks"]):
                for field in ("flops", "bytes", "seconds", "charge"):
                    if isinstance(task.get(field), str):
                        cand = _deepcopy(scenario)
                        ctask = _jobs(cand)[j]["application"]["phases"][p][
                            "tasks"][t]
                        ctask[field] = _magnitude_default(task["type"], field)
                        yield cand
        for key in ("walltime", "priority"):
            if key in job:
                cand = _deepcopy(scenario)
                del _jobs(cand)[j][key]
                yield cand
        if job.get("submit_time", 0.0) != 0.0:
            cand = _deepcopy(scenario)
            _jobs(cand)[j]["submit_time"] = 0.0
            yield cand
        app = job.get("application", {})
        if "data_per_node" in app:
            cand = _deepcopy(scenario)
            del _jobs(cand)[j]["application"]["data_per_node"]
            yield cand


def shrink_scenario(
    scenario: Dict[str, Any],
    predicate: Callable[[Dict[str, Any]], bool],
    *,
    max_evals: int = 400,
    initial_candidates: Iterable[Dict[str, Any]] = (),
) -> Tuple[Dict[str, Any], int]:
    """Reduce ``scenario`` while ``predicate`` holds; return (minimal, evals).

    ``predicate(candidate)`` must return True iff the candidate still
    exhibits the original failure.  ``max_evals`` bounds total predicate
    invocations (each one typically re-runs the simulator several times);
    hitting the bound returns the best scenario found so far, which is
    still a valid reproducer — just maybe not minimal.

    ``initial_candidates`` are caller-supplied head starts tried before
    the structural walk, biggest first — e.g. the bulk job-drop derived
    from checkpoint bisection (``elastisim fuzz shrink --bisect``).  The
    first one that validates and still fails becomes the starting point.
    """
    current = _deepcopy(scenario)
    evals = 0
    for candidate in initial_candidates:
        if evals >= max_evals:
            break
        try:
            validate_scenario(candidate)
        except Exception:  # noqa: BLE001 - left the valid-input space
            continue
        evals += 1
        if predicate(candidate):
            current = _deepcopy(candidate)
            break  # take the biggest head start that still fails
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in _candidates(current):
            if evals >= max_evals:
                break
            try:
                validate_scenario(candidate)
            except Exception:  # noqa: BLE001 - left the valid-input space
                continue
            evals += 1
            if predicate(candidate):
                current = candidate
                improved = True
                break  # restart proposals from the smaller scenario
    return current, evals
