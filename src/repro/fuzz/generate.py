"""Random-but-valid scenario generation from a single seed.

A *scenario* is the plain-dict form :meth:`repro.batch.Simulation.from_spec`
(and the campaign subsystem) consume: ``{"name", "platform", "workload":
{"inline": ...}, "algorithm", "seed", "sim"}``.  Everything is drawn from
one ``random.Random(seed)`` stream, so a scenario is reproducible from its
seed alone and shrinking operates on pure data.

Two deliberate generation constraints keep scenarios *valid* rather than
merely random:

* every job requests at most the machine size, and a drawn power
  corridor always admits at least the widest request (otherwise
  strict-FCFS and corridor-respecting policies legitimately stall, which
  would drown real failures in noise);
* evolving requests are non-blocking (a blocking request under a policy
  that never grants nor denies suspends the job forever — a documented
  scheduler property, not an engine bug).

Magnitude expressions avoid ``job_id`` so the job-relabelling metamorphic
oracle holds by construction; they may use ``num_nodes``, ``iteration``,
and per-job ``arguments``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

#: Algorithms a generated scenario may draw (the shipped policies plus the
#: adversarial random scheduler; see :data:`repro.fuzz.oracles.ORACLES`
#: for which oracles apply to which).
ALGORITHM_POOL = [
    "fcfs",
    "easy",
    "sjf",
    "fairshare",
    "priority-preempt",
    "conservative",
    "moldable",
    "adaptive-moldable",
    "malleable",
    "hybrid-corridor",
]

#: The four reference algorithms CI's fuzz gates run against.
SHIPPED_ALGORITHMS = ["fcfs", "easy", "moldable", "malleable"]


@dataclass(frozen=True)
class FuzzBudget:
    """Size limits for generated scenarios.

    The defaults keep single runs in the low-millisecond range so a fuzz
    campaign of hundreds of scenarios x several engine modes stays cheap;
    raise them for nightly deep runs.
    """

    max_nodes: int = 16
    max_jobs: int = 6
    max_phases: int = 3
    max_tasks_per_phase: int = 3
    max_iterations: int = 3
    #: Probability that the scenario injects node failures.
    failure_probability: float = 0.3
    #: Probability that the platform declares per-node power draw (and,
    #: more often than not, a corridor on top).
    power_probability: float = 0.35
    #: Probability that the workload mixes in on-demand-class jobs.
    ondemand_probability: float = 0.25


DEFAULT_BUDGET = FuzzBudget()

_FLOPS_MENU = [5e10, 1e11, 4e11, 1e12, 2.5e12]
_BYTES_MENU = [1e6, 5e6, 1e8, 1e9, 5e9]
_BANDWIDTH_MENU = [1e9, 5e9, 1e10, 12.5e9, 1e11]
_COMM_PATTERNS = ["alltoall", "ring", "bcast", "gather", "pairwise"]


def _magnitude(rng: random.Random, base: float) -> Any:
    """A literal or a tame expression evaluating near ``base``.

    Expressions only reference metamorphic-safe variables (``num_nodes``,
    ``iteration``) — never ``job_id``.
    """
    roll = rng.random()
    if roll < 0.55:
        return base
    if roll < 0.7:
        return f"{base!r} / num_nodes"
    if roll < 0.8:
        return f"{base!r} + {base / 4!r} * iteration"
    if roll < 0.9:
        return f"if(iteration % 2 == 0, {base!r}, {base / 2!r})"
    return f"{base!r} * scale"


def _platform_spec(rng: random.Random, budget: FuzzBudget) -> Dict[str, Any]:
    count = rng.randint(2, budget.max_nodes)
    bandwidth = rng.choice(_BANDWIDTH_MENU)
    network: Dict[str, Any] = {"topology": "star", "bandwidth": bandwidth}
    if rng.random() < 0.5:
        network["latency"] = rng.choice([1e-6, 5e-6, 1e-5])

    roll = rng.random()
    if roll < 0.15:
        network["topology"] = "fat_tree"
        network["arity"] = rng.choice([2, 4])
    elif roll < 0.25:
        dims = [2, max(1, count // 2)]
        count = dims[0] * dims[1]
        network["topology"] = "torus"
        network["dims"] = dims
    elif roll < 0.32:
        per_router = rng.choice([1, 2])
        routers = 2
        groups = max(1, count // (routers * per_router))
        count = groups * routers * per_router
        network["topology"] = "dragonfly"
        network["groups"] = groups
        network["routers_per_group"] = routers
        network["nodes_per_router"] = per_router

    spec: Dict[str, Any] = {
        "name": "fuzz-cluster",
        "nodes": {"count": count, "flops": rng.choice([1e11, 1e12])},
        "network": network,
    }
    if rng.random() < 0.3:
        spec["nodes"]["gpus"] = rng.choice([1, 2])
        spec["nodes"]["gpu_flops"] = rng.choice([5e11, 2e12])
    if rng.random() < 0.7:
        read_bw = rng.choice(_BANDWIDTH_MENU)
        # Equal PFS-link and PFS-service bandwidths produce exact rate
        # ties in the max-min solve — the tie-breaking corner the
        # differential oracle exists for.
        network["pfs_bandwidth"] = read_bw if rng.random() < 0.5 else bandwidth
        spec["pfs"] = {"read_bw": read_bw, "write_bw": rng.choice(_BANDWIDTH_MENU)}
    if rng.random() < 0.3:
        spec["burst_buffer"] = {
            "read_bw": rng.choice([1e9, 5e9]),
            "write_bw": rng.choice([1e9, 2e9]),
        }
    return spec


def _power_spec(
    rng: random.Random,
    platform: Dict[str, Any],
    jobs: List[Dict[str, Any]],
    budget: FuzzBudget,
) -> None:
    """Tail draw: maybe declare per-node power, and a corridor on top.

    The corridor admits ``m`` simultaneously-busy nodes with ``m`` at
    least the widest request in the workload, so every job stays
    individually startable on an idle machine and corridor-respecting
    policies cannot stall by construction.
    """
    if rng.random() >= budget.power_probability:
        return
    count = platform["nodes"]["count"]
    idle = rng.choice([50.0, 100.0, 150.0])
    peak = idle + rng.choice([100.0, 200.0, 350.0])
    power: Dict[str, Any] = {"idle_watts": idle, "peak_watts": peak}
    if rng.random() < 0.6:
        widest = max(job["num_nodes"] for job in jobs)
        m = rng.randint(max(widest, count // 2), count)
        power["corridor_watts"] = idle * count + (peak - idle) * m
    platform["power"] = power


def _hybrid_spec(
    rng: random.Random,
    platform: Dict[str, Any],
    jobs: List[Dict[str, Any]],
    sim: Dict[str, Any],
    budget: FuzzBudget,
) -> None:
    """Tail draw: sprinkle on-demand job classes and checkpoint sizes."""
    fraction = 0.0
    if rng.random() < budget.ondemand_probability:
        fraction = rng.choice([0.2, 0.4, 0.6])
    for job in jobs:
        if rng.random() < fraction:
            job["class"] = "on-demand"
        # Restart I/O is read back from the PFS; without one the engine
        # (correctly) refuses to model it, so only draw it when present.
        if "pfs" in platform and rng.random() < 0.4:
            job["checkpoint_bytes"] = rng.choice([1e8, 1e9, 5e9])
    # On-demand admissions preempt batch jobs; flip checkpoint/restart on
    # often enough that the preemption-cost (restart I/O) path gets fuzzed.
    if any(job.get("class") == "on-demand" for job in jobs):
        if "checkpoint_restart" not in sim and rng.random() < 0.5:
            sim["checkpoint_restart"] = True


def _task_spec(
    rng: random.Random,
    platform: Dict[str, Any],
    *,
    evolving_bounds: Optional[tuple] = None,
    num_nodes: int = 1,
) -> Dict[str, Any]:
    kinds = ["cpu", "cpu", "delay"]
    if num_nodes > 1:
        kinds += ["comm", "comm"]
    if "pfs" in platform:
        kinds += ["pfs_read", "pfs_write"]
    if "burst_buffer" in platform:
        kinds += ["bb_read", "bb_write"]
    if platform["nodes"].get("gpus"):
        kinds.append("gpu")
    if evolving_bounds is not None:
        kinds.append("evolving_request")
    kind = rng.choice(kinds)

    if kind in ("cpu", "gpu"):
        spec: Dict[str, Any] = {
            "type": kind,
            "flops": _magnitude(rng, rng.choice(_FLOPS_MENU)),
        }
        if rng.random() < 0.4:
            spec["distribution"] = "per_node"
        if kind == "cpu" and rng.random() < 0.3:
            spec["serial_fraction"] = rng.choice([0.05, 0.1, 0.25])
        return spec
    if kind == "comm":
        return {
            "type": "comm",
            "bytes": _magnitude(rng, rng.choice(_BYTES_MENU[:3])),
            "pattern": rng.choice(_COMM_PATTERNS),
        }
    if kind in ("pfs_read", "pfs_write", "bb_read", "bb_write"):
        spec = {"type": kind, "bytes": _magnitude(rng, rng.choice(_BYTES_MENU))}
        if rng.random() < 0.4:
            spec["distribution"] = "per_node"
        return spec
    if kind == "delay":
        return {"type": "delay", "seconds": rng.choice([0.5, 1.0, 2.5])}
    # evolving_request: ask anywhere inside the job's bounds, non-blocking
    # (see module docstring).
    lo, hi = evolving_bounds
    return {"type": "evolving_request", "num_nodes": rng.randint(lo, hi)}


def _application_spec(
    rng: random.Random,
    platform: Dict[str, Any],
    budget: FuzzBudget,
    *,
    evolving_bounds: Optional[tuple],
    num_nodes: int,
) -> Dict[str, Any]:
    phases: List[Dict[str, Any]] = []
    num_phases = rng.randint(1, budget.max_phases)
    for p in range(num_phases):
        num_tasks = rng.randint(1, budget.max_tasks_per_phase)
        tasks = [
            _task_spec(
                rng,
                platform,
                evolving_bounds=evolving_bounds,
                num_nodes=num_nodes,
            )
            for _ in range(num_tasks)
        ]
        phase: Dict[str, Any] = {"tasks": tasks, "name": f"phase{p}"}
        if rng.random() < 0.6:
            phase["iterations"] = rng.randint(1, budget.max_iterations)
        if rng.random() < 0.15:
            phase["scheduling_point"] = False
        if (
            rng.random() < 0.2
            and len(tasks) > 1
            and all(t["type"] != "evolving_request" for t in tasks)
        ):
            phase["parallel"] = True
        phases.append(phase)
    app: Dict[str, Any] = {"name": "fuzz-app", "phases": phases}
    if rng.random() < 0.3:
        app["data_per_node"] = rng.choice([1e6, 1e7, 1e8])
    return app


def _job_specs(
    rng: random.Random, platform: Dict[str, Any], budget: FuzzBudget
) -> List[Dict[str, Any]]:
    count = platform["nodes"]["count"]
    num_jobs = rng.randint(1, budget.max_jobs)
    jobs: List[Dict[str, Any]] = []
    submit = 0.0
    for jid in range(1, num_jobs + 1):
        if rng.random() < 0.75:
            submit += round(rng.uniform(0.5, 25.0), 3)
        # else: same-instant submission burst

        job_type = rng.choice(
            ["rigid", "rigid", "moldable", "malleable", "malleable", "evolving"]
        )
        request = rng.randint(1, count)
        job: Dict[str, Any] = {
            "id": jid,
            "type": job_type,
            "submit_time": submit,
            "num_nodes": request,
        }
        evolving_bounds = None
        if job_type != "rigid":
            job["min_nodes"] = rng.randint(1, request)
            job["max_nodes"] = rng.randint(request, count)
            if job_type == "evolving":
                evolving_bounds = (job["min_nodes"], job["max_nodes"])
        if rng.random() < 0.3:
            job["walltime"] = round(rng.uniform(40.0, 400.0), 3)
        if rng.random() < 0.3:
            job["priority"] = rng.randint(0, 3)
        job["user"] = f"user{rng.randint(0, 2)}"
        job["application"] = _application_spec(
            rng,
            platform,
            budget,
            evolving_bounds=evolving_bounds,
            num_nodes=request,
        )
        job["arguments"] = {"scale": rng.choice([1, 2, 4])}
        jobs.append(job)
    return jobs


def _sim_spec(
    rng: random.Random, platform: Dict[str, Any], budget: FuzzBudget
) -> Dict[str, Any]:
    sim: Dict[str, Any] = {}
    if rng.random() < 0.3:
        sim["invocation_interval"] = rng.choice([5.0, 12.5, 30.0])
    if rng.random() < budget.failure_probability:
        count = platform["nodes"]["count"]
        trace = []
        for _ in range(rng.randint(1, 2)):
            trace.append(
                {
                    "time": round(rng.uniform(1.0, 120.0), 3),
                    "node": rng.randrange(count),
                    "downtime": round(rng.uniform(5.0, 60.0), 3),
                }
            )
        trace.sort(key=lambda f: (f["time"], f["node"]))
        sim["failures"] = {"trace": trace}
        if rng.random() < 0.5:
            sim["requeue_on_failure"] = True
            sim["max_requeues"] = rng.randint(1, 2)
            if rng.random() < 0.5:
                sim["checkpoint_restart"] = True
    return sim


def generate_scenario(
    seed: int,
    *,
    algorithm: Optional[str] = None,
    budget: FuzzBudget = DEFAULT_BUDGET,
    validate: bool = True,
) -> Dict[str, Any]:
    """Generate one scenario dict from ``seed``.

    ``algorithm`` pins the scheduler (the fuzz driver sweeps each scenario
    over several); None draws one from :data:`ALGORITHM_POOL`, with the
    adversarial ``random:<seed>`` scheduler mixed in.  With ``validate``
    (the default) the workload and platform are round-tripped through
    their loaders so generator bugs surface here, not inside an oracle.
    """
    rng = random.Random(seed)
    platform = _platform_spec(rng, budget)
    jobs = _job_specs(rng, platform, budget)
    sim = _sim_spec(rng, platform, budget)
    # The scheduler draws happen whether or not ``algorithm`` is pinned,
    # so pinning never shifts the stream feeding the rest of the scenario.
    pool = [name for name in ALGORITHM_POOL if name != "hybrid-corridor"]
    drawn = rng.choice(pool + [f"random:{seed}"])
    # Tail draws: every hybrid/power axis comes *after* the legacy stream
    # (and hybrid-corridor replaces the drawn scheduler only here), so a
    # given seed's base scenario is stable across generator versions and
    # committed reproducer seeds keep meaning what they meant.
    _hybrid_spec(rng, platform, jobs, sim, budget)
    _power_spec(rng, platform, jobs, budget)
    if rng.random() < 0.1:
        drawn = "hybrid-corridor"
    if algorithm is None:
        algorithm = drawn
    scenario = {
        "name": f"fuzz-{seed}",
        "platform": platform,
        "workload": {"inline": {"jobs": jobs}},
        "algorithm": algorithm,
        "seed": int(seed),
        "sim": sim,
    }
    if validate:
        validate_scenario(scenario)
    return scenario


def validate_scenario(scenario: Dict[str, Any]) -> None:
    """Raise if the scenario's platform or workload do not load.

    Used by the generator (fail fast) and the shrinker (reject reduction
    candidates that leave the valid-input space instead of reporting them
    as 'still failing').
    """
    from repro.platform import platform_from_dict
    from repro.workload import workload_from_dict

    platform = platform_from_dict(scenario["platform"])
    jobs = workload_from_dict(scenario["workload"]["inline"])
    for job in jobs:
        if job.min_nodes > platform.num_nodes:
            raise ValueError(
                f"job {job.jid} needs {job.min_nodes} nodes, "
                f"machine has {platform.num_nodes}"
            )
    for failure in scenario.get("sim", {}).get("failures", {}).get("trace", []):
        if failure["node"] >= platform.num_nodes:
            raise ValueError(
                f"failure on node {failure['node']} outside machine "
                f"of {platform.num_nodes}"
            )
