"""ElastiSim reproduction: a batch-system simulator for malleable workloads.

A pure-Python reimplementation of ElastiSim (Özden, Beringer, Mazaheri,
Fard, Wolf — ICPP 2022): a discrete-event batch-system simulator whose
distinguishing feature is first-class support for malleable and evolving
jobs.  See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced evaluation.

Quickstart
----------
>>> from repro import Simulation, platform_from_dict
>>> from repro.workload import WorkloadSpec, generate_workload
>>> platform = platform_from_dict({
...     "nodes": {"count": 32, "flops": 1e12},
...     "network": {"topology": "star", "bandwidth": 1e10},
...     "pfs": {"read_bw": 1e11, "write_bw": 1e11},
... })
>>> jobs = generate_workload(WorkloadSpec(num_jobs=10), seed=42)
>>> monitor = Simulation(platform, jobs, algorithm="easy").run()
>>> monitor.summary().completed_jobs
10
"""

from repro.batch import BatchError, BatchSystem, Simulation
from repro.job import Job, JobState, JobType
from repro.monitoring import Monitor
from repro.platform import Platform, load_platform, platform_from_dict
from repro.application import (
    ApplicationModel,
    Phase,
    application_from_dict,
    load_application,
)
from repro.workload import (
    WorkloadSpec,
    generate_workload,
    load_workload,
    workload_from_dict,
)

__version__ = "1.0.0"

__all__ = [
    "ApplicationModel",
    "BatchError",
    "BatchSystem",
    "Job",
    "JobState",
    "JobType",
    "Monitor",
    "Phase",
    "Platform",
    "Simulation",
    "WorkloadSpec",
    "application_from_dict",
    "generate_workload",
    "load_application",
    "load_platform",
    "load_workload",
    "platform_from_dict",
    "workload_from_dict",
    "__version__",
]
