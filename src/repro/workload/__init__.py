"""Workload construction: synthetic generators, JSON and SWF loaders.

Three ways to obtain a job list:

* :func:`generate_workload` — reproducible synthetic workloads (Poisson
  arrivals, lognormal work, configurable rigid/moldable/malleable/evolving
  mix) built around a parametric iterative application template.  This is
  the substitute for the production traces the paper's evaluation would use
  (see DESIGN.md §2).
* :func:`load_workload` / :func:`workload_from_dict` — explicit JSON job
  lists with inline or shared application models.
* :func:`jobs_from_swf` — the Standard Workload Format used by the Parallel
  Workloads Archive; runtimes are translated into compute-only application
  models sized for a given per-node flops rate.
"""

from repro.workload.apportion import largest_remainder
from repro.workload.generator import WorkloadSpec, generate_workload, iterative_application
from repro.workload.loader import WorkloadError, load_workload, workload_from_dict
from repro.workload.analysis import WorkloadProfile, format_profile, profile_workload
from repro.workload.malleable_mix import (
    DEFAULT_PARALLEL_FRACTIONS,
    TypeMix,
    convert_trace,
    jobs_from_swf_block,
)
from repro.workload.serialize import job_to_dict, workload_to_dict
from repro.workload.swf import (
    SwfError,
    SwfRecord,
    jobs_from_swf,
    parse_swf,
    render_swf,
    swf_records_from_jobs,
)

__all__ = [
    "DEFAULT_PARALLEL_FRACTIONS",
    "TypeMix",
    "WorkloadError",
    "WorkloadProfile",
    "convert_trace",
    "format_profile",
    "profile_workload",
    "WorkloadSpec",
    "generate_workload",
    "iterative_application",
    "job_to_dict",
    "jobs_from_swf",
    "jobs_from_swf_block",
    "largest_remainder",
    "load_workload",
    "parse_swf",
    "render_swf",
    "SwfError",
    "SwfRecord",
    "swf_records_from_jobs",
    "workload_from_dict",
    "workload_to_dict",
]
