"""Synthetic workload generation.

The generator produces the workload family the evaluation experiments use:
iterative HPC applications (init read → N x [compute, exchange, optional
checkpoint] → final write) with Poisson arrivals, lognormally distributed
total work, and power-of-two node requests — the standard synthetic stand-in
for production traces.  Every random draw flows from one seed, so a given
(spec, seed) pair is fully reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import List

import numpy as np

from repro.application import ApplicationModel, Phase
from repro.application.tasks import (
    CommPattern,
    CommTask,
    CpuTask,
    PfsReadTask,
    PfsWriteTask,
)
from repro.job import Job, JobClass, JobType
from repro.workload.apportion import largest_remainder


def iterative_application(
    *,
    total_flops: float,
    iterations: int = 10,
    comm_bytes_per_msg: float = 0.0,
    serial_fraction: float | str = 0,
    input_bytes: float = 0.0,
    output_bytes: float = 0.0,
    checkpoint_bytes: float = 0.0,
    checkpoint_every: int = 0,
    data_per_node: float | str = 0,
    name: str = "iterative",
) -> ApplicationModel:
    """Canonical iterative application template.

    Structure: optional PFS read, then ``iterations`` x [evenly distributed
    compute (``total_flops`` split over iterations and nodes), optional
    ring exchange, optional periodic PFS checkpoint], then optional PFS
    write.  Compute uses EVEN distribution so larger allocations genuinely
    speed the job up — the property malleability exploits.
    """
    if total_flops <= 0:
        raise ValueError(f"total_flops must be > 0, got {total_flops}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")

    phases: List[Phase] = []
    if input_bytes > 0:
        phases.append(
            Phase([PfsReadTask(input_bytes)], name="input", scheduling_point=False)
        )

    solve_tasks: List = [
        CpuTask(
            total_flops / iterations,
            serial_fraction=serial_fraction,
            name="compute",
        )
    ]
    if comm_bytes_per_msg > 0:
        solve_tasks.append(
            CommTask(comm_bytes_per_msg, pattern=CommPattern.RING, name="exchange")
        )
    if checkpoint_bytes > 0 and checkpoint_every > 0:
        solve_tasks.append(
            PfsWriteTask(
                f"if(iteration % {checkpoint_every} == {checkpoint_every - 1}, "
                f"{checkpoint_bytes!r}, 0)",
                name="checkpoint",
            )
        )
    phases.append(Phase(solve_tasks, iterations=iterations, name="solve"))

    if output_bytes > 0:
        phases.append(
            Phase([PfsWriteTask(output_bytes)], name="output", scheduling_point=False)
        )

    return ApplicationModel(phases, data_per_node=data_per_node, name=name)


@dataclass
class WorkloadSpec:
    """Parameters of a synthetic workload.

    The type mix fractions must sum to <= 1; the remainder is rigid.
    """

    num_jobs: int = 100
    #: Mean of the exponential inter-arrival distribution (seconds).
    mean_interarrival: float = 30.0
    #: Node request bounds (requests are powers of two within them).
    min_request: int = 1
    max_request: int = 32
    #: Lognormal job runtime on the *requested* allocation: the generator
    #: draws a target runtime and sizes total work as
    #: ``runtime x request x node_flops`` — runtimes are thus comparable
    #: across job sizes, like real traces.
    mean_runtime: float = 300.0
    runtime_sigma: float = 0.5
    #: Iterations per job (uniform in this inclusive range).
    min_iterations: int = 5
    max_iterations: int = 20
    #: Communication per iteration, bytes per ring message (0 disables).
    comm_bytes: float = 1e7
    #: Amdahl serial fraction of each job's compute (0 = perfect scaling).
    serial_fraction: float = 0.0
    #: I/O sizes as fractions of work (bytes per flop); 0 disables.
    input_bytes_per_flop: float = 0.0
    output_bytes_per_flop: float = 0.0
    #: Type mix.
    malleable_fraction: float = 0.0
    moldable_fraction: float = 0.0
    evolving_fraction: float = 0.0
    #: Bytes of state per node, redistributed on reconfiguration.
    data_per_node: float = 0.0
    #: Walltime = slack x analytic runtime estimate; inf disables walltimes.
    walltime_slack: float = 5.0
    #: Node speed used for the walltime estimate.
    node_flops: float = 1e12
    #: Flexible jobs can shrink to max(request / shrink_factor, 1).
    shrink_factor: int = 4
    #: Flexible jobs can grow to min(request * grow_factor, max_request).
    grow_factor: int = 2
    #: Jobs are attributed to this many users, drawn uniformly.
    num_users: int = 1
    #: Fraction of jobs in the on-demand class (admitted with priority —
    #: and preemption — by hybrid schedulers); the rest are batch.
    ondemand_fraction: float = 0.0
    #: Checkpoint size every job declares (bytes read back from the PFS
    #: on a resumed restart); 0 disables restart I/O accounting.
    checkpoint_bytes: float = 0.0

    def validate(self) -> None:
        if self.num_jobs < 1:
            raise ValueError("num_jobs must be >= 1")
        if self.mean_interarrival < 0:
            raise ValueError("mean_interarrival must be >= 0")
        if not 1 <= self.min_request <= self.max_request:
            raise ValueError("need 1 <= min_request <= max_request")
        mix = self.malleable_fraction + self.moldable_fraction + self.evolving_fraction
        if min(self.malleable_fraction, self.moldable_fraction, self.evolving_fraction) < 0:
            raise ValueError("type fractions must be >= 0")
        if mix > 1.0 + 1e-9:
            raise ValueError(f"type fractions sum to {mix} > 1")
        if self.min_iterations < 1 or self.max_iterations < self.min_iterations:
            raise ValueError("need 1 <= min_iterations <= max_iterations")
        if self.walltime_slack <= 0:
            raise ValueError("walltime_slack must be > 0")
        if not 0.0 <= self.ondemand_fraction <= 1.0:
            raise ValueError("ondemand_fraction must be within [0, 1]")
        if self.checkpoint_bytes < 0:
            raise ValueError("checkpoint_bytes must be >= 0")
        if self.mean_runtime <= 0:
            raise ValueError("mean_runtime must be > 0")
        if self.runtime_sigma < 0:
            raise ValueError("runtime_sigma must be >= 0")
        if self.num_users < 1:
            raise ValueError("num_users must be >= 1")


def generate_workload(
    spec: WorkloadSpec,
    seed: int = 0,
    *,
    rng: np.random.Generator | None = None,
) -> List[Job]:
    """Generate a reproducible job list from ``spec``.

    Returns jobs sorted by submit time with ids 1..num_jobs.  Every draw
    comes from a single injected generator: either ``rng`` (callers that
    fan one master seed out over several generation steps, e.g. the fuzz
    harness) or a fresh ``np.random.default_rng(seed)`` — there is no
    module-global randomness, so (spec, seed) is fully reproducible.
    """
    spec.validate()
    if rng is None:
        rng = np.random.default_rng(seed)

    # Arrival times: Poisson process.
    if spec.mean_interarrival > 0:
        gaps = rng.exponential(spec.mean_interarrival, size=spec.num_jobs)
        arrivals = np.cumsum(gaps) - gaps[0]  # first job arrives at t=0
    else:
        arrivals = np.zeros(spec.num_jobs)

    # Node requests: power-of-two sizes, log-uniform within bounds.
    lo = int(np.floor(np.log2(spec.min_request)))
    hi = int(np.floor(np.log2(spec.max_request)))
    exponents = rng.integers(lo, hi + 1, size=spec.num_jobs)
    requests = np.clip(2 ** exponents, spec.min_request, spec.max_request)

    # Work and shape: draw a target runtime, convert to flops on the
    # requested allocation.
    mu = np.log(spec.mean_runtime) - spec.runtime_sigma**2 / 2
    runtimes = rng.lognormal(mu, spec.runtime_sigma, size=spec.num_jobs)
    works = runtimes * requests * spec.node_flops
    iteration_counts = rng.integers(
        spec.min_iterations, spec.max_iterations + 1, size=spec.num_jobs
    )

    # Job types: deterministic assignment by fraction using a shuffled index
    # set (keeps exact fractions rather than binomial noise).  Counts come
    # from largest-remainder apportionment: per-class rounding can
    # oversubscribe num_jobs (3 jobs at 0.5/0.5 round to 2+2), silently
    # truncating the last class via out-of-range slicing.
    order = rng.permutation(spec.num_jobs)
    flexible = (
        spec.malleable_fraction + spec.moldable_fraction + spec.evolving_fraction
    )
    _, n_malleable, n_moldable, n_evolving = largest_remainder(
        (
            max(0.0, 1.0 - flexible),
            spec.malleable_fraction,
            spec.moldable_fraction,
            spec.evolving_fraction,
        ),
        spec.num_jobs,
    )
    types = np.full(spec.num_jobs, 0)  # 0 rigid
    cursor = 0
    for code, count in ((1, n_malleable), (2, n_moldable), (3, n_evolving)):
        types[order[cursor : cursor + count]] = code
        cursor += count
    user_ids = rng.integers(0, spec.num_users, size=spec.num_jobs)
    # Job classes: same exact-fraction scheme, from an independent shuffle
    # so class and type mix freely.  Drawn only when requested, keeping
    # legacy (spec, seed) streams byte-stable.
    ondemand: set = set()
    if spec.ondemand_fraction > 0:
        class_order = rng.permutation(spec.num_jobs)
        _, n_ondemand = largest_remainder(
            (1.0 - spec.ondemand_fraction, spec.ondemand_fraction), spec.num_jobs
        )
        ondemand = {int(i) for i in class_order[:n_ondemand]}
    code_to_type = {
        0: JobType.RIGID,
        1: JobType.MALLEABLE,
        2: JobType.MOLDABLE,
        3: JobType.EVOLVING,
    }

    jobs: List[Job] = []
    for i in range(spec.num_jobs):
        request = int(requests[i])
        work = float(works[i])
        iterations = int(iteration_counts[i])
        job_type = code_to_type[int(types[i])]

        application = iterative_application(
            total_flops=work,
            iterations=iterations,
            comm_bytes_per_msg=spec.comm_bytes,
            serial_fraction=spec.serial_fraction,
            input_bytes=spec.input_bytes_per_flop * work,
            output_bytes=spec.output_bytes_per_flop * work,
            data_per_node=spec.data_per_node,
            name=f"app{i + 1}",
        )

        # Analytic runtime estimate on the requested allocation, used for
        # the walltime limit (and thus for backfilling estimates).
        est_compute = work / (request * spec.node_flops)
        walltime = (
            spec.walltime_slack * max(est_compute, 1.0)
            if spec.walltime_slack < inf
            else inf
        )

        kwargs = dict(
            job_type=job_type,
            submit_time=float(arrivals[i]),
            num_nodes=request,
            walltime=walltime,
            name=f"job{i + 1}",
            user=f"user{int(user_ids[i])}",
        )
        if i in ondemand:
            kwargs["job_class"] = JobClass.ON_DEMAND
        if spec.checkpoint_bytes > 0:
            kwargs["checkpoint_bytes"] = spec.checkpoint_bytes
        if job_type is not JobType.RIGID:
            kwargs["min_nodes"] = max(1, request // spec.shrink_factor)
            kwargs["max_nodes"] = min(
                spec.max_request, max(request * spec.grow_factor, request)
            )
        jobs.append(Job(i + 1, application, **kwargs))

    return jobs
