"""SWF traces converted to rigid/moldable/malleable job mixes.

The Zojer/Posner/Özden methodology for evaluating malleable scheduling on
real-world workloads: take a Parallel Workloads Archive trace, drop the
jobs that never ran (by completion status), and re-type the survivors
according to a ``type_probabilities`` vector — e.g. ``100,0,0`` is the
all-rigid baseline, ``0,0,100`` all-malleable — with each job's compute
shaped by Amdahl's law so that resizing a moldable/malleable job has a
real cost model (a job that is 95% parallel gains far less from extra
nodes than one that is 99.99% parallel).

:func:`convert_trace` is the core: parsed :class:`~repro.workload.swf
.SwfRecord` lists in, simulator :class:`~repro.job.Job` lists out, with
exact largest-remainder type apportionment and per-job parallel fractions
drawn from a grid.  :func:`jobs_from_swf_block` is the campaign-facing
wrapper that materialises a ``workload: {"swf": {...}}`` scenario block
(see ``docs/STUDY.md``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from math import inf
from pathlib import Path
from typing import Any, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.job import Job, JobType
from repro.workload.apportion import largest_remainder
from repro.workload.generator import iterative_application
from repro.workload.swf import SwfError, SwfRecord, parse_swf

#: The paper's ``parallel_percentage`` grid: each job is assigned one of
#: these parallel fractions (Amdahl serial fraction = 1 - value).
DEFAULT_PARALLEL_FRACTIONS = (0.9999, 0.999, 0.99, 0.98, 0.95)

#: Walltime = slack x the runtime recorded at the traced allocation.  The
#: default leaves room for a malleable job pinned at ``min_nodes`` (half
#: its traced size, hence at most ~2x the traced runtime) to finish.
DEFAULT_WALLTIME_SLACK = 2.5


@dataclass(frozen=True)
class TypeMix:
    """Probability vector over job types, in ``rigid,moldable,malleable`` order.

    Mirrors the ``type_probabilities`` parameter of the reference study:
    :meth:`parse` accepts both percent vectors (``"100,0,0"``) and
    fraction vectors (``"0.5,0.25,0.25"``).
    """

    rigid: float
    moldable: float
    malleable: float

    def __post_init__(self) -> None:
        shares = (self.rigid, self.moldable, self.malleable)
        if min(shares) < 0:
            raise SwfError(f"type mix shares must be >= 0: {shares}")
        total = sum(shares)
        if abs(total - 1.0) > 1e-9:
            raise SwfError(f"type mix must sum to 1, got {total!r}: {shares}")

    @classmethod
    def parse(cls, value: Union["TypeMix", str, Sequence[float]]) -> "TypeMix":
        """Coerce a mix given as TypeMix, ``"r,mo,ma"`` string, or 3-sequence."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            parts = [p.strip() for p in value.split(",")]
        else:
            parts = list(value)
        if len(parts) != 3:
            raise SwfError(
                f"type mix needs exactly rigid,moldable,malleable shares: {value!r}"
            )
        try:
            shares = [float(p) for p in parts]
        except (TypeError, ValueError):
            raise SwfError(f"non-numeric type mix: {value!r}") from None
        total = sum(shares)
        if total > 1.0 + 1e-9:  # percent vector, e.g. 100,0,0 or 40,30,30
            shares = [s / 100.0 for s in shares]
        return cls(*shares)

    @property
    def label(self) -> str:
        """Compact percent label for reports, e.g. ``"50-25-25"``."""
        return "-".join(f"{share * 100:g}" for share in
                        (self.rigid, self.moldable, self.malleable))


def _record_nodes(rec: SwfRecord, procs_per_node: int, max_nodes: Optional[int]) -> int:
    procs = rec.requested_procs if rec.requested_procs > 0 else rec.allocated_procs
    if procs <= 0:
        return 0
    nodes = max(1, (procs + procs_per_node - 1) // procs_per_node)
    if max_nodes is not None:
        nodes = min(nodes, max_nodes)
    return nodes


def convert_trace(
    records: Sequence[SwfRecord],
    mix: Union[TypeMix, str, Sequence[float]],
    rng: Optional[np.random.Generator] = None,
    *,
    node_flops: float,
    seed: int = 0,
    procs_per_node: int = 1,
    max_nodes: Optional[int] = None,
    parallel_fractions: Sequence[float] = DEFAULT_PARALLEL_FRACTIONS,
    iterations: int = 10,
    walltime_slack: float = DEFAULT_WALLTIME_SLACK,
    normalize_submit: bool = True,
    max_jobs: Optional[int] = None,
) -> List[Job]:
    """Convert parsed SWF records into a typed, Amdahl-shaped job mix.

    Records that did not actually run (:attr:`SwfRecord.simulable`) are
    dropped first; ``max_jobs`` then truncates the survivors (the fixture
    workflow for multi-week archive traces).  Types are apportioned over
    the survivors with the largest-remainder method — exactly
    ``mix.rigid * n`` rigid jobs up to quota rounding, never a silent
    truncation — and shuffled over the trace with ``rng`` (or a fresh
    ``default_rng(seed)``).

    Each job's compute is one :func:`iterative_application` whose total
    flops ``W`` solve ``W x (s + (1-s)/n) = run_time x node_flops`` at
    the traced allocation ``n``, i.e. the trace runtime is reproduced
    exactly at the recorded size and any resize pays (or gains) the
    Amdahl difference.  The serial fraction ``s = 1 - p`` comes from a
    per-job draw over ``parallel_fractions``.

    Moldable/malleable jobs keep the traced size as their preference and
    may shrink to half or grow to double it (clamped to ``max_nodes``).
    """
    if node_flops <= 0:
        raise SwfError("node_flops must be > 0")
    if procs_per_node < 1:
        raise SwfError("procs_per_node must be >= 1")
    if iterations < 1:
        raise SwfError("iterations must be >= 1")
    if walltime_slack <= 0:
        raise SwfError("walltime_slack must be > 0")
    if not parallel_fractions:
        raise SwfError("parallel_fractions must be non-empty")
    for fraction in parallel_fractions:
        if not 0 < float(fraction) <= 1:
            raise SwfError(f"parallel fractions must be in (0, 1]: {fraction!r}")
    mix = TypeMix.parse(mix)
    if rng is None:
        rng = np.random.default_rng(seed)

    usable = [
        rec
        for rec in records
        if rec.simulable and _record_nodes(rec, procs_per_node, max_nodes) > 0
    ]
    if max_jobs is not None:
        usable = usable[: int(max_jobs)]
    if not usable:
        raise SwfError("trace produced no simulable jobs")

    n = len(usable)
    _, n_moldable, n_malleable = largest_remainder(
        (mix.rigid, mix.moldable, mix.malleable), n
    )
    order = rng.permutation(n)
    types = np.zeros(n, dtype=np.int64)  # 0 rigid
    types[order[:n_moldable]] = 1
    types[order[n_moldable : n_moldable + n_malleable]] = 2
    fraction_picks = rng.integers(0, len(parallel_fractions), size=n)

    base_submit = min(rec.submit_time for rec in usable) if normalize_submit else 0.0
    code_to_type = {0: JobType.RIGID, 1: JobType.MOLDABLE, 2: JobType.MALLEABLE}

    jobs: List[Job] = []
    for i, rec in enumerate(usable):
        nodes = _record_nodes(rec, procs_per_node, max_nodes)
        job_type = code_to_type[int(types[i])]
        parallel = float(parallel_fractions[int(fraction_picks[i])])
        serial = 1.0 - parallel
        # Solve W from the traced runtime at the traced size under Amdahl:
        # per-node time on n nodes is W x (s + (1-s)/n) / node_flops.
        speedup_term = serial + (1.0 - serial) / nodes
        total_flops = rec.run_time * node_flops / speedup_term

        application = iterative_application(
            total_flops=total_flops,
            iterations=iterations,
            serial_fraction=serial,
            name=f"swf{rec.job_id}",
        )
        requested = rec.requested_time if rec.requested_time > 0 else rec.run_time
        walltime = walltime_slack * requested if requested > 0 else inf

        kwargs: dict = dict(
            job_type=job_type,
            submit_time=max(0.0, rec.submit_time - base_submit),
            num_nodes=nodes,
            walltime=walltime,
            name=f"swf-job{rec.job_id}",
            user=f"user{rec.user_id}" if rec.user_id >= 0 else None,
        )
        if job_type is not JobType.RIGID:
            kwargs["min_nodes"] = max(1, nodes // 2)
            kwargs["max_nodes"] = (
                nodes * 2 if max_nodes is None else min(nodes * 2, max_nodes)
            )
        jobs.append(Job(rec.job_id, application, **kwargs))

    jobs.sort(key=lambda job: (job.submit_time, job.jid))
    return jobs


#: Keys a campaign ``workload: {"swf": {...}}`` block may carry.
_SWF_BLOCK_KEYS = frozenset(
    {
        "file",
        "sha256",
        "type_mix",
        "node_flops",
        "parallel_fractions",
        "procs_per_node",
        "max_nodes",
        "iterations",
        "walltime_slack",
        "normalize_submit",
        "max_jobs",
        "seed",
    }
)


def jobs_from_swf_block(
    block: Mapping[str, Any],
    *,
    seed: int = 0,
    base: Optional[Path] = None,
) -> List[Job]:
    """Materialise a campaign ``{"swf": {...}}`` workload block.

    The worker-safe construction path: everything in ``block`` is plain
    JSON data.  Required keys are ``file``, ``type_mix`` and
    ``node_flops``; the rest mirror :func:`convert_trace` keyword
    arguments.  A ``sha256`` pin (normally injected by campaign loading)
    is verified against the file's actual content, so a cache keyed on
    the pinned spec can never be answered by a run over a different
    trace.
    """
    unknown = set(block) - _SWF_BLOCK_KEYS
    if unknown:
        raise SwfError(f"unknown swf workload keys: {sorted(unknown)}")
    try:
        ref = block["file"]
        mix = block["type_mix"]
        node_flops = float(block["node_flops"])
    except KeyError as exc:
        raise SwfError(f"swf workload block needs {exc.args[0]!r}") from None

    path = Path(ref)
    if base is not None and not path.is_absolute():
        path = base / path
    try:
        payload = path.read_bytes()
    except OSError as exc:
        raise SwfError(f"cannot read SWF trace {path}: {exc}") from None
    pinned = block.get("sha256")
    if pinned is not None:
        actual = hashlib.sha256(payload).hexdigest()
        if actual != pinned:
            raise SwfError(
                f"SWF trace {path} content hash {actual[:12]}… does not match "
                f"the pinned {str(pinned)[:12]}… — the file changed since the "
                "campaign was loaded"
            )

    records = parse_swf(payload.decode("utf-8", errors="replace"))
    max_nodes = block.get("max_nodes")
    max_jobs = block.get("max_jobs")
    return convert_trace(
        records,
        mix,
        node_flops=node_flops,
        seed=int(block.get("seed", seed)),
        procs_per_node=int(block.get("procs_per_node", 1)),
        max_nodes=None if max_nodes is None else int(max_nodes),
        parallel_fractions=tuple(
            block.get("parallel_fractions", DEFAULT_PARALLEL_FRACTIONS)
        ),
        iterations=int(block.get("iterations", 10)),
        walltime_slack=float(block.get("walltime_slack", DEFAULT_WALLTIME_SLACK)),
        normalize_submit=bool(block.get("normalize_submit", True)),
        max_jobs=None if max_jobs is None else int(max_jobs),
    )


__all__ = [
    "DEFAULT_PARALLEL_FRACTIONS",
    "DEFAULT_WALLTIME_SLACK",
    "TypeMix",
    "convert_trace",
    "jobs_from_swf_block",
]
