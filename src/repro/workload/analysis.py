"""Workload characterization: offered load, size/runtime distributions.

Used by the CLI's ``generate --report`` and by experiment setup code to
verify that a synthetic workload actually stresses the machine it targets
(an under-loaded workload hides every scheduling effect — see the E-series
benchmark sizing in ``benchmarks/common.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from statistics import mean, median
from typing import Dict, List, Sequence

from repro.application import CpuTask
from repro.job import Job



@dataclass
class WorkloadProfile:
    """Aggregate characterization of a job list."""

    num_jobs: int
    span_seconds: float
    type_counts: Dict[str, int]
    request_histogram: Dict[int, int]
    mean_request: float
    total_flops: float
    mean_runtime_estimate: float
    median_runtime_estimate: float
    users: int

    def offered_load(self, num_nodes: int, node_flops: float) -> float:
        """Arriving flops per second over machine capacity.

        Values near/above 1 keep the machine busy; values well below 1
        leave it idle and make scheduler comparisons meaningless.
        """
        if self.span_seconds <= 0:
            return inf
        capacity = num_nodes * node_flops
        return self.total_flops / (self.span_seconds * capacity)


def _job_flops(job: Job) -> float:
    """Total compute in a job's model, evaluated on its requested size."""
    total = 0.0
    variables = dict(job.arguments)
    variables.setdefault("num_nodes", job.num_nodes)
    variables.setdefault("job_id", job.jid)
    for phase in job.application.phases:
        try:
            iterations = phase.num_iterations(variables)
        except Exception:
            iterations = 1
        for task in phase.tasks:
            if isinstance(task, CpuTask):
                per_iter = 0.0
                for iteration in range(iterations):
                    scoped = dict(variables)
                    scoped["iteration"] = iteration
                    per_node = task.flops_per_node(scoped, job.num_nodes)
                    # Machine work is per-node flops x nodes for *both*
                    # distributions: EVEN's flops_per_node applied the
                    # Amdahl split of the task total (so x nodes undoes
                    # it, serial overhead included), while PER_NODE means
                    # every node does the full amount (weak scaling).
                    per_iter += per_node * job.num_nodes
                total += per_iter
    return total


def profile_workload(jobs: Sequence[Job], node_flops: float = 1e12) -> WorkloadProfile:
    """Characterize ``jobs``; runtime estimates assume ``node_flops``."""
    if not jobs:
        raise ValueError("Cannot profile an empty workload")

    submits = [j.submit_time for j in jobs]
    span = max(submits) - min(submits)
    type_counts: Dict[str, int] = {}
    histogram: Dict[int, int] = {}
    runtimes: List[float] = []
    total_flops = 0.0
    for job in jobs:
        type_counts[job.type.value] = type_counts.get(job.type.value, 0) + 1
        histogram[job.num_nodes] = histogram.get(job.num_nodes, 0) + 1
        flops = _job_flops(job)
        total_flops += flops
        runtimes.append(flops / (job.num_nodes * node_flops))

    return WorkloadProfile(
        num_jobs=len(jobs),
        span_seconds=span,
        type_counts=type_counts,
        request_histogram=dict(sorted(histogram.items())),
        mean_request=mean(j.num_nodes for j in jobs),
        total_flops=total_flops,
        mean_runtime_estimate=mean(runtimes),
        median_runtime_estimate=median(runtimes),
        users=len({j.user for j in jobs}),
    )


def format_profile(profile: WorkloadProfile, num_nodes: int, node_flops: float) -> str:
    """Human-readable report block for the CLI."""
    lines = [
        f"jobs                  : {profile.num_jobs}",
        f"submission span       : {profile.span_seconds:.0f} s",
        f"users                 : {profile.users}",
        f"type mix              : "
        + ", ".join(f"{k}={v}" for k, v in sorted(profile.type_counts.items())),
        f"mean request          : {profile.mean_request:.1f} nodes",
        "request histogram     : "
        + ", ".join(f"{k}x{v}" for k, v in profile.request_histogram.items()),
        f"mean runtime estimate : {profile.mean_runtime_estimate:.1f} s",
        f"median runtime est.   : {profile.median_runtime_estimate:.1f} s",
        f"offered load          : "
        f"{profile.offered_load(num_nodes, node_flops):.2f} "
        f"(on {num_nodes} x {node_flops:g} flops nodes)",
    ]
    return "\n".join(lines)
