"""Exact integer apportionment of job counts to type fractions.

Both the synthetic generator (:func:`repro.workload.generate_workload`)
and the SWF trace converter (:mod:`repro.workload.malleable_mix`) must
turn a probability vector over job types into integer per-type counts.
Rounding each class independently oversubscribes the total — 3 jobs at
0.5/0.5 round to 2+2 — which silently truncates whichever class is
assigned last.  The largest-remainder method (Hamilton's method) is the
standard fix: it satisfies *quota* (every count is the floor or ceiling
of its exact share) and the counts sum to the total by construction.
"""

from __future__ import annotations

from math import floor
from typing import List, Sequence

#: Fractions may undershoot/overshoot 1 by at most this much (float noise).
_SUM_TOLERANCE = 1e-9


def largest_remainder(fractions: Sequence[float], total: int) -> List[int]:
    """Apportion ``total`` items into counts proportional to ``fractions``.

    ``fractions`` must be non-negative and sum to 1 (within float
    tolerance).  Returns one count per fraction with two guarantees:

    * ``sum(counts) == total`` exactly;
    * each count is ``floor(f * total)`` or ``ceil(f * total)`` (the
      *quota* property), i.e. within one of its exact share.

    Leftover items after flooring go to the classes with the largest
    fractional remainders; ties break toward the lowest index, so the
    result is deterministic in the order fractions are given.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    shares = [float(f) for f in fractions]
    if not shares:
        raise ValueError("need at least one fraction")
    for share in shares:
        if share < 0 or share != share:
            raise ValueError(f"fractions must be >= 0, got {share!r}")
    mass = sum(shares)
    if abs(mass - 1.0) > _SUM_TOLERANCE:
        raise ValueError(f"fractions must sum to 1, got {mass!r}")

    quotas = [share * total for share in shares]
    counts = [floor(q) for q in quotas]
    leftover = total - sum(counts)
    # leftover == sum of fractional parts (an integer by construction);
    # hand the spare items to the largest remainders, lowest index first.
    by_remainder = sorted(
        range(len(shares)), key=lambda i: (-(quotas[i] - counts[i]), i)
    )
    for index in by_remainder[:leftover]:
        counts[index] += 1
    return counts


__all__ = ["largest_remainder"]
