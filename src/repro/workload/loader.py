"""JSON workload descriptions → Job lists.

Format::

    {
      "applications": {
        "solver": { ...application model JSON (see repro.application)... }
      },
      "jobs": [
        {
          "id": 1,
          "type": "malleable",            // rigid|moldable|malleable|evolving
          "submit_time": 0.0,
          "num_nodes": 8,
          "min_nodes": 2,                 // flexible types only
          "max_nodes": 16,
          "walltime": 3600,               // optional, seconds
          "application": "solver",        // name reference or inline object
          "arguments": {"num_steps": 100},// expression variables
          "class": "on-demand",           // batch (default) | on-demand
          "checkpoint_bytes": 64e9        // restart I/O footprint, optional
        }
      ]
    }
"""

from __future__ import annotations

import json
from math import inf
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.application import ApplicationError, ApplicationModel, application_from_dict
from repro.job import Job, JobClass, JobError, JobType


class WorkloadError(Exception):
    """Raised for invalid workload descriptions."""


def _job_from_dict(
    spec: Dict[str, Any],
    index: int,
    applications: Dict[str, ApplicationModel],
) -> Job:
    if not isinstance(spec, dict):
        raise WorkloadError(f"Job {index}: spec must be an object")
    context = f"job {spec.get('id', index)}"

    raw_type = spec.get("type", "rigid")
    try:
        job_type = JobType(raw_type)
    except ValueError:
        raise WorkloadError(
            f"{context}: unknown type {raw_type!r}; "
            f"expected one of {[t.value for t in JobType]}"
        ) from None

    app_spec = spec.get("application")
    if app_spec is None:
        raise WorkloadError(f"{context}: missing 'application'")
    if isinstance(app_spec, str):
        if app_spec not in applications:
            raise WorkloadError(
                f"{context}: unknown application {app_spec!r}; "
                f"defined: {sorted(applications)}"
            )
        application = applications[app_spec]
    else:
        try:
            application = application_from_dict(app_spec)
        except ApplicationError as exc:
            raise WorkloadError(f"{context}: bad inline application: {exc}") from exc

    raw_class = spec.get("class", "batch")
    try:
        job_class = JobClass(raw_class)
    except ValueError:
        raise WorkloadError(
            f"{context}: unknown class {raw_class!r}; "
            f"expected one of {[c.value for c in JobClass]}"
        ) from None

    kwargs: Dict[str, Any] = dict(
        job_type=job_type,
        submit_time=float(spec.get("submit_time", 0.0)),
        num_nodes=int(spec.get("num_nodes", 1)),
        walltime=float(spec.get("walltime", inf)),
        arguments=spec.get("arguments"),
        name=spec.get("name"),
        user=spec.get("user"),
        priority=int(spec.get("priority", 0)),
        job_class=job_class,
    )
    if spec.get("checkpoint_bytes") is not None:
        kwargs["checkpoint_bytes"] = float(spec["checkpoint_bytes"])
    if "min_nodes" in spec:
        kwargs["min_nodes"] = int(spec["min_nodes"])
    if "max_nodes" in spec:
        kwargs["max_nodes"] = int(spec["max_nodes"])

    jid = spec.get("id", index + 1)
    if not isinstance(jid, int):
        raise WorkloadError(f"{context}: 'id' must be an integer")
    try:
        return Job(jid, application, **kwargs)
    except JobError as exc:
        raise WorkloadError(f"{context}: {exc}") from exc


def workload_from_dict(
    spec: Dict[str, Any], *, base: Union[str, Path, None] = None
) -> List[Job]:
    """Build a job list from a parsed JSON workload description.

    Besides the explicit ``jobs`` form above, a workload file may hold a
    single ``{"swf": {...}}`` trace-conversion block (the same shape the
    campaign layer accepts; see
    :func:`repro.workload.jobs_from_swf_block`).  ``base`` anchors a
    relative trace path — :func:`load_workload` passes the workload
    file's own directory.
    """
    if not isinstance(spec, dict):
        raise WorkloadError(f"Workload spec must be an object, got {type(spec).__name__}")

    if "swf" in spec:
        from repro.workload.malleable_mix import jobs_from_swf_block
        from repro.workload.swf import SwfError

        extra = sorted(set(spec) - {"swf"})
        if extra:
            raise WorkloadError(
                f"workload: 'swf' block cannot be combined with {extra}"
            )
        try:
            return jobs_from_swf_block(
                dict(spec["swf"]), base=None if base is None else Path(base)
            )
        except SwfError as exc:
            raise WorkloadError(f"workload: {exc}") from exc

    applications: Dict[str, ApplicationModel] = {}
    for name, app_spec in (spec.get("applications") or {}).items():
        try:
            applications[name] = application_from_dict(app_spec)
        except ApplicationError as exc:
            raise WorkloadError(f"application {name!r}: {exc}") from exc

    jobs_spec = spec.get("jobs")
    if not isinstance(jobs_spec, list) or not jobs_spec:
        raise WorkloadError("workload: 'jobs' must be a non-empty list")
    jobs = [_job_from_dict(j, i, applications) for i, j in enumerate(jobs_spec)]

    jids = [job.jid for job in jobs]
    if len(set(jids)) != len(jids):
        raise WorkloadError("workload: duplicate job ids")
    return jobs


def load_workload(path: Union[str, Path]) -> List[Job]:
    """Load a workload from a JSON file."""
    path = Path(path)
    try:
        spec = json.loads(path.read_text())
    except FileNotFoundError:
        raise WorkloadError(f"Workload file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise WorkloadError(f"Invalid JSON in {path}: {exc}") from exc
    return workload_from_dict(spec, base=path.parent)
