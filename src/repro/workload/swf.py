"""Standard Workload Format (SWF) support.

SWF is the Parallel Workloads Archive's trace format: one job per line,
18 whitespace-separated fields, ``;`` comments.  We use the fields that
matter for batch simulation:

====== ==========================================
field  meaning
====== ==========================================
1      job id
2      submit time (s)
4      run time (s)
5      allocated processors
8      requested processors
9      requested time (s)
11     completion status (1 ok, 0 failed, 5 cancelled, -1 unknown)
12     user id
====== ==========================================

Because SWF traces record only runtimes (not application structure), each
job becomes a compute-only application whose total flops reproduce the
recorded runtime on the requested node count at ``node_flops`` — the
documented substitution for running real traces through the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from pathlib import Path
from typing import List, Optional, Union

from repro.application import ApplicationModel, CpuTask, Phase
from repro.job import Job, JobType


class SwfError(Exception):
    """Raised for malformed SWF input."""


#: SWF completion-status codes (field 11 of the standard).
SWF_STATUS_COMPLETED = 1
SWF_STATUS_FAILED = 0
SWF_STATUS_CANCELLED = 5
SWF_STATUS_UNKNOWN = -1


@dataclass(frozen=True)
class SwfRecord:
    """One parsed SWF line (fields we consume; -1 encodes 'unknown')."""

    job_id: int
    submit_time: float
    run_time: float
    allocated_procs: int
    requested_procs: int
    requested_time: float
    user_id: int
    #: Completion status: 1 completed, 0 failed, 5 cancelled, -1 unknown.
    status: int = SWF_STATUS_UNKNOWN

    @property
    def simulable(self) -> bool:
        """Whether this job actually ran (the Zojer et al. trace filter).

        Failed (0) and cancelled (5) jobs are dropped by status; when the
        trace carries no status (-1), ``run_time <= 0`` is the proxy.
        A positive run time is always required — a job with no recorded
        runtime cannot be sized into flops.
        """
        if self.run_time <= 0:
            return False
        return self.status not in (SWF_STATUS_FAILED, SWF_STATUS_CANCELLED)


def parse_swf(source: Union[str, Path]) -> List[SwfRecord]:
    """Parse SWF text (a path or the content itself) into records.

    A :class:`~pathlib.Path` is always read from disk.  A string is
    treated as a path when it names an existing file or when it *looks*
    like one (a single whitespace-free token — ``trace.txt``,
    ``runs/trace.swf.gz`` — cannot be SWF content, whose lines hold 11+
    space-separated fields); everything else is parsed as inline content.
    """
    if isinstance(source, Path):
        is_path = True
    else:
        source = str(source)
        stripped = source.strip()
        is_path = bool(stripped) and "\n" not in source and " " not in stripped
        if not is_path and "\n" not in source:
            # Single line with spaces: an actual file wins over content.
            try:
                is_path = Path(source).is_file()
            except (OSError, ValueError):
                is_path = False
    if is_path:
        path = Path(source)
        try:
            text = path.read_text()
        except FileNotFoundError:
            raise SwfError(f"SWF file not found: {path}") from None
        except OSError as exc:
            raise SwfError(f"Cannot read SWF file {path}: {exc}") from exc
    else:
        text = source

    records: List[SwfRecord] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        fields = line.split()
        if len(fields) < 11:
            raise SwfError(
                f"line {lineno}: expected >= 11 fields, got {len(fields)}"
            )
        try:
            records.append(
                SwfRecord(
                    job_id=int(fields[0]),
                    submit_time=float(fields[1]),
                    run_time=float(fields[3]),
                    allocated_procs=int(fields[4]),
                    requested_procs=int(fields[7]),
                    requested_time=float(fields[8]),
                    user_id=int(fields[11]) if len(fields) > 11 else -1,
                    status=int(fields[10]),
                )
            )
        except ValueError as exc:
            raise SwfError(f"line {lineno}: {exc}") from exc
    return records


def _swf_number(value: float, field: str, job_id: int) -> str:
    """Render one numeric SWF field so that ``float()`` round-trips it.

    Integral values collapse to plain integers (the archive's native
    style); everything else uses ``repr``, which Python guarantees to
    round-trip through ``float()`` exactly — fixed-width ``%.2f``-style
    formatting silently loses precision on large submit times and is the
    classic SWF-writer bug this refuses to reintroduce.
    """
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise SwfError(f"job {job_id}: field {field!r} is not finite: {value!r}")
    if value.is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(value)


def render_swf(records: List[SwfRecord], *, header: bool = True) -> str:
    """Render records as SWF text; the exact inverse of :func:`parse_swf`.

    All 18 standard fields are emitted; the ones :class:`SwfRecord` does
    not model are written as ``-1`` ("unknown"), which is what
    :func:`parse_swf` reconstructs, so ``parse_swf(render_swf(rs)) == rs``
    holds for any record list with finite fields.
    """
    lines: List[str] = []
    if header:
        lines.append("; SWF export (fields 1,2,4,5,8,9,11,12; -1 = unknown)")
    for rec in records:
        fields = [
            str(int(rec.job_id)),
            _swf_number(rec.submit_time, "submit_time", rec.job_id),
            "-1",  # wait time (derived: start - submit)
            _swf_number(rec.run_time, "run_time", rec.job_id),
            str(int(rec.allocated_procs)),
            "-1",  # average CPU time
            "-1",  # used memory
            str(int(rec.requested_procs)),
            _swf_number(rec.requested_time, "requested_time", rec.job_id),
            "-1",  # requested memory
            str(int(rec.status)),
            str(int(rec.user_id)),
            "-1",  # group id
            "-1",  # executable id
            "-1",  # queue number
            "-1",  # partition number
            "-1",  # preceding job
            "-1",  # think time
        ]
        lines.append(" ".join(fields))
    return "\n".join(lines) + ("\n" if lines else "")


def swf_records_from_jobs(jobs: List[Job]) -> List[SwfRecord]:
    """Project simulator jobs onto SWF records (post-run archival export).

    Walltimes map to requested time, actual runtimes (when the job ran)
    to run time, and ``user<N>`` accounts to numeric user ids; unknown
    quantities become ``-1`` per SWF convention.
    """
    records: List[SwfRecord] = []
    for job in jobs:
        user_id = -1
        if job.user.startswith("user"):
            try:
                user_id = int(job.user[4:])
            except ValueError:
                user_id = -1
        runtime = getattr(job, "runtime", None)
        allocated = len(job.assigned_nodes) if job.assigned_nodes else -1
        state = getattr(job, "state", None)
        state_value = getattr(state, "value", None)
        if state_value == "completed":
            status = SWF_STATUS_COMPLETED
        elif state_value == "killed":
            status = SWF_STATUS_FAILED
        else:
            status = SWF_STATUS_UNKNOWN
        records.append(
            SwfRecord(
                job_id=job.jid,
                submit_time=job.submit_time,
                run_time=float(runtime) if runtime is not None else -1.0,
                allocated_procs=allocated,
                requested_procs=job.num_nodes,
                requested_time=job.walltime if job.walltime != inf else -1.0,
                user_id=user_id,
                status=status,
            )
        )
    return records


def jobs_from_swf(
    source: Union[str, Path],
    *,
    node_flops: float,
    procs_per_node: int = 1,
    max_nodes: Optional[int] = None,
    walltime_slack: float = 1.0,
    job_type: JobType = JobType.RIGID,
    iterations: int = 1,
) -> List[Job]:
    """Convert an SWF trace into simulator jobs.

    Parameters
    ----------
    node_flops:
        Per-node compute rate used to translate runtimes into flops.
    procs_per_node:
        Processor-count divisor (SWF counts processors, we count nodes).
    max_nodes:
        Optional clamp on node requests (traces from bigger machines).
    walltime_slack:
        Walltime = slack x requested_time (or runtime when absent).
    job_type:
        Type assigned to every job (SWF has no malleability info; pass
        ``JobType.MALLEABLE`` to study "what if these jobs were malleable").
    iterations:
        Number of compute chunks per job.  Matters for the what-if study:
        iteration boundaries are the scheduling points where malleable
        reconfiguration can happen — a single-iteration conversion gives
        the scheduler no opportunity to reshape running jobs.
    """
    if node_flops <= 0:
        raise SwfError("node_flops must be > 0")
    if procs_per_node < 1:
        raise SwfError("procs_per_node must be >= 1")
    if iterations < 1:
        raise SwfError("iterations must be >= 1")

    jobs: List[Job] = []
    for rec in parse_swf(source):
        if not rec.simulable:
            continue  # failed/cancelled by status (or no runtime recorded)
        procs = rec.requested_procs if rec.requested_procs > 0 else rec.allocated_procs
        if procs <= 0:
            continue
        nodes = max(1, (procs + procs_per_node - 1) // procs_per_node)
        if max_nodes is not None:
            nodes = min(nodes, max_nodes)

        total_flops = rec.run_time * nodes * node_flops
        application = ApplicationModel(
            [
                Phase(
                    [CpuTask(total_flops / iterations)],
                    iterations=iterations,
                    name="trace",
                )
            ],
            name=f"swf{rec.job_id}",
        )
        requested = rec.requested_time if rec.requested_time > 0 else rec.run_time
        walltime = walltime_slack * requested if requested > 0 else inf

        kwargs = dict(
            job_type=job_type,
            submit_time=max(0.0, rec.submit_time),
            num_nodes=nodes,
            walltime=walltime,
            name=f"swf-job{rec.job_id}",
            user=f"user{rec.user_id}" if rec.user_id >= 0 else None,
        )
        if job_type is not JobType.RIGID:
            kwargs["min_nodes"] = max(1, nodes // 2)
            kwargs["max_nodes"] = nodes * 2 if max_nodes is None else min(nodes * 2, max_nodes)
        jobs.append(Job(rec.job_id, application, **kwargs))
    if not jobs:
        raise SwfError("SWF input produced no simulable jobs")
    return jobs
