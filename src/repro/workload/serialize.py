"""Serialization of job lists back to workload JSON."""

from __future__ import annotations

from math import inf
from typing import Any, Dict, List, Sequence

from repro.application import application_to_dict
from repro.job import Job, JobType


def job_to_dict(job: Job, application_ref: str | None = None) -> Dict[str, Any]:
    """Serialize one job; ``application_ref`` replaces the inline model."""
    spec: Dict[str, Any] = {
        "id": job.jid,
        "name": job.name,
        "type": job.type.value,
        "submit_time": job.submit_time,
        "num_nodes": job.num_nodes,
        "application": application_ref
        if application_ref is not None
        else application_to_dict(job.application),
    }
    if job.type is not JobType.RIGID:
        spec["min_nodes"] = job.min_nodes
        spec["max_nodes"] = job.max_nodes
    if job.walltime != inf:
        spec["walltime"] = job.walltime
    if job.arguments:
        spec["arguments"] = dict(job.arguments)
    if job.user != "user0":
        spec["user"] = job.user
    if job.priority:
        spec["priority"] = job.priority
    return spec


def workload_to_dict(jobs: Sequence[Job]) -> Dict[str, Any]:
    """Serialize jobs; shared application models are de-duplicated.

    Round-trips through :func:`repro.workload.workload_from_dict`.
    """
    applications: Dict[int, str] = {}
    app_specs: Dict[str, Any] = {}
    job_specs: List[Dict[str, Any]] = []

    for job in jobs:
        key = id(job.application)
        ref = applications.get(key)
        if ref is None and _is_shared(job, jobs):
            ref = job.application.name
            # Disambiguate clashing names.
            base, counter = ref, 1
            while ref in app_specs:
                counter += 1
                ref = f"{base}-{counter}"
            applications[key] = ref
            app_specs[ref] = application_to_dict(job.application)
        job_specs.append(job_to_dict(job, application_ref=ref))

    spec: Dict[str, Any] = {"jobs": job_specs}
    if app_specs:
        spec["applications"] = app_specs
    return spec


def _is_shared(job: Job, jobs: Sequence[Job]) -> bool:
    return sum(1 for other in jobs if other.application is job.application) > 1
