"""Built-in scheduling algorithms.

All algorithms treat ``job.walltime`` as the runtime *estimate* (the
standard batch-system convention); jobs without a walltime are assumed to
run arbitrarily long, which disables backfilling around them.
"""

from __future__ import annotations

import random
from math import inf
from typing import Dict, List, Optional, Type

from repro.job import Job, JobClass, JobType
from repro.scheduler.base import Algorithm
from repro.scheduler.context import Invocation, InvocationType, SchedulerContext, SchedulerError


def _start_size(job: Job) -> int:
    """Nodes a queue-order scheduler gives a job at start (its request)."""
    return job.num_nodes


class FcfsScheduler(Algorithm):
    """Strict first-come-first-served: the queue head blocks everyone."""

    name = "fcfs"

    def schedule(self, ctx: SchedulerContext, invocation: Invocation) -> None:
        free = ctx.free_nodes()  # changes only via start_job below
        for job in ctx.pending_jobs:
            need = job.num_nodes  # == _start_size(job), inlined (hot loop)
            if need > len(free):
                return  # strict FCFS: later jobs must wait
            ctx.start_job(job, free[:need])
            free = ctx.free_nodes()


class EasyBackfillingScheduler(Algorithm):
    """FCFS plus EASY (aggressive) backfilling.

    When the queue head cannot start, a *shadow time* is computed — the
    earliest instant the head can start given running jobs' walltime-based
    expected ends.  Later queued jobs may jump ahead if they either finish
    before the shadow time or fit into the nodes left over at it.

    Subclasses may override :meth:`queue_order` to reorder the queue before
    the FCFS pass (SJF, fair share, priorities); the reservation then
    protects the *reordered* head.
    """

    name = "easy"

    def queue_order(self, ctx: SchedulerContext) -> List[Job]:
        """The order in which queued jobs are considered (default FCFS)."""
        return ctx.pending_jobs

    def schedule(self, ctx: SchedulerContext, invocation: Invocation) -> None:
        self._start_in_order(ctx)
        pending = self.queue_order(ctx)  # contract: returns a fresh list
        if not pending:
            return
        head = pending[0]
        shadow_time, extra_nodes = self._reservation(ctx, head)
        free = ctx.free_nodes()  # changes only via start_job below
        for job in pending[1:]:
            need = job.num_nodes  # == _start_size(job), inlined (hot loop)
            if need > len(free):
                continue
            finishes_before_shadow = (
                job.walltime < inf and ctx.now + job.walltime <= shadow_time
            )
            if finishes_before_shadow:
                ctx.start_job(job, free[:need])
                free = ctx.free_nodes()
            elif need <= extra_nodes:
                ctx.start_job(job, free[:need])
                extra_nodes -= need
                free = ctx.free_nodes()

    def _start_in_order(self, ctx: SchedulerContext) -> None:
        free = ctx.free_nodes()  # changes only via start_job below
        for job in self.queue_order(ctx):
            need = job.num_nodes  # == _start_size(job), inlined (hot loop)
            if need > len(free):
                return
            ctx.start_job(job, free[:need])
            free = ctx.free_nodes()

    @staticmethod
    def _reservation(ctx: SchedulerContext, head: Job) -> tuple[float, int]:
        """(shadow time, nodes spare at it) for the queue head."""
        need = _start_size(head)
        available = ctx.num_free_nodes()
        # Inlined ctx.expected_end: walltime-based end estimate, inf when
        # unknowable (runs once per running job on every invocation).
        ends = sorted(
            (
                (
                    inf
                    if job.start_time is None or job.walltime == inf
                    else job.start_time + job.walltime,
                    len(job.assigned_nodes),
                )
                for job in ctx.running_jobs
            ),
            key=lambda pair: pair[0],
        )
        for end, count in ends:
            available += count
            if available >= need:
                return end, available - need
        return inf, 0


class SjfBackfillingScheduler(EasyBackfillingScheduler):
    """Shortest-job-first ordering with EASY backfilling.

    Orders the queue by walltime estimate (ties: submit order), trading
    worst-case wait of long jobs for mean wait/slowdown — the standard
    throughput-oriented variant used as a comparison point in scheduling
    studies.  Jobs without walltimes sort last.
    """

    name = "sjf"

    def queue_order(self, ctx: SchedulerContext) -> List[Job]:
        return sorted(ctx.pending_jobs, key=lambda j: (j.walltime, j.jid))


class UserFairShareScheduler(EasyBackfillingScheduler):
    """Fair-share queue ordering: users with less accumulated usage first.

    Tracks node-seconds consumed per user (updated at job completions) and
    orders the queue ascending by the owner's usage, then submit order —
    so light users overtake heavy ones, with EASY backfilling on top.
    """

    name = "fairshare"

    def __init__(self) -> None:
        self.usage: Dict[str, float] = {}

    def queue_order(self, ctx: SchedulerContext) -> List[Job]:
        return sorted(
            ctx.pending_jobs,
            key=lambda j: (self.usage.get(j.user, 0.0), j.jid),
        )

    def schedule(self, ctx: SchedulerContext, invocation: Invocation) -> None:
        if (
            invocation.type is InvocationType.JOB_COMPLETION
            and invocation.job is not None
            and invocation.job.runtime is not None
        ):
            job = invocation.job
            consumed = job.runtime * len(job.assigned_nodes)
            self.usage[job.user] = self.usage.get(job.user, 0.0) + consumed
        super().schedule(ctx, invocation)

    def capture_state(self) -> dict:
        return {"usage": dict(self.usage)}

    def restore_state(self, state: "dict | None") -> None:
        self.usage = dict(state["usage"]) if state is not None else {}


class PreemptivePriorityScheduler(EasyBackfillingScheduler):
    """Priority queue ordering with optional preemption.

    The queue is ordered by descending :attr:`Job.priority` (ties FCFS)
    with EASY backfilling on top.  When the highest-priority queued job
    cannot start, running jobs of *strictly lower* priority are killed
    with reason ``"preempted"`` — the batch system requeues them
    automatically (resuming from their last scheduling point if the
    simulation enables ``checkpoint_restart``).  Victims are chosen
    lowest-priority first, then latest-started first (least work lost).
    """

    name = "priority-preempt"

    def __init__(self, *, preempt: bool = True) -> None:
        self.preempt_enabled = preempt

    def queue_order(self, ctx: SchedulerContext) -> List[Job]:
        return sorted(ctx.pending_jobs, key=lambda j: (-j.priority, j.jid))

    def schedule(self, ctx: SchedulerContext, invocation: Invocation) -> None:
        super().schedule(ctx, invocation)
        if not self.preempt_enabled:
            return
        pending = self.queue_order(ctx)
        if not pending:
            return
        head = pending[0]
        deficit = _start_size(head) - ctx.num_free_nodes()
        if deficit <= 0:
            return
        victims = sorted(
            (
                job
                for job in ctx.running_jobs
                if job.priority < head.priority
            ),
            key=lambda j: (j.priority, -(j.start_time or 0.0)),
        )
        freeable = sum(len(v.assigned_nodes) for v in victims)
        if freeable < deficit:
            return  # preemption cannot admit the head; do not waste work
        for victim in victims:
            if deficit <= 0:
                break
            deficit -= len(victim.assigned_nodes)
            ctx.kill_job(victim, reason="preempted")


class ConservativeBackfillingScheduler(Algorithm):
    """Backfilling with a reservation for *every* queued job.

    Reservations are recomputed from scratch at each invocation (the
    simulator invokes the scheduler on every relevant event, so this is
    equivalent to maintaining them incrementally and much simpler).  A job
    starts now only if doing so cannot delay any earlier-queued job's
    earliest possible start.
    """

    name = "conservative"

    def schedule(self, ctx: SchedulerContext, invocation: Invocation) -> None:
        profile = _AvailabilityProfile(ctx)
        for job in ctx.pending_jobs:
            need = _start_size(job)
            estimate = job.walltime
            start = profile.earliest_start(need, estimate)
            if start <= ctx.now:
                free = ctx.free_nodes()
                ctx.start_job(job, free[:need])
                profile.reserve(ctx.now, need, estimate)
            else:
                profile.reserve(start, need, estimate)


class _AvailabilityProfile:
    """Piecewise-constant future node availability.

    Built from the free-node count now plus running jobs' expected ends;
    reservations carve capacity out of it.
    """

    def __init__(self, ctx: SchedulerContext) -> None:
        self.now = ctx.now
        # Sorted breakpoints: time -> available from that time onward.
        self._times: List[float] = [ctx.now]
        self._avail: List[int] = [ctx.num_free_nodes()]
        releases: Dict[float, int] = {}
        for job in ctx.running_jobs:
            end = ctx.expected_end(job)
            if end < inf:
                releases[end] = releases.get(end, 0) + len(job.assigned_nodes)
        for end in sorted(releases):
            self._times.append(end)
            self._avail.append(self._avail[-1] + releases[end])

    def earliest_start(self, need: int, duration: float) -> float:
        """Earliest t >= now with `need` nodes available on [t, t+duration)."""
        for i, t in enumerate(self._times):
            if self._avail[i] < need:
                continue
            # Check the whole window [t, t + duration).
            end = t + duration
            ok = True
            for j in range(i, len(self._times)):
                if self._times[j] >= end:
                    break
                if self._avail[j] < need:
                    ok = False
                    break
            if ok:
                return t
        return inf

    def reserve(self, start: float, need: int, duration: float) -> None:
        """Subtract `need` nodes on [start, start+duration)."""
        if start == inf:
            return
        end = start + duration
        self._ensure_breakpoint(start)
        if end < inf:
            self._ensure_breakpoint(end)
        for i, t in enumerate(self._times):
            if t >= end:
                break
            if t >= start:
                self._avail[i] -= need

    def _ensure_breakpoint(self, time: float) -> None:
        if time == inf or time in self._times:
            return
        for i, t in enumerate(self._times):
            if t > time:
                self._times.insert(i, time)
                self._avail.insert(i, self._avail[i - 1])
                return
        self._times.append(time)
        self._avail.append(self._avail[-1])


class MoldableScheduler(Algorithm):
    """FCFS that *molds* flexible jobs to the machine state at start.

    A moldable/malleable/evolving job starts as soon as ``min_nodes`` are
    free and receives ``min(free, max_nodes)`` nodes; rigid jobs keep FCFS
    semantics.  This is the classic moldable-aware baseline.
    """

    name = "moldable"

    def schedule(self, ctx: SchedulerContext, invocation: Invocation) -> None:
        for job in ctx.pending_jobs:
            free = ctx.free_nodes()
            if job.is_rigid:
                if job.num_nodes > len(free):
                    return
                ctx.start_job(job, free[: job.num_nodes])
            else:
                if job.min_nodes > len(free):
                    return
                size = min(len(free), job.max_nodes)
                ctx.start_job(job, free[:size])


class AdaptiveMoldableScheduler(Algorithm):
    """Moldable sizing that minimizes *estimated finish time*.

    For each flexible job the policy weighs "start now on the nodes that
    are free" against "wait until more nodes free up and run wider", using
    the walltime-based availability profile and a perfect-scaling runtime
    model within the job's bounds (Cirne & Berman's classic observation
    that the best moldable size depends on queue state, not just the
    application).  Rigid jobs keep FCFS semantics; a job is only started
    when its best size is available *now*, otherwise it blocks the queue
    (conservative, no starvation).
    """

    name = "adaptive-moldable"

    def schedule(self, ctx: SchedulerContext, invocation: Invocation) -> None:
        for job in ctx.pending_jobs:
            free = ctx.free_nodes()
            if job.is_rigid:
                if job.num_nodes > len(free):
                    return
                ctx.start_job(job, free[: job.num_nodes])
                continue
            size = self._best_size_now(ctx, job)
            if size is None:
                return  # waiting for a better (or any) start
            ctx.start_job(job, ctx.free_nodes()[:size])

    def _best_size_now(self, ctx: SchedulerContext, job: Job) -> Optional[int]:
        """The size to start with now, or None if waiting wins."""
        profile = _AvailabilityProfile(ctx)
        free_now = ctx.num_free_nodes()

        # Runtime model: walltime is the estimate at the *requested* size;
        # perfect scaling inside [min_nodes, max_nodes].
        reference = job.walltime if job.walltime < inf else None

        def runtime(k: int) -> float:
            if reference is None:
                return 1.0 / k  # only relative ordering matters
            return reference * job.num_nodes / k

        best_finish = inf
        best_size = None
        best_start = inf
        for k in range(job.min_nodes, job.max_nodes + 1):
            start = profile.earliest_start(k, runtime(k))
            if start == inf:
                continue
            finish = start + runtime(k)
            if finish < best_finish - 1e-12:
                best_finish = finish
                best_size = k
                best_start = start
        if best_size is None:
            # No walltime-informed window; fall back to whatever is free.
            if free_now >= job.min_nodes:
                return min(free_now, job.max_nodes)
            return None
        if best_start <= ctx.now and best_size <= free_now:
            return best_size
        return None


class MalleableScheduler(Algorithm):
    """Fair-share malleable scheduling (the paper's showcase policy).

    Each invocation recomputes an *equipartition target* for every claimant
    — running malleable jobs plus the FCFS-admittable prefix of the queue —
    by water-filling the machine: every claimant gets its minimum
    (rigid jobs their exact request), then spare nodes are handed out one
    at a time to the currently-smallest target, respecting maxima.  The
    scheduler then

    1. **shrinks** running malleable jobs above target (released at their
       next scheduling point),
    2. **starts** admittable pending jobs at ``min(target, free)``, and
    3. **expands** running malleable jobs below target with free nodes.

    Evolving requests are granted with whatever is free, clamped to the
    application's ask and the job's bounds.  ``expand``/``shrink`` flags
    gate the respective passes (used by the ablation benchmarks).
    """

    name = "malleable"

    def __init__(self, *, expand: bool = True, shrink: bool = True) -> None:
        self.expand_enabled = expand
        self.shrink_enabled = shrink

    def schedule(self, ctx: SchedulerContext, invocation: Invocation) -> None:
        if (
            invocation.type.value == "evolving_request"
            and invocation.job is not None
        ):
            self._handle_evolving(ctx, invocation.job)
        targets, admitted = self._fair_targets(ctx)
        if self.shrink_enabled:
            self._shrink_toward_targets(ctx, targets)
        self._start_pending(ctx, targets, admitted)
        if self.expand_enabled:
            self._expand_toward_targets(ctx, targets)

    # -- target computation --------------------------------------------------

    @staticmethod
    def _fair_targets(ctx: SchedulerContext) -> tuple[Dict[int, int], List[Job]]:
        """(jid → target size, admittable pending prefix)."""
        total = ctx.platform.num_nodes

        fixed = 0
        adjustable: List[Job] = []
        for job in ctx.running_jobs:
            order = job.pending_reconfiguration
            if order is not None:
                fixed += len(order.target)  # committed decision, can't change
            elif job.type is JobType.MALLEABLE:
                adjustable.append(job)
            else:
                fixed += len(job.assigned_nodes)

        budget = total - fixed
        claimants: List[tuple[Job, int, int]] = [
            (job, job.min_nodes, job.max_nodes) for job in adjustable
        ]
        admitted: List[Job] = []
        committed = sum(mn for _, mn, _ in claimants)
        for job in ctx.pending_jobs:
            need = job.num_nodes if job.is_rigid else job.min_nodes
            cap = job.num_nodes if job.is_rigid else job.max_nodes
            if committed + need > budget:
                break  # strict FCFS admission
            claimants.append((job, need, cap))
            admitted.append(job)
            committed += need

        targets = {job.jid: mn for job, mn, _ in claimants}
        caps = {job.jid: mx for job, _, mx in claimants}
        spare = budget - sum(targets.values())
        # Water-fill: one node at a time to the smallest target below cap;
        # ties broken by jid for determinism.
        growable = [job for job, _, _ in claimants if targets[job.jid] < caps[job.jid]]
        while spare > 0 and growable:
            growable.sort(key=lambda j: (targets[j.jid], j.jid))
            job = growable[0]
            targets[job.jid] += 1
            spare -= 1
            if targets[job.jid] >= caps[job.jid]:
                growable.remove(job)
        return targets, admitted

    # -- passes ------------------------------------------------------------------

    def _shrink_toward_targets(
        self, ctx: SchedulerContext, targets: Dict[int, int]
    ) -> None:
        for job in ctx.running_jobs:
            if job.type is not JobType.MALLEABLE:
                continue
            if job.pending_reconfiguration is not None:
                continue
            target = targets.get(job.jid)
            if target is None or target >= len(job.assigned_nodes):
                continue
            ctx.reconfigure_job(job, job.assigned_nodes[:target])

    def _start_pending(
        self,
        ctx: SchedulerContext,
        targets: Dict[int, int],
        admitted: List[Job],
    ) -> None:
        admitted_ids = {job.jid for job in admitted}
        for job in ctx.pending_jobs:
            if job.jid not in admitted_ids:
                return  # strict FCFS: an unadmitted job blocks the rest
            free = ctx.free_nodes()
            if job.is_rigid:
                if job.num_nodes > len(free):
                    return  # its nodes are still being released
                ctx.start_job(job, free[: job.num_nodes])
            else:
                if job.min_nodes > len(free):
                    return
                size = min(targets.get(job.jid, job.max_nodes), len(free), job.max_nodes)
                size = max(size, job.min_nodes)
                ctx.start_job(job, free[:size])

    def _expand_toward_targets(
        self, ctx: SchedulerContext, targets: Dict[int, int]
    ) -> None:
        candidates = sorted(
            (
                job
                for job in ctx.running_jobs
                if job.type is JobType.MALLEABLE
                and job.pending_reconfiguration is None
                and targets.get(job.jid, 0) > len(job.assigned_nodes)
            ),
            key=lambda j: len(j.assigned_nodes),
        )
        for job in candidates:
            free = ctx.free_nodes()
            if not free:
                return
            grow = min(
                len(free), targets[job.jid] - len(job.assigned_nodes)
            )
            if grow <= 0:
                continue
            ctx.reconfigure_job(job, list(job.assigned_nodes) + free[:grow])

    def _handle_evolving(self, ctx: SchedulerContext, job: Job) -> None:
        _grant_evolving(ctx, job)


def _grant_evolving(ctx: SchedulerContext, job: Job) -> None:
    """Grant an evolving request with whatever is free, clamped to bounds."""
    desired = job.evolving_request
    if desired is None or job.pending_reconfiguration is not None:
        return
    current = len(job.assigned_nodes)
    desired = max(job.min_nodes, min(desired, job.max_nodes))
    if desired > current:
        free = ctx.free_nodes()
        grow = min(desired - current, len(free))
        if grow <= 0:
            return
        target = list(job.assigned_nodes) + free[:grow]
    elif desired < current:
        target = job.assigned_nodes[:desired]
    else:
        return
    ctx.reconfigure_job(job, target)


class RigidEasyBackfillScheduler(EasyBackfillingScheduler):
    """The real-workload study's baseline: EASY backfilling, no flexibility.

    Identical to :class:`EasyBackfillingScheduler` — every job starts at
    exactly its requested size and is never reconfigured, *even when the
    workload declares jobs moldable or malleable*.  Registered under its
    own name so the malleability study (``docs/STUDY.md``) can sweep type
    mixes against a scheduler that deliberately ignores them: any
    improvement the flexible strategies show over this baseline is
    attributable to exploiting malleability, not to a different queue
    policy.
    """

    name = "rigid-easy-backfill"


class PrefCommonPoolScheduler(Algorithm):
    """Preferred-size scheduling over a common pool of spare nodes.

    The ported ``pref_common_pool`` strategy family: every flexible job
    has a *preferred* size (its traced/requested ``num_nodes``); nodes
    beyond the sum of preferences form a common pool that running
    malleable jobs may borrow from, and must return as soon as queued
    jobs need them.

    Per invocation:

    1. **start** (strict FCFS): rigid jobs need their exact request;
       flexible jobs start once ``min_nodes`` are free, at up to their
       preferred size — never more, so the pool is not drained by
       starters;
    2. **reclaim**: if the queue head still cannot start, running
       malleable jobs above preference are shrunk back to it (the
       borrowed nodes return to the pool at the jobs' next scheduling
       points, which re-invokes the scheduler);
    3. **lend**: with an empty queue, free nodes are lent to running
       malleable jobs — below-preference jobs are topped up to
       preference first, then the pool spreads up to ``max_nodes``,
       smallest allocation first.
    """

    name = "pref-common-pool"

    def schedule(self, ctx: SchedulerContext, invocation: Invocation) -> None:
        if (
            invocation.type is InvocationType.EVOLVING_REQUEST
            and invocation.job is not None
        ):
            _grant_evolving(ctx, invocation.job)
        self._start_pass(ctx)
        if ctx.pending_jobs:
            self._reclaim_pass(ctx)
        else:
            self._lend_pass(ctx)

    @staticmethod
    def _start_pass(ctx: SchedulerContext) -> None:
        for job in ctx.pending_jobs:
            free = ctx.free_nodes()
            if job.is_rigid:
                if job.num_nodes > len(free):
                    return  # strict FCFS: the head blocks the queue
                ctx.start_job(job, free[: job.num_nodes])
            else:
                if job.min_nodes > len(free):
                    return
                size = min(job.num_nodes, len(free))
                ctx.start_job(job, free[:size])

    @staticmethod
    def _reclaim_pass(ctx: SchedulerContext) -> None:
        for job in ctx.running_jobs:
            if job.type is not JobType.MALLEABLE:
                continue
            if job.pending_reconfiguration is not None:
                continue
            if len(job.assigned_nodes) > job.num_nodes:
                ctx.reconfigure_job(job, job.assigned_nodes[: job.num_nodes])

    @staticmethod
    def _lend_pass(ctx: SchedulerContext) -> None:
        candidates = sorted(
            (
                job
                for job in ctx.running_jobs
                if job.type is JobType.MALLEABLE
                and job.pending_reconfiguration is None
                and len(job.assigned_nodes) < job.max_nodes
            ),
            key=lambda j: (
                len(j.assigned_nodes) >= j.num_nodes,  # below preference first
                len(j.assigned_nodes),
                j.jid,
            ),
        )
        for job in candidates:
            free = ctx.free_nodes()
            if not free:
                return
            grow = min(len(free), job.max_nodes - len(job.assigned_nodes))
            if grow <= 0:
                continue
            ctx.reconfigure_job(job, list(job.assigned_nodes) + free[:grow])


class AverageStealAgreementScheduler(Algorithm):
    """Agreement-based grow/shrink negotiation around the average share.

    The ported ``average_steal_agreement`` strategy family: instead of a
    full equipartition solve, every malleable claimant *agrees* to meet
    at the machine average — ``budget // claimants``, clamped to its own
    ``[min_nodes, max_nodes]`` — where the budget is whatever is not
    held by rigid/moldable jobs or already-committed reconfigurations.
    Claimants are the running malleable jobs plus the FCFS-admittable
    queue prefix, so arrivals immediately lower the average everyone
    agreed to.

    Per invocation:

    1. **steal**: if the queue head cannot start, running malleable jobs
       above their agreed share are ordered to shrink to it (largest
       surplus first); the stolen nodes arrive at the victims' next
       scheduling points, re-invoking the scheduler to start the head;
    2. **start** (strict FCFS): rigid jobs at their request, flexible
       jobs at their agreed share (clamped by what is actually free);
    3. **grow**: leftover free nodes raise below-share malleable jobs up
       to — never past — their agreed share.
    """

    name = "average-steal-agreement"

    def schedule(self, ctx: SchedulerContext, invocation: Invocation) -> None:
        if (
            invocation.type is InvocationType.EVOLVING_REQUEST
            and invocation.job is not None
        ):
            _grant_evolving(ctx, invocation.job)
        targets, admitted = self._agreed_shares(ctx)
        self._steal_pass(ctx, targets)
        self._start_pass(ctx, targets, admitted)
        self._grow_pass(ctx, targets)

    @staticmethod
    def _agreed_shares(ctx: SchedulerContext) -> tuple[Dict[int, int], List[Job]]:
        """(jid → agreed share, admittable pending prefix)."""
        total = ctx.platform.num_nodes
        fixed = 0
        claimants: List[Job] = []
        for job in ctx.running_jobs:
            order = job.pending_reconfiguration
            if order is not None:
                fixed += len(order.target)  # committed, cannot renegotiate
            elif job.type is JobType.MALLEABLE:
                claimants.append(job)
            else:
                fixed += len(job.assigned_nodes)

        budget = total - fixed
        admitted: List[Job] = []
        committed = sum(job.min_nodes for job in claimants)
        for job in ctx.pending_jobs:
            need = job.num_nodes if job.is_rigid else job.min_nodes
            if committed + need > budget:
                break  # strict FCFS admission
            admitted.append(job)
            committed += need
            if not job.is_rigid:
                claimants.append(job)

        # Rigid admits hold their nodes outright; the rest is averaged.
        flexible_budget = budget - sum(
            job.num_nodes for job in admitted if job.is_rigid
        )
        targets: Dict[int, int] = {}
        if claimants:
            average = max(0, flexible_budget) // len(claimants)
            for job in claimants:
                targets[job.jid] = max(job.min_nodes, min(average, job.max_nodes))
        for job in admitted:
            if job.is_rigid:
                targets[job.jid] = job.num_nodes
        return targets, admitted

    @staticmethod
    def _steal_pass(ctx: SchedulerContext, targets: Dict[int, int]) -> None:
        pending = ctx.pending_jobs
        if not pending:
            return
        head = pending[0]
        need = head.num_nodes if head.is_rigid else head.min_nodes
        deficit = need - ctx.num_free_nodes()
        if deficit <= 0:
            return
        victims = sorted(
            (
                job
                for job in ctx.running_jobs
                if job.type is JobType.MALLEABLE
                and job.pending_reconfiguration is None
                and len(job.assigned_nodes) > targets.get(job.jid, job.max_nodes)
            ),
            key=lambda j: (
                targets.get(j.jid, 0) - len(j.assigned_nodes),  # largest surplus
                j.jid,
            ),
        )
        for job in victims:
            if deficit <= 0:
                return
            surplus = len(job.assigned_nodes) - targets[job.jid]
            ctx.reconfigure_job(job, job.assigned_nodes[: targets[job.jid]])
            deficit -= surplus

    @staticmethod
    def _start_pass(
        ctx: SchedulerContext, targets: Dict[int, int], admitted: List[Job]
    ) -> None:
        admitted_ids = {job.jid for job in admitted}
        for job in ctx.pending_jobs:
            if job.jid not in admitted_ids:
                return  # strict FCFS: an unadmitted job blocks the rest
            free = ctx.free_nodes()
            if job.is_rigid:
                if job.num_nodes > len(free):
                    return  # stolen nodes are still being released
                ctx.start_job(job, free[: job.num_nodes])
            else:
                if job.min_nodes > len(free):
                    return
                size = min(targets.get(job.jid, job.num_nodes), len(free), job.max_nodes)
                size = max(size, job.min_nodes)
                ctx.start_job(job, free[:size])

    @staticmethod
    def _grow_pass(ctx: SchedulerContext, targets: Dict[int, int]) -> None:
        candidates = sorted(
            (
                job
                for job in ctx.running_jobs
                if job.type is JobType.MALLEABLE
                and job.pending_reconfiguration is None
                and targets.get(job.jid, 0) > len(job.assigned_nodes)
            ),
            key=lambda j: (len(j.assigned_nodes), j.jid),
        )
        for job in candidates:
            free = ctx.free_nodes()
            if not free:
                return
            grow = min(len(free), targets[job.jid] - len(job.assigned_nodes))
            if grow <= 0:
                continue
            ctx.reconfigure_job(job, list(job.assigned_nodes) + free[:grow])


class HybridCorridorScheduler(Algorithm):
    """Hybrid batch/on-demand scheduling inside a system power corridor.

    The shipped policy for the hybrid job-class model (``docs/HYBRID.md``):

    * **On-demand admission** — pending :attr:`~repro.job.JobClass.ON_DEMAND`
      jobs are admitted in submit order.  When one cannot start — not
      enough free nodes, or starting it would push aggregate draw past the
      corridor — running *batch*-class jobs are preempted (killed with
      reason ``"preempted"``; the batch system requeues them, resuming
      from their last checkpoint when ``checkpoint_restart`` is on).
      Victims are the cheapest first: smallest allocation, then
      latest-started (least work lost), and are only killed when together
      they cover both the node deficit *and* the power deficit — otherwise
      no work is wasted.  Killed victims release their nodes at this same
      simulated instant, so the completion re-invocation admits the
      on-demand job immediately.
    * **Batch pass** — strict FCFS over batch-class jobs, additionally
      gated on corridor headroom: the queue head blocks until both its
      nodes are free and its idle→peak start cost fits under the
      corridor.  Deliberately no backfilling: strict FCFS keeps the
      policy free of scheduling anomalies, so widening the corridor can
      never lengthen the schedule (the ``corridor-relax`` oracle relies
      on this monotonicity).
    * **Evolving requests** — grants are clamped so the extra draw of the
      added nodes fits the corridor headroom; blocking requests that
      cannot be granted at all are denied so the requester resumes rather
      than deadlocking.
    """

    name = "hybrid-corridor"
    respects_power_corridor = True

    def schedule(self, ctx: SchedulerContext, invocation: Invocation) -> None:
        if (
            invocation.type is InvocationType.EVOLVING_REQUEST
            and invocation.job is not None
        ):
            self._resolve_evolving(ctx, invocation.job)
        if self._ondemand_pass(ctx):
            # An on-demand job is still waiting (usually for its preempted
            # victims' nodes, released at this same instant).  Starting
            # batch jobs now would hand it exactly those nodes and preempt
            # them right back — an admission livelock — so batch starts
            # hold until every on-demand job is placed.
            return
        self._batch_pass(ctx)

    # -- on-demand admission ------------------------------------------------

    def _ondemand_pass(self, ctx: SchedulerContext) -> bool:
        """Admit pending on-demand jobs; True while any is still waiting."""
        waiting = False
        for job in ctx.pending_jobs:
            if job.job_class is not JobClass.ON_DEMAND:
                continue
            need = job.num_nodes  # == _start_size(job)
            free = ctx.free_nodes()
            if need <= len(free):
                chosen = free[:need]
                if ctx.start_power_cost(chosen) <= ctx.power_headroom():
                    ctx.start_job(job, chosen)
                    continue
            waiting = True
            if self._preempt_for(ctx, job):
                # Victims finish at this instant; the resulting completion
                # invocation re-enters this pass and starts the job.
                break
        return waiting

    @staticmethod
    def _preempt_for(ctx: SchedulerContext, job: Job) -> bool:
        """Kill the cheapest batch victims that admit ``job``; False if none can."""
        need = job.num_nodes
        node_deficit = need - ctx.num_free_nodes()
        # Worst-case start cost: the job may land on any nodes once the
        # victims release, so budget for the `need` hungriest ones.
        costs = sorted(
            (node.peak_watts - node.idle_watts for node in ctx.platform.nodes),
            reverse=True,
        )
        power_deficit = sum(costs[:need]) - ctx.power_headroom()
        victims = sorted(
            (
                j
                for j in ctx.running_jobs
                if j.job_class is JobClass.BATCH
                and j.pending_reconfiguration is None
                and j.evolving_wait_event is None
            ),
            key=lambda j: (len(j.assigned_nodes), -(j.start_time or 0.0), j.jid),
        )
        chosen: List[Job] = []
        freeable = 0
        reclaimed = 0.0
        for victim in victims:
            if freeable >= node_deficit and reclaimed >= power_deficit:
                break
            chosen.append(victim)
            freeable += len(victim.assigned_nodes)
            reclaimed += sum(
                n.peak_watts - n.idle_watts for n in victim.assigned_nodes
            )
        if freeable < node_deficit or reclaimed < power_deficit:
            return False  # preemption cannot admit the job; do not waste work
        for victim in chosen:
            ctx.kill_job(victim, reason="preempted")
        return True

    # -- batch pass ---------------------------------------------------------

    @staticmethod
    def _batch_pass(ctx: SchedulerContext) -> None:
        for job in ctx.pending_jobs:
            if job.job_class is JobClass.ON_DEMAND:
                continue  # admission pass owns these; they never block batch
            need = job.num_nodes  # == _start_size(job)
            free = ctx.free_nodes()
            if need > len(free):
                return  # strict FCFS: later batch jobs must wait
            chosen = free[:need]
            if ctx.start_power_cost(chosen) > ctx.power_headroom():
                return  # the head blocks on power exactly as it does on nodes
            ctx.start_job(job, chosen)

    # -- evolving requests --------------------------------------------------

    @staticmethod
    def _resolve_evolving(ctx: SchedulerContext, job: Job) -> None:
        desired = job.evolving_request
        if desired is None or job.pending_reconfiguration is not None:
            return
        blocking = job.evolving_wait_event is not None
        desired = max(job.min_nodes, min(desired, job.max_nodes))
        current = len(job.assigned_nodes)
        if desired > current:
            free = ctx.free_nodes()
            grow = min(desired - current, len(free))
            # Clamp the grant until its idle→peak cost fits the corridor.
            while grow > 0 and ctx.start_power_cost(free[:grow]) > ctx.power_headroom():
                grow -= 1
            if grow <= 0:
                if blocking:
                    ctx.deny_evolving_request(job)
                return
            ctx.reconfigure_job(job, list(job.assigned_nodes) + free[:grow])
        elif desired < current:
            ctx.reconfigure_job(job, job.assigned_nodes[:desired])
        elif blocking:
            ctx.deny_evolving_request(job)


class RandomDecisionScheduler(Algorithm):
    """Adversarial scheduler: random-but-valid decisions at every invocation.

    Built for the fuzzing harness (:mod:`repro.fuzz`): the engine must
    stay correct under *any* legal decision sequence, so this policy draws
    starts, expansions, shrinks, arbitrary node migrations, evolving
    grants/denials, kills and preemption-requeues from a seeded RNG.  Two
    properties keep it usable as a differential-oracle subject:

    * **determinism** — every choice comes from one ``random.Random(seed)``
      stream and depends only on the invocation sequence and the queue /
      machine state, so identical engine behaviour yields identical
      decisions (a fresh instance is built per run via ``random:<seed>``);
    * **progress** — if nothing is running and nothing was started this
      invocation, the first pending job that fits is force-started, so
      randomness never starves the queue into a stall.

    Preemption ping-pong is bounded: only first-attempt jobs are killed
    with the auto-requeue reason ``"preempted"``; requeued attempts are
    killed permanently (reason ``"random-kill"``).
    """

    name = "random"

    def __init__(self, *, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    @classmethod
    def from_param(cls, param: str) -> "RandomDecisionScheduler":
        try:
            seed = int(param)
        except ValueError:
            raise SchedulerError(
                f"random scheduler parameter must be an integer seed, got {param!r}"
            ) from None
        return cls(seed=seed)

    def capture_state(self) -> dict:
        version, internal, gauss_next = self.rng.getstate()
        return {"rng": [version, list(internal), gauss_next]}

    def restore_state(self, state: "dict | None") -> None:
        if state is None:
            return
        version, internal, gauss_next = state["rng"]
        self.rng.setstate((version, tuple(internal), gauss_next))

    def schedule(self, ctx: SchedulerContext, invocation: Invocation) -> None:
        if (
            invocation.type is InvocationType.EVOLVING_REQUEST
            and invocation.job is not None
        ):
            self._resolve_evolving(ctx, invocation.job)
        started = self._start_pass(ctx)
        self._reconfigure_pass(ctx)
        self._kill_pass(ctx)
        if not started and not ctx.running_jobs:
            self._force_progress(ctx)

    # -- passes ------------------------------------------------------------

    def _start_pass(self, ctx: SchedulerContext) -> bool:
        rng = self.rng
        started = False
        pending = ctx.pending_jobs
        rng.shuffle(pending)
        for job in pending:
            if rng.random() >= 0.7:
                continue
            free = ctx.free_nodes()
            if job.is_rigid:
                if job.num_nodes > len(free):
                    continue
                size = job.num_nodes
            else:
                if job.min_nodes > len(free):
                    continue
                size = rng.randint(job.min_nodes, min(job.max_nodes, len(free)))
            ctx.start_job(job, rng.sample(free, size))
            started = True
        return started

    def _reconfigure_pass(self, ctx: SchedulerContext) -> None:
        rng = self.rng
        for job in ctx.running_jobs:
            if job.type is not JobType.MALLEABLE:
                continue
            if job.pending_reconfiguration is not None:
                continue
            if rng.random() >= 0.3:
                continue
            free = ctx.free_nodes()
            current = list(job.assigned_nodes)
            size = rng.randint(job.min_nodes, min(job.max_nodes, len(current) + len(free)))
            # Arbitrary migration: any mix of kept and newly grabbed nodes
            # of the chosen size exercises the redistribution cost model.
            keep = rng.randint(max(0, size - len(free)), min(size, len(current)))
            target = rng.sample(current, keep) + rng.sample(free, size - keep)
            if {n.index for n in target} == {n.index for n in current}:
                continue  # no-op order; nothing to reconfigure
            ctx.reconfigure_job(job, target)

    def _kill_pass(self, ctx: SchedulerContext) -> None:
        rng = self.rng
        for job in ctx.running_jobs:
            if job.pending_reconfiguration is not None:
                continue
            if job.evolving_wait_event is not None:
                continue
            if rng.random() < 0.02:
                reason = "preempted" if job.attempt == 1 else "random-kill"
                ctx.kill_job(job, reason=reason)
        for job in ctx.pending_jobs:
            if rng.random() < 0.01:
                ctx.kill_job(job, reason="random-kill")

    def _force_progress(self, ctx: SchedulerContext) -> None:
        for job in ctx.pending_jobs:
            free = ctx.free_nodes()
            need = job.num_nodes if job.is_rigid else job.min_nodes
            if need <= len(free):
                size = need if job.is_rigid else min(job.max_nodes, len(free))
                ctx.start_job(job, free[:size])
                return

    def _resolve_evolving(self, ctx: SchedulerContext, job: Job) -> None:
        """Grant (fully or partially), deny, or ignore an evolving request.

        Blocking requests are always resolved — an ignored blocking request
        suspends the job until another completion retries it, which turns
        into a stall on the last job; randomness must not manufacture
        deadlocks the engine is documented not to have.
        """
        rng = self.rng
        desired = job.evolving_request
        if desired is None or job.pending_reconfiguration is not None:
            return
        blocking = job.evolving_wait_event is not None
        desired = max(job.min_nodes, min(desired, job.max_nodes))
        current = len(job.assigned_nodes)
        roll = rng.random()
        if roll < 0.2 or desired == current:
            if blocking or desired == current:
                ctx.deny_evolving_request(job)
            return
        if desired > current:
            free = ctx.free_nodes()
            grow = min(desired - current, len(free))
            if grow <= 0:
                if blocking:
                    ctx.deny_evolving_request(job)
                return
            if roll < 0.45 and grow > 1:
                grow = rng.randint(1, grow - 1)  # partial grant
            target = list(job.assigned_nodes) + rng.sample(free, grow)
        else:
            target = rng.sample(list(job.assigned_nodes), desired)
        ctx.reconfigure_job(job, target)


_REGISTRY: Dict[str, Type[Algorithm]] = {
    cls.name: cls
    for cls in (
        FcfsScheduler,
        EasyBackfillingScheduler,
        SjfBackfillingScheduler,
        UserFairShareScheduler,
        PreemptivePriorityScheduler,
        ConservativeBackfillingScheduler,
        MoldableScheduler,
        AdaptiveMoldableScheduler,
        MalleableScheduler,
        RigidEasyBackfillScheduler,
        PrefCommonPoolScheduler,
        AverageStealAgreementScheduler,
        HybridCorridorScheduler,
        RandomDecisionScheduler,
    )
}


def get_algorithm(name: str) -> Algorithm:
    """Instantiate a built-in algorithm by registry name.

    ``name`` may carry a parameter after a colon (``random:42``), handed
    to the class's :meth:`~repro.scheduler.base.Algorithm.from_param`.
    """
    base, sep, param = name.partition(":")
    try:
        cls = _REGISTRY[base]
    except KeyError:
        raise SchedulerError(
            f"Unknown algorithm {base!r}; available: {sorted(_REGISTRY)}"
        ) from None
    if sep:
        return cls.from_param(param)
    return cls()
