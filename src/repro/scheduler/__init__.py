"""Scheduling framework and built-in algorithms.

ElastiSim's defining interface: the simulator invokes a user-written
scheduling algorithm on *events* (job submitted / completed, scheduling
point reached, evolving request, reconfiguration committed) and optionally
on a fixed period.  The algorithm sees a read-only system view and issues
decisions — start a job on specific nodes, reconfigure a malleable job,
kill a job — through a validated :class:`SchedulerContext`.

The original transports this over ZeroMQ between the C++ simulator and a
Python algorithm process; here the algorithm *is* Python, so the context
object carries the same protocol in-process (see DESIGN.md §2).

Built-in algorithms
-------------------
=======================  ====================================================
:class:`FcfsScheduler`            strict first-come-first-served
:class:`EasyBackfillingScheduler` FCFS + EASY aggressive backfilling
:class:`ConservativeBackfillingScheduler` reservation for every queued job
:class:`MoldableScheduler`        picks a start size within min..max
:class:`MalleableScheduler`       expand/shrink running malleable jobs and
                                  shrink-to-admit queued ones (the paper's
                                  malleable scheduling showcase)
=======================  ====================================================
"""

from repro.scheduler.context import (
    Invocation,
    InvocationType,
    SchedulerContext,
    SchedulerError,
)
from repro.scheduler.base import Algorithm
from repro.scheduler.algorithms import (
    AdaptiveMoldableScheduler,
    ConservativeBackfillingScheduler,
    EasyBackfillingScheduler,
    FcfsScheduler,
    HybridCorridorScheduler,
    MalleableScheduler,
    MoldableScheduler,
    PreemptivePriorityScheduler,
    RandomDecisionScheduler,
    SjfBackfillingScheduler,
    UserFairShareScheduler,
    get_algorithm,
)

__all__ = [
    "AdaptiveMoldableScheduler",
    "Algorithm",
    "ConservativeBackfillingScheduler",
    "EasyBackfillingScheduler",
    "FcfsScheduler",
    "HybridCorridorScheduler",
    "Invocation",
    "InvocationType",
    "MalleableScheduler",
    "MoldableScheduler",
    "PreemptivePriorityScheduler",
    "RandomDecisionScheduler",
    "SchedulerContext",
    "SchedulerError",
    "SjfBackfillingScheduler",
    "UserFairShareScheduler",
    "get_algorithm",
]
