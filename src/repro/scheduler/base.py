"""Algorithm base class."""

from __future__ import annotations

from repro.scheduler.context import Invocation, SchedulerContext


class Algorithm:
    """Base class for scheduling algorithms.

    Subclasses implement :meth:`schedule`; the batch system calls it on
    every invocation (see :class:`~repro.scheduler.InvocationType`) with a
    fresh context.  Algorithms are free to keep internal state across
    invocations (reservations, histories); they must not mutate jobs or
    nodes directly — all effects go through the context's decision methods.
    """

    #: Registry name; subclasses override.
    name = "base"

    #: Declares that this policy keeps aggregate node draw within the
    #: platform's power corridor.  The streaming power-corridor invariant
    #: is armed only for algorithms that set this: the corridor is a
    #: *policy* contract, and corridor-oblivious schedulers legitimately
    #: exceed it.
    respects_power_corridor = False

    @classmethod
    def from_param(cls, param: str) -> "Algorithm":
        """Build an instance from a ``name:param`` registry string.

        Algorithms with tunable knobs (e.g. ``random:42`` seeds the
        adversarial scheduler) override this; the default refuses the
        parameter so typos fail loudly instead of silently instantiating
        a default-configured algorithm.
        """
        from repro.scheduler.context import SchedulerError

        raise SchedulerError(
            f"algorithm {cls.name!r} takes no ':<param>' argument, got {param!r}"
        )

    def schedule(self, ctx: SchedulerContext, invocation: Invocation) -> None:
        """Inspect the system and issue decisions.  Default: do nothing."""

    def place_tasks(self, job, task, nodes):
        """Application-level (two-level) scheduling hook.

        Called by the engine before each task of ``job`` runs; ``nodes``
        is the job's current allocation.  Return the subset of ``nodes``
        the task should occupy — a non-empty, duplicate-free selection —
        or ``None`` (the default) to run the task on the whole allocation,
        which is the classic single-level behaviour.

        The hook must be a *pure function* of its arguments: the engine
        may re-evaluate it (e.g. when attributing trace spans), and
        snapshot-resumed runs re-place in-flight applications' later
        tasks, so a stateful or randomised placement would diverge.
        """
        return None

    def capture_state(self) -> "dict | None":
        """Snapshot internal cross-invocation state as a JSON-safe dict.

        Stateless (or config-only) algorithms return ``None`` — the
        default.  Algorithms carrying mutable state across invocations
        (RNG streams, usage accumulators, reservations) must override both
        this and :meth:`restore_state`, or snapshot-resumed runs will
        silently diverge from cold runs.
        """
        return None

    def restore_state(self, state: "dict | None") -> None:
        """Apply a :meth:`capture_state` snapshot.  Default: no-op."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
