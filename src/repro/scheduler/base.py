"""Algorithm base class."""

from __future__ import annotations

from repro.scheduler.context import Invocation, SchedulerContext


class Algorithm:
    """Base class for scheduling algorithms.

    Subclasses implement :meth:`schedule`; the batch system calls it on
    every invocation (see :class:`~repro.scheduler.InvocationType`) with a
    fresh context.  Algorithms are free to keep internal state across
    invocations (reservations, histories); they must not mutate jobs or
    nodes directly — all effects go through the context's decision methods.
    """

    #: Registry name; subclasses override.
    name = "base"

    def schedule(self, ctx: SchedulerContext, invocation: Invocation) -> None:
        """Inspect the system and issue decisions.  Default: do nothing."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
