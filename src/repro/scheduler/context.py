"""Scheduler invocation protocol: events, system view, decision interface."""

from __future__ import annotations

from enum import Enum
from math import inf
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.job import Job, JobState
from repro.platform import Node, Platform

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.batch.system import BatchSystem


class SchedulerError(Exception):
    """Raised when an algorithm issues an invalid decision."""


class InvocationType(Enum):
    """Why the scheduler is being invoked."""

    JOB_SUBMIT = "job_submit"
    JOB_COMPLETION = "job_completion"
    SCHEDULING_POINT = "scheduling_point"
    EVOLVING_REQUEST = "evolving_request"
    RECONFIGURATION = "reconfiguration"
    NODE_FAILURE = "node_failure"
    NODE_REPAIR = "node_repair"
    PERIODIC = "periodic"


class Invocation:
    """One scheduler invocation: its trigger and the job involved (if any)."""

    __slots__ = ("type", "job", "time")

    def __init__(self, type: InvocationType, time: float, job: Optional[Job] = None) -> None:
        self.type = type
        self.time = time
        self.job = job

    def __repr__(self) -> str:
        who = self.job.name if self.job else "-"
        return f"<Invocation {self.type.value} job={who} t={self.time}>"


class SchedulerContext:
    """What an algorithm sees and can do during one invocation.

    Read-only views mirror ElastiSim's job/node lists; decision methods
    validate immediately so algorithm bugs surface at the call site.
    """

    def __init__(self, batch: "BatchSystem") -> None:
        self._batch = batch

    # -- views ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._batch.env.now

    @property
    def platform(self) -> Platform:
        return self._batch.platform

    @property
    def pending_jobs(self) -> List[Job]:
        """Queued jobs in submission order."""
        return list(self._batch.queue)

    @property
    def running_jobs(self) -> List[Job]:
        """Running jobs in start order."""
        return list(self._batch.running)

    def free_nodes(self) -> List[Node]:
        """Currently unallocated nodes in index order."""
        return self._batch.platform.free_nodes()

    def num_free_nodes(self) -> int:
        return self._batch.platform.num_free_nodes()

    def expected_end(self, job: Job) -> float:
        """Walltime-based estimate of a running job's end (inf if unknown)."""
        if job.start_time is None or job.walltime == inf:
            return inf
        return job.start_time + job.walltime

    # -- power views ------------------------------------------------------

    @property
    def power_corridor(self) -> Optional[float]:
        """The platform's power cap in watts (None when unconstrained)."""
        return self._batch.platform.power_corridor

    def current_power(self) -> float:
        """Aggregate node draw right now, in watts."""
        return self._batch.current_power()

    def power_headroom(self) -> float:
        """Watts left under the corridor (inf when no corridor is set)."""
        corridor = self._batch.platform.power_corridor
        if corridor is None:
            return inf
        return corridor - self._batch.current_power()

    @staticmethod
    def start_power_cost(nodes: Sequence[Node]) -> float:
        """Extra draw of allocating ``nodes`` (idle → peak transition)."""
        return sum(node.peak_watts - node.idle_watts for node in nodes)

    # -- decisions ------------------------------------------------------------

    def start_job(self, job: Job, nodes: Sequence[Node]) -> None:
        """Start a pending job on exactly ``nodes`` (validated)."""
        if job.state is not JobState.PENDING:
            raise SchedulerError(f"{job.name} is not pending (state {job.state.value})")
        if job not in self._batch.queue:
            raise SchedulerError(f"{job.name} is not in this system's queue")
        nodes = list(nodes)
        if len(set(n.index for n in nodes)) != len(nodes):
            raise SchedulerError(f"{job.name}: duplicate nodes in allocation")
        for node in nodes:
            if not node.free:
                raise SchedulerError(
                    f"{job.name}: node {node.name} is not free "
                    f"(held by {getattr(node.assigned_job, 'name', None)})"
                )
        if not job.min_nodes <= len(nodes) <= job.max_nodes:
            raise SchedulerError(
                f"{job.name}: allocation of {len(nodes)} outside "
                f"{job.min_nodes}..{job.max_nodes}"
            )
        self._batch.start_job(job, nodes)

    def reconfigure_job(self, job: Job, target: Sequence[Node]) -> None:
        """Order a running malleable/evolving job to a new allocation.

        Nodes being *added* are reserved immediately (so no other decision
        can take them); nodes being *removed* are released when the job
        commits the order at its next scheduling point.
        """
        if job.state is not JobState.RUNNING:
            raise SchedulerError(f"{job.name} is not running")
        if not job.is_adaptive:
            raise SchedulerError(
                f"{job.name} is {job.type.value}; only malleable/evolving "
                "jobs can be reconfigured"
            )
        if job.pending_reconfiguration is not None:
            raise SchedulerError(f"{job.name} already has a pending order")
        target = list(target)
        if len(set(n.index for n in target)) != len(target):
            raise SchedulerError(f"{job.name}: duplicate nodes in target")
        if not job.min_nodes <= len(target) <= job.max_nodes:
            raise SchedulerError(
                f"{job.name}: target of {len(target)} outside "
                f"{job.min_nodes}..{job.max_nodes}"
            )
        current = {n.index for n in job.assigned_nodes}
        for node in target:
            if node.index not in current and not node.free:
                raise SchedulerError(
                    f"{job.name}: target node {node.name} is neither free "
                    "nor already part of the job"
                )
        self._batch.order_reconfiguration(job, target)

    def kill_job(self, job: Job, reason: str = "scheduler") -> None:
        """Kill a pending or running job."""
        if job.finished:
            raise SchedulerError(f"{job.name} already finished")
        self._batch.kill_job(job, reason)

    def deny_evolving_request(self, job: Job) -> None:
        """Deny a *blocking* evolving request outright.

        The job resumes with its current allocation.  Policies that never
        grant nor deny leave blocking requesters suspended until resources
        free up (the batch system retries on completions and committed
        reconfigurations); if nothing ever frees, the simulation reports a
        stall rather than deadlocking silently.
        """
        if job.state is not JobState.RUNNING:
            raise SchedulerError(f"{job.name} is not running")
        self._batch.deny_evolving_request(job)
