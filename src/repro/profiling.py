"""Hot-path profiling harness for the simulation engine.

:func:`profile_run` executes one reference-configuration simulation (the
same platform/workload family as benchmark E5) and splits its wall-clock
time into the engine's hot sections:

``solver``
    Cumulative time inside ``solve_max_min`` (the fair-share kernel), read
    from the model's own ``solver_time`` counter.
``scheduler``
    Time inside the scheduling algorithm's ``schedule()`` (wrapped per
    instance for the duration of the run).
``expressions``
    Time inside ``CompiledExpression.evaluate`` (wrapped at class level
    for the duration of the run).
``other``
    Everything else — event kernel, activity bookkeeping, monitoring.

Alongside the section split it reports the engine's own perf counters
(solver path counts, expression memo hit rate, processed events) and can
optionally attach a cProfile top-functions table.  The result is a plain
JSON-serialisable dict with a versioned ``schema`` tag; ``elastisim
profile`` and ``benchmarks/profile_hotpaths.py`` are thin wrappers around
it.  See ``docs/PERFORMANCE.md`` for how to read the output.

The section timers add a few percent of overhead (two ``perf_counter``
calls per wrapped invocation); treat ``wall_s`` from a profile run as an
upper bound and use benchmark E5 for headline numbers.
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, List

from repro.batch import Simulation
from repro.expressions import STATS as _EXPR_STATS
from repro.expressions import CompiledExpression
from repro.platform import platform_from_dict
from repro.workload import WorkloadSpec, generate_workload

__all__ = ["profile_run", "format_profile_report", "peak_rss_mb", "PROFILE_SCHEMA"]

#: Version tag stamped into every profile payload.  ``/2`` added the
#: ``memory`` section (peak RSS, optional tracemalloc allocation stats).
PROFILE_SCHEMA = "elastisim-profile/2"


def peak_rss_mb() -> float:
    """Peak resident-set size of this process in MiB (0.0 if unknown).

    Reads ``getrusage(RUSAGE_SELF).ru_maxrss`` — kilobytes on Linux,
    bytes on macOS.  The value is a high-water mark for the *process*, so
    in a long-lived process it reflects the largest phase so far, not the
    current working set; benchmark drivers that want per-scenario peaks
    should run scenarios in subprocesses or compare successive readings.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0.0
    import sys

    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return maxrss / divisor


def _reference_simulation(
    num_jobs: int, num_nodes: int, algorithm: str, seed: int
) -> Simulation:
    """Build the E5 scheduling-bound reference scenario.

    Mirrors ``benchmarks/common.py``'s evaluation platform and workload mix
    (offered load 0.9, power-of-two node requests, comm_bytes=0 so event
    counts are dominated by scheduling) without importing the benchmarks
    package — the engine must not depend on the test harness.
    """
    platform = platform_from_dict(
        {
            "name": f"eval-{num_nodes}",
            "nodes": {"count": num_nodes, "flops": 1e12},
            "network": {
                "topology": "star",
                "bandwidth": 10e9,
                "latency": 1e-6,
                "pfs_bandwidth": 200e9,
            },
            "pfs": {"read_bw": 100e9, "write_bw": 80e9},
        }
    )
    max_request = min(64, num_nodes)
    mean_interarrival = 10.0
    exps = range(int(math.log2(max_request)) + 1)
    mean_request = sum(2.0**e for e in exps) / len(exps)
    mean_runtime = 0.9 * mean_interarrival * num_nodes / mean_request
    jobs = generate_workload(
        WorkloadSpec(
            num_jobs=num_jobs,
            mean_interarrival=mean_interarrival,
            min_request=1,
            max_request=max_request,
            mean_runtime=mean_runtime,
            runtime_sigma=0.8,
            comm_bytes=0.0,
            walltime_slack=10.0,
            node_flops=1e12,
        ),
        seed=seed,
    )
    return Simulation(platform, jobs, algorithm=algorithm)


def profile_run(
    *,
    num_jobs: int = 200,
    num_nodes: int = 128,
    algorithm: str = "easy",
    seed: int = 3,
    cprofile: bool = False,
    top: int = 25,
    trace_malloc: bool = False,
) -> Dict[str, Any]:
    """Run the reference scenario and return a profile payload.

    Returns a JSON-serialisable dict: configuration, wall clock, the
    section split described in the module docstring, solver and expression
    counters, a ``memory`` section (peak RSS always; allocation stats when
    ``trace_malloc=True`` — tracing slows the run several-fold, so wall
    numbers from a traced run are not comparable), and (with
    ``cprofile=True``) the ``top`` functions by internal time.
    """
    sim = _reference_simulation(num_jobs, num_nodes, algorithm, seed)
    sections = {"scheduler": 0.0, "expressions": 0.0}
    perf_counter = time.perf_counter

    # Wrap the algorithm instance's schedule() — instance attribute, so
    # only this run is affected.
    algo = sim.batch.algorithm
    orig_schedule = algo.schedule

    def timed_schedule(*args: Any, **kwargs: Any) -> Any:
        t0 = perf_counter()
        try:
            return orig_schedule(*args, **kwargs)
        finally:
            sections["scheduler"] += perf_counter() - t0

    algo.schedule = timed_schedule  # type: ignore[method-assign]

    # Wrap CompiledExpression.evaluate at class level for the run; nothing
    # else evaluates expressions concurrently in a single-threaded sim.
    orig_evaluate = CompiledExpression.evaluate

    def timed_evaluate(self: CompiledExpression, variables: Any) -> Any:
        t0 = perf_counter()
        try:
            return orig_evaluate(self, variables)
        finally:
            sections["expressions"] += perf_counter() - t0

    CompiledExpression.evaluate = timed_evaluate  # type: ignore[method-assign]

    profiler = None
    if cprofile:
        import cProfile

        profiler = cProfile.Profile()

    tm = None
    if trace_malloc:
        import tracemalloc as tm

    expr_start = _EXPR_STATS.snapshot()
    try:
        if tm is not None:
            tm.start(1)
        start = perf_counter()
        if profiler is not None:
            profiler.enable()
        try:
            monitor = sim.run()
        finally:
            if profiler is not None:
                profiler.disable()
        wall = perf_counter() - start
        malloc_stats = None
        if tm is not None:
            current_b, peak_b = tm.get_traced_memory()
            top_allocs = [
                {
                    "location": f"{stat.traceback[0].filename}:{stat.traceback[0].lineno}",
                    "size_mb": stat.size / (1024.0 * 1024.0),
                    "blocks": stat.count,
                }
                for stat in tm.take_snapshot().statistics("lineno")[:10]
            ]
            malloc_stats = {
                "current_mb": current_b / (1024.0 * 1024.0),
                "peak_mb": peak_b / (1024.0 * 1024.0),
                "top_allocations": top_allocs,
            }
    finally:
        if tm is not None:
            tm.stop()
        CompiledExpression.evaluate = orig_evaluate  # type: ignore[method-assign]
        algo.schedule = orig_schedule  # type: ignore[method-assign]

    solver = monitor.solver
    solver_s = solver.solver_time if solver is not None else 0.0
    other_s = max(
        0.0, wall - solver_s - sections["scheduler"] - sections["expressions"]
    )
    events = sim.env.processed_events
    payload: Dict[str, Any] = {
        "schema": PROFILE_SCHEMA,
        "config": {
            "num_jobs": num_jobs,
            "num_nodes": num_nodes,
            "algorithm": algorithm,
            "seed": seed,
        },
        "wall_s": wall,
        "events": events,
        "events_per_s": events / wall if wall > 0 else 0.0,
        "sections": {
            "solver_s": solver_s,
            "scheduler_s": sections["scheduler"],
            "expressions_s": sections["expressions"],
            "other_s": other_s,
        },
        "counters": {
            "invocations": sim.batch.invocations,
            "completed_jobs": monitor.summary().completed_jobs,
            "solver": solver.as_dict() if solver is not None else {},
            "expressions": _EXPR_STATS.since(expr_start).as_dict(),
        },
        "memory": {
            "peak_rss_mb": peak_rss_mb(),
            "tracemalloc": malloc_stats,
        },
    }
    if profiler is not None:
        payload["top_functions"] = _top_functions(profiler, top)
    return payload


def _top_functions(profiler: Any, top: int) -> List[Dict[str, Any]]:
    """Extract the ``top`` rows by internal time from a cProfile run."""
    import pstats

    stats = pstats.Stats(profiler)
    rows = []
    for (filename, line, name), (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append(
            {
                "function": f"{filename}:{line}({name})",
                "calls": nc,
                "tottime_s": tt,
                "cumtime_s": ct,
            }
        )
    rows.sort(key=lambda row: row["tottime_s"], reverse=True)
    return rows[:top]


def format_profile_report(payload: Dict[str, Any]) -> str:
    """Render a profile payload as a human-readable text report."""
    config = payload["config"]
    sections = payload["sections"]
    counters = payload["counters"]
    wall = payload["wall_s"]
    lines = [
        f"profile: {config['num_jobs']} jobs / {config['num_nodes']} nodes "
        f"/ {config['algorithm']} (seed {config['seed']})",
        f"wall       : {wall:.3f} s "
        f"({payload['events']} events, {payload['events_per_s']:.0f} ev/s)",
    ]
    for key, label in (
        ("solver_s", "solver"),
        ("scheduler_s", "scheduler"),
        ("expressions_s", "expressions"),
        ("other_s", "kernel/other"),
    ):
        value = sections[key]
        share = value / wall if wall > 0 else 0.0
        lines.append(f"{label:11s}: {value:.3f} s ({share:6.1%})")
    solver = counters.get("solver") or {}
    if solver:
        lines.append(
            "solver     : "
            f"{solver.get('resolves', 0)} resolves "
            f"(fast={solver.get('fast_solves', 0)} "
            f"scalar={solver.get('scalar_solves', 0)} "
            f"vector={solver.get('vector_solves', 0)})"
        )
    expr = counters.get("expressions") or {}
    if expr:
        lines.append(
            "expressions: "
            f"{expr.get('evaluations', 0)} evaluations, "
            f"hit rate {expr.get('hit_rate', 0.0):.1%}"
        )
    memory = payload.get("memory") or {}
    if memory:
        line = f"memory     : peak RSS {memory.get('peak_rss_mb', 0.0):.1f} MiB"
        malloc_stats = memory.get("tracemalloc")
        if malloc_stats:
            line += (
                f", traced peak {malloc_stats['peak_mb']:.1f} MiB "
                f"(current {malloc_stats['current_mb']:.1f} MiB)"
            )
        lines.append(line)
        for row in (malloc_stats or {}).get("top_allocations", [])[:5]:
            lines.append(
                f"  {row['size_mb']:8.1f} MiB  {row['blocks']:>9} blocks  "
                f"{row['location']}"
            )
    for row in payload.get("top_functions", [])[:10]:
        lines.append(
            f"  {row['tottime_s']:8.3f}s  {row['calls']:>9} calls  "
            f"{row['function']}"
        )
    return "\n".join(lines)
