"""The Job class and its lifecycle."""

from __future__ import annotations

from enum import Enum
from math import inf
from typing import Dict, List, Optional, Sequence

from repro.application import ApplicationModel


class JobError(Exception):
    """Raised on invalid job descriptions or illegal state transitions."""


class JobType(Enum):
    """Who controls the allocation, and when it may change."""

    RIGID = "rigid"
    MOLDABLE = "moldable"
    MALLEABLE = "malleable"
    EVOLVING = "evolving"


class JobClass(Enum):
    """Service class, orthogonal to :class:`JobType`.

    ``BATCH`` jobs queue and may be preempted; ``ON_DEMAND`` jobs expect
    immediate admission — class-aware policies (the shipped
    ``hybrid-corridor`` scheduler) preempt batch victims to make room for
    them.  Class-oblivious policies treat everything as batch.
    """

    BATCH = "batch"
    ON_DEMAND = "on-demand"


class JobState(Enum):
    """Lifecycle states.

    ``PENDING → RUNNING → {COMPLETED, KILLED}``; ``KILLED`` covers both
    walltime overruns and explicit scheduler kills.
    """

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    KILLED = "killed"


class ReconfigurationOrder:
    """A scheduler decision to change a malleable job's allocation.

    ``target`` is the complete desired allocation (node objects).  The
    batch system validates it; the engine applies it at the job's next
    scheduling point, charging the redistribution cost.
    """

    __slots__ = ("target", "issued_at")

    def __init__(self, target: Sequence, issued_at: float) -> None:
        if not target:
            raise JobError("Reconfiguration target must contain at least one node")
        self.target = list(target)
        self.issued_at = issued_at

    def __repr__(self) -> str:
        return f"<ReconfigurationOrder to {len(self.target)} nodes @ {self.issued_at}>"


class Job:
    """A batch job: resource request + application model + runtime state.

    Parameters
    ----------
    jid:
        Unique integer id (assigned by the workload or the batch system).
    application:
        What the job executes.
    job_type:
        One of :class:`JobType`.
    submit_time:
        Simulated submission instant in seconds.
    num_nodes:
        The requested allocation for rigid jobs; for moldable / malleable /
        evolving jobs the *preferred* size (scheduler may pick within
        ``min_nodes..max_nodes``).
    min_nodes, max_nodes:
        Allocation bounds for non-rigid jobs.  Default to ``num_nodes`` for
        rigid jobs.
    walltime:
        Kill limit in seconds (``inf`` disables).
    arguments:
        Extra expression variables available to the application model
        (problem sizes, step counts, ...).
    name:
        Display name; defaults to ``job<jid>``.
    user:
        Owning account (for fairness-aware scheduling); defaults to
        ``"user0"``.
    priority:
        Larger values are more important (priority/preemption policies).
    job_class:
        Service class (:class:`JobClass`); defaults to batch.
    checkpoint_bytes:
        Checkpoint footprint on the PFS in bytes.  When set, a
        checkpoint-restart requeue of this job prepends a restart phase
        that reads this many bytes back from the PFS before resuming —
        the preemption cost model.  ``None`` (default) keeps restarts
        free, matching the pre-power behaviour.
    """

    def __init__(
        self,
        jid: int,
        application: ApplicationModel,
        *,
        job_type: JobType = JobType.RIGID,
        submit_time: float = 0.0,
        num_nodes: int = 1,
        min_nodes: Optional[int] = None,
        max_nodes: Optional[int] = None,
        walltime: float = inf,
        arguments: Optional[Dict[str, float]] = None,
        name: Optional[str] = None,
        user: Optional[str] = None,
        priority: int = 0,
        job_class: JobClass = JobClass.BATCH,
        checkpoint_bytes: Optional[float] = None,
    ) -> None:
        if submit_time < 0:
            raise JobError(f"submit_time must be >= 0, got {submit_time}")
        if num_nodes < 1:
            raise JobError(f"num_nodes must be >= 1, got {num_nodes}")
        if walltime <= 0:
            raise JobError(f"walltime must be > 0, got {walltime}")
        if checkpoint_bytes is not None and checkpoint_bytes <= 0:
            raise JobError(
                f"checkpoint_bytes must be > 0, got {checkpoint_bytes}"
            )

        if job_type is JobType.RIGID:
            if min_nodes not in (None, num_nodes) or max_nodes not in (None, num_nodes):
                raise JobError("Rigid jobs cannot set min/max nodes")
            min_nodes = max_nodes = num_nodes
        else:
            min_nodes = min_nodes if min_nodes is not None else 1
            max_nodes = max_nodes if max_nodes is not None else num_nodes
        if not 1 <= min_nodes <= max_nodes:
            raise JobError(
                f"Need 1 <= min_nodes <= max_nodes, got {min_nodes}..{max_nodes}"
            )
        if not min_nodes <= num_nodes <= max_nodes:
            raise JobError(
                f"num_nodes {num_nodes} outside bounds {min_nodes}..{max_nodes}"
            )

        self.jid = jid
        self.name = name or f"job{jid}"
        self.application = application
        self.type = job_type
        self.submit_time = float(submit_time)
        self.num_nodes = num_nodes
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.walltime = float(walltime)
        self.arguments: Dict[str, float] = dict(arguments or {})
        #: Owner account; used by fairness-aware policies.
        self.user = user or "user0"
        #: Larger = more important; used by priority/preemption policies.
        self.priority = int(priority)
        #: Service class (batch vs. on-demand), read by class-aware policies.
        self.job_class = job_class
        #: PFS checkpoint footprint driving restart I/O cost (None = free).
        self.checkpoint_bytes = (
            float(checkpoint_bytes) if checkpoint_bytes is not None else None
        )

        # -- runtime state (owned by the batch system / engine) ------------
        self.state = JobState.PENDING
        self._assigned_nodes: List = []
        #: Bumped on every allocation change; invalidates the cached
        #: expression-variable bindings (see ``expression_variables``).
        self._allocation_generation = 0
        self._variables_cache: Optional[Dict[str, float]] = None
        self._variables_generation = -1
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.kill_reason: Optional[str] = None

        #: Order the engine applies at the next scheduling point.
        self.pending_reconfiguration: Optional[ReconfigurationOrder] = None
        #: Evolving jobs: total nodes the application currently asks for.
        self.evolving_request: Optional[int] = None
        #: Event a *blocking* evolving request waits on; the batch system
        #: triggers it when the request is granted or explicitly denied.
        self.evolving_wait_event = None
        #: Set when the scheduler explicitly denies the current request
        #: (checked by the engine before suspending a blocking request).
        self.evolving_denied = False

        # -- accounting ----------------------------------------------------
        self.scheduling_points_seen = 0
        self.reconfigurations_applied = 0
        self.redistribution_bytes_moved = 0.0

        #: Which attempt this is (> 1 after failure requeues).
        self.attempt = 1
        #: The jid of the original submission when this job is a requeue.
        self.origin_jid: Optional[int] = None
        #: The jid this clone was made from (the *immediate* source, unlike
        #: :attr:`origin_jid` which is the chain root).  Snapshots use it to
        #: rebuild requeue clones by replaying the clone call.
        self.source_jid: Optional[int] = None
        #: Progress watermark set by the engine at every scheduling point:
        #: (phase index, iterations completed in it, iterations total).
        #: Scheduling points are where application state is consistent —
        #: i.e. the natural checkpoint locations.
        self.checkpoint_marker: Optional[tuple] = None

    def clone_for_requeue(
        self, new_jid: int, submit_time: float, *, resume: bool = False
    ) -> "Job":
        """A fresh PENDING copy of this job for resubmission after a fault.

        With ``resume=False`` (default) the clone restarts the application
        from the beginning.  With ``resume=True`` and a recorded
        :attr:`checkpoint_marker`, the clone's application is trimmed to
        the work *after* the last scheduling point — modelling an
        application that checkpoints at its scheduling points.  If the job
        also declares :attr:`checkpoint_bytes`, the trimmed application is
        prefixed with a restart phase that reads the checkpoint back from
        the PFS, charging the restart I/O cost of the preemption (or
        failure) that evicted it.  The original walltime budget is kept
        either way.
        """
        application = self.application
        if resume and self.checkpoint_marker is not None:
            application = _trim_application(self.application, self.checkpoint_marker)
            if self.checkpoint_bytes:
                application = _with_restart_read(application, self.checkpoint_bytes)
        clone = Job(
            new_jid,
            application,
            job_type=self.type,
            submit_time=submit_time,
            num_nodes=self.num_nodes,
            min_nodes=None if self.is_rigid else self.min_nodes,
            max_nodes=None if self.is_rigid else self.max_nodes,
            walltime=self.walltime,
            arguments=self.arguments,
            name=f"{self.name}.r{self.attempt + 1}",
            user=self.user,
            priority=self.priority,
            job_class=self.job_class,
            checkpoint_bytes=self.checkpoint_bytes,
        )
        clone.attempt = self.attempt + 1
        clone.origin_jid = self.origin_jid if self.origin_jid is not None else self.jid
        clone.source_jid = self.jid
        return clone

    # -- snapshot/restore ----------------------------------------------------

    def capture_state(self) -> dict:
        """Snapshot the runtime fields (description fields come from the
        scenario spec, or — for requeue clones — from lineage replay).

        ``evolving_wait_event`` is deliberately absent: the executor owns
        that wait and rebuilds the event on resume.  The expression-variable
        cache restores invalid and is lazily rebuilt on first use.
        """
        pending = self.pending_reconfiguration
        return {
            "state": self.state.value,
            "assigned_nodes": [node.index for node in self._assigned_nodes],
            "allocation_generation": self._allocation_generation,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "kill_reason": self.kill_reason,
            "pending_reconfiguration": (
                {
                    "target": [node.index for node in pending.target],
                    "issued_at": pending.issued_at,
                }
                if pending is not None
                else None
            ),
            "evolving_request": self.evolving_request,
            "evolving_denied": self.evolving_denied,
            "scheduling_points_seen": self.scheduling_points_seen,
            "reconfigurations_applied": self.reconfigurations_applied,
            "redistribution_bytes_moved": self.redistribution_bytes_moved,
            "attempt": self.attempt,
            "origin_jid": self.origin_jid,
            "checkpoint_marker": (
                list(self.checkpoint_marker)
                if self.checkpoint_marker is not None
                else None
            ),
        }

    def restore_state(self, state: dict, nodes: Sequence) -> None:
        """Apply captured runtime state; ``nodes`` is the platform's node
        list for resolving allocation indices."""
        self.state = JobState(state["state"])
        self._assigned_nodes = [nodes[i] for i in state["assigned_nodes"]]
        self._allocation_generation = state["allocation_generation"]
        self._variables_cache = None
        self._variables_generation = -1
        self.start_time = state["start_time"]
        self.end_time = state["end_time"]
        self.kill_reason = state["kill_reason"]
        pending = state["pending_reconfiguration"]
        if pending is not None:
            order = ReconfigurationOrder(
                [nodes[i] for i in pending["target"]], pending["issued_at"]
            )
            self.pending_reconfiguration = order
        else:
            self.pending_reconfiguration = None
        self.evolving_request = state["evolving_request"]
        self.evolving_wait_event = None
        self.evolving_denied = state["evolving_denied"]
        self.scheduling_points_seen = state["scheduling_points_seen"]
        self.reconfigurations_applied = state["reconfigurations_applied"]
        self.redistribution_bytes_moved = state["redistribution_bytes_moved"]
        self.attempt = state["attempt"]
        self.origin_jid = state["origin_jid"]
        marker = state["checkpoint_marker"]
        self.checkpoint_marker = tuple(marker) if marker is not None else None

    # -- type predicates -----------------------------------------------------

    @property
    def is_rigid(self) -> bool:
        return self.type is JobType.RIGID

    @property
    def is_adaptive(self) -> bool:
        """True for jobs whose allocation can change after start."""
        return self.type in (JobType.MALLEABLE, JobType.EVOLVING)

    # -- allocation ------------------------------------------------------------

    @property
    def assigned_nodes(self) -> List:
        """The job's current allocation (reassign, never mutate in place)."""
        return self._assigned_nodes

    @assigned_nodes.setter
    def assigned_nodes(self, nodes: List) -> None:
        self._assigned_nodes = nodes
        self._allocation_generation += 1

    # -- expression context ----------------------------------------------------

    def expression_variables(self, **extra: float) -> Dict[str, float]:
        """Bindings available to the application model's expressions.

        The base binding dict is cached per allocation generation (the
        executor asks for it once per task); reconfigurations invalidate
        it through the ``assigned_nodes`` setter.  ``arguments`` are
        treated as immutable after submission.
        """
        base = self._variables_cache
        if base is None or self._variables_generation != self._allocation_generation:
            base = dict(self.arguments)
            base["num_nodes"] = len(self._assigned_nodes) or self.num_nodes
            base["job_id"] = self.jid
            self._variables_cache = base
            self._variables_generation = self._allocation_generation
        if extra:
            return {**base, **extra}
        return dict(base)

    # -- lifecycle --------------------------------------------------------------

    def mark_started(self, nodes: Sequence, now: float) -> None:
        if self.state is not JobState.PENDING:
            raise JobError(f"{self.name}: cannot start from state {self.state}")
        if not nodes:
            raise JobError(f"{self.name}: cannot start with empty allocation")
        if not self.min_nodes <= len(nodes) <= self.max_nodes:
            raise JobError(
                f"{self.name}: allocation of {len(nodes)} outside "
                f"{self.min_nodes}..{self.max_nodes}"
            )
        if self.is_rigid and len(nodes) != self.num_nodes:
            raise JobError(
                f"{self.name}: rigid job needs exactly {self.num_nodes} nodes, "
                f"got {len(nodes)}"
            )
        self.state = JobState.RUNNING
        self.assigned_nodes = list(nodes)
        self.start_time = now

    def mark_completed(self, now: float) -> None:
        if self.state is not JobState.RUNNING:
            raise JobError(f"{self.name}: cannot complete from state {self.state}")
        self.state = JobState.COMPLETED
        self.end_time = now

    def mark_killed(self, now: float, reason: str) -> None:
        if self.state not in (JobState.RUNNING, JobState.PENDING):
            raise JobError(f"{self.name}: cannot kill from state {self.state}")
        self.state = JobState.KILLED
        self.end_time = now
        self.kill_reason = reason

    # -- metrics ---------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.state in (JobState.COMPLETED, JobState.KILLED)

    @property
    def wait_time(self) -> Optional[float]:
        """Seconds between submission and start (None while pending)."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def runtime(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def turnaround(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.submit_time

    def bounded_slowdown(self, tau: float = 10.0) -> Optional[float]:
        """Feitelson's bounded slowdown with threshold ``tau`` seconds."""
        if self.end_time is None or self.start_time is None:
            return None
        runtime = self.runtime or 0.0
        return max(
            1.0,
            (self.wait_time + runtime) / max(runtime, tau),
        )

    def __repr__(self) -> str:
        return (
            f"<Job {self.name} {self.type.value} {self.state.value} "
            f"nodes={len(self.assigned_nodes) or self.num_nodes}>"
        )


def _trim_application(application: ApplicationModel, marker: tuple) -> ApplicationModel:
    """The part of ``application`` after checkpoint ``marker``.

    ``marker`` is (phase index, iterations completed, iterations total) as
    recorded by the engine.  The marker phase keeps its remaining
    iterations as a literal count; later phases are untouched.  If nothing
    remains (marker at the very end), a minimal zero-work application is
    returned so the clone completes immediately.
    """
    from repro.application import CpuTask, Phase

    phase_idx, done, total = marker
    phases = []
    marker_phase = application.phases[phase_idx]
    remaining = total - done
    if remaining > 0:
        phases.append(
            Phase(
                marker_phase.tasks,
                iterations=remaining,
                scheduling_point=marker_phase.scheduling_point,
                parallel=marker_phase.parallel,
                name=f"{marker_phase.name}~resumed",
            )
        )
    phases.extend(application.phases[phase_idx + 1 :])
    if not phases:
        phases = [Phase([CpuTask(0)], name="resume-epilogue")]
    return ApplicationModel(
        phases,
        data_per_node=application.data_per_node,
        name=f"{application.name}~resumed",
    )


def _with_restart_read(
    application: ApplicationModel, checkpoint_bytes: float
) -> ApplicationModel:
    """Prefix ``application`` with a PFS read of the checkpoint.

    The read is spread evenly over the allocation (the task's EVEN
    distribution divides by the node count), so the *total* restart I/O
    volume equals ``checkpoint_bytes`` regardless of the resumed size.
    The restart phase is not a scheduling point: a job evicted mid-restart
    has made no new progress, so its next resume replays the same read.
    """
    from repro.application import PfsReadTask, Phase

    restart = Phase(
        [PfsReadTask(checkpoint_bytes, name="restart-read")],
        scheduling_point=False,
        name="restart",
    )
    return ApplicationModel(
        [restart, *application.phases],
        data_per_node=application.data_per_node,
        name=application.name,
    )
