"""Job model: rigid, moldable, malleable, and evolving jobs.

The four job types follow Feitelson & Rudolph's classic taxonomy, which is
also the paper's framing:

=============  =======================  ====================================
Type           Who decides allocation   When it can change
=============  =======================  ====================================
``RIGID``      user (fixed)             never
``MOLDABLE``   scheduler at start       never after start
``MALLEABLE``  scheduler at runtime     at the application's scheduling
                                        points (phase/iteration boundaries)
``EVOLVING``   application at runtime   when the application requests and
                                        the scheduler grants
=============  =======================  ====================================

A :class:`Job` couples a resource request with an
:class:`~repro.application.ApplicationModel` and carries all lifecycle
state and per-job metrics (wait, turnaround, bounded slowdown).
"""

from repro.job.job import (
    Job,
    JobClass,
    JobError,
    JobState,
    JobType,
    ReconfigurationOrder,
)

__all__ = [
    "Job",
    "JobClass",
    "JobError",
    "JobState",
    "JobType",
    "ReconfigurationOrder",
]
