"""Serialization of application models back to their JSON form.

Enables workload round-trips (generate → save → load) and the CLI's
``generate`` subcommand.  Expressions serialize to their source-equivalent
string form via a minimal pretty-printer.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.application.model import ApplicationModel, Phase
from repro.application.tasks import (
    ApplicationError,
    GpuTask,
    BbReadTask,
    BbWriteTask,
    CommTask,
    CpuTask,
    DelayTask,
    Distribution,
    EvolvingRequest,
    PfsReadTask,
    PfsWriteTask,
    Task,
)
from repro.expressions import (
    BinaryOp,
    Call,
    CompiledExpression,
    Expression,
    Number,
    UnaryOp,
    Variable,
)


def expression_to_source(expr: Expression) -> Any:
    """Render an expression AST back to a JSON scalar or source string.

    Plain numbers stay numbers (nicer JSON); everything else becomes a
    fully parenthesized string that re-parses to an equivalent AST.
    """
    if isinstance(expr, CompiledExpression):
        expr = expr.ast  # serialize the underlying AST, not the wrapper
    if isinstance(expr, Number):
        return expr.value
    return _render(expr)


def _render(expr: Expression) -> str:
    if isinstance(expr, CompiledExpression):
        expr = expr.ast
    if isinstance(expr, Number):
        return repr(expr.value)
    if isinstance(expr, Variable):
        return expr.name
    if isinstance(expr, UnaryOp):
        return f"({expr.op}{_render(expr.operand)})"
    if isinstance(expr, BinaryOp):
        return f"({_render(expr.left)} {expr.op} {_render(expr.right)})"
    if isinstance(expr, Call):
        args = ", ".join(_render(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise ApplicationError(f"Cannot serialize expression node {expr!r}")


def task_to_dict(task: Task) -> Dict[str, Any]:
    """Serialize one task to its loader-compatible JSON object."""
    spec: Dict[str, Any] = {"type": task.kind}
    if task.name != task.kind:
        spec["name"] = task.name
    if isinstance(task, CpuTask):
        spec["flops"] = expression_to_source(task.flops)
        if task.distribution is not Distribution.EVEN:
            spec["distribution"] = task.distribution.value
        serial = expression_to_source(task.serial_fraction)
        if serial != 0:
            spec["serial_fraction"] = serial
    elif isinstance(task, GpuTask):
        spec["flops"] = expression_to_source(task.flops)
        if task.distribution is not Distribution.EVEN:
            spec["distribution"] = task.distribution.value
    elif isinstance(task, CommTask):
        spec["bytes"] = expression_to_source(task.nbytes)
        spec["pattern"] = task.pattern.value
    elif isinstance(task, (PfsReadTask, PfsWriteTask, BbReadTask, BbWriteTask)):
        spec["bytes"] = expression_to_source(task.nbytes)
        if task.distribution is not Distribution.EVEN:
            spec["distribution"] = task.distribution.value
        if isinstance(task, BbWriteTask) and not task.charge:
            spec["charge"] = False
    elif isinstance(task, DelayTask):
        spec["seconds"] = expression_to_source(task.seconds)
    elif isinstance(task, EvolvingRequest):
        spec["num_nodes"] = expression_to_source(task.num_nodes)
        if task.blocking:
            spec["blocking"] = True
    else:
        raise ApplicationError(f"Cannot serialize task type {type(task).__name__}")
    return spec


def phase_to_dict(phase: Phase) -> Dict[str, Any]:
    """Serialize one phase."""
    spec: Dict[str, Any] = {
        "name": phase.name,
        "tasks": [task_to_dict(t) for t in phase.tasks],
    }
    iterations = expression_to_source(phase.iterations)
    if iterations != 1:
        spec["iterations"] = iterations
    if not phase.scheduling_point:
        spec["scheduling_point"] = False
    if phase.parallel:
        spec["parallel"] = True
    return spec


def application_to_dict(model: ApplicationModel) -> Dict[str, Any]:
    """Serialize a model; round-trips through ``application_from_dict``."""
    spec: Dict[str, Any] = {
        "name": model.name,
        "phases": [phase_to_dict(p) for p in model.phases],
    }
    data = expression_to_source(model.data_per_node)
    if data != 0:
        spec["data_per_node"] = data
    return spec
