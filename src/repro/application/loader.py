"""JSON application models → ApplicationModel objects.

Format::

    {
      "name": "lulesh-like",
      "data_per_node": "2e9",
      "phases": [
        {
          "name": "init",
          "tasks": [{"type": "pfs_read", "bytes": "1e10"}]
        },
        {
          "name": "solve",
          "iterations": "num_steps",
          "scheduling_point": true,
          "tasks": [
            {"type": "cpu", "flops": "2e13 / num_nodes",
             "distribution": "per_node"},
            {"type": "comm", "bytes": "5e6", "pattern": "alltoall"},
            {"type": "bb_write", "bytes": "1e9",
             "distribution": "per_node", "charge": false}
          ]
        },
        {
          "name": "output",
          "tasks": [{"type": "pfs_write", "bytes": "5e10"}]
        }
      ]
    }

Task ``type`` ∈ {cpu, comm, pfs_read, pfs_write, bb_read, bb_write, delay,
evolving_request}.  Magnitude fields accept numbers or expression strings
(see :mod:`repro.expressions`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.application.model import ApplicationModel, Phase
from repro.application.tasks import (
    ApplicationError,
    GpuTask,
    BbReadTask,
    BbWriteTask,
    CommPattern,
    CommTask,
    CpuTask,
    DelayTask,
    Distribution,
    EvolvingRequest,
    PfsReadTask,
    PfsWriteTask,
    Task,
)


def _distribution(spec: Dict[str, Any], context: str) -> Distribution:
    raw = spec.get("distribution", "even")
    try:
        return Distribution(raw)
    except ValueError:
        raise ApplicationError(
            f"{context}: unknown distribution {raw!r}; "
            f"expected one of {[d.value for d in Distribution]}"
        ) from None


def _require(spec: Dict[str, Any], key: str, context: str) -> Any:
    if key not in spec:
        raise ApplicationError(f"{context}: missing required key {key!r}")
    return spec[key]


def task_from_dict(spec: Dict[str, Any]) -> Task:
    """Build a single task from its JSON object."""
    if not isinstance(spec, dict):
        raise ApplicationError(f"Task spec must be an object, got {spec!r}")
    kind = _require(spec, "type", "task")
    name = spec.get("name")
    context = f"task {name or kind!r}"

    if kind == "cpu":
        return CpuTask(
            _require(spec, "flops", context),
            distribution=_distribution(spec, context),
            serial_fraction=spec.get("serial_fraction", 0),
            name=name,
        )
    if kind == "gpu":
        return GpuTask(
            _require(spec, "flops", context),
            distribution=_distribution(spec, context),
            name=name,
        )
    if kind == "comm":
        raw_pattern = spec.get("pattern", "alltoall")
        try:
            pattern = CommPattern(raw_pattern)
        except ValueError:
            raise ApplicationError(
                f"{context}: unknown pattern {raw_pattern!r}; "
                f"expected one of {[p.value for p in CommPattern]}"
            ) from None
        return CommTask(_require(spec, "bytes", context), pattern=pattern, name=name)
    if kind == "pfs_read":
        return PfsReadTask(
            _require(spec, "bytes", context),
            distribution=_distribution(spec, context),
            name=name,
        )
    if kind == "pfs_write":
        return PfsWriteTask(
            _require(spec, "bytes", context),
            distribution=_distribution(spec, context),
            name=name,
        )
    if kind == "bb_read":
        return BbReadTask(
            _require(spec, "bytes", context),
            distribution=_distribution(spec, context),
            name=name,
        )
    if kind == "bb_write":
        return BbWriteTask(
            _require(spec, "bytes", context),
            distribution=_distribution(spec, context),
            charge=bool(spec.get("charge", True)),
            name=name,
        )
    if kind == "delay":
        return DelayTask(_require(spec, "seconds", context), name=name)
    if kind == "evolving_request":
        return EvolvingRequest(
            _require(spec, "num_nodes", context),
            blocking=bool(spec.get("blocking", False)),
            name=name,
        )
    raise ApplicationError(
        f"{context}: unknown task type {kind!r}; expected one of "
        "cpu/gpu/comm/pfs_read/pfs_write/bb_read/bb_write/delay/evolving_request"
    )


def phase_from_dict(spec: Dict[str, Any], index: int) -> Phase:
    """Build a phase from its JSON object."""
    if not isinstance(spec, dict):
        raise ApplicationError(f"Phase {index}: spec must be an object")
    tasks_spec = _require(spec, "tasks", f"phase {index}")
    if not isinstance(tasks_spec, list) or not tasks_spec:
        raise ApplicationError(f"Phase {index}: 'tasks' must be a non-empty list")
    tasks = [task_from_dict(t) for t in tasks_spec]
    return Phase(
        tasks,
        iterations=spec.get("iterations", 1),
        scheduling_point=bool(spec.get("scheduling_point", True)),
        parallel=bool(spec.get("parallel", False)),
        name=spec.get("name", f"phase{index}"),
    )


def application_from_dict(spec: Dict[str, Any]) -> ApplicationModel:
    """Build an :class:`ApplicationModel` from a parsed JSON description."""
    if not isinstance(spec, dict):
        raise ApplicationError(
            f"Application spec must be an object, got {type(spec).__name__}"
        )
    phases_spec = _require(spec, "phases", "application")
    if not isinstance(phases_spec, list) or not phases_spec:
        raise ApplicationError("application: 'phases' must be a non-empty list")
    phases = [phase_from_dict(p, i) for i, p in enumerate(phases_spec)]
    return ApplicationModel(
        phases,
        data_per_node=spec.get("data_per_node", 0),
        name=spec.get("name", "application"),
    )


def load_application(path: Union[str, Path]) -> ApplicationModel:
    """Load an application model from a JSON file."""
    path = Path(path)
    try:
        spec = json.loads(path.read_text())
    except FileNotFoundError:
        raise ApplicationError(f"Application file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ApplicationError(f"Invalid JSON in {path}: {exc}") from exc
    return application_from_dict(spec)
