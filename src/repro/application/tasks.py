"""Task types composing application phases."""

from __future__ import annotations

from enum import Enum
from typing import Mapping, Optional, Union

from repro.expressions import Expression, ExpressionError, compiled_expression

ExprLike = Union[str, int, float, Expression]


class ApplicationError(Exception):
    """Raised for invalid application models."""


class Distribution(Enum):
    """How a task magnitude maps onto the allocation.

    ``EVEN``
        The expression gives the *total* amount; each node gets an equal
        share (strong scaling — more nodes, less per node).
    ``PER_NODE``
        The expression gives the amount *per node* (weak scaling — total
        grows with the allocation).
    """

    EVEN = "even"
    PER_NODE = "per_node"


class CommPattern(Enum):
    """Communication patterns a :class:`CommTask` can express.

    ``bytes`` is interpreted per pattern (matching common benchmark usage):

    * ``ALL_TO_ALL`` — every ordered node pair exchanges ``bytes``.
    * ``RING`` — node *i* sends ``bytes`` to node *(i+1) mod n``.
    * ``BCAST`` — the root (rank 0 of the allocation) sends ``bytes`` to
      every other node.
    * ``GATHER`` — every non-root node sends ``bytes`` to the root.
    * ``PAIRWISE`` — nodes pair up (0↔1, 2↔3, …) and exchange ``bytes``.
    """

    ALL_TO_ALL = "alltoall"
    RING = "ring"
    BCAST = "bcast"
    GATHER = "gather"
    PAIRWISE = "pairwise"


class Task:
    """Common base: a named unit of work inside a phase."""

    kind: str = "task"

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or self.kind

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"

    @staticmethod
    def _compile(value: ExprLike, what: str) -> Expression:
        # Magnitudes go through the compiled pipeline: constant folding for
        # literal-only expressions, a compiled function otherwise, plus a
        # binding-keyed memo — semantics identical to the interpreted AST.
        try:
            return compiled_expression(value)
        except ExpressionError as exc:
            raise ApplicationError(f"Invalid expression for {what}: {exc}") from exc

    @staticmethod
    def _eval_nonnegative(expr: Expression, variables: Mapping[str, float], what: str) -> float:
        try:
            value = float(expr.evaluate(variables))
        except ExpressionError as exc:
            raise ApplicationError(f"Evaluating {what} failed: {exc}") from exc
        if value < 0:
            raise ApplicationError(f"{what} evaluated to negative value {value}")
        return value


class CpuTask(Task):
    """A computation of ``flops`` distributed over the allocation.

    ``serial_fraction`` (Amdahl's *s*, default 0) models the part of the
    work that does not parallelize: with EVEN distribution each node
    computes ``total x (s + (1 - s) / n)`` flops, so the task's duration
    follows Amdahl's law — the realism knob that bounds how much a
    malleable expansion can actually help (ablation E9).
    """

    kind = "cpu"

    def __init__(
        self,
        flops: ExprLike,
        *,
        distribution: Distribution = Distribution.EVEN,
        serial_fraction: ExprLike = 0,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.flops = self._compile(flops, f"{self.kind}.flops")
        self.distribution = distribution
        self.serial_fraction = self._compile(
            serial_fraction, f"{self.kind}.serial_fraction"
        )

    def flops_per_node(self, variables: Mapping[str, float], num_nodes: int) -> float:
        """Work each node performs for this task instance (Amdahl-scaled)."""
        total = self._eval_nonnegative(self.flops, variables, f"{self.name}.flops")
        if self.distribution is not Distribution.EVEN:
            return total
        serial = self._eval_nonnegative(
            self.serial_fraction, variables, f"{self.name}.serial_fraction"
        )
        if serial > 1:
            raise ApplicationError(
                f"{self.name}: serial_fraction must be <= 1, got {serial}"
            )
        return total * (serial + (1.0 - serial) / num_nodes)


class GpuTask(Task):
    """A GPU computation of ``flops`` distributed over the allocation.

    Each node's GPUs are modelled as one aggregate accelerator resource
    (``gpus x gpu_flops``); EVEN distribution splits the total across the
    allocation like :class:`CpuTask`.
    """

    kind = "gpu"

    def __init__(
        self,
        flops: ExprLike,
        *,
        distribution: Distribution = Distribution.EVEN,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.flops = self._compile(flops, f"{self.kind}.flops")
        self.distribution = distribution

    def flops_per_node(self, variables: Mapping[str, float], num_nodes: int) -> float:
        """GPU work each node performs for this task instance."""
        total = self._eval_nonnegative(self.flops, variables, f"{self.name}.flops")
        if self.distribution is Distribution.EVEN:
            return total / num_nodes
        return total


class CommTask(Task):
    """Communication among the allocation's nodes following a pattern."""

    kind = "comm"

    def __init__(
        self,
        nbytes: ExprLike,
        *,
        pattern: CommPattern = CommPattern.ALL_TO_ALL,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.nbytes = self._compile(nbytes, f"{self.kind}.bytes")
        self.pattern = pattern

    def message_size(self, variables: Mapping[str, float]) -> float:
        """Per-message bytes for this task instance."""
        return self._eval_nonnegative(self.nbytes, variables, f"{self.name}.bytes")

    def flows(self, num_nodes: int) -> list[tuple[int, int]]:
        """Ordered (src_rank, dst_rank) pairs the pattern generates.

        Ranks are positions within the allocation, not node indices.
        """
        n = num_nodes
        if n <= 1:
            return []
        if self.pattern is CommPattern.ALL_TO_ALL:
            return [(i, j) for i in range(n) for j in range(n) if i != j]
        if self.pattern is CommPattern.RING:
            return [(i, (i + 1) % n) for i in range(n)]
        if self.pattern is CommPattern.BCAST:
            return [(0, j) for j in range(1, n)]
        if self.pattern is CommPattern.GATHER:
            return [(i, 0) for i in range(1, n)]
        if self.pattern is CommPattern.PAIRWISE:
            return [
                pair
                for k in range(0, n - 1, 2)
                for pair in ((k, k + 1), (k + 1, k))
            ]
        raise ApplicationError(f"Unhandled pattern {self.pattern}")  # pragma: no cover


class _IoTask(Task):
    """Shared shape of PFS / burst-buffer read and write tasks."""

    def __init__(
        self,
        nbytes: ExprLike,
        *,
        distribution: Distribution = Distribution.EVEN,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.nbytes = self._compile(nbytes, f"{self.kind}.bytes")
        self.distribution = distribution

    def bytes_per_node(self, variables: Mapping[str, float], num_nodes: int) -> float:
        total = self._eval_nonnegative(self.nbytes, variables, f"{self.name}.bytes")
        if self.distribution is Distribution.EVEN:
            return total / num_nodes
        return total


class PfsReadTask(_IoTask):
    """Each node reads its share from the parallel file system."""

    kind = "pfs_read"


class PfsWriteTask(_IoTask):
    """Each node writes its share to the parallel file system."""

    kind = "pfs_write"


class BbReadTask(_IoTask):
    """Each node reads from its node-local burst buffer."""

    kind = "bb_read"


class BbWriteTask(_IoTask):
    """Each node writes to its node-local burst buffer.

    ``charge`` controls whether the write occupies BB capacity until a
    later ``bb_release`` (default True).
    """

    kind = "bb_write"

    def __init__(
        self,
        nbytes: ExprLike,
        *,
        distribution: Distribution = Distribution.EVEN,
        charge: bool = True,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(nbytes, distribution=distribution, name=name)
        self.charge = charge


class DelayTask(Task):
    """A fixed-duration wait (license queues, staging, ramp-up)."""

    kind = "delay"

    def __init__(self, seconds: ExprLike, *, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.seconds = self._compile(seconds, f"{self.kind}.seconds")

    def duration(self, variables: Mapping[str, float]) -> float:
        return self._eval_nonnegative(self.seconds, variables, f"{self.name}.seconds")


class EvolvingRequest(Task):
    """An application-initiated allocation-change request.

    ``num_nodes`` evaluates to the desired total allocation size at this
    point.  The batch system forwards the request to the scheduler, which
    may grant it fully, partially, or not at all; execution continues with
    whatever the scheduler decides (the request is non-blocking unless
    ``blocking`` is set).
    """

    kind = "evolving_request"

    def __init__(
        self,
        num_nodes: ExprLike,
        *,
        blocking: bool = False,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.num_nodes = self._compile(num_nodes, f"{self.kind}.num_nodes")
        self.blocking = blocking

    def desired_nodes(self, variables: Mapping[str, float]) -> int:
        value = self._eval_nonnegative(self.num_nodes, variables, f"{self.name}.num_nodes")
        desired = int(round(value))
        if desired < 1:
            raise ApplicationError(
                f"{self.name}: requested allocation must be >= 1, got {desired}"
            )
        return desired
