"""Phases and the application model aggregate."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.application.tasks import ApplicationError, EvolvingRequest, ExprLike, Task
from repro.expressions import ExpressionError, compiled_expression


class Phase:
    """A task list repeated for a number of iterations.

    Parameters
    ----------
    tasks:
        Executed sequentially within each iteration by default (ElastiSim
        semantics; each task is already node-parallel).  With
        ``parallel=True`` the phase's tasks all run *concurrently* and the
        iteration ends when the slowest finishes — modelling overlapped
        compute/communication/I-O.
    iterations:
        Expression evaluated once at phase entry (e.g. ``"num_timesteps"``
        from job arguments).  Must be >= 1.
    scheduling_point:
        If True (default), the end of *every iteration* is a scheduling
        point where a malleable job may be reconfigured.  Set False for
        phases that must not be disturbed (e.g. tightly coupled solves).
    name:
        Diagnostic label.
    """

    def __init__(
        self,
        tasks: Sequence[Task],
        *,
        iterations: ExprLike = 1,
        scheduling_point: bool = True,
        parallel: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if not tasks:
            raise ApplicationError(f"Phase {name!r} has no tasks")
        for task in tasks:
            if not isinstance(task, Task):
                raise ApplicationError(f"Phase {name!r}: {task!r} is not a Task")
        self.tasks = list(tasks)
        try:
            self.iterations = compiled_expression(iterations)
        except ExpressionError as exc:
            raise ApplicationError(f"Phase {name!r}: bad iterations: {exc}") from exc
        self.scheduling_point = scheduling_point
        self.parallel = parallel
        self.name = name or "phase"
        if parallel and any(isinstance(t, EvolvingRequest) for t in self.tasks):
            raise ApplicationError(
                f"Phase {self.name!r}: evolving requests cannot be part of a "
                "parallel task group (reconfiguration must be serialized)"
            )

    def num_iterations(self, variables: Mapping[str, float]) -> int:
        """Evaluate the iteration count for the current job context."""
        try:
            value = self.iterations.evaluate(variables)
        except ExpressionError as exc:
            raise ApplicationError(
                f"Phase {self.name!r}: evaluating iterations failed: {exc}"
            ) from exc
        count = int(round(float(value)))
        if count < 1:
            raise ApplicationError(
                f"Phase {self.name!r}: iterations must be >= 1, got {count}"
            )
        return count

    def __repr__(self) -> str:
        return f"<Phase {self.name!r} tasks={len(self.tasks)}>"


class ApplicationModel:
    """What a job executes: an ordered list of phases.

    Parameters
    ----------
    phases:
        Executed in order.
    data_per_node:
        Expression for the bytes of application state held per node —
        the quantity redistributed when a malleable job is reconfigured.
        Defaults to 0 (free reconfiguration).
    name:
        Model label for reports.
    """

    def __init__(
        self,
        phases: Sequence[Phase],
        *,
        data_per_node: ExprLike = 0,
        name: str = "application",
    ) -> None:
        if not phases:
            raise ApplicationError(f"Application {name!r} has no phases")
        for phase in phases:
            if not isinstance(phase, Phase):
                raise ApplicationError(f"Application {name!r}: {phase!r} is not a Phase")
        self.phases = list(phases)
        try:
            self.data_per_node = compiled_expression(data_per_node)
        except ExpressionError as exc:
            raise ApplicationError(
                f"Application {name!r}: bad data_per_node: {exc}"
            ) from exc
        self.name = name

    def redistribution_bytes_per_node(self, variables: Mapping[str, float]) -> float:
        """Bytes/node to move when reconfiguring under ``variables``."""
        try:
            value = float(self.data_per_node.evaluate(variables))
        except ExpressionError as exc:
            raise ApplicationError(
                f"Application {self.name!r}: evaluating data_per_node failed: {exc}"
            ) from exc
        if value < 0:
            raise ApplicationError(
                f"Application {self.name!r}: data_per_node is negative ({value})"
            )
        return value

    def __repr__(self) -> str:
        return f"<ApplicationModel {self.name!r} phases={len(self.phases)}>"
