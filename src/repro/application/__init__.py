"""Application model: phases of compute / communication / I/O tasks.

ElastiSim describes what a job *does* separately from what it *requests*:
an application model is a list of :class:`Phase` objects, each repeating a
task list for a number of iterations.  Task magnitudes are expressions over
the job's current allocation (``num_nodes``), the iteration counter, and
user-supplied job arguments — this is what makes a single model valid for
any allocation size and therefore *malleable*.

Phase boundaries are the model's **scheduling points**: the only instants
at which a malleable job can apply an expand/shrink order (data is
consistent there).  Evolving jobs additionally embed
:class:`EvolvingRequest` tasks that ask the scheduler for more or fewer
nodes from within the application.

The JSON format is documented in :mod:`repro.application.loader`.
"""

from repro.application.tasks import (
    ApplicationError,
    BbReadTask,
    BbWriteTask,
    CommPattern,
    CommTask,
    CpuTask,
    DelayTask,
    Distribution,
    EvolvingRequest,
    GpuTask,
    PfsReadTask,
    PfsWriteTask,
    Task,
)
from repro.application.model import ApplicationModel, Phase
from repro.application.loader import application_from_dict, load_application
from repro.application.serialize import (
    application_to_dict,
    expression_to_source,
    phase_to_dict,
    task_to_dict,
)

__all__ = [
    "ApplicationError",
    "ApplicationModel",
    "BbReadTask",
    "BbWriteTask",
    "CommPattern",
    "CommTask",
    "CpuTask",
    "DelayTask",
    "Distribution",
    "EvolvingRequest",
    "GpuTask",
    "PfsReadTask",
    "PfsWriteTask",
    "Phase",
    "Task",
    "application_from_dict",
    "application_to_dict",
    "expression_to_source",
    "load_application",
    "phase_to_dict",
    "task_to_dict",
]
