"""Exact per-node power and energy accounting.

The meter listens to the platform's node state-transition funnel
(:meth:`~repro.platform.Platform._node_changed` forwards every
allocate/deallocate/fail/repair) and integrates ``∫ power · dt`` per node
with :class:`fractions.Fraction` arithmetic — the piecewise-constant
integral is then *exact*, so energy totals are byte-identical across
engine modes and scale bit-exactly under the fuzzer's power-of-two
time-scaling oracle.

Aggregate draw is tracked alongside for the ``max_power_watts`` summary
statistic and the power-corridor audit.  The maximum is taken over
*settled* states only: several transitions at the same simulation instant
(a finishing job's nodes released and immediately re-allocated, a spare
node failed before t=0) collapse to the last value at that instant, so
zero-duration transients never register as a peak.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, List, Optional


class PowerMeter:
    """Integrates per-node energy from node state transitions.

    Created by the :class:`~repro.monitoring.Monitor` when the platform
    declares non-zero node draw; registers itself as the platform's power
    listener.  All times come from ``env.now``; all wattages from
    :attr:`~repro.platform.Node.power_watts`.
    """

    def __init__(self, env, platform) -> None:
        self.env = env
        self.platform = platform
        nodes = platform.nodes
        #: Current draw per node, sampled at the last transition.
        self._watts: List[float] = [node.power_watts for node in nodes]
        #: Time of each node's last transition (energy is integrated up
        #: to here).
        self._last: List[float] = [0.0] * len(nodes)
        #: Exact accumulated energy per node, in joule Fractions.
        self._energy: List[Fraction] = [Fraction(0)] * len(nodes)
        self._total_watts: float = 0.0
        for watts in self._watts:
            self._total_watts += watts
        #: Highest settled aggregate draw observed so far.
        self._max_watts: float = 0.0
        #: Instant of the most recent transition (for settling the max).
        self._last_change: float = 0.0
        platform._power_listener = self

    # -- accounting --------------------------------------------------------

    def node_changed(self, node) -> None:
        """Platform hook: ``node`` just changed allocation/failure state."""
        index = node.index
        watts = node.power_watts
        old = self._watts[index]
        if watts == old:
            return
        now = self.env.now
        if now > self._last_change:
            # The aggregate level held since the previous transition was a
            # settled state: it is a candidate for the observed maximum.
            if self._total_watts > self._max_watts:
                self._max_watts = self._total_watts
            self._last_change = now
        if now > self._last[index]:
            self._energy[index] += Fraction(old) * (
                Fraction(now) - Fraction(self._last[index])
            )
            self._last[index] = now
        self._watts[index] = watts
        self._total_watts += watts - old

    def finalize(self, end_time: float) -> None:
        """Flush every node's integral to ``end_time`` and settle the max."""
        for index, watts in enumerate(self._watts):
            if end_time > self._last[index]:
                self._energy[index] += Fraction(watts) * (
                    Fraction(end_time) - Fraction(self._last[index])
                )
                self._last[index] = end_time
        if self._total_watts > self._max_watts:
            self._max_watts = self._total_watts

    # -- views -------------------------------------------------------------

    @property
    def current_watts(self) -> float:
        """Aggregate draw right now (incrementally maintained)."""
        return self._total_watts

    @property
    def max_watts(self) -> float:
        return self._max_watts

    def node_energies(self) -> List[Fraction]:
        """Exact per-node energies integrated so far (joules)."""
        return list(self._energy)

    def total_energy(self) -> Fraction:
        """Exact machine-wide energy integrated so far (joules)."""
        return sum(self._energy, Fraction(0))

    def energy_record(self) -> Dict[str, Any]:
        """JSON-safe energy summary for ``run_record()`` (post-finalize)."""
        return {
            "total_joules": float(self.total_energy()),
            "max_power_watts": self._max_watts,
            "corridor_watts": self.platform.power_corridor,
            "node_joules": [float(e) for e in self._energy],
        }

    # -- snapshot/restore --------------------------------------------------

    def capture_state(self) -> Dict[str, Any]:
        """Serialise the meter; Fractions become [numerator, denominator]."""
        return {
            "watts": list(self._watts),
            "last": list(self._last),
            "energy": [[e.numerator, e.denominator] for e in self._energy],
            "total": self._total_watts,
            "max": self._max_watts,
            "last_change": self._last_change,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._watts = [float(w) for w in state["watts"]]
        self._last = [float(t) for t in state["last"]]
        self._energy = [Fraction(num, den) for num, den in state["energy"]]
        self._total_watts = state["total"]
        self._max_watts = state["max"]
        self._last_change = state["last_change"]


def attach_power_meter(env, platform) -> Optional[PowerMeter]:
    """Build and register a meter when the platform declares power draw."""
    if not platform.power_enabled:
        return None
    return PowerMeter(env, platform)
